#include "coordinator/health_prober.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "client/query_client.h"
#include "common/logging.h"

namespace hmmm {

const char* EndpointHealthName(EndpointHealth health) {
  switch (health) {
    case EndpointHealth::kUp:
      return "up";
    case EndpointHealth::kSuspect:
      return "suspect";
    case EndpointHealth::kDown:
      return "down";
  }
  return "unknown";
}

HealthProber::HealthProber(Options options, EndpointLister lister,
                           ProbeFn probe, TransitionObserver observer)
    : options_(options),
      lister_(std::move(lister)),
      probe_(std::move(probe)),
      observer_(std::move(observer)) {}

HealthProber::~HealthProber() { Stop(); }

void HealthProber::Start() {
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] {
    ProbeOnce();  // learn the fleet's state before the first interval
    std::unique_lock<std::mutex> lock(run_mutex_);
    while (!stop_) {
      if (wake_.wait_for(lock, options_.probe_interval,
                         [this] { return stop_; })) {
        break;
      }
      lock.unlock();
      ProbeOnce();
      lock.lock();
    }
  });
}

void HealthProber::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    if (!running_) return;
    stop_ = true;
  }
  wake_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(run_mutex_);
  running_ = false;
}

EndpointHealth HealthProber::HealthOf(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = states_.find(endpoint);
  return it == states_.end() ? EndpointHealth::kUp : it->second.health;
}

std::vector<std::pair<std::string, EndpointHealth>> HealthProber::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, EndpointHealth>> out;
  out.reserve(states_.size());
  for (const auto& [endpoint, state] : states_) {
    out.emplace_back(endpoint, state.health);
  }
  return out;
}

void HealthProber::ProbeOnce() {
  const std::vector<std::string> endpoints = lister_();
  // Probes run outside the state lock (a hung endpoint must not block
  // HealthOf callers); transitions collected for the observer.
  std::vector<std::pair<std::string, EndpointHealth>> transitions;
  for (const std::string& endpoint : endpoints) {
    const Status alive = probe_(endpoint);
    std::lock_guard<std::mutex> lock(mutex_);
    EndpointState& state = states_[endpoint];
    const EndpointHealth before = state.health;
    if (alive.ok()) {
      state.consecutive_failures = 0;
      if (state.health != EndpointHealth::kUp &&
          ++state.consecutive_successes >= options_.successes_to_up) {
        state.health = EndpointHealth::kUp;
        state.consecutive_successes = 0;
      }
    } else {
      state.consecutive_successes = 0;
      ++state.consecutive_failures;
      state.health = state.consecutive_failures >= options_.failures_to_down
                         ? EndpointHealth::kDown
                         : EndpointHealth::kSuspect;
    }
    if (state.health != before) {
      transitions.emplace_back(endpoint, state.health);
    }
  }
  {
    // Forget endpoints dropped by a map reload so Snapshot() mirrors the
    // live fleet.
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = states_.begin(); it != states_.end();) {
      const bool listed = std::find(endpoints.begin(), endpoints.end(),
                                    it->first) != endpoints.end();
      it = listed ? std::next(it) : states_.erase(it);
    }
    ++cycles_completed_;
  }
  for (const auto& [endpoint, health] : transitions) {
    HMMM_LOG(Info) << "endpoint " << endpoint << " is now "
                   << EndpointHealthName(health);
    if (observer_ != nullptr) observer_(endpoint, health);
  }
}

HealthProber::ProbeFn MakeHealthRpcProbe(std::chrono::milliseconds timeout) {
  return [timeout](const std::string& endpoint) -> Status {
    const size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("endpoint missing port: " + endpoint);
    }
    QueryClientOptions options;
    options.host = endpoint.substr(0, colon);
    options.port = static_cast<uint16_t>(
        std::strtoul(endpoint.c_str() + colon + 1, nullptr, 10));
    options.connect_timeout = timeout;
    options.io_timeout = timeout;
    options.max_retries = 0;
    QueryClient client(options);
    return client.Health().status();
  };
}

}  // namespace hmmm
