#ifndef HMMM_COORDINATOR_HEALTH_PROBER_H_
#define HMMM_COORDINATOR_HEALTH_PROBER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace hmmm {

/// Active liveness of one endpoint as seen by the prober.
///
///   kUp      last probe(s) succeeded — preferred for routing.
///   kSuspect some probes failed but not enough to declare death; still
///            routable, after every kUp replica of the range.
///   kDown    failures_to_down consecutive probes failed — skipped by
///            the failover order unless every replica of the range is
///            excluded.
enum class EndpointHealth { kUp, kSuspect, kDown };

const char* EndpointHealthName(EndpointHealth health);

/// Periodically probes a set of endpoints with lightweight Health RPCs
/// on a dedicated thread and keeps a per-endpoint UP/SUSPECT/DOWN state
/// driven by consecutive-failure/success thresholds.
///
/// The endpoint set is re-listed every cycle through the injected
/// lister, so a hot shard-map reload changes the probe set without
/// restarting the prober; endpoints that disappear from the lister are
/// forgotten. The probe itself is injected too, which keeps the class
/// free of socket details and lets tests flip an endpoint's fate
/// deterministically.
class HealthProber {
 public:
  struct Options {
    std::chrono::milliseconds probe_interval{500};
    /// Consecutive probe failures before kSuspect becomes kDown.
    int failures_to_down = 3;
    /// Consecutive probe successes before a non-kUp endpoint is kUp
    /// again.
    int successes_to_up = 1;
  };

  /// Returns the endpoints to probe this cycle.
  using EndpointLister = std::function<std::vector<std::string>()>;
  /// One Health round-trip against `endpoint`; OK = alive.
  using ProbeFn = std::function<Status(const std::string& endpoint)>;
  /// Observes health transitions (metrics hookup). Called outside the
  /// state lock.
  using TransitionObserver =
      std::function<void(const std::string& endpoint, EndpointHealth health)>;

  HealthProber(Options options, EndpointLister lister, ProbeFn probe,
               TransitionObserver observer = nullptr);
  ~HealthProber();

  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  /// Spawns the probe thread (idempotent). The first cycle runs
  /// immediately, so a freshly started coordinator learns dead endpoints
  /// within one probe round-trip, not one interval.
  void Start();
  /// Stops and joins the probe thread (idempotent; also run by the
  /// destructor). A cycle in progress finishes its current probe.
  void Stop();

  /// Health of `endpoint`; endpoints never probed are optimistically
  /// kUp (a fresh replica must be routable before its first probe).
  EndpointHealth HealthOf(const std::string& endpoint) const;

  /// All tracked endpoints and their current health.
  std::vector<std::pair<std::string, EndpointHealth>> Snapshot() const;

  /// Runs one synchronous probe cycle on the caller's thread (tests and
  /// the Start() warm-up use this; safe to call concurrently with the
  /// background thread).
  void ProbeOnce();

  uint64_t cycles_completed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cycles_completed_;
  }

 private:
  struct EndpointState {
    EndpointHealth health = EndpointHealth::kUp;
    int consecutive_failures = 0;
    int consecutive_successes = 0;
  };

  Options options_;
  EndpointLister lister_;
  ProbeFn probe_;
  TransitionObserver observer_;

  mutable std::mutex mutex_;
  std::map<std::string, EndpointState> states_;
  uint64_t cycles_completed_ = 0;

  std::mutex run_mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

/// The default ProbeFn: one Health RPC with no retries and tight
/// connect/io timeouts, so a dead endpoint costs one `timeout`, not a
/// client's full default budget.
HealthProber::ProbeFn MakeHealthRpcProbe(std::chrono::milliseconds timeout);

}  // namespace hmmm

#endif  // HMMM_COORDINATOR_HEALTH_PROBER_H_
