#ifndef HMMM_COORDINATOR_COORDINATOR_SERVICE_H_
#define HMMM_COORDINATOR_COORDINATOR_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "client/query_client.h"
#include "common/thread_pool.h"
#include "coordinator/shard_router.h"
#include "observability/metrics_registry.h"
#include "observability/query_trace.h"
#include "observability/sliding_window.h"
#include "observability/slow_query_log.h"
#include "observability/trace_codec.h"
#include "server/query_server.h"
#include "server/query_service.h"

namespace hmmm {

struct CoordinatorOptions {
  /// Transport template for every shard connection; host/port are
  /// overridden per shard from the shard map's endpoints. The defaults
  /// deviate from QueryClientOptions' on purpose: a scatter path must
  /// fail fast so a dead shard costs one quick connect refusal, not a
  /// deep retry ladder eating the request's budget.
  QueryClientOptions client;
  /// Idle pooled connections kept per shard.
  size_t pool_max_idle = 8;
  /// Fan-out worker threads; <= 0 resolves to 2 * num_shards (shard
  /// calls block on network IO, so the pool sizes over shard count, not
  /// cores).
  int fanout_threads = 0;
  /// Milliseconds reserved from a TemporalQuery's budget_ms for the
  /// gather + merge phase: each shard gets budget_ms - merge_reserve_ms.
  int64_t merge_reserve_ms = 5;
  /// Floor for a derived per-shard budget (a request whose budget is
  /// smaller than the merge reserve still gives shards a sliver rather
  /// than a nonsensical non-positive budget). budget_ms == 0 stays 0 —
  /// "degrade immediately" must keep meaning that on every shard.
  int64_t min_shard_budget_ms = 1;
  /// Slack added on top of a budgeted request's per-shard IO timeout so
  /// a shard's own (degraded) answer wins the race against the
  /// transport deadline; only a truly hung shard trips the transport.
  int64_t io_slack_ms = 100;
  /// Ranked results kept after the temporal merge. Must equal the
  /// shards' TraversalOptions::max_results (both default 20) for
  /// byte-identical output.
  int max_results = 20;
  /// Tracing and slow-query-log knobs (trace_sample_rate & co.). A
  /// sampled coordinator query propagates its trace context downstream,
  /// so one decision traces the whole fan-out.
  QueryServiceOptions observability;

  CoordinatorOptions() {
    client.max_retries = 1;
    client.connect_timeout = std::chrono::milliseconds(500);
  }
};

/// Per-shard budget derivation (exposed for unit tests): -1 (no budget)
/// passes through, 0 stays 0, anything else loses the merge reserve but
/// never drops below min_shard_budget_ms.
int64_t ShardBudgetMs(int64_t budget_ms, const CoordinatorOptions& options);

/// Deterministic cross-shard merge of per-shard temporal rankings
/// (already remapped to global ids): (score desc, global video asc),
/// truncated to max_results. Per-video candidates are unique and shards
/// partition the videos, so this is a total order — the merged ranking
/// is the same for every fan-out width and arrival order.
std::vector<RetrievedPattern> MergeRankedResults(
    std::vector<std::vector<RetrievedPattern>> per_shard, int max_results);

/// Deterministic QBE merge: per-shard lists concatenated in shard order
/// (= global state order, since shards own contiguous video ranges) and
/// stably sorted by similarity desc — reproducing the single-process
/// stable sort bit-for-bit.
std::vector<QbeResult> MergeQbeResults(
    std::vector<std::vector<QbeResult>> per_shard, int max_results);

/// Scatter-gather QueryService over N shard servers, each serving one
/// PartitionForServing slice behind the ordinary wire protocol.
///
/// TemporalQuery/QueryByExample fan out over pooled per-shard
/// QueryClient connections on a dedicated thread pool and merge under
/// the deterministic total orders above, so a coordinator's ranking is
/// byte-identical to a single-process server over the merged catalog.
/// A slow or dead shard degrades the merged result — videos_skipped
/// grows by the shard's catalog share — and never fails the query; only
/// kInvalidArgument / kNotFound (the request itself is at fault,
/// identically on every shard) propagate as errors. MarkPositive routes to the
/// owning shard by global video id; Train broadcasts. Per-shard latency
/// histograms and degraded/dead-shard counters land in the
/// hmmm_coordinator_* metric families of the owned registry.
class CoordinatorService : public QueryService {
 public:
  /// Validates the map (including its endpoints) and connects nothing
  /// yet: shard connections are established lazily per fan-out.
  static StatusOr<std::unique_ptr<CoordinatorService>> Create(
      ShardMap map, CoordinatorOptions options = {});

  MetricsRegistry& metrics_registry() override { return registry_; }
  StatusOr<TemporalQueryResponse> TemporalQuery(
      const TemporalQueryRequest& request,
      const CancellationToken* shutdown) override;
  StatusOr<QbeResponse> QueryByExample(const QbeRequest& request) override;
  StatusOr<MarkPositiveResponse> MarkPositive(
      const MarkPositiveRequest& request) override;
  StatusOr<TrainResponse> Train() override;
  /// Own hmmm_coordinator_* exposition plus the fleet aggregation: every
  /// live shard's SnapshotJson merged into one registry with a
  /// shard="<index>" label on each series, rendered after the
  /// coordinator's own families. json_snapshot carries the coordinator's
  /// own registry only.
  StatusOr<MetricsResponse> Metrics() override;
  StatusOr<HealthResponse> Health() override;
  StatusOr<DumpSlowQueriesResponse> DumpSlowQueries() override;

  const ShardRouter& router() const { return router_; }
  const CoordinatorOptions& options() const { return options_; }
  SlowQueryLog& slow_query_log() { return slow_log_; }

 private:
  struct ShardState {
    std::unique_ptr<QueryClientPool> pool;
    Histogram* latency_ms = nullptr;
    Counter* errors = nullptr;
    Gauge* connections_created = nullptr;
  };

  CoordinatorService(ShardRouter router, CoordinatorOptions options);

  /// Runs `call(shard_index, client)` for every shard on the fan-out
  /// pool, each against a pooled connection, recording per-shard
  /// latency/errors. Blocks until every shard answered or failed. When
  /// `elapsed_ms_out` is non-null it is resized to num_shards and filled
  /// with each shard call's wall time.
  template <typename T>
  std::vector<StatusOr<T>> FanOut(
      const std::function<StatusOr<T>(int, QueryClient&)>& call,
      std::vector<double>* elapsed_ms_out = nullptr);

  ShardRouter router_;
  CoordinatorOptions options_;
  MetricsRegistry registry_;
  TraceSampler sampler_;
  SlowQueryLog slow_log_;
  /// Sliding-window latency of merged temporal queries, feeding the
  /// hmmm_coordinator_query_latency_p* gauges.
  SlidingWindowHistogram latency_window_;
  std::vector<ShardState> shards_;
  std::unique_ptr<ThreadPool> fanout_pool_;

  Counter* fanouts_total_ = nullptr;
  Counter* queries_degraded_ = nullptr;
  Counter* dead_shard_results_ = nullptr;
  Counter* traces_sampled_ = nullptr;
  Gauge* latency_p50_ = nullptr;
  Gauge* latency_p99_ = nullptr;
  Gauge* latency_p999_ = nullptr;
};

/// The sharded drop-in for hmmm_serverd: a QueryServer front end bound
/// to a CoordinatorService, speaking the existing wire protocol
/// unchanged.
class CoordinatorServer {
 public:
  static StatusOr<std::unique_ptr<CoordinatorServer>> Create(
      ShardMap map, CoordinatorOptions coordinator_options = {},
      QueryServerOptions server_options = {});

  Status Start() { return server_->Start(); }
  uint16_t port() const { return server_->port(); }
  void Shutdown() { server_->Shutdown(); }
  bool running() const { return server_->running(); }
  CoordinatorService& service() { return *service_; }

 private:
  CoordinatorServer(std::unique_ptr<CoordinatorService> service,
                    QueryServerOptions server_options)
      : service_(std::move(service)),
        server_(std::make_unique<QueryServer>(service_.get(),
                                              std::move(server_options))) {}

  std::unique_ptr<CoordinatorService> service_;
  std::unique_ptr<QueryServer> server_;
};

}  // namespace hmmm

#endif  // HMMM_COORDINATOR_COORDINATOR_SERVICE_H_
