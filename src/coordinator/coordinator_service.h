#ifndef HMMM_COORDINATOR_COORDINATOR_SERVICE_H_
#define HMMM_COORDINATOR_COORDINATOR_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "client/query_client.h"
#include "common/thread_pool.h"
#include "coordinator/circuit_breaker.h"
#include "coordinator/health_prober.h"
#include "coordinator/shard_router.h"
#include "observability/metrics_registry.h"
#include "observability/query_trace.h"
#include "observability/sliding_window.h"
#include "observability/slow_query_log.h"
#include "observability/trace_codec.h"
#include "server/query_server.h"
#include "server/query_service.h"

namespace hmmm {

struct CoordinatorOptions {
  /// Transport template for every shard connection; host/port are
  /// overridden per endpoint from the shard map. The defaults deviate
  /// from QueryClientOptions' on purpose: a scatter path must fail fast
  /// so a dead endpoint costs one quick connect refusal, not a deep
  /// retry ladder eating the request's budget.
  QueryClientOptions client;
  /// Idle pooled connections kept per endpoint.
  size_t pool_max_idle = 8;
  /// Fan-out worker threads; <= 0 resolves to 2 * num_shards (shard
  /// calls block on network IO, so the pool sizes over shard count, not
  /// cores).
  int fanout_threads = 0;
  /// Milliseconds reserved from a TemporalQuery's budget_ms for the
  /// gather + merge phase: each shard gets budget_ms - merge_reserve_ms.
  int64_t merge_reserve_ms = 5;
  /// Floor for a derived per-shard budget (a request whose budget is
  /// smaller than the merge reserve still gives shards a sliver rather
  /// than a nonsensical non-positive budget). budget_ms == 0 stays 0 —
  /// "degrade immediately" must keep meaning that on every shard.
  int64_t min_shard_budget_ms = 1;
  /// Slack added on top of a budgeted request's per-shard IO timeout so
  /// a shard's own (degraded) answer wins the race against the
  /// transport deadline; only a truly hung shard trips the transport.
  int64_t io_slack_ms = 100;
  /// Ranked results kept after the temporal merge. Must equal the
  /// shards' TraversalOptions::max_results (both default 20) for
  /// byte-identical output.
  int max_results = 20;
  /// Tracing and slow-query-log knobs (trace_sample_rate & co.). A
  /// sampled coordinator query propagates its trace context downstream,
  /// so one decision traces the whole fan-out.
  QueryServiceOptions observability;

  /// Per-endpoint circuit breaker thresholds. An Open breaker removes
  /// the endpoint from the failover order for open_cooldown, so a dead
  /// replica costs one trip's worth of timeouts, not one per query.
  CircuitBreaker::Options breaker;
  /// Active health probing cadence. A zero interval disables the probe
  /// thread entirely — endpoints then stay optimistically kUp and
  /// failover relies on circuit breakers alone (unit tests use this to
  /// keep deployments quiet).
  std::chrono::milliseconds health_probe_interval{500};
  /// Connect/IO bound for one Health probe round trip.
  std::chrono::milliseconds health_probe_timeout{250};
  int health_failures_to_down = 3;
  int health_successes_to_up = 1;

  /// Hedged reads for the idempotent fan-out calls (TemporalQuery,
  /// QueryByExample): when the preferred replica has not answered after
  /// the hedge delay, the same request is raced against the next
  /// replica in the failover order and the first success wins. Replicas
  /// serve identical slices, so either answer is byte-identical — the
  /// hedge trades duplicate work for tail latency, never determinism.
  ///   -1  disabled (default)
  ///    0  adaptive: delay = max(hedge_min_delay_ms, sliding p99 of
  ///       merged query latency)
  ///   >0  fixed delay in milliseconds
  int64_t hedge_delay_ms = -1;
  int64_t hedge_min_delay_ms = 10;

  CoordinatorOptions() {
    client.max_retries = 1;
    client.connect_timeout = std::chrono::milliseconds(500);
  }
};

/// Per-shard budget derivation (exposed for unit tests): -1 (no budget)
/// passes through, 0 stays 0, anything else loses the merge reserve but
/// never drops below min_shard_budget_ms.
int64_t ShardBudgetMs(int64_t budget_ms, const CoordinatorOptions& options);

/// Deterministic cross-shard merge of per-shard temporal rankings
/// (already remapped to global ids): (score desc, global video asc),
/// truncated to max_results. Per-video candidates are unique and shards
/// partition the videos, so this is a total order — the merged ranking
/// is the same for every fan-out width and arrival order.
std::vector<RetrievedPattern> MergeRankedResults(
    std::vector<std::vector<RetrievedPattern>> per_shard, int max_results);

/// Deterministic QBE merge: per-shard lists concatenated in shard order
/// (= global state order, since shards own contiguous video ranges) and
/// stably sorted by similarity desc — reproducing the single-process
/// stable sort bit-for-bit.
std::vector<QbeResult> MergeQbeResults(
    std::vector<std::vector<QbeResult>> per_shard, int max_results);

/// Deterministic replica preference for one shard: endpoint indexes
/// ordered kUp first (in replica order: primary, then replicas as
/// listed in the map), then kSuspect, then kDown as a last resort — a
/// stale kDown verdict can demote an endpoint but never black-hole the
/// range; circuit breakers are the final admission gate per attempt.
/// Every index appears exactly once, so two coordinators with the same
/// health view route identically.
std::vector<int> FailoverOrder(const std::vector<EndpointHealth>& health);

/// Scatter-gather QueryService over N shard ranges, each served by one
/// or more replica endpoints holding identical PartitionForServing
/// slices behind the ordinary wire protocol.
///
/// TemporalQuery/QueryByExample fan out over pooled per-endpoint
/// QueryClient connections on a dedicated thread pool and merge under
/// the deterministic total orders above, so a coordinator's ranking is
/// byte-identical to a single-process server over the merged catalog.
/// Each shard call walks the range's replicas in FailoverOrder — health
/// from the active prober, admission per endpoint by a circuit breaker
/// — and the range only degrades the merged result (videos_skipped
/// grows by the range's catalog share) when EVERY replica failed. Only
/// kInvalidArgument / kNotFound (the request itself is at fault,
/// identically on every replica) propagate as errors. MarkPositive and
/// Train broadcast to every replica of the affected range(s) so the
/// replicas' models stay in lockstep. ReloadShardMap swaps in a
/// strictly-newer-epoch map atomically; in-flight queries finish on the
/// snapshot they started with.
class CoordinatorService : public QueryService {
 public:
  /// Validates the map (including every replica endpoint) and connects
  /// nothing yet: connections are established lazily per fan-out.
  static StatusOr<std::unique_ptr<CoordinatorService>> Create(
      ShardMap map, CoordinatorOptions options = {});
  ~CoordinatorService() override;

  MetricsRegistry& metrics_registry() override { return registry_; }
  StatusOr<TemporalQueryResponse> TemporalQuery(
      const TemporalQueryRequest& request,
      const CancellationToken* shutdown) override;
  StatusOr<QbeResponse> QueryByExample(const QbeRequest& request) override;
  StatusOr<MarkPositiveResponse> MarkPositive(
      const MarkPositiveRequest& request) override;
  StatusOr<TrainResponse> Train() override;
  /// Own hmmm_coordinator_* exposition plus the fleet aggregation: every
  /// live endpoint's SnapshotJson merged into one registry with
  /// shard="<index>",replica="<index>" labels on each series, rendered
  /// after the coordinator's own families. json_snapshot carries the
  /// coordinator's own registry only.
  StatusOr<MetricsResponse> Metrics() override;
  StatusOr<HealthResponse> Health() override;
  StatusOr<DumpSlowQueriesResponse> DumpSlowQueries() override;
  /// Wire entry point for a hot shard-map swap: decodes the pushed
  /// blob and hands it to ApplyShardMap.
  StatusOr<ReloadShardMapResponse> ReloadShardMap(
      const ReloadShardMapRequest& request) override;

  /// Validates `map` and atomically replaces the routing table iff
  /// map.epoch is strictly greater than the live epoch (the fence that
  /// makes a replayed or reordered reload a kFailedPrecondition no-op).
  /// Pools and breakers of endpoints present in both maps carry over,
  /// keeping warm connections and breaker verdicts across the swap;
  /// queries already in flight finish on the snapshot they pinned.
  StatusOr<ReloadShardMapResponse> ApplyShardMap(ShardMap map);

  /// Epoch of the live routing table.
  uint64_t map_epoch() const;
  int num_shards() const;
  /// Router of the live routing table. Debug/test accessor: the
  /// reference is only stable while no concurrent reload swaps the
  /// table — request paths pin a snapshot instead.
  const ShardRouter& router() const { return Table()->router; }
  const CoordinatorOptions& options() const { return options_; }
  SlowQueryLog& slow_query_log() { return slow_log_; }
  /// The active prober (null when health_probe_interval is zero).
  HealthProber* health_prober() { return prober_.get(); }

 private:
  /// One replica endpoint of a shard range: its connection pool, its
  /// breaker, and its labeled metric handles. Pool and breaker are
  /// shared_ptrs so a reload can carry them over into the next table
  /// and a hedge attempt can outlive the snapshot that spawned it.
  struct EndpointState {
    std::string endpoint;
    std::shared_ptr<QueryClientPool> pool;
    std::shared_ptr<CircuitBreaker> breaker;
    Histogram* latency_ms = nullptr;   // per-attempt, this endpoint
    Counter* errors = nullptr;         // failed attempts, this endpoint
    Gauge* connections_created = nullptr;
  };

  /// One shard range: its replicas in map order (primary first) and
  /// the range-level metric handles.
  struct ShardSlot {
    std::vector<EndpointState> endpoints;
    Histogram* latency_ms = nullptr;  // whole shard call incl. failover
    Counter* errors = nullptr;        // shard calls with no live replica
  };

  /// Immutable routing snapshot. Requests pin it with a shared_ptr at
  /// entry and use only that snapshot, so a concurrent ReloadShardMap
  /// swap never mixes two maps inside one query.
  struct RoutingTable {
    RoutingTable(ShardRouter router_in, uint64_t epoch_in)
        : router(std::move(router_in)), epoch(epoch_in) {}
    ShardRouter router;
    uint64_t epoch = 0;
    std::vector<ShardSlot> shards;
  };

  CoordinatorService(std::shared_ptr<const RoutingTable> table,
                     CoordinatorOptions options);

  std::shared_ptr<const RoutingTable> Table() const;

  /// Builds a table from a validated map, resolving per-endpoint metric
  /// handles (same labels → same registry instance, so a reload keeps
  /// counting in the same series) and reusing pool + breaker from
  /// `previous` for endpoints present in both maps.
  StatusOr<std::shared_ptr<const RoutingTable>> BuildRoutingTable(
      ShardMap map, const RoutingTable* previous);

  /// Starts the health prober over the live table's endpoints (no-op
  /// when health_probe_interval is zero).
  void StartProber();

  /// One fan-out call against shard `s`: walks the replicas in
  /// FailoverOrder, gated per endpoint by its breaker, recording
  /// attempt latency/errors and breaker outcomes. `rpc` must own its
  /// request (capture by value) and be safe to invoke concurrently on
  /// distinct clients — when `hedgeable` and hedging is enabled, the
  /// preferred replica races the next one after the hedge delay and the
  /// first success wins (the loser finishes in the background against
  /// the pinned snapshot). Returns the first OK or request-at-fault
  /// answer; otherwise the last transport error after all replicas.
  template <typename T>
  StatusOr<T> CallShard(const std::shared_ptr<const RoutingTable>& table,
                        int s, bool hedgeable,
                        std::function<StatusOr<T>(QueryClient&)> rpc);

  /// One attempt against one endpoint: lease, rpc, breaker verdict,
  /// endpoint metrics. Query errors (request at fault) count as breaker
  /// successes — the endpoint answered.
  template <typename T>
  StatusOr<T> AttemptEndpoint(const EndpointState& ep,
                              const std::function<StatusOr<T>(QueryClient&)>& rpc);

  /// Runs `call_shard(shard_index)` for every shard of `table` on the
  /// fan-out pool, recording shard-level latency. Blocks until every
  /// shard answered or failed. When `elapsed_ms_out` is non-null it is
  /// resized to num_shards and filled with each shard call's wall time.
  template <typename T>
  std::vector<StatusOr<T>> FanOut(
      const std::shared_ptr<const RoutingTable>& table,
      const std::function<StatusOr<T>(int)>& call_shard,
      std::vector<double>* elapsed_ms_out = nullptr);

  /// Resolves the hedge delay for this moment: < 0 disabled.
  int64_t ResolveHedgeDelayMs();

  CoordinatorOptions options_;
  MetricsRegistry registry_;
  TraceSampler sampler_;
  SlowQueryLog slow_log_;
  /// Sliding-window latency of merged temporal queries, feeding the
  /// hmmm_coordinator_query_latency_p* gauges and the adaptive hedge
  /// delay.
  SlidingWindowHistogram latency_window_;
  std::unique_ptr<ThreadPool> fanout_pool_;
  std::unique_ptr<HealthProber> prober_;

  mutable std::mutex table_mutex_;
  std::shared_ptr<const RoutingTable> table_;

  /// Hedge attempts still running after their winner returned; the
  /// destructor waits them out so detached attempts never touch a dead
  /// registry.
  mutable std::mutex hedge_mutex_;
  std::condition_variable hedge_drained_;
  int inflight_hedge_attempts_ = 0;

  Counter* fanouts_total_ = nullptr;
  Counter* queries_degraded_ = nullptr;
  Counter* dead_shard_results_ = nullptr;
  Counter* traces_sampled_ = nullptr;
  Counter* failovers_total_ = nullptr;
  Counter* breaker_rejections_ = nullptr;
  Counter* hedges_total_ = nullptr;
  Counter* hedge_wins_ = nullptr;
  Counter* train_shard_failures_ = nullptr;
  Counter* reloads_total_ = nullptr;
  Counter* reloads_rejected_ = nullptr;
  Gauge* map_epoch_gauge_ = nullptr;
  Gauge* latency_p50_ = nullptr;
  Gauge* latency_p99_ = nullptr;
  Gauge* latency_p999_ = nullptr;
};

/// The sharded drop-in for hmmm_serverd: a QueryServer front end bound
/// to a CoordinatorService, speaking the existing wire protocol
/// unchanged.
class CoordinatorServer {
 public:
  static StatusOr<std::unique_ptr<CoordinatorServer>> Create(
      ShardMap map, CoordinatorOptions coordinator_options = {},
      QueryServerOptions server_options = {});

  Status Start() { return server_->Start(); }
  uint16_t port() const { return server_->port(); }
  void Shutdown() { server_->Shutdown(); }
  bool running() const { return server_->running(); }
  CoordinatorService& service() { return *service_; }

 private:
  CoordinatorServer(std::unique_ptr<CoordinatorService> service,
                    QueryServerOptions server_options)
      : service_(std::move(service)),
        server_(std::make_unique<QueryServer>(service_.get(),
                                              std::move(server_options))) {}

  std::unique_ptr<CoordinatorService> service_;
  std::unique_ptr<QueryServer> server_;
};

}  // namespace hmmm

#endif  // HMMM_COORDINATOR_COORDINATOR_SERVICE_H_
