#ifndef HMMM_COORDINATOR_CIRCUIT_BREAKER_H_
#define HMMM_COORDINATOR_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>

namespace hmmm {

/// Per-endpoint circuit breaker for the coordinator's fan-out path.
///
/// State machine:
///
///   Closed ──(failure_threshold consecutive failures)──► Open
///   Open ──(open_cooldown elapsed)──► HalfOpen
///   HalfOpen ──(success_threshold consecutive successes)──► Closed
///   HalfOpen ──(any failure)──► Open (cooldown restarts)
///
/// While Open, AllowRequest() refuses immediately, so a dead endpoint
/// costs the fan-out nothing (no connect timeout burned inside the query
/// budget). While HalfOpen, at most `half_open_max_probes` requests are
/// admitted concurrently as probes; the rest are refused until the
/// probes resolve the endpoint's fate.
///
/// Time is injected (steady_clock time_points passed by the caller) so
/// tests drive transitions without sleeping. All methods are thread-safe.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive failures that trip Closed -> Open.
    int failure_threshold = 3;
    /// Consecutive HalfOpen successes that restore Closed.
    int success_threshold = 2;
    /// How long Open refuses before admitting HalfOpen probes.
    std::chrono::milliseconds open_cooldown{1000};
    /// Concurrent probe admissions while HalfOpen.
    int half_open_max_probes = 1;
  };

  using TimePoint = std::chrono::steady_clock::time_point;

  explicit CircuitBreaker(Options options) : options_(options) {}

  /// True when a request may be sent to the endpoint now. May transition
  /// Open -> HalfOpen (cooldown elapsed) as a side effect; a true return
  /// in HalfOpen reserves one probe slot — the caller MUST follow up
  /// with RecordSuccess or RecordFailure to release it.
  bool AllowRequest(TimePoint now);

  void RecordSuccess(TimePoint now);
  void RecordFailure(TimePoint now);

  State state() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
  }

  /// Lifetime transition counts (exported as coordinator metrics).
  uint64_t opened_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return opened_total_;
  }
  uint64_t half_opened_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return half_opened_total_;
  }
  uint64_t closed_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_total_;
  }
  uint64_t rejected_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_total_;
  }

  static const char* StateName(State state);

 private:
  void TransitionToOpen(TimePoint now);  // caller holds mutex_

  Options options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int consecutive_successes_ = 0;
  int probes_in_flight_ = 0;
  TimePoint opened_at_{};
  uint64_t opened_total_ = 0;
  uint64_t half_opened_total_ = 0;
  uint64_t closed_total_ = 0;
  uint64_t rejected_total_ = 0;
};

}  // namespace hmmm

#endif  // HMMM_COORDINATOR_CIRCUIT_BREAKER_H_
