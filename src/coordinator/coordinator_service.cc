#include "coordinator/coordinator_service.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <utility>

#include "common/logging.h"

namespace hmmm {

namespace {

/// "host:port" -> (host, port). The last ':' splits, so IPv6 literals
/// with a bracketed host would need no change to the wire format later.
Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("shard endpoint must be host:port, got '" +
                                   endpoint + "'");
  }
  int64_t parsed = 0;
  for (size_t i = colon + 1; i < endpoint.size(); ++i) {
    const char c = endpoint[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("shard endpoint has non-numeric port: '" +
                                     endpoint + "'");
    }
    parsed = parsed * 10 + (c - '0');
    if (parsed > 65535) {
      return Status::InvalidArgument("shard endpoint port out of range: '" +
                                     endpoint + "'");
    }
  }
  if (parsed == 0) {
    return Status::InvalidArgument("shard endpoint port must be non-zero: '" +
                                   endpoint + "'");
  }
  *host = endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return Status::OK();
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// A shard failure degrades the merged result unless the request itself
/// is at fault: kInvalidArgument (malformed query/payload) and kNotFound
/// (unknown event name) are properties of the request, identical on
/// every shard, so they propagate as query errors rather than
/// masquerading as a dead shard. QueryClient maps transport EOFs away
/// from kNotFound, so these codes only ever carry typed server answers.
bool IsQueryError(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument ||
         status.code() == StatusCode::kNotFound;
}

}  // namespace

int64_t ShardBudgetMs(int64_t budget_ms, const CoordinatorOptions& options) {
  if (budget_ms < 0) return -1;
  if (budget_ms == 0) return 0;
  return std::max(options.min_shard_budget_ms,
                  budget_ms - options.merge_reserve_ms);
}

std::vector<RetrievedPattern> MergeRankedResults(
    std::vector<std::vector<RetrievedPattern>> per_shard, int max_results) {
  size_t total = 0;
  for (const auto& shard : per_shard) total += shard.size();
  std::vector<RetrievedPattern> merged;
  merged.reserve(total);
  for (auto& shard : per_shard) {
    for (auto& pattern : shard) merged.push_back(std::move(pattern));
  }
  std::sort(merged.begin(), merged.end(),
            [](const RetrievedPattern& a, const RetrievedPattern& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.video < b.video;
            });
  if (max_results >= 0 &&
      merged.size() > static_cast<size_t>(max_results)) {
    merged.resize(static_cast<size_t>(max_results));
  }
  return merged;
}

std::vector<QbeResult> MergeQbeResults(
    std::vector<std::vector<QbeResult>> per_shard, int max_results) {
  size_t total = 0;
  for (const auto& shard : per_shard) total += shard.size();
  std::vector<QbeResult> merged;
  merged.reserve(total);
  for (auto& shard : per_shard) {
    for (auto& result : shard) merged.push_back(std::move(result));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const QbeResult& a, const QbeResult& b) {
                     return a.similarity > b.similarity;
                   });
  if (max_results >= 0 &&
      merged.size() > static_cast<size_t>(max_results)) {
    merged.resize(static_cast<size_t>(max_results));
  }
  return merged;
}

CoordinatorService::CoordinatorService(ShardRouter router,
                                       CoordinatorOptions options)
    : router_(std::move(router)),
      options_(std::move(options)),
      sampler_(options_.observability.trace_sample_rate),
      slow_log_(options_.observability.slow_query_capacity == 0
                    ? 1
                    : options_.observability.slow_query_capacity),
      latency_window_(DefaultLatencyBucketsMs()) {}

StatusOr<std::unique_ptr<CoordinatorService>> CoordinatorService::Create(
    ShardMap map, CoordinatorOptions options) {
  HMMM_ASSIGN_OR_RETURN(ShardRouter router, ShardRouter::Create(std::move(map)));
  std::unique_ptr<CoordinatorService> service(
      new CoordinatorService(std::move(router), std::move(options)));

  const int num_shards = service->router_.num_shards();
  service->shards_.resize(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const ShardMapEntry& entry = service->router_.shard(s);
    QueryClientOptions client_options = service->options_.client;
    HMMM_RETURN_IF_ERROR(ParseEndpoint(entry.endpoint, &client_options.host,
                                       &client_options.port));
    ShardState& state = service->shards_[static_cast<size_t>(s)];
    state.pool = std::make_unique<QueryClientPool>(
        client_options, service->options_.pool_max_idle);
    const MetricLabels labels = {{"shard", std::to_string(s)}};
    state.latency_ms = service->registry_.GetHistogram(
        "hmmm_coordinator_shard_latency_ms", labels, DefaultLatencyBucketsMs(),
        "Per-shard scatter call latency, including connect and IO");
    state.errors = service->registry_.GetCounter(
        "hmmm_coordinator_shard_errors_total", labels,
        "Shard calls that failed (transport or typed error)");
    state.connections_created = service->registry_.GetGauge(
        "hmmm_coordinator_shard_connections_created", labels,
        "TCP connections opened to this shard over the pool's lifetime");
  }

  service->registry_.GetGauge("hmmm_coordinator_shards",
                              "Number of shards in the serving map")
      ->Set(static_cast<double>(num_shards));
  service->fanouts_total_ = service->registry_.GetCounter(
      "hmmm_coordinator_fanouts_total",
      "Scatter-gather fan-outs executed (all request types)");
  service->queries_degraded_ = service->registry_.GetCounter(
      "hmmm_coordinator_queries_degraded_total",
      "Merged temporal responses marked degraded (shard-side budget or "
      "dead shard)");
  service->dead_shard_results_ = service->registry_.GetCounter(
      "hmmm_coordinator_dead_shard_results_total",
      "Per-shard scatter calls absorbed as degradation instead of failing "
      "the query");
  service->traces_sampled_ = service->registry_.GetCounter(
      "hmmm_coordinator_traces_sampled_total",
      "Temporal queries traced (client-requested or head-sampled)");
  service->latency_p50_ = service->registry_.GetGauge(
      "hmmm_coordinator_query_latency_p50_ms",
      "Sliding-window median merged temporal query latency");
  service->latency_p99_ = service->registry_.GetGauge(
      "hmmm_coordinator_query_latency_p99_ms",
      "Sliding-window p99 merged temporal query latency");
  service->latency_p999_ = service->registry_.GetGauge(
      "hmmm_coordinator_query_latency_p999_ms",
      "Sliding-window p99.9 merged temporal query latency");

  int fanout_threads = service->options_.fanout_threads;
  if (fanout_threads <= 0) fanout_threads = 2 * num_shards;
  fanout_threads = std::max(2, std::min(fanout_threads, 64));
  service->fanout_pool_ = std::make_unique<ThreadPool>(fanout_threads);
  return service;
}

template <typename T>
std::vector<StatusOr<T>> CoordinatorService::FanOut(
    const std::function<StatusOr<T>(int, QueryClient&)>& call,
    std::vector<double>* elapsed_ms_out) {
  fanouts_total_->Increment();
  const int num_shards = router_.num_shards();
  std::vector<StatusOr<T>> results(
      static_cast<size_t>(num_shards),
      StatusOr<T>(Status::Internal("shard call did not run")));
  if (elapsed_ms_out != nullptr) {
    elapsed_ms_out->assign(static_cast<size_t>(num_shards), 0.0);
  }
  std::vector<std::future<void>> done;
  done.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    done.push_back(fanout_pool_->SubmitWithFuture(
        [this, s, &call, &results, elapsed_ms_out] {
          ShardState& state = shards_[static_cast<size_t>(s)];
          const auto start = std::chrono::steady_clock::now();
          {
            QueryClientPool::Lease lease = state.pool->Acquire();
            results[static_cast<size_t>(s)] = call(s, *lease);
          }
          const double elapsed = ElapsedMs(start);
          state.latency_ms->Observe(elapsed);
          if (elapsed_ms_out != nullptr) {
            (*elapsed_ms_out)[static_cast<size_t>(s)] = elapsed;
          }
          if (!results[static_cast<size_t>(s)].ok()) state.errors->Increment();
        }));
  }
  for (auto& future : done) future.get();
  return results;
}

StatusOr<TemporalQueryResponse> CoordinatorService::TemporalQuery(
    const TemporalQueryRequest& request, const CancellationToken* shutdown) {
  (void)shutdown;  // shards bound their own work via the scattered budget;
                   // the front-end server stops admitting during drain.
  const auto start = std::chrono::steady_clock::now();
  const int num_shards = router_.num_shards();

  // Head-sampling decision for the whole fan-out: want_trace always
  // traces, otherwise the deterministic sampler fires. The context is
  // minted here (the coordinator is the root of the distributed trace)
  // and propagated to every shard.
  const bool sampled = request.want_trace || sampler_.Decide();
  TraceContext context;
  context.trace_id_hi = request.trace_id_hi;
  context.trace_id_lo = request.trace_id_lo;
  context.parent_span_id = request.parent_span_id;
  if (sampled && !context.has_trace_id()) {
    const TraceContext minted = MintTraceContext();
    context.trace_id_hi = minted.trace_id_hi;
    context.trace_id_lo = minted.trace_id_lo;
  }
  const std::string trace_id_hex =
      sampled ? TraceIdHex(context.trace_id_hi, context.trace_id_lo)
              : std::string();

  TemporalQueryRequest shard_request = request;
  // Supersession generations are per-connection state; pooled shard
  // connections are shared across coordinator requests, so a client's
  // generation must not leak downstream.
  shard_request.cancel_generation = 0;
  shard_request.budget_ms = ShardBudgetMs(request.budget_ms, options_);
  shard_request.want_trace = sampled;
  shard_request.trace_id_hi = context.trace_id_hi;
  shard_request.trace_id_lo = context.trace_id_lo;

  // Root and fan-out spans are opened serially before the scatter so
  // their ids are deterministic for a fixed shard map (0 = root,
  // 1..num_shards = fan-out spans in shard order); the workers only
  // close them. Sibling sort_key = shard index keeps the rendered order
  // deterministic too.
  QueryTrace trace;
  int root_span = -1;
  std::vector<int> fanout_spans(static_cast<size_t>(num_shards), -1);
  if (sampled) {
    traces_sampled_->Increment();
    root_span = trace.BeginSpan("coordinator_query");
    trace.AddAttribute(root_span, "trace_id", trace_id_hex);
    if (context.parent_span_id != 0) {
      trace.AddAttribute(root_span, "parent_span_id",
                         std::to_string(context.parent_span_id));
    }
    trace.AddCounter(root_span, "shards",
                     static_cast<uint64_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      const int id = trace.BeginSpan("shard_fanout", root_span, s);
      fanout_spans[static_cast<size_t>(s)] = id;
      trace.AddAttribute(id, "shard", std::to_string(s));
      trace.AddAttribute(id, "endpoint", router_.shard(s).endpoint);
      if (shard_request.budget_ms >= 0) {
        trace.AddCounter(id, "budget_ms",
                         static_cast<uint64_t>(shard_request.budget_ms));
      }
    }
  }

  std::vector<double> shard_elapsed_ms;
  auto per_shard = FanOut<TemporalQueryResponse>(
      [&](int s, QueryClient& client) -> StatusOr<TemporalQueryResponse> {
        if (shard_request.budget_ms >= 0) {
          // A hung shard must lose the race against the request's budget:
          // cap transport IO just above the shard's own deadline so the
          // shard's degraded answer normally arrives first.
          client.set_io_timeout(std::chrono::milliseconds(
              shard_request.budget_ms + options_.io_slack_ms));
        }
        TemporalQueryRequest req = shard_request;
        if (sampled) {
          // Informational parent (assembly grafts by response blob, not
          // by this id): the shard's fan-out span, +1 to keep it
          // nonzero, so shard logs correlate back to the scatter slot.
          req.parent_span_id = static_cast<uint64_t>(
              fanout_spans[static_cast<size_t>(s)] + 1);
        }
        StatusOr<TemporalQueryResponse> result = client.TemporalQuery(req);
        if (sampled) trace.EndSpan(fanout_spans[static_cast<size_t>(s)]);
        return result;
      },
      &shard_elapsed_ms);

  TemporalQueryResponse merged;
  merged.has_stats = request.want_stats;
  std::vector<std::vector<RetrievedPattern>> ranked(per_shard.size());
  std::vector<std::pair<int, std::string>> shard_errors;
  for (int s = 0; s < num_shards; ++s) {
    StatusOr<TemporalQueryResponse>& shard_result =
        per_shard[static_cast<size_t>(s)];
    if (!shard_result.ok()) {
      if (IsQueryError(shard_result.status())) return shard_result.status();
      // Unreachable/slow/crashed shard: absorb as degradation. The whole
      // shard's catalog share is unscanned from the client's viewpoint.
      merged.degraded = true;
      merged.videos_skipped += router_.VideosOwnedBy(s);
      dead_shard_results_->Increment();
      shard_errors.emplace_back(
          s, StatusCodeToString(shard_result.status().code()));
      if (sampled) {
        trace.AddAttribute(fanout_spans[static_cast<size_t>(s)], "error",
                           StatusCodeToString(shard_result.status().code()));
      }
      HMMM_LOG(Error) << "shard " << s << " ("
                      << router_.shard(s).endpoint
                      << ") failed temporal query: "
                      << shard_result.status().message()
                      << (sampled ? " trace_id=" + trace_id_hex
                                  : std::string());
      continue;
    }
    TemporalQueryResponse& response = *shard_result;
    merged.degraded = merged.degraded || response.degraded;
    merged.videos_skipped += response.videos_skipped;
    if (request.want_stats && response.has_stats) {
      AccumulateRetrievalStats(response.stats, &merged.stats);
    }
    for (RetrievedPattern& pattern : response.results) {
      pattern.video = router_.ToGlobalVideo(s, pattern.video);
      for (ShotId& shot : pattern.shots) {
        shot = router_.ToGlobalShot(s, shot);
      }
    }
    ranked[static_cast<size_t>(s)] = std::move(response.results);
  }
  if (request.want_stats) {
    merged.stats.degraded = merged.stats.degraded || merged.degraded;
    merged.stats.videos_skipped =
        std::max(merged.stats.videos_skipped,
                 static_cast<size_t>(merged.videos_skipped));
  }
  merged.results = MergeRankedResults(std::move(ranked), options_.max_results);
  if (merged.degraded) queries_degraded_->Increment();

  if (sampled) {
    trace.AddCounter(root_span, "videos_skipped", merged.videos_skipped);
    trace.AddCounter(root_span, "degraded", merged.degraded ? 1 : 0);
    trace.EndSpan(root_span);
  }
  if (request.want_trace) {
    // Cross-process assembly: each live shard's sub-trace blob is
    // grafted under its fan-out span, with the remote offsets shifted by
    // the fan-out span's own start offset — monotonic clocks only, no
    // clock sync. Shards that answered v1 (no blob) simply contribute no
    // sub-tree. Grafting in shard order keeps the remapped ids
    // deterministic for a fixed shard map.
    std::vector<TraceSpan> assembled = trace.Spans();
    for (int s = 0; s < num_shards; ++s) {
      const StatusOr<TemporalQueryResponse>& shard_result =
          per_shard[static_cast<size_t>(s)];
      if (!shard_result.ok() || shard_result->trace_blob.empty()) continue;
      StatusOr<std::vector<TraceSpan>> sub =
          DeserializeSpans(shard_result->trace_blob);
      if (!sub.ok()) {
        HMMM_LOG(Warning) << "shard " << s
                          << " returned an undecodable trace blob: "
                          << sub.status().message()
                          << " trace_id=" << trace_id_hex;
        continue;
      }
      const int fanout_id = fanout_spans[static_cast<size_t>(s)];
      double base_offset_ms = 0.0;
      for (const TraceSpan& span : assembled) {
        if (span.id == fanout_id) {
          base_offset_ms = span.start_offset_ms;
          break;
        }
      }
      GraftSpans(&assembled, fanout_id, std::move(sub).value(),
                 base_offset_ms);
    }
    merged.trace_jsonl = RenderSpansJsonl(assembled);
    merged.trace_blob = SerializeSpans(assembled);
  }

  const double total_ms = ElapsedMs(start);
  latency_window_.Observe(total_ms);
  latency_p50_->Set(latency_window_.Quantile(0.5));
  latency_p99_->Set(latency_window_.Quantile(0.99));
  latency_p999_->Set(latency_window_.Quantile(0.999));
  if (merged.degraded ||
      total_ms >= options_.observability.slow_query_threshold_ms) {
    SlowQueryEntry entry;
    entry.reason = merged.degraded ? "degraded" : "slow";
    entry.pattern = request.text;
    entry.trace_id = trace_id_hex;
    entry.total_ms = total_ms;
    entry.budget_ms =
        request.budget_ms >= 0 ? static_cast<double>(request.budget_ms) : -1.0;
    entry.degraded = merged.degraded;
    entry.videos_skipped = merged.videos_skipped;
    for (int s = 0; s < num_shards; ++s) {
      entry.shard_latency_ms.emplace_back(
          s, shard_elapsed_ms[static_cast<size_t>(s)]);
    }
    entry.shard_errors = std::move(shard_errors);
    slow_log_.Add(std::move(entry));
  }
  // Even with every shard down the answer is a degraded empty ranking
  // (videos_skipped == total catalog), never a query failure.
  return merged;
}

StatusOr<QbeResponse> CoordinatorService::QueryByExample(
    const QbeRequest& request) {
  auto per_shard = FanOut<QbeResponse>(
      [&](int, QueryClient& client) -> StatusOr<QbeResponse> {
        return client.QueryByExample(request);
      });

  std::vector<std::vector<QbeResult>> ranked(per_shard.size());
  bool any_ok = false;
  Status first_error = Status::OK();
  for (int s = 0; s < router_.num_shards(); ++s) {
    StatusOr<QbeResponse>& shard_result = per_shard[static_cast<size_t>(s)];
    if (!shard_result.ok()) {
      if (IsQueryError(shard_result.status())) return shard_result.status();
      if (first_error.ok()) first_error = shard_result.status();
      dead_shard_results_->Increment();
      continue;
    }
    any_ok = true;
    for (QbeResult& result : shard_result->results) {
      result.shot = router_.ToGlobalShot(s, result.shot);
    }
    ranked[static_cast<size_t>(s)] = std::move(shard_result->results);
  }
  // QbeResponse has no degraded channel in the frozen wire schema, so a
  // partial gather merges silently; only a total outage surfaces.
  if (!any_ok) return first_error;
  QbeResponse merged;
  merged.results = MergeQbeResults(std::move(ranked), request.max_results);
  return merged;
}

StatusOr<MarkPositiveResponse> CoordinatorService::MarkPositive(
    const MarkPositiveRequest& request) {
  const int shard = router_.ShardOfVideo(request.pattern.video);
  if (shard < 0) {
    return Status::NotFound("feedback video " +
                            std::to_string(request.pattern.video) +
                            " is not in the shard map");
  }
  MarkPositiveRequest local = request;
  local.pattern.video = router_.ToLocalVideo(shard, request.pattern.video);
  for (ShotId& shot : local.pattern.shots) {
    const auto located = router_.LocateShot(shot);
    if (located.first != shard) {
      return Status::InvalidArgument(
          "feedback shot " + std::to_string(shot) +
          " is not owned by the pattern's video shard");
    }
    shot = located.second;
  }
  ShardState& state = shards_[static_cast<size_t>(shard)];
  const auto start = std::chrono::steady_clock::now();
  QueryClientPool::Lease lease = state.pool->Acquire();
  StatusOr<MarkPositiveResponse> response = lease->MarkPositive(local);
  state.latency_ms->Observe(ElapsedMs(start));
  if (!response.ok()) state.errors->Increment();
  return response;
}

StatusOr<TrainResponse> CoordinatorService::Train() {
  auto per_shard = FanOut<TrainResponse>(
      [&](int, QueryClient& client) -> StatusOr<TrainResponse> {
        return client.Train();
      });
  TrainResponse merged;
  bool any_ok = false;
  Status first_error = Status::OK();
  for (auto& shard_result : per_shard) {
    if (!shard_result.ok()) {
      if (first_error.ok()) first_error = shard_result.status();
      continue;
    }
    any_ok = true;
    merged.trained = merged.trained || shard_result->trained;
    merged.training_rounds += shard_result->training_rounds;
  }
  if (!any_ok) return first_error;
  return merged;
}

StatusOr<MetricsResponse> CoordinatorService::Metrics() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].connections_created->Set(
        static_cast<double>(shards_[s].pool->clients_created()));
  }
  // Fleet aggregation: scrape every shard's machine-readable snapshot
  // and merge into one throwaway registry, labelling each series with
  // its shard index. Dead shards (and v1 shards, whose responses carry
  // no snapshot) just contribute nothing — a scrape never fails.
  auto per_shard = FanOut<MetricsResponse>(
      [&](int, QueryClient& client) -> StatusOr<MetricsResponse> {
        return client.Metrics();
      });
  MetricsRegistry fleet;
  for (int s = 0; s < router_.num_shards(); ++s) {
    const StatusOr<MetricsResponse>& shard_result =
        per_shard[static_cast<size_t>(s)];
    if (!shard_result.ok() || shard_result->json_snapshot.empty()) continue;
    const Status loaded = fleet.LoadSnapshotJson(
        shard_result->json_snapshot, {{"shard", std::to_string(s)}});
    if (!loaded.ok()) {
      HMMM_LOG(Warning) << "shard " << s
                        << " metrics snapshot rejected: "
                        << loaded.message();
    }
  }
  MetricsResponse response;
  response.prometheus_text =
      registry_.RenderPrometheus() + fleet.RenderPrometheus();
  response.json_snapshot = registry_.SnapshotJson();
  return response;
}

StatusOr<DumpSlowQueriesResponse> CoordinatorService::DumpSlowQueries() {
  DumpSlowQueriesResponse response;
  response.jsonl = slow_log_.DumpJsonl();
  return response;
}

StatusOr<HealthResponse> CoordinatorService::Health() {
  auto per_shard = FanOut<HealthResponse>(
      [&](int, QueryClient& client) -> StatusOr<HealthResponse> {
        return client.Health();
      });
  HealthResponse merged;
  bool any_ok = false;
  Status first_error = Status::OK();
  for (auto& shard_result : per_shard) {
    if (!shard_result.ok()) {
      if (first_error.ok()) first_error = shard_result.status();
      continue;
    }
    any_ok = true;
    merged.videos += shard_result->videos;
    merged.shots += shard_result->shots;
    merged.annotated_shots += shard_result->annotated_shots;
    merged.model_version += shard_result->model_version;
  }
  if (!any_ok) return first_error;
  return merged;
}

StatusOr<std::unique_ptr<CoordinatorServer>> CoordinatorServer::Create(
    ShardMap map, CoordinatorOptions coordinator_options,
    QueryServerOptions server_options) {
  HMMM_ASSIGN_OR_RETURN(
      std::unique_ptr<CoordinatorService> service,
      CoordinatorService::Create(std::move(map),
                                 std::move(coordinator_options)));
  return std::unique_ptr<CoordinatorServer>(new CoordinatorServer(
      std::move(service), std::move(server_options)));
}

}  // namespace hmmm
