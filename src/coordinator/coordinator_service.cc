#include "coordinator/coordinator_service.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace hmmm {

namespace {

/// "host:port" -> (host, port). The last ':' splits, so IPv6 literals
/// with a bracketed host would need no change to the wire format later.
Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("shard endpoint must be host:port, got '" +
                                   endpoint + "'");
  }
  int64_t parsed = 0;
  for (size_t i = colon + 1; i < endpoint.size(); ++i) {
    const char c = endpoint[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("shard endpoint has non-numeric port: '" +
                                     endpoint + "'");
    }
    parsed = parsed * 10 + (c - '0');
    if (parsed > 65535) {
      return Status::InvalidArgument("shard endpoint port out of range: '" +
                                     endpoint + "'");
    }
  }
  if (parsed == 0) {
    return Status::InvalidArgument("shard endpoint port must be non-zero: '" +
                                   endpoint + "'");
  }
  *host = endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return Status::OK();
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// A shard failure degrades the merged result unless the request itself
/// is at fault: kInvalidArgument (malformed query/payload) and kNotFound
/// (unknown event name) are properties of the request, identical on
/// every replica, so they propagate as query errors rather than
/// masquerading as a dead shard. QueryClient maps transport EOFs away
/// from kNotFound, so these codes only ever carry typed server answers.
bool IsQueryError(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument ||
         status.code() == StatusCode::kNotFound;
}

}  // namespace

int64_t ShardBudgetMs(int64_t budget_ms, const CoordinatorOptions& options) {
  if (budget_ms < 0) return -1;
  if (budget_ms == 0) return 0;
  return std::max(options.min_shard_budget_ms,
                  budget_ms - options.merge_reserve_ms);
}

std::vector<RetrievedPattern> MergeRankedResults(
    std::vector<std::vector<RetrievedPattern>> per_shard, int max_results) {
  size_t total = 0;
  for (const auto& shard : per_shard) total += shard.size();
  std::vector<RetrievedPattern> merged;
  merged.reserve(total);
  for (auto& shard : per_shard) {
    for (auto& pattern : shard) merged.push_back(std::move(pattern));
  }
  std::sort(merged.begin(), merged.end(),
            [](const RetrievedPattern& a, const RetrievedPattern& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.video < b.video;
            });
  if (max_results >= 0 &&
      merged.size() > static_cast<size_t>(max_results)) {
    merged.resize(static_cast<size_t>(max_results));
  }
  return merged;
}

std::vector<QbeResult> MergeQbeResults(
    std::vector<std::vector<QbeResult>> per_shard, int max_results) {
  size_t total = 0;
  for (const auto& shard : per_shard) total += shard.size();
  std::vector<QbeResult> merged;
  merged.reserve(total);
  for (auto& shard : per_shard) {
    for (auto& result : shard) merged.push_back(std::move(result));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const QbeResult& a, const QbeResult& b) {
                     return a.similarity > b.similarity;
                   });
  if (max_results >= 0 &&
      merged.size() > static_cast<size_t>(max_results)) {
    merged.resize(static_cast<size_t>(max_results));
  }
  return merged;
}

std::vector<int> FailoverOrder(const std::vector<EndpointHealth>& health) {
  std::vector<int> order;
  order.reserve(health.size());
  for (const EndpointHealth want :
       {EndpointHealth::kUp, EndpointHealth::kSuspect, EndpointHealth::kDown}) {
    for (size_t i = 0; i < health.size(); ++i) {
      if (health[i] == want) order.push_back(static_cast<int>(i));
    }
  }
  return order;
}

CoordinatorService::CoordinatorService(
    std::shared_ptr<const RoutingTable> table, CoordinatorOptions options)
    : options_(std::move(options)),
      sampler_(options_.observability.trace_sample_rate),
      slow_log_(options_.observability.slow_query_capacity == 0
                    ? 1
                    : options_.observability.slow_query_capacity),
      latency_window_(DefaultLatencyBucketsMs()),
      table_(std::move(table)) {}

CoordinatorService::~CoordinatorService() {
  if (prober_ != nullptr) prober_->Stop();
  // Wait out detached hedge attempts: they touch breakers/pools owned by
  // their pinned snapshot (safe) but also registry-owned metric handles,
  // which must outlive them.
  std::unique_lock<std::mutex> lock(hedge_mutex_);
  hedge_drained_.wait(lock, [this] { return inflight_hedge_attempts_ == 0; });
}

std::shared_ptr<const CoordinatorService::RoutingTable>
CoordinatorService::Table() const {
  std::lock_guard<std::mutex> lock(table_mutex_);
  return table_;
}

uint64_t CoordinatorService::map_epoch() const { return Table()->epoch; }

int CoordinatorService::num_shards() const {
  return Table()->router.num_shards();
}

StatusOr<std::shared_ptr<const CoordinatorService::RoutingTable>>
CoordinatorService::BuildRoutingTable(ShardMap map,
                                      const RoutingTable* previous) {
  const uint64_t epoch = map.epoch;
  HMMM_ASSIGN_OR_RETURN(ShardRouter router,
                        ShardRouter::Create(std::move(map)));
  auto find_prior = [previous](
                        const std::string& endpoint) -> const EndpointState* {
    if (previous == nullptr) return nullptr;
    for (const ShardSlot& slot : previous->shards) {
      for (const EndpointState& ep : slot.endpoints) {
        if (ep.endpoint == endpoint) return &ep;
      }
    }
    return nullptr;
  };

  auto table = std::make_shared<RoutingTable>(std::move(router), epoch);
  const int num_shards = table->router.num_shards();
  table->shards.resize(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const ShardMapEntry& entry = table->router.shard(s);
    ShardSlot& slot = table->shards[static_cast<size_t>(s)];
    const MetricLabels shard_labels = {{"shard", std::to_string(s)}};
    slot.latency_ms = registry_.GetHistogram(
        "hmmm_coordinator_shard_latency_ms", shard_labels,
        DefaultLatencyBucketsMs(),
        "Per-shard scatter call latency, including failover attempts");
    slot.errors = registry_.GetCounter(
        "hmmm_coordinator_shard_errors_total", shard_labels,
        "Shard calls that failed on every replica (or as a typed error)");
    const std::vector<std::string> endpoints = entry.all_endpoints();
    slot.endpoints.reserve(endpoints.size());
    for (size_t r = 0; r < endpoints.size(); ++r) {
      EndpointState ep;
      ep.endpoint = endpoints[r];
      QueryClientOptions client_options = options_.client;
      HMMM_RETURN_IF_ERROR(
          ParseEndpoint(ep.endpoint, &client_options.host,
                        &client_options.port));
      // An endpoint carried over from the previous map keeps its warm
      // connection pool and its breaker verdict: a reload must not reset
      // an Open breaker on a still-dead replica.
      const EndpointState* prior = find_prior(ep.endpoint);
      if (prior != nullptr) {
        ep.pool = prior->pool;
        ep.breaker = prior->breaker;
      } else {
        ep.pool = std::make_shared<QueryClientPool>(client_options,
                                                    options_.pool_max_idle);
        ep.breaker = std::make_shared<CircuitBreaker>(options_.breaker);
      }
      const MetricLabels labels = {{"shard", std::to_string(s)},
                                   {"replica", std::to_string(r)}};
      ep.latency_ms = registry_.GetHistogram(
          "hmmm_coordinator_endpoint_latency_ms", labels,
          DefaultLatencyBucketsMs(),
          "Per-endpoint attempt latency, including connect and IO");
      ep.errors = registry_.GetCounter(
          "hmmm_coordinator_endpoint_errors_total", labels,
          "Failed attempts against this endpoint (transport or typed "
          "error)");
      ep.connections_created = registry_.GetGauge(
          "hmmm_coordinator_shard_connections_created", labels,
          "TCP connections opened to this endpoint over the pool's "
          "lifetime");
      slot.endpoints.push_back(std::move(ep));
    }
  }
  return std::shared_ptr<const RoutingTable>(std::move(table));
}

void CoordinatorService::StartProber() {
  if (options_.health_probe_interval.count() <= 0) return;
  HealthProber::Options prober_options;
  prober_options.probe_interval = options_.health_probe_interval;
  prober_options.failures_to_down = options_.health_failures_to_down;
  prober_options.successes_to_up = options_.health_successes_to_up;
  auto lister = [this]() {
    std::vector<std::string> endpoints;
    const auto table = Table();
    for (const ShardSlot& slot : table->shards) {
      for (const EndpointState& ep : slot.endpoints) {
        endpoints.push_back(ep.endpoint);
      }
    }
    return endpoints;
  };
  auto observer = [this](const std::string& endpoint, EndpointHealth health) {
    registry_
        .GetGauge("hmmm_coordinator_endpoint_health",
                  {{"endpoint", endpoint}},
                  "Probed endpoint health (0 up, 1 suspect, 2 down)")
        ->Set(static_cast<double>(static_cast<int>(health)));
  };
  prober_ = std::make_unique<HealthProber>(
      prober_options, std::move(lister),
      MakeHealthRpcProbe(options_.health_probe_timeout), std::move(observer));
  prober_->Start();
}

StatusOr<std::unique_ptr<CoordinatorService>> CoordinatorService::Create(
    ShardMap map, CoordinatorOptions options) {
  std::unique_ptr<CoordinatorService> service(
      new CoordinatorService(nullptr, std::move(options)));
  HMMM_ASSIGN_OR_RETURN(service->table_,
                        service->BuildRoutingTable(std::move(map), nullptr));
  const int num_shards = service->table_->router.num_shards();
  size_t num_endpoints = 0;
  for (const ShardSlot& slot : service->table_->shards) {
    num_endpoints += slot.endpoints.size();
  }

  service->registry_.GetGauge("hmmm_coordinator_shards",
                              "Number of shard ranges in the serving map")
      ->Set(static_cast<double>(num_shards));
  service->registry_.GetGauge(
      "hmmm_coordinator_replica_endpoints",
      "Total replica endpoints across all shard ranges")
      ->Set(static_cast<double>(num_endpoints));
  service->fanouts_total_ = service->registry_.GetCounter(
      "hmmm_coordinator_fanouts_total",
      "Scatter-gather fan-outs executed (all request types)");
  service->queries_degraded_ = service->registry_.GetCounter(
      "hmmm_coordinator_queries_degraded_total",
      "Merged temporal responses marked degraded (shard-side budget or "
      "dead shard)");
  service->dead_shard_results_ = service->registry_.GetCounter(
      "hmmm_coordinator_dead_shard_results_total",
      "Per-shard scatter calls absorbed as degradation instead of failing "
      "the query");
  service->traces_sampled_ = service->registry_.GetCounter(
      "hmmm_coordinator_traces_sampled_total",
      "Temporal queries traced (client-requested or head-sampled)");
  service->failovers_total_ = service->registry_.GetCounter(
      "hmmm_coordinator_failovers_total",
      "Attempts routed to a fallback replica after an earlier replica "
      "failed");
  service->breaker_rejections_ = service->registry_.GetCounter(
      "hmmm_coordinator_breaker_rejections_total",
      "Attempts refused locally because the endpoint's circuit breaker "
      "was open");
  service->hedges_total_ = service->registry_.GetCounter(
      "hmmm_coordinator_hedges_total",
      "Hedged attempts launched against a second replica");
  service->hedge_wins_ = service->registry_.GetCounter(
      "hmmm_coordinator_hedge_wins_total",
      "Hedged attempts that answered before the preferred replica");
  service->train_shard_failures_ = service->registry_.GetCounter(
      "hmmm_coordinator_train_shard_failures_total",
      "Train broadcasts to a replica endpoint that failed");
  service->reloads_total_ = service->registry_.GetCounter(
      "hmmm_coordinator_map_reloads_total",
      "Shard-map hot reloads applied");
  service->reloads_rejected_ = service->registry_.GetCounter(
      "hmmm_coordinator_map_reloads_rejected_total",
      "Shard-map hot reloads refused (stale epoch or invalid map)");
  service->map_epoch_gauge_ = service->registry_.GetGauge(
      "hmmm_coordinator_map_epoch", "Epoch of the live shard map");
  service->map_epoch_gauge_->Set(
      static_cast<double>(service->table_->epoch));
  service->latency_p50_ = service->registry_.GetGauge(
      "hmmm_coordinator_query_latency_p50_ms",
      "Sliding-window median merged temporal query latency");
  service->latency_p99_ = service->registry_.GetGauge(
      "hmmm_coordinator_query_latency_p99_ms",
      "Sliding-window p99 merged temporal query latency");
  service->latency_p999_ = service->registry_.GetGauge(
      "hmmm_coordinator_query_latency_p999_ms",
      "Sliding-window p99.9 merged temporal query latency");

  int fanout_threads = service->options_.fanout_threads;
  if (fanout_threads <= 0) fanout_threads = 2 * num_shards;
  fanout_threads = std::max(2, std::min(fanout_threads, 64));
  service->fanout_pool_ = std::make_unique<ThreadPool>(fanout_threads);
  service->StartProber();
  return service;
}

StatusOr<ReloadShardMapResponse> CoordinatorService::ReloadShardMap(
    const ReloadShardMapRequest& request) {
  HMMM_ASSIGN_OR_RETURN(ShardMap map, DeserializeShardMap(request.map_blob));
  return ApplyShardMap(std::move(map));
}

StatusOr<ReloadShardMapResponse> CoordinatorService::ApplyShardMap(
    ShardMap map) {
  // One lock serializes reloads against each other and against readers;
  // readers only pin a snapshot, so they stall for the build only while a
  // reload is actually in progress.
  std::lock_guard<std::mutex> lock(table_mutex_);
  if (map.epoch <= table_->epoch) {
    reloads_rejected_->Increment();
    return Status::FailedPrecondition(
        "shard map epoch " + std::to_string(map.epoch) +
        " is not newer than the live epoch " + std::to_string(table_->epoch));
  }
  auto built = BuildRoutingTable(std::move(map), table_.get());
  if (!built.ok()) {
    reloads_rejected_->Increment();
    return built.status();
  }
  table_ = *built;
  reloads_total_->Increment();
  map_epoch_gauge_->Set(static_cast<double>(table_->epoch));
  registry_.GetGauge("hmmm_coordinator_shards",
                     "Number of shard ranges in the serving map")
      ->Set(static_cast<double>(table_->router.num_shards()));
  size_t num_endpoints = 0;
  for (const ShardSlot& slot : table_->shards) {
    num_endpoints += slot.endpoints.size();
  }
  registry_.GetGauge("hmmm_coordinator_replica_endpoints",
                     "Total replica endpoints across all shard ranges")
      ->Set(static_cast<double>(num_endpoints));
  HMMM_LOG(Info) << "shard map reloaded: epoch " << table_->epoch << ", "
                 << table_->router.num_shards() << " shards, "
                 << num_endpoints << " endpoints";
  ReloadShardMapResponse response;
  response.epoch = table_->epoch;
  response.num_shards =
      static_cast<uint32_t>(table_->router.num_shards());
  return response;
}

int64_t CoordinatorService::ResolveHedgeDelayMs() {
  const int64_t configured = options_.hedge_delay_ms;
  if (configured < 0) return -1;
  if (configured > 0) return configured;
  // Adaptive: hedge when the preferred replica is slower than the fleet's
  // recent p99 — by construction ~1% duplicate work in steady state.
  const double p99 = latency_window_.Quantile(0.99);
  return std::max(options_.hedge_min_delay_ms, static_cast<int64_t>(p99));
}

template <typename T>
StatusOr<T> CoordinatorService::AttemptEndpoint(
    const EndpointState& ep,
    const std::function<StatusOr<T>(QueryClient&)>& rpc) {
  const auto start = std::chrono::steady_clock::now();
  StatusOr<T> result = [&] {
    QueryClientPool::Lease lease = ep.pool->Acquire();
    return rpc(*lease);
  }();
  ep.latency_ms->Observe(ElapsedMs(start));
  const auto now = std::chrono::steady_clock::now();
  if (result.ok() || IsQueryError(result.status())) {
    // A typed request-at-fault answer is a live endpoint: the replica
    // parsed, executed and answered.
    ep.breaker->RecordSuccess(now);
  } else {
    ep.breaker->RecordFailure(now);
    ep.errors->Increment();
  }
  return result;
}

template <typename T>
StatusOr<T> CoordinatorService::CallShard(
    const std::shared_ptr<const RoutingTable>& table, int s, bool hedgeable,
    std::function<StatusOr<T>(QueryClient&)> rpc) {
  const ShardSlot& shard = table->shards[static_cast<size_t>(s)];
  std::vector<EndpointHealth> health(shard.endpoints.size(),
                                     EndpointHealth::kUp);
  if (prober_ != nullptr) {
    for (size_t i = 0; i < shard.endpoints.size(); ++i) {
      health[i] = prober_->HealthOf(shard.endpoints[i].endpoint);
    }
  }
  const std::vector<int> order = FailoverOrder(health);

  Status last_error = Status::IOError(
      "every replica of shard " + std::to_string(s) +
      " was refused by its circuit breaker");
  bool attempted = false;

  // Admission is lazy — AllowRequest immediately before the attempt — so
  // a HalfOpen probe slot reserved by AllowRequest is always resolved by
  // the attempt that reserved it.
  size_t pos = 0;
  auto next_admitted = [&]() -> const EndpointState* {
    while (pos < order.size()) {
      const EndpointState& ep =
          shard.endpoints[static_cast<size_t>(order[pos])];
      ++pos;
      if (ep.breaker->AllowRequest(std::chrono::steady_clock::now())) {
        return &ep;
      }
      breaker_rejections_->Increment();
    }
    return nullptr;
  };

  const int64_t hedge_ms = hedgeable ? ResolveHedgeDelayMs() : -1;
  if (hedge_ms >= 0 && shard.endpoints.size() > 1) {
    const EndpointState* first = next_admitted();
    if (first != nullptr) {
      struct Race {
        std::mutex m;
        std::condition_variable cv;
        int done = 0;
        bool have_winner = false;
        int winner = -1;
        StatusOr<T> result{Status::Internal("hedge pending")};
        Status first_error = Status::OK();
      };
      auto race = std::make_shared<Race>();
      // Attempts run on raw threads, not the fan-out pool: a pool-sized
      // wave of hedges blocking on pool-submitted sub-tasks could
      // deadlock the pool against itself.
      auto launch = [this, table, race, rpc](const EndpointState* ep,
                                             int slot) {
        {
          std::lock_guard<std::mutex> lock(hedge_mutex_);
          ++inflight_hedge_attempts_;
        }
        std::thread([this, table, race, rpc, ep, slot] {
          StatusOr<T> result = AttemptEndpoint<T>(*ep, rpc);
          {
            std::lock_guard<std::mutex> lock(race->m);
            ++race->done;
            const bool usable = result.ok() || IsQueryError(result.status());
            if (usable && !race->have_winner) {
              race->have_winner = true;
              race->winner = slot;
              race->result = std::move(result);
            } else if (!usable && race->first_error.ok()) {
              race->first_error = result.status();
            }
            race->cv.notify_all();
          }
          // Last touch of `this`: the destructor waits on this count
          // under the same lock, so notifying inside it keeps the
          // wake-up ordered before destruction.
          std::lock_guard<std::mutex> lock(hedge_mutex_);
          --inflight_hedge_attempts_;
          hedge_drained_.notify_all();
        }).detach();
      };
      launch(first, 0);
      int launched = 1;
      std::unique_lock<std::mutex> lock(race->m);
      const bool answered =
          race->cv.wait_for(lock, std::chrono::milliseconds(hedge_ms),
                            [&] { return race->done >= 1; });
      if (!answered) {
        lock.unlock();
        const EndpointState* second = next_admitted();
        if (second != nullptr) {
          hedges_total_->Increment();
          launch(second, 1);
          ++launched;
        }
        lock.lock();
      }
      race->cv.wait(
          lock, [&] { return race->have_winner || race->done >= launched; });
      if (race->have_winner) {
        if (race->winner == 1) hedge_wins_->Increment();
        return std::move(race->result);
      }
      if (!race->first_error.ok()) last_error = race->first_error;
      attempted = true;
      // Fall through to sequential failover over the remaining replicas.
    }
  }

  for (const EndpointState* ep = next_admitted(); ep != nullptr;
       ep = next_admitted()) {
    if (attempted) failovers_total_->Increment();
    attempted = true;
    StatusOr<T> result = AttemptEndpoint<T>(*ep, rpc);
    if (result.ok() || IsQueryError(result.status())) return result;
    last_error = result.status();
  }
  return last_error;
}

template <typename T>
std::vector<StatusOr<T>> CoordinatorService::FanOut(
    const std::shared_ptr<const RoutingTable>& table,
    const std::function<StatusOr<T>(int)>& call_shard,
    std::vector<double>* elapsed_ms_out) {
  fanouts_total_->Increment();
  const int num_shards = table->router.num_shards();
  std::vector<StatusOr<T>> results(
      static_cast<size_t>(num_shards),
      StatusOr<T>(Status::Internal("shard call did not run")));
  if (elapsed_ms_out != nullptr) {
    elapsed_ms_out->assign(static_cast<size_t>(num_shards), 0.0);
  }
  std::vector<std::future<void>> done;
  done.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    done.push_back(fanout_pool_->SubmitWithFuture(
        [s, &table, &call_shard, &results, elapsed_ms_out] {
          const ShardSlot& slot = table->shards[static_cast<size_t>(s)];
          const auto start = std::chrono::steady_clock::now();
          results[static_cast<size_t>(s)] = call_shard(s);
          const double elapsed = ElapsedMs(start);
          slot.latency_ms->Observe(elapsed);
          if (elapsed_ms_out != nullptr) {
            (*elapsed_ms_out)[static_cast<size_t>(s)] = elapsed;
          }
          if (!results[static_cast<size_t>(s)].ok()) slot.errors->Increment();
        }));
  }
  for (auto& future : done) future.get();
  return results;
}

StatusOr<TemporalQueryResponse> CoordinatorService::TemporalQuery(
    const TemporalQueryRequest& request, const CancellationToken* shutdown) {
  (void)shutdown;  // shards bound their own work via the scattered budget;
                   // the front-end server stops admitting during drain.
  const auto start = std::chrono::steady_clock::now();
  const auto table = Table();
  const ShardRouter& router = table->router;
  const int num_shards = router.num_shards();

  // Head-sampling decision for the whole fan-out: want_trace always
  // traces, otherwise the deterministic sampler fires. The context is
  // minted here (the coordinator is the root of the distributed trace)
  // and propagated to every shard.
  const bool sampled = request.want_trace || sampler_.Decide();
  TraceContext context;
  context.trace_id_hi = request.trace_id_hi;
  context.trace_id_lo = request.trace_id_lo;
  context.parent_span_id = request.parent_span_id;
  if (sampled && !context.has_trace_id()) {
    const TraceContext minted = MintTraceContext();
    context.trace_id_hi = minted.trace_id_hi;
    context.trace_id_lo = minted.trace_id_lo;
  }
  const std::string trace_id_hex =
      sampled ? TraceIdHex(context.trace_id_hi, context.trace_id_lo)
              : std::string();

  TemporalQueryRequest shard_request = request;
  // Supersession generations are per-connection state; pooled shard
  // connections are shared across coordinator requests, so a client's
  // generation must not leak downstream.
  shard_request.cancel_generation = 0;
  shard_request.budget_ms = ShardBudgetMs(request.budget_ms, options_);
  shard_request.want_trace = sampled;
  shard_request.trace_id_hi = context.trace_id_hi;
  shard_request.trace_id_lo = context.trace_id_lo;

  // Root and fan-out spans are opened serially before the scatter so
  // their ids are deterministic for a fixed shard map (0 = root,
  // 1..num_shards = fan-out spans in shard order); the workers only
  // close them. Sibling sort_key = shard index keeps the rendered order
  // deterministic too.
  QueryTrace trace;
  int root_span = -1;
  std::vector<int> fanout_spans(static_cast<size_t>(num_shards), -1);
  if (sampled) {
    traces_sampled_->Increment();
    root_span = trace.BeginSpan("coordinator_query");
    trace.AddAttribute(root_span, "trace_id", trace_id_hex);
    if (context.parent_span_id != 0) {
      trace.AddAttribute(root_span, "parent_span_id",
                         std::to_string(context.parent_span_id));
    }
    trace.AddCounter(root_span, "shards",
                     static_cast<uint64_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      const int id = trace.BeginSpan("shard_fanout", root_span, s);
      fanout_spans[static_cast<size_t>(s)] = id;
      trace.AddAttribute(id, "shard", std::to_string(s));
      trace.AddAttribute(id, "endpoint", router.shard(s).endpoint);
      if (shard_request.budget_ms >= 0) {
        trace.AddCounter(id, "budget_ms",
                         static_cast<uint64_t>(shard_request.budget_ms));
      }
    }
  }

  std::vector<double> shard_elapsed_ms;
  auto per_shard = FanOut<TemporalQueryResponse>(
      table,
      [&](int s) -> StatusOr<TemporalQueryResponse> {
        TemporalQueryRequest req = shard_request;
        if (sampled) {
          // Informational parent (assembly grafts by response blob, not
          // by this id): the shard's fan-out span, +1 to keep it
          // nonzero, so shard logs correlate back to the scatter slot.
          req.parent_span_id = static_cast<uint64_t>(
              fanout_spans[static_cast<size_t>(s)] + 1);
        }
        // The rpc owns its request and transport knobs: a hedged loser
        // may still be running it after this stack frame returns.
        const int64_t io_ms = req.budget_ms >= 0
                                  ? req.budget_ms + options_.io_slack_ms
                                  : -1;
        auto rpc = [req, io_ms](QueryClient& client)
            -> StatusOr<TemporalQueryResponse> {
          if (io_ms >= 0) {
            // A hung shard must lose the race against the request's
            // budget: cap transport IO just above the shard's own
            // deadline so the shard's degraded answer normally arrives
            // first.
            client.set_io_timeout(std::chrono::milliseconds(io_ms));
          }
          return client.TemporalQuery(req);
        };
        StatusOr<TemporalQueryResponse> result =
            CallShard<TemporalQueryResponse>(table, s, /*hedgeable=*/true,
                                             std::move(rpc));
        if (sampled) trace.EndSpan(fanout_spans[static_cast<size_t>(s)]);
        return result;
      },
      &shard_elapsed_ms);

  TemporalQueryResponse merged;
  merged.has_stats = request.want_stats;
  std::vector<std::vector<RetrievedPattern>> ranked(per_shard.size());
  std::vector<std::pair<int, std::string>> shard_errors;
  for (int s = 0; s < num_shards; ++s) {
    StatusOr<TemporalQueryResponse>& shard_result =
        per_shard[static_cast<size_t>(s)];
    if (!shard_result.ok()) {
      if (IsQueryError(shard_result.status())) return shard_result.status();
      // Every replica of the range is unreachable/slow/crashed: absorb
      // as degradation. The whole range's catalog share is unscanned
      // from the client's viewpoint.
      merged.degraded = true;
      merged.videos_skipped += router.VideosOwnedBy(s);
      dead_shard_results_->Increment();
      shard_errors.emplace_back(
          s, StatusCodeToString(shard_result.status().code()));
      if (sampled) {
        trace.AddAttribute(fanout_spans[static_cast<size_t>(s)], "error",
                           StatusCodeToString(shard_result.status().code()));
      }
      HMMM_LOG(Error) << "shard " << s << " ("
                      << table->shards[static_cast<size_t>(s)].endpoints.size()
                      << " replicas, primary " << router.shard(s).endpoint
                      << ") failed temporal query on every replica: "
                      << shard_result.status().message()
                      << (sampled ? " trace_id=" + trace_id_hex
                                  : std::string());
      continue;
    }
    TemporalQueryResponse& response = *shard_result;
    merged.degraded = merged.degraded || response.degraded;
    merged.videos_skipped += response.videos_skipped;
    if (request.want_stats && response.has_stats) {
      AccumulateRetrievalStats(response.stats, &merged.stats);
    }
    for (RetrievedPattern& pattern : response.results) {
      pattern.video = router.ToGlobalVideo(s, pattern.video);
      for (ShotId& shot : pattern.shots) {
        shot = router.ToGlobalShot(s, shot);
      }
    }
    ranked[static_cast<size_t>(s)] = std::move(response.results);
  }
  if (request.want_stats) {
    merged.stats.degraded = merged.stats.degraded || merged.degraded;
    merged.stats.videos_skipped =
        std::max(merged.stats.videos_skipped,
                 static_cast<size_t>(merged.videos_skipped));
  }
  merged.results = MergeRankedResults(std::move(ranked), options_.max_results);
  if (merged.degraded) queries_degraded_->Increment();

  if (sampled) {
    trace.AddCounter(root_span, "videos_skipped", merged.videos_skipped);
    trace.AddCounter(root_span, "degraded", merged.degraded ? 1 : 0);
    trace.EndSpan(root_span);
  }
  if (request.want_trace) {
    // Cross-process assembly: each live shard's sub-trace blob is
    // grafted under its fan-out span, with the remote offsets shifted by
    // the fan-out span's own start offset — monotonic clocks only, no
    // clock sync. Shards that answered v1 (no blob) simply contribute no
    // sub-tree. Grafting in shard order keeps the remapped ids
    // deterministic for a fixed shard map.
    std::vector<TraceSpan> assembled = trace.Spans();
    for (int s = 0; s < num_shards; ++s) {
      const StatusOr<TemporalQueryResponse>& shard_result =
          per_shard[static_cast<size_t>(s)];
      if (!shard_result.ok() || shard_result->trace_blob.empty()) continue;
      StatusOr<std::vector<TraceSpan>> sub =
          DeserializeSpans(shard_result->trace_blob);
      if (!sub.ok()) {
        HMMM_LOG(Warning) << "shard " << s
                          << " returned an undecodable trace blob: "
                          << sub.status().message()
                          << " trace_id=" << trace_id_hex;
        continue;
      }
      const int fanout_id = fanout_spans[static_cast<size_t>(s)];
      double base_offset_ms = 0.0;
      for (const TraceSpan& span : assembled) {
        if (span.id == fanout_id) {
          base_offset_ms = span.start_offset_ms;
          break;
        }
      }
      GraftSpans(&assembled, fanout_id, std::move(sub).value(),
                 base_offset_ms);
    }
    merged.trace_jsonl = RenderSpansJsonl(assembled);
    merged.trace_blob = SerializeSpans(assembled);
  }

  const double total_ms = ElapsedMs(start);
  latency_window_.Observe(total_ms);
  latency_p50_->Set(latency_window_.Quantile(0.5));
  latency_p99_->Set(latency_window_.Quantile(0.99));
  latency_p999_->Set(latency_window_.Quantile(0.999));
  if (merged.degraded ||
      total_ms >= options_.observability.slow_query_threshold_ms) {
    SlowQueryEntry entry;
    entry.reason = merged.degraded ? "degraded" : "slow";
    entry.pattern = request.text;
    entry.trace_id = trace_id_hex;
    entry.total_ms = total_ms;
    entry.budget_ms =
        request.budget_ms >= 0 ? static_cast<double>(request.budget_ms) : -1.0;
    entry.degraded = merged.degraded;
    entry.videos_skipped = merged.videos_skipped;
    for (int s = 0; s < num_shards; ++s) {
      entry.shard_latency_ms.emplace_back(
          s, shard_elapsed_ms[static_cast<size_t>(s)]);
    }
    entry.shard_errors = std::move(shard_errors);
    slow_log_.Add(std::move(entry));
  }
  // Even with every replica of every range down the answer is a degraded
  // empty ranking (videos_skipped == total catalog), never a query
  // failure.
  return merged;
}

StatusOr<QbeResponse> CoordinatorService::QueryByExample(
    const QbeRequest& request) {
  const auto table = Table();
  const ShardRouter& router = table->router;
  auto per_shard = FanOut<QbeResponse>(
      table, [&](int s) -> StatusOr<QbeResponse> {
        QbeRequest req = request;
        return CallShard<QbeResponse>(
            table, s, /*hedgeable=*/true,
            [req](QueryClient& client) -> StatusOr<QbeResponse> {
              return client.QueryByExample(req);
            });
      });

  std::vector<std::vector<QbeResult>> ranked(per_shard.size());
  bool any_ok = false;
  Status first_error = Status::OK();
  for (int s = 0; s < router.num_shards(); ++s) {
    StatusOr<QbeResponse>& shard_result = per_shard[static_cast<size_t>(s)];
    if (!shard_result.ok()) {
      if (IsQueryError(shard_result.status())) return shard_result.status();
      if (first_error.ok()) first_error = shard_result.status();
      dead_shard_results_->Increment();
      continue;
    }
    any_ok = true;
    for (QbeResult& result : shard_result->results) {
      result.shot = router.ToGlobalShot(s, result.shot);
    }
    ranked[static_cast<size_t>(s)] = std::move(shard_result->results);
  }
  // QbeResponse has no degraded channel in the frozen wire schema, so a
  // partial gather merges silently; only a total outage surfaces.
  if (!any_ok) return first_error;
  QbeResponse merged;
  merged.results = MergeQbeResults(std::move(ranked), request.max_results);
  return merged;
}

StatusOr<MarkPositiveResponse> CoordinatorService::MarkPositive(
    const MarkPositiveRequest& request) {
  const auto table = Table();
  const ShardRouter& router = table->router;
  const int shard = router.ShardOfVideo(request.pattern.video);
  if (shard < 0) {
    return Status::NotFound("feedback video " +
                            std::to_string(request.pattern.video) +
                            " is not in the shard map");
  }
  MarkPositiveRequest local = request;
  local.pattern.video = router.ToLocalVideo(shard, request.pattern.video);
  for (ShotId& shot : local.pattern.shots) {
    const auto located = router.LocateShot(shot);
    if (located.first != shard) {
      return Status::InvalidArgument(
          "feedback shot " + std::to_string(shot) +
          " is not owned by the pattern's video shard");
    }
    shot = located.second;
  }
  // Feedback must land on every replica of the range or their models
  // diverge and failover stops being byte-identical. Applied serially,
  // primary first; any failure surfaces (the operator re-drives it) even
  // when another replica applied the update.
  const ShardSlot& slot = table->shards[static_cast<size_t>(shard)];
  const auto start = std::chrono::steady_clock::now();
  StatusOr<MarkPositiveResponse> first_response =
      Status::Internal("no replica attempted");
  Status first_failure = Status::OK();
  for (const EndpointState& ep : slot.endpoints) {
    StatusOr<MarkPositiveResponse> result =
        AttemptEndpoint<MarkPositiveResponse>(
            ep, [&local](QueryClient& client) {
              return client.MarkPositive(local);
            });
    if (result.ok()) {
      if (!first_response.ok()) first_response = std::move(result);
    } else if (IsQueryError(result.status())) {
      // Request at fault — identical verdict on every replica; nothing
      // applied anywhere.
      return result.status();
    } else if (first_failure.ok()) {
      first_failure = result.status();
    }
  }
  slot.latency_ms->Observe(ElapsedMs(start));
  if (!first_failure.ok()) {
    slot.errors->Increment();
    return first_failure;
  }
  return first_response;
}

StatusOr<TrainResponse> CoordinatorService::Train() {
  const auto table = Table();
  // Training broadcasts to every replica of every range — replicas hold
  // independent model copies that must stay in lockstep for failover to
  // be byte-identical.
  auto per_shard = FanOut<TrainResponse>(
      table, [&](int s) -> StatusOr<TrainResponse> {
        const ShardSlot& slot = table->shards[static_cast<size_t>(s)];
        TrainResponse acc;
        acc.shards_attempted = 0;
        acc.shards_failed = 0;
        bool any_ok = false;
        Status first_error = Status::OK();
        for (const EndpointState& ep : slot.endpoints) {
          ++acc.shards_attempted;
          StatusOr<TrainResponse> result = AttemptEndpoint<TrainResponse>(
              ep, [](QueryClient& client) { return client.Train(); });
          if (!result.ok()) {
            ++acc.shards_failed;
            train_shard_failures_->Increment();
            if (first_error.ok()) first_error = result.status();
            continue;
          }
          if (!any_ok) {
            // Replicas hold identical models; the first success speaks
            // for the range's training_rounds.
            acc.trained = result->trained;
            acc.training_rounds = result->training_rounds;
          }
          any_ok = true;
        }
        if (!any_ok) return first_error;
        return acc;
      });
  TrainResponse merged;
  merged.shards_attempted = 0;
  merged.shards_failed = 0;
  bool any_ok = false;
  Status first_error = Status::OK();
  for (int s = 0; s < table->router.num_shards(); ++s) {
    StatusOr<TrainResponse>& result = per_shard[static_cast<size_t>(s)];
    const uint32_t replicas = static_cast<uint32_t>(
        table->shards[static_cast<size_t>(s)].endpoints.size());
    if (!result.ok()) {
      // Every replica of the range failed; the whole range counts as
      // attempted and failed.
      merged.shards_attempted += replicas;
      merged.shards_failed += replicas;
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    any_ok = true;
    merged.trained = merged.trained || result->trained;
    merged.training_rounds += result->training_rounds;
    merged.shards_attempted += result->shards_attempted;
    merged.shards_failed += result->shards_failed;
  }
  if (!any_ok) return first_error;
  return merged;
}

StatusOr<MetricsResponse> CoordinatorService::Metrics() {
  const auto table = Table();
  for (size_t s = 0; s < table->shards.size(); ++s) {
    const ShardSlot& slot = table->shards[s];
    for (size_t r = 0; r < slot.endpoints.size(); ++r) {
      const EndpointState& ep = slot.endpoints[r];
      ep.connections_created->Set(
          static_cast<double>(ep.pool->clients_created()));
      const MetricLabels labels = {{"shard", std::to_string(s)},
                                   {"replica", std::to_string(r)}};
      registry_
          .GetGauge("hmmm_coordinator_breaker_state", labels,
                    "Circuit breaker state (0 closed, 1 open, 2 half-open)")
          ->Set(static_cast<double>(static_cast<int>(ep.breaker->state())));
      registry_
          .GetGauge("hmmm_coordinator_breaker_opened", labels,
                    "Times this endpoint's breaker tripped open")
          ->Set(static_cast<double>(ep.breaker->opened_total()));
      registry_
          .GetGauge("hmmm_coordinator_breaker_rejected", labels,
                    "Requests refused by this endpoint's breaker")
          ->Set(static_cast<double>(ep.breaker->rejected_total()));
      registry_
          .GetGauge("hmmm_coordinator_pool_stale_discarded", labels,
                    "Pooled connections dropped at checkout as stale")
          ->Set(static_cast<double>(ep.pool->stale_discarded()));
    }
  }
  // Fleet aggregation: scrape every replica endpoint's machine-readable
  // snapshot and merge into one throwaway registry, labelling each
  // series with its shard range and replica index. Dead endpoints (and
  // v1 servers, whose responses carry no snapshot) just contribute
  // nothing — a scrape never fails.
  using EndpointMetrics = std::vector<std::pair<int, MetricsResponse>>;
  auto per_shard = FanOut<EndpointMetrics>(
      table, [&](int s) -> StatusOr<EndpointMetrics> {
        const ShardSlot& slot = table->shards[static_cast<size_t>(s)];
        EndpointMetrics out;
        for (size_t r = 0; r < slot.endpoints.size(); ++r) {
          StatusOr<MetricsResponse> scraped =
              AttemptEndpoint<MetricsResponse>(
                  slot.endpoints[r],
                  [](QueryClient& client) { return client.Metrics(); });
          if (scraped.ok()) {
            out.emplace_back(static_cast<int>(r), std::move(*scraped));
          }
        }
        return out;
      });
  MetricsRegistry fleet;
  for (int s = 0; s < table->router.num_shards(); ++s) {
    const StatusOr<EndpointMetrics>& shard_result =
        per_shard[static_cast<size_t>(s)];
    if (!shard_result.ok()) continue;
    for (const auto& [r, scraped] : *shard_result) {
      if (scraped.json_snapshot.empty()) continue;
      const Status loaded = fleet.LoadSnapshotJson(
          scraped.json_snapshot, {{"shard", std::to_string(s)},
                                  {"replica", std::to_string(r)}});
      if (!loaded.ok()) {
        HMMM_LOG(Warning) << "shard " << s << " replica " << r
                          << " metrics snapshot rejected: "
                          << loaded.message();
      }
    }
  }
  MetricsResponse response;
  response.prometheus_text =
      registry_.RenderPrometheus() + fleet.RenderPrometheus();
  response.json_snapshot = registry_.SnapshotJson();
  return response;
}

StatusOr<DumpSlowQueriesResponse> CoordinatorService::DumpSlowQueries() {
  DumpSlowQueriesResponse response;
  response.jsonl = slow_log_.DumpJsonl();
  return response;
}

StatusOr<HealthResponse> CoordinatorService::Health() {
  const auto table = Table();
  auto per_shard = FanOut<HealthResponse>(
      table, [&](int s) -> StatusOr<HealthResponse> {
        return CallShard<HealthResponse>(
            table, s, /*hedgeable=*/false,
            [](QueryClient& client) -> StatusOr<HealthResponse> {
              return client.Health();
            });
      });
  HealthResponse merged;
  bool any_ok = false;
  Status first_error = Status::OK();
  for (auto& shard_result : per_shard) {
    if (!shard_result.ok()) {
      if (first_error.ok()) first_error = shard_result.status();
      continue;
    }
    any_ok = true;
    merged.videos += shard_result->videos;
    merged.shots += shard_result->shots;
    merged.annotated_shots += shard_result->annotated_shots;
    merged.model_version += shard_result->model_version;
  }
  if (!any_ok) return first_error;
  return merged;
}

StatusOr<std::unique_ptr<CoordinatorServer>> CoordinatorServer::Create(
    ShardMap map, CoordinatorOptions coordinator_options,
    QueryServerOptions server_options) {
  HMMM_ASSIGN_OR_RETURN(
      std::unique_ptr<CoordinatorService> service,
      CoordinatorService::Create(std::move(map),
                                 std::move(coordinator_options)));
  return std::unique_ptr<CoordinatorServer>(new CoordinatorServer(
      std::move(service), std::move(server_options)));
}

}  // namespace hmmm
