#include "coordinator/circuit_breaker.h"

namespace hmmm {

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

bool CircuitBreaker::AllowRequest(TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ < options_.open_cooldown) {
        ++rejected_total_;
        return false;
      }
      state_ = State::kHalfOpen;
      ++half_opened_total_;
      consecutive_successes_ = 0;
      probes_in_flight_ = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_in_flight_ >= options_.half_open_max_probes) {
        ++rejected_total_;
        return false;
      }
      ++probes_in_flight_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(TimePoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    if (probes_in_flight_ > 0) --probes_in_flight_;
    if (++consecutive_successes_ >= options_.success_threshold) {
      state_ = State::kClosed;
      ++closed_total_;
      consecutive_successes_ = 0;
    }
  }
}

void CircuitBreaker::RecordFailure(TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TransitionToOpen(now);
      }
      break;
    case State::kHalfOpen:
      // One failed probe is enough evidence: back to Open, cooldown
      // restarts from now.
      if (probes_in_flight_ > 0) --probes_in_flight_;
      TransitionToOpen(now);
      break;
    case State::kOpen:
      // A late failure from a request admitted before the trip; the
      // cooldown clock is not restarted for it.
      break;
  }
}

void CircuitBreaker::TransitionToOpen(TimePoint now) {
  state_ = State::kOpen;
  opened_at_ = now;
  ++opened_total_;
  consecutive_failures_ = 0;
  consecutive_successes_ = 0;
}

}  // namespace hmmm
