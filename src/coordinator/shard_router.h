#ifndef HMMM_COORDINATOR_SHARD_ROUTER_H_
#define HMMM_COORDINATOR_SHARD_ROUTER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "server/shard_map.h"

namespace hmmm {

/// Routing view over a validated ShardMap: O(1) ownership lookups by
/// global video or shot id, and the local <-> global id translations
/// the coordinator applies to every request it scatters and every
/// result it gathers. Immutable after Create; safe to share across
/// fan-out threads.
class ShardRouter {
 public:
  /// Validates the map and builds the inverse indexes.
  static StatusOr<ShardRouter> Create(ShardMap map);

  int num_shards() const { return static_cast<int>(map_.shards.size()); }
  const ShardMap& map() const { return map_; }
  const ShardMapEntry& shard(int index) const {
    return map_.shards[static_cast<size_t>(index)];
  }
  int64_t total_videos() const { return map_.total_videos; }
  int64_t total_shots() const { return map_.total_shots; }

  /// Owning shard of a global video id; -1 when out of range.
  int ShardOfVideo(VideoId global_video) const;
  /// Owning (shard, slice-local ShotId) of a global shot id; {-1, -1}
  /// when out of range.
  std::pair<int, ShotId> LocateShot(ShotId global_shot) const;

  VideoId ToGlobalVideo(int shard, VideoId local_video) const {
    return this->shard(shard).video_begin + local_video;
  }
  VideoId ToLocalVideo(int shard, VideoId global_video) const {
    return global_video - this->shard(shard).video_begin;
  }
  /// Local -> global through the shard's shot map; -1 when the local id
  /// is outside the shard's catalog (a misbehaving shard response).
  ShotId ToGlobalShot(int shard, ShotId local_shot) const;

  /// Catalog share of one shard, in videos — what a dead shard adds to
  /// a degraded response's videos_skipped.
  size_t VideosOwnedBy(int shard) const {
    return static_cast<size_t>(this->shard(shard).num_videos());
  }

 private:
  explicit ShardRouter(ShardMap map) : map_(std::move(map)) {}

  ShardMap map_;
  std::vector<int32_t> video_to_shard_;              // by global VideoId
  std::vector<std::pair<int32_t, int32_t>> shot_to_shard_;  // by global ShotId
};

}  // namespace hmmm

#endif  // HMMM_COORDINATOR_SHARD_ROUTER_H_
