#include "coordinator/shard_router.h"

namespace hmmm {

StatusOr<ShardRouter> ShardRouter::Create(ShardMap map) {
  HMMM_RETURN_IF_ERROR(ValidateShardMap(map));
  ShardRouter router(std::move(map));
  router.video_to_shard_.assign(
      static_cast<size_t>(router.map_.total_videos), -1);
  router.shot_to_shard_.assign(static_cast<size_t>(router.map_.total_shots),
                               {-1, -1});
  for (size_t s = 0; s < router.map_.shards.size(); ++s) {
    const ShardMapEntry& entry = router.map_.shards[s];
    for (VideoId v = entry.video_begin; v < entry.video_end; ++v) {
      router.video_to_shard_[static_cast<size_t>(v)] =
          static_cast<int32_t>(s);
    }
    for (size_t local = 0; local < entry.shot_to_global.size(); ++local) {
      router.shot_to_shard_[static_cast<size_t>(entry.shot_to_global[local])] =
          {static_cast<int32_t>(s), static_cast<int32_t>(local)};
    }
  }
  return router;
}

int ShardRouter::ShardOfVideo(VideoId global_video) const {
  if (global_video < 0 ||
      static_cast<size_t>(global_video) >= video_to_shard_.size()) {
    return -1;
  }
  return video_to_shard_[static_cast<size_t>(global_video)];
}

std::pair<int, ShotId> ShardRouter::LocateShot(ShotId global_shot) const {
  if (global_shot < 0 ||
      static_cast<size_t>(global_shot) >= shot_to_shard_.size()) {
    return {-1, -1};
  }
  const auto& located = shot_to_shard_[static_cast<size_t>(global_shot)];
  return {located.first, located.second};
}

ShotId ShardRouter::ToGlobalShot(int shard, ShotId local_shot) const {
  const ShardMapEntry& entry = this->shard(shard);
  if (local_shot < 0 ||
      static_cast<size_t>(local_shot) >= entry.shot_to_global.size()) {
    return -1;
  }
  return entry.shot_to_global[static_cast<size_t>(local_shot)];
}

}  // namespace hmmm
