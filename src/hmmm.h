#ifndef HMMM_HMMM_H_
#define HMMM_HMMM_H_

/// \file
/// Umbrella header for the HMMM library — the public API surface of this
/// reproduction of "Video Database Modeling and Temporal Pattern Retrieval
/// using Hierarchical Markov Model Mediator" (Zhao, Chen, Shyu; ICDE 2006).
///
/// Typical usage (see examples/quickstart.cc):
///   1. synthesize or ingest an archive into a hmmm::VideoCatalog,
///   2. build the model: hmmm::RetrievalEngine::Create(catalog),
///   3. query: engine.Query("free_kick & goal ; corner_kick"),
///   4. learn: hmmm::FeedbackTrainer + hmmm::SimulatedUser (or real marks).

#include "api/video_database.h"
#include "client/query_client.h"
#include "common/logging.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/affinity.h"
#include "core/category_level.h"
#include "core/generative.h"
#include "core/pattern_mining.h"
#include "core/hierarchical_model.h"
#include "core/learner.h"
#include "core/mmm.h"
#include "core/model_builder.h"
#include "events/decision_tree.h"
#include "events/event_detector.h"
#include "events/knn.h"
#include "events/training.h"
#include "features/extractor.h"
#include "features/feature_schema.h"
#include "features/normalization.h"
#include "feedback/access_log.h"
#include "feedback/simulated_user.h"
#include "feedback/trainer.h"
#include "media/event_types.h"
#include "media/feature_level_generator.h"
#include "media/news_generator.h"
#include "media/soccer_generator.h"
#include "coordinator/coordinator_service.h"
#include "observability/metrics_registry.h"
#include "observability/query_trace.h"
#include "observability/sliding_window.h"
#include "observability/slow_query_log.h"
#include "observability/trace_codec.h"
#include "query/matn.h"
#include "query/parser.h"
#include "query/translator.h"
#include "retrieval/baseline_exhaustive.h"
#include "retrieval/baseline_index.h"
#include "retrieval/engine.h"
#include "retrieval/metrics.h"
#include "retrieval/qbe.h"
#include "retrieval/query_cache.h"
#include "retrieval/three_level.h"
#include "retrieval/query_plan.h"
#include "retrieval/traversal.h"
#include "server/query_server.h"
#include "server/wire_protocol.h"
#include "shots/boundary_detector.h"
#include "snapshot/snapshot_format.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "shots/keyframe.h"
#include "shots/segmenter.h"
#include "storage/catalog.h"
#include "storage/catalog_journal.h"
#include "storage/event_index.h"
#include "storage/model_io.h"
#include "storage/record_log.h"

#endif  // HMMM_HMMM_H_
