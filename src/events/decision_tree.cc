#include "events/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/strings.h"

namespace hmmm {

namespace {

double Gini(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) {
    const double p = c / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeOptions options) : options_(options) {}

Status DecisionTree::Train(const LabeledDataset& dataset) {
  if (dataset.size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (dataset.features.rows() != dataset.labels.size()) {
    return Status::InvalidArgument("dataset shape mismatch");
  }
  nodes_.clear();
  classes_.clear();
  num_features_ = dataset.features.cols();

  // Stable internal class ids in ascending label order.
  std::map<int, int> class_of_label;
  for (int label : dataset.labels) class_of_label.emplace(label, 0);
  for (auto& [label, id] : class_of_label) {
    id = static_cast<int>(classes_.size());
    classes_.push_back(label);
  }
  std::vector<int> class_ids(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    class_ids[i] = class_of_label[dataset.labels[i]];
  }

  std::vector<size_t> indices(dataset.size());
  std::iota(indices.begin(), indices.end(), 0);
  BuildNode(dataset.features, class_ids, indices, 0, indices.size(), 0);
  return Status::OK();
}

int DecisionTree::BuildNode(const Matrix& features,
                            const std::vector<int>& class_ids,
                            std::vector<size_t>& indices, size_t begin,
                            size_t end, int depth) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.depth = depth;
    node.class_counts.assign(classes_.size(), 0.0);
    for (size_t i = begin; i < end; ++i) {
      node.class_counts[static_cast<size_t>(class_ids[indices[i]])] += 1.0;
    }
    node.impurity = Gini(node.class_counts, static_cast<double>(end - begin));
  }

  const auto total = static_cast<double>(end - begin);
  const double node_impurity = nodes_[static_cast<size_t>(node_index)].impurity;
  if (depth >= options_.max_depth || node_impurity <= 0.0 ||
      end - begin < static_cast<size_t>(options_.min_samples_split)) {
    return node_index;
  }

  // Exhaustive best split: for each feature, sort the segment and scan
  // candidate thresholds between distinct consecutive values.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_decrease = options_.min_impurity_decrease;
  std::vector<size_t> segment(indices.begin() + static_cast<ptrdiff_t>(begin),
                              indices.begin() + static_cast<ptrdiff_t>(end));
  for (size_t f = 0; f < num_features_; ++f) {
    std::sort(segment.begin(), segment.end(), [&](size_t a, size_t b) {
      return features.at(a, f) < features.at(b, f);
    });
    std::vector<double> left_counts(classes_.size(), 0.0);
    std::vector<double> right_counts =
        nodes_[static_cast<size_t>(node_index)].class_counts;
    for (size_t i = 0; i + 1 < segment.size(); ++i) {
      const size_t row = segment[i];
      left_counts[static_cast<size_t>(class_ids[row])] += 1.0;
      right_counts[static_cast<size_t>(class_ids[row])] -= 1.0;
      const double v = features.at(row, f);
      const double next_v = features.at(segment[i + 1], f);
      if (next_v <= v) continue;  // not a distinct threshold
      const auto left_n = static_cast<double>(i + 1);
      const double right_n = total - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      const double weighted =
          (left_n / total) * Gini(left_counts, left_n) +
          (right_n / total) * Gini(right_counts, right_n);
      const double decrease = node_impurity - weighted;
      if (decrease > best_decrease) {
        best_decrease = decrease;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (v + next_v);
      }
    }
  }
  if (best_feature < 0) return node_index;

  // Partition the index range in place around the chosen split.
  auto middle = std::partition(
      indices.begin() + static_cast<ptrdiff_t>(begin),
      indices.begin() + static_cast<ptrdiff_t>(end), [&](size_t row) {
        return features.at(row, static_cast<size_t>(best_feature)) <=
               best_threshold;
      });
  const size_t split = static_cast<size_t>(middle - indices.begin());
  if (split == begin || split == end) return node_index;  // degenerate

  const int left = BuildNode(features, class_ids, indices, begin, split,
                             depth + 1);
  const int right = BuildNode(features, class_ids, indices, split, end,
                              depth + 1);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

const DecisionTree::Node& DecisionTree::Walk(
    const std::vector<double>& features) const {
  const Node* node = &nodes_[0];
  while (!node->is_leaf) {
    if (features[static_cast<size_t>(node->feature)] <= node->threshold) {
      node = &nodes_[static_cast<size_t>(node->left)];
    } else {
      node = &nodes_[static_cast<size_t>(node->right)];
    }
  }
  return *node;
}

StatusOr<int> DecisionTree::Predict(const std::vector<double>& features) const {
  if (!trained()) return Status::FailedPrecondition("tree not trained");
  if (features.size() != num_features_) {
    return Status::InvalidArgument(
        StrFormat("feature width %zu != %zu", features.size(), num_features_));
  }
  const Node& leaf = Walk(features);
  size_t best = 0;
  for (size_t c = 1; c < leaf.class_counts.size(); ++c) {
    if (leaf.class_counts[c] > leaf.class_counts[best]) best = c;
  }
  return classes_[best];
}

StatusOr<std::vector<double>> DecisionTree::PredictProba(
    const std::vector<double>& features) const {
  if (!trained()) return Status::FailedPrecondition("tree not trained");
  if (features.size() != num_features_) {
    return Status::InvalidArgument("feature width mismatch");
  }
  const Node& leaf = Walk(features);
  double total = 0.0;
  for (double c : leaf.class_counts) total += c;
  std::vector<double> proba(leaf.class_counts.size(), 0.0);
  if (total > 0.0) {
    for (size_t c = 0; c < proba.size(); ++c) {
      proba[c] = leaf.class_counts[c] / total;
    }
  }
  return proba;
}

int DecisionTree::depth() const {
  int max_depth = 0;
  for (const Node& node : nodes_) max_depth = std::max(max_depth, node.depth);
  return max_depth;
}

std::vector<double> DecisionTree::FeatureImportances() const {
  std::vector<double> importances(num_features_, 0.0);
  for (const Node& node : nodes_) {
    if (node.is_leaf) continue;
    double total = 0.0;
    for (double c : node.class_counts) total += c;
    const Node& left = nodes_[static_cast<size_t>(node.left)];
    const Node& right = nodes_[static_cast<size_t>(node.right)];
    double left_n = 0.0, right_n = 0.0;
    for (double c : left.class_counts) left_n += c;
    for (double c : right.class_counts) right_n += c;
    if (total <= 0.0) continue;
    const double decrease =
        node.impurity - (left_n / total) * left.impurity -
        (right_n / total) * right.impurity;
    importances[static_cast<size_t>(node.feature)] += decrease * total;
  }
  double sum = 0.0;
  for (double v : importances) sum += v;
  if (sum > 0.0) {
    for (double& v : importances) v /= sum;
  }
  return importances;
}

}  // namespace hmmm
