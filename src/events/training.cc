#include "events/training.h"

#include <map>
#include <numeric>

namespace hmmm {

StatusOr<TrainTestSplit> SplitDataset(const LabeledDataset& dataset,
                                      double test_fraction, Rng& rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  if (dataset.size() < 2) {
    return Status::InvalidArgument("dataset too small to split");
  }
  std::vector<size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  const auto test_count = static_cast<size_t>(
      std::max<double>(1.0, test_fraction * static_cast<double>(dataset.size())));
  TrainTestSplit split;
  std::vector<std::vector<double>> train_rows, test_rows;
  for (size_t i = 0; i < order.size(); ++i) {
    const size_t row = order[i];
    if (i < test_count) {
      test_rows.push_back(dataset.features.Row(row));
      split.test.labels.push_back(dataset.labels[row]);
    } else {
      train_rows.push_back(dataset.features.Row(row));
      split.train.labels.push_back(dataset.labels[row]);
    }
  }
  HMMM_ASSIGN_OR_RETURN(split.train.features, Matrix::FromRows(train_rows));
  HMMM_ASSIGN_OR_RETURN(split.test.features, Matrix::FromRows(test_rows));
  return split;
}

double ClassifierMetrics::MacroF1() const {
  double sum = 0.0;
  size_t counted = 0;
  for (const PerClass& pc : per_class) {
    if (pc.support == 0) continue;
    const double denom = pc.precision + pc.recall;
    sum += denom > 0.0 ? 2.0 * pc.precision * pc.recall / denom : 0.0;
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

StatusOr<ClassifierMetrics> EvaluateClassifier(const DecisionTree& tree,
                                               const LabeledDataset& test) {
  if (test.size() == 0) return Status::InvalidArgument("empty test set");
  ClassifierMetrics metrics;
  metrics.examples = test.size();

  std::map<int, size_t> true_counts;     // label -> support
  std::map<int, size_t> predicted_counts;  // label -> #predicted
  std::map<int, size_t> correct_counts;  // label -> #correct
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    HMMM_ASSIGN_OR_RETURN(int predicted, tree.Predict(test.features.Row(i)));
    const int truth = test.labels[i];
    ++true_counts[truth];
    ++predicted_counts[predicted];
    if (predicted == truth) {
      ++correct;
      ++correct_counts[truth];
    }
  }
  metrics.accuracy = static_cast<double>(correct) / static_cast<double>(test.size());
  for (const auto& [label, support] : true_counts) {
    ClassifierMetrics::PerClass pc;
    pc.label = label;
    pc.support = support;
    const size_t predicted = predicted_counts.count(label)
                                 ? predicted_counts[label]
                                 : 0;
    const size_t hit = correct_counts.count(label) ? correct_counts[label] : 0;
    pc.precision = predicted > 0
                       ? static_cast<double>(hit) / static_cast<double>(predicted)
                       : 0.0;
    pc.recall = support > 0
                    ? static_cast<double>(hit) / static_cast<double>(support)
                    : 0.0;
    metrics.per_class.push_back(pc);
  }
  return metrics;
}

}  // namespace hmmm
