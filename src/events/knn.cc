#include "events/knn.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace hmmm {

KnnClassifier::KnnClassifier(KnnOptions options) : options_(options) {}

Status KnnClassifier::Train(const LabeledDataset& dataset) {
  if (dataset.size() == 0) return Status::InvalidArgument("empty dataset");
  if (dataset.features.rows() != dataset.labels.size()) {
    return Status::InvalidArgument("dataset shape mismatch");
  }
  if (options_.k < 1) return Status::InvalidArgument("k must be >= 1");
  examples_ = dataset.features;
  labels_ = dataset.labels;

  std::map<int, int> class_of_label;
  for (int label : labels_) class_of_label.emplace(label, 0);
  classes_.clear();
  for (auto& [label, id] : class_of_label) {
    id = static_cast<int>(classes_.size());
    classes_.push_back(label);
  }
  class_ids_.resize(labels_.size());
  for (size_t i = 0; i < labels_.size(); ++i) {
    class_ids_[i] = class_of_label[labels_[i]];
  }
  return Status::OK();
}

StatusOr<std::vector<double>> KnnClassifier::Votes(
    const std::vector<double>& features) const {
  if (!trained()) return Status::FailedPrecondition("classifier not trained");
  if (features.size() != examples_.cols()) {
    return Status::InvalidArgument("feature width mismatch");
  }
  // Squared distances to all examples; partial sort for the k nearest.
  std::vector<std::pair<double, size_t>> distances(labels_.size());
  for (size_t i = 0; i < labels_.size(); ++i) {
    double sum = 0.0;
    for (size_t f = 0; f < features.size(); ++f) {
      const double d = examples_.at(i, f) - features[f];
      sum += d * d;
    }
    distances[i] = {sum, i};
  }
  const size_t k = std::min(static_cast<size_t>(options_.k), labels_.size());
  std::partial_sort(distances.begin(),
                    distances.begin() + static_cast<ptrdiff_t>(k),
                    distances.end());

  std::vector<double> votes(classes_.size(), 0.0);
  for (size_t i = 0; i < k; ++i) {
    const double weight =
        options_.distance_weighted
            ? 1.0 / (std::sqrt(distances[i].first) + 1e-9)
            : 1.0;
    votes[static_cast<size_t>(class_ids_[distances[i].second])] += weight;
  }
  return votes;
}

StatusOr<int> KnnClassifier::Predict(
    const std::vector<double>& features) const {
  HMMM_ASSIGN_OR_RETURN(auto votes, Votes(features));
  size_t best = 0;
  for (size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return classes_[best];
}

StatusOr<std::vector<double>> KnnClassifier::PredictProba(
    const std::vector<double>& features) const {
  HMMM_ASSIGN_OR_RETURN(auto votes, Votes(features));
  double total = 0.0;
  for (double v : votes) total += v;
  if (total > 0.0) {
    for (double& v : votes) v /= total;
  }
  return votes;
}

}  // namespace hmmm
