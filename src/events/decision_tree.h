#ifndef HMMM_EVENTS_DECISION_TREE_H_
#define HMMM_EVENTS_DECISION_TREE_H_

#include <vector>

#include "common/status.h"
#include "events/annotation.h"

namespace hmmm {

/// Training options for the CART decision tree.
struct DecisionTreeOptions {
  int max_depth = 10;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  /// Splits must reduce weighted Gini impurity by at least this much.
  double min_impurity_decrease = 1e-6;
};

/// CART-style multiclass decision tree (Gini impurity, axis-aligned
/// threshold splits). This is the from-scratch stand-in for the
/// decision-tree event-detection framework of the paper's refs [6][7]:
/// trained on Table-1 shot features, it produces the semantic event
/// annotations the HMMM is built from.
class DecisionTree {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {});

  /// Fits the tree. Labels are remapped internally; kBackgroundLabel is a
  /// legal class. Requires a non-empty dataset of consistent shape.
  Status Train(const LabeledDataset& dataset);

  /// Predicted class label (kBackgroundLabel or an EventId).
  StatusOr<int> Predict(const std::vector<double>& features) const;

  /// Class posterior at the reached leaf, indexed by internal class order
  /// given by `classes()`.
  StatusOr<std::vector<double>> PredictProba(
      const std::vector<double>& features) const;

  /// Distinct labels seen in training, in internal order.
  const std::vector<int>& classes() const { return classes_; }

  bool trained() const { return !nodes_.empty(); }
  size_t node_count() const { return nodes_.size(); }
  int depth() const;

  /// Total impurity decrease contributed by each feature, normalized to
  /// sum to 1 (Gini importance).
  std::vector<double> FeatureImportances() const;

 private:
  struct Node {
    bool is_leaf = true;
    int feature = -1;
    double threshold = 0.0;
    int left = -1;   // feature value <= threshold
    int right = -1;  // feature value > threshold
    std::vector<double> class_counts;  // at this node, internal class order
    double impurity = 0.0;
    int depth = 0;
  };

  int BuildNode(const Matrix& features, const std::vector<int>& class_ids,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth);
  const Node& Walk(const std::vector<double>& features) const;

  DecisionTreeOptions options_;
  std::vector<int> classes_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
  size_t num_features_ = 0;
};

}  // namespace hmmm

#endif  // HMMM_EVENTS_DECISION_TREE_H_
