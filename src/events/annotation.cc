#include "events/annotation.h"

#include <cmath>

#include "common/strings.h"

namespace hmmm {

Status LabeledDataset::Validate(int num_events) const {
  if (features.rows() != labels.size()) {
    return Status::InvalidArgument(
        StrFormat("feature rows (%zu) != labels (%zu)", features.rows(),
                  labels.size()));
  }
  for (int label : labels) {
    if (label != kBackgroundLabel && (label < 0 || label >= num_events)) {
      return Status::InvalidArgument(StrFormat("label %d out of range", label));
    }
  }
  return Status::OK();
}

std::vector<std::vector<size_t>> LabeledDataset::IndicesByClass(
    int num_events) const {
  std::vector<std::vector<size_t>> out(static_cast<size_t>(num_events) + 1);
  for (size_t i = 0; i < labels.size(); ++i) {
    const int label = labels[i];
    if (label == kBackgroundLabel) {
      out.back().push_back(i);
    } else if (label >= 0 && label < num_events) {
      out[static_cast<size_t>(label)].push_back(i);
    }
  }
  return out;
}

size_t CleanDataset(LabeledDataset& dataset) {
  const size_t cols = dataset.features.cols();
  Matrix cleaned_features(0, 0);
  std::vector<std::vector<double>> kept_rows;
  std::vector<int> kept_labels;
  for (size_t r = 0; r < dataset.features.rows(); ++r) {
    bool finite = true;
    for (size_t c = 0; c < cols; ++c) {
      if (!std::isfinite(dataset.features.at(r, c))) {
        finite = false;
        break;
      }
    }
    if (finite) {
      kept_rows.push_back(dataset.features.Row(r));
      kept_labels.push_back(dataset.labels[r]);
    }
  }
  const size_t dropped = dataset.labels.size() - kept_labels.size();
  if (dropped > 0) {
    auto rebuilt = Matrix::FromRows(kept_rows);
    dataset.features = rebuilt.ok() ? std::move(rebuilt).value() : Matrix();
    dataset.labels = std::move(kept_labels);
  }
  return dropped;
}

}  // namespace hmmm
