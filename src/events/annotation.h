#ifndef HMMM_EVENTS_ANNOTATION_H_
#define HMMM_EVENTS_ANNOTATION_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "media/event_types.h"

namespace hmmm {

/// Class label used for shots that carry no semantic event.
inline constexpr int kBackgroundLabel = -1;

/// A supervised dataset for the event classifiers: one feature row per
/// example and a class label per row (kBackgroundLabel or an EventId).
struct LabeledDataset {
  Matrix features;          // rows = examples, cols = features
  std::vector<int> labels;  // size == features.rows()

  size_t size() const { return labels.size(); }

  /// Shape consistency + label sanity against `num_events` classes.
  Status Validate(int num_events) const;

  /// Row indices per class, background last; useful for stratified splits.
  std::vector<std::vector<size_t>> IndicesByClass(int num_events) const;
};

/// Removes degenerate examples (non-finite feature values) — the paper's
/// "data cleaning" stage in Fig. 1. Returns the number of rows dropped.
size_t CleanDataset(LabeledDataset& dataset);

}  // namespace hmmm

#endif  // HMMM_EVENTS_ANNOTATION_H_
