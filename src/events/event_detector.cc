#include "events/event_detector.h"

namespace hmmm {

EventDetector::EventDetector(const EventVocabulary& vocabulary,
                             EventDetectorOptions options)
    : vocabulary_(vocabulary), options_(options), tree_(options.tree) {}

Status EventDetector::Train(const LabeledDataset& dataset) {
  HMMM_RETURN_IF_ERROR(
      dataset.Validate(static_cast<int>(vocabulary_.size())));
  LabeledDataset cleaned = dataset;
  CleanDataset(cleaned);
  if (cleaned.size() == 0) {
    return Status::InvalidArgument("no usable examples after cleaning");
  }
  return tree_.Train(cleaned);
}

StatusOr<std::vector<EventId>> EventDetector::Detect(
    const std::vector<double>& features) const {
  HMMM_ASSIGN_OR_RETURN(auto proba, tree_.PredictProba(features));
  const auto& classes = tree_.classes();

  // Pick the most probable non-background class; emit it if it both beats
  // background and clears the confidence gate.
  double background_p = 0.0;
  int best_class = kBackgroundLabel;
  double best_p = 0.0;
  for (size_t c = 0; c < classes.size(); ++c) {
    if (classes[c] == kBackgroundLabel) {
      background_p = proba[c];
    } else if (proba[c] > best_p) {
      best_p = proba[c];
      best_class = classes[c];
    }
  }
  std::vector<EventId> events;
  if (best_class != kBackgroundLabel && best_p >= options_.min_confidence &&
      best_p > background_p) {
    events.push_back(best_class);
  }
  return events;
}

}  // namespace hmmm
