#ifndef HMMM_EVENTS_TRAINING_H_
#define HMMM_EVENTS_TRAINING_H_

#include <vector>

#include "common/rng.h"
#include "events/decision_tree.h"

namespace hmmm {

/// Random split of a dataset into train/test partitions.
struct TrainTestSplit {
  LabeledDataset train;
  LabeledDataset test;
};

/// Shuffles and splits `dataset`; `test_fraction` in (0, 1).
StatusOr<TrainTestSplit> SplitDataset(const LabeledDataset& dataset,
                                      double test_fraction, Rng& rng);

/// Aggregate classifier quality over a labeled test set.
struct ClassifierMetrics {
  double accuracy = 0.0;
  size_t examples = 0;
  /// Per-class precision/recall keyed by the label values that occur.
  struct PerClass {
    int label = 0;
    size_t support = 0;
    double precision = 0.0;
    double recall = 0.0;
  };
  std::vector<PerClass> per_class;

  /// Macro-averaged F1 over classes with support.
  double MacroF1() const;
};

/// Evaluates a trained tree on `test`.
StatusOr<ClassifierMetrics> EvaluateClassifier(const DecisionTree& tree,
                                               const LabeledDataset& test);

}  // namespace hmmm

#endif  // HMMM_EVENTS_TRAINING_H_
