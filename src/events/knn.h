#ifndef HMMM_EVENTS_KNN_H_
#define HMMM_EVENTS_KNN_H_

#include <vector>

#include "events/annotation.h"

namespace hmmm {

/// Options for the k-nearest-neighbour classifier.
struct KnnOptions {
  int k = 5;
  /// Weight votes by inverse distance instead of uniformly.
  bool distance_weighted = true;
};

/// Lazy k-NN classifier over L2 feature distance. The comparison baseline
/// for the decision-tree event detector (the paper's refs [6][7] evaluate
/// rule/tree-based detection; k-NN is the standard instance-based
/// alternative): no training cost, higher per-query cost, often similar
/// accuracy on well-separated features.
class KnnClassifier {
 public:
  explicit KnnClassifier(KnnOptions options = {});

  /// Stores the dataset (labels may include kBackgroundLabel).
  Status Train(const LabeledDataset& dataset);

  /// Majority / distance-weighted vote among the k nearest neighbours.
  StatusOr<int> Predict(const std::vector<double>& features) const;

  /// Vote distribution over `classes()` at the query point.
  StatusOr<std::vector<double>> PredictProba(
      const std::vector<double>& features) const;

  /// Distinct labels seen in training, ascending.
  const std::vector<int>& classes() const { return classes_; }
  bool trained() const { return !labels_.empty(); }
  size_t size() const { return labels_.size(); }

 private:
  StatusOr<std::vector<double>> Votes(
      const std::vector<double>& features) const;

  KnnOptions options_;
  Matrix examples_;
  std::vector<int> labels_;        // per example
  std::vector<int> class_ids_;     // per example, index into classes_
  std::vector<int> classes_;
};

}  // namespace hmmm

#endif  // HMMM_EVENTS_KNN_H_
