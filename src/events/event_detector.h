#ifndef HMMM_EVENTS_EVENT_DETECTOR_H_
#define HMMM_EVENTS_EVENT_DETECTOR_H_

#include <vector>

#include "events/decision_tree.h"
#include "media/event_types.h"

namespace hmmm {

/// Options for the shot-level event detector.
struct EventDetectorOptions {
  DecisionTreeOptions tree;
  /// Minimum leaf posterior for a non-background class to be emitted as a
  /// detection.
  double min_confidence = 0.5;
};

/// Shot-level semantic event detector: a multiclass decision tree over the
/// Table-1 features, with a confidence gate. Mirrors the role of the
/// authors' multimodal data-mining detectors (refs [6][7]) in Fig. 1 —
/// producing the event annotations the HMMM is then built from.
class EventDetector {
 public:
  explicit EventDetector(const EventVocabulary& vocabulary,
                         EventDetectorOptions options = {});

  /// Trains on labeled shots (label kBackgroundLabel = no event).
  Status Train(const LabeledDataset& dataset);

  /// Detected events for one shot's features: empty (background), or the
  /// single most probable event above the confidence gate.
  StatusOr<std::vector<EventId>> Detect(
      const std::vector<double>& features) const;

  const EventVocabulary& vocabulary() const { return vocabulary_; }
  const DecisionTree& tree() const { return tree_; }
  bool trained() const { return tree_.trained(); }

 private:
  EventVocabulary vocabulary_;
  EventDetectorOptions options_;
  DecisionTree tree_;
};

}  // namespace hmmm

#endif  // HMMM_EVENTS_EVENT_DETECTOR_H_
