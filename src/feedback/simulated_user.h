#ifndef HMMM_FEEDBACK_SIMULATED_USER_H_
#define HMMM_FEEDBACK_SIMULATED_USER_H_

#include <vector>

#include "common/rng.h"
#include "query/translator.h"
#include "retrieval/result.h"
#include "storage/catalog.h"

namespace hmmm {

/// Options for the simulated relevance-feedback user.
struct SimulatedUserOptions {
  uint64_t seed = 42;
  /// The user inspects at most this many top-ranked results per query
  /// (Fig. 5's result panel shows a top-k page).
  size_t inspect_top_k = 10;
  /// Probability of flipping any single judgment (annotator noise).
  double judgment_noise = 0.0;
};

/// Stand-in for the human in the paper's feedback loop (Fig. 5's drop-down
/// "mark as preferred"). The oracle judgment is annotation ground truth:
/// a retrieved pattern is positive when each of its shots carries the
/// events its step demands; optional noise flips judgments.
class SimulatedUser {
 public:
  /// The catalog must outlive the user.
  explicit SimulatedUser(const VideoCatalog& catalog,
                         SimulatedUserOptions options = {});

  /// Returns the indices (into `results`) of patterns the user marks
  /// "Positive" for this query.
  std::vector<size_t> JudgePositive(
      const TemporalPattern& pattern,
      const std::vector<RetrievedPattern>& results);

 private:
  const VideoCatalog& catalog_;
  SimulatedUserOptions options_;
  Rng rng_;
};

}  // namespace hmmm

#endif  // HMMM_FEEDBACK_SIMULATED_USER_H_
