#include "feedback/simulated_user.h"

#include <algorithm>

#include "retrieval/metrics.h"

namespace hmmm {

SimulatedUser::SimulatedUser(const VideoCatalog& catalog,
                             SimulatedUserOptions options)
    : catalog_(catalog), options_(options), rng_(options.seed) {}

std::vector<size_t> SimulatedUser::JudgePositive(
    const TemporalPattern& pattern,
    const std::vector<RetrievedPattern>& results) {
  std::vector<size_t> positives;
  const size_t inspected = std::min(options_.inspect_top_k, results.size());
  for (size_t i = 0; i < inspected; ++i) {
    bool relevant =
        PatternMatchesAnnotations(catalog_, results[i].shots, pattern);
    if (options_.judgment_noise > 0.0 &&
        rng_.NextBernoulli(options_.judgment_noise)) {
      relevant = !relevant;
    }
    if (relevant) positives.push_back(i);
  }
  return positives;
}

}  // namespace hmmm
