#include "feedback/access_log.h"

namespace hmmm {

namespace {

void RecordInto(std::vector<AccessPattern>& patterns,
                const std::vector<int>& states, double access_count) {
  for (AccessPattern& existing : patterns) {
    if (existing.states == states) {
      existing.access_count += access_count;
      return;
    }
  }
  patterns.push_back(AccessPattern{states, access_count});
}

}  // namespace

void AccessLog::RecordShotPattern(const std::vector<int>& global_states,
                                  double access_count) {
  if (global_states.empty() || access_count <= 0.0) return;
  RecordInto(shot_patterns_, global_states, access_count);
  ++feedback_events_;
}

void AccessLog::RecordVideoAccess(const std::vector<VideoId>& videos,
                                  double access_count) {
  if (videos.empty() || access_count <= 0.0) return;
  std::vector<int> states(videos.begin(), videos.end());
  RecordInto(video_patterns_, states, access_count);
}

void AccessLog::Clear() {
  shot_patterns_.clear();
  video_patterns_.clear();
  feedback_events_ = 0;
}

}  // namespace hmmm
