#ifndef HMMM_FEEDBACK_TRAINER_H_
#define HMMM_FEEDBACK_TRAINER_H_

#include "core/learner.h"
#include "feedback/access_log.h"
#include "observability/metrics_registry.h"
#include "retrieval/result.h"

namespace hmmm {

/// Options for the feedback-driven retraining loop.
struct FeedbackTrainerOptions {
  /// Retraining triggers automatically once this many feedback events are
  /// pending ("once the number of newly achieved feedbacks reaches a
  /// certain threshold, the update of the A1 matrix can be triggered").
  size_t retrain_threshold = 10;
  /// Also re-learn P12 / B1' (Eqs. 10-11) at each retraining round.
  bool relearn_feature_weights = false;
  PiSemantics pi_semantics = PiSemantics::kInitialStateCounts;
};

/// Drives the paper's feedback loop: positive marks are appended to an
/// AccessLog; once the threshold is crossed (or on demand) the offline
/// learner folds them into A1/Pi1/A2/Pi2 and clears the log.
class FeedbackTrainer {
 public:
  /// The catalog must outlive the trainer.
  explicit FeedbackTrainer(const VideoCatalog& catalog,
                           FeedbackTrainerOptions options = {});

  /// Registers feedback metrics (marks, training rounds, A1/A2 update
  /// magnitude histogram, model-version gauge) in `registry`, which must
  /// outlive the trainer. When attached, each training round additionally
  /// snapshots A2 and the local A1 matrices to record the L1 magnitude of
  /// the affinity update; unattached trainers skip that cost entirely.
  void AttachMetrics(MetricsRegistry* registry);

  /// Marks one retrieved pattern as "Positive". Records the shot-level
  /// pattern (as global states of `model`) and the video-level co-access
  /// of the videos it touches.
  Status MarkPositive(const HierarchicalModel& model,
                      const RetrievedPattern& pattern);

  /// Runs offline retraining if the threshold is reached (or `force`).
  /// Returns true when a retraining round actually ran.
  StatusOr<bool> MaybeTrain(HierarchicalModel& model, bool force = false);

  const AccessLog& log() const { return log_; }
  size_t rounds_trained() const { return rounds_trained_; }

 private:
  const VideoCatalog& catalog_;
  FeedbackTrainerOptions options_;
  AccessLog log_;
  size_t rounds_trained_ = 0;
  // Null until AttachMetrics; pointers into the attached registry.
  Counter* marks_metric_ = nullptr;
  Counter* rounds_metric_ = nullptr;
  Histogram* update_magnitude_metric_ = nullptr;
  Gauge* model_version_metric_ = nullptr;
};

}  // namespace hmmm

#endif  // HMMM_FEEDBACK_TRAINER_H_
