#ifndef HMMM_FEEDBACK_ACCESS_LOG_H_
#define HMMM_FEEDBACK_ACCESS_LOG_H_

#include <vector>

#include "core/affinity.h"
#include "storage/catalog.h"

namespace hmmm {

/// Accumulates positive user access patterns between offline retraining
/// rounds (Section 4.2.1.1: "the training system can only record all the
/// user access patterns and access frequencies during a training period,
/// instead of updating the A1 matrix online every time"). Shot-level
/// patterns use *global state indices*; video-level patterns use VideoIds.
class AccessLog {
 public:
  AccessLog() = default;

  /// Records a positive shot-level pattern. If an identical state sequence
  /// was recorded before, its access count is incremented instead
  /// (access_k in Eq. 1).
  void RecordShotPattern(const std::vector<int>& global_states,
                         double access_count = 1.0);

  /// Records a video-level co-access (use_2 / access_2 of Eq. 5).
  void RecordVideoAccess(const std::vector<VideoId>& videos,
                         double access_count = 1.0);

  const std::vector<AccessPattern>& shot_patterns() const {
    return shot_patterns_;
  }
  const std::vector<AccessPattern>& video_patterns() const {
    return video_patterns_;
  }

  /// Number of distinct positive shot patterns recorded (q in Eq. 1).
  size_t num_shot_patterns() const { return shot_patterns_.size(); }
  /// Total feedback events recorded since the last Clear().
  size_t num_feedback_events() const { return feedback_events_; }

  void Clear();

 private:
  std::vector<AccessPattern> shot_patterns_;
  std::vector<AccessPattern> video_patterns_;
  size_t feedback_events_ = 0;
};

}  // namespace hmmm

#endif  // HMMM_FEEDBACK_ACCESS_LOG_H_
