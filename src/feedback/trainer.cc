#include "feedback/trainer.h"

#include <algorithm>

#include "common/strings.h"

namespace hmmm {

FeedbackTrainer::FeedbackTrainer(const VideoCatalog& catalog,
                                 FeedbackTrainerOptions options)
    : catalog_(catalog), options_(options) {}

Status FeedbackTrainer::MarkPositive(const HierarchicalModel& model,
                                     const RetrievedPattern& pattern) {
  if (pattern.shots.empty()) {
    return Status::InvalidArgument("empty pattern marked positive");
  }
  std::vector<int> states;
  std::vector<VideoId> videos;
  states.reserve(pattern.shots.size());
  for (ShotId shot : pattern.shots) {
    const int state = model.GlobalStateOf(shot);
    if (state < 0) {
      return Status::InvalidArgument(
          StrFormat("shot %d is not an HMMM state", shot));
    }
    states.push_back(state);
    const VideoId video = catalog_.shot(shot).video_id;
    if (std::find(videos.begin(), videos.end(), video) == videos.end()) {
      videos.push_back(video);
    }
  }
  log_.RecordShotPattern(states);
  log_.RecordVideoAccess(videos);
  return Status::OK();
}

StatusOr<bool> FeedbackTrainer::MaybeTrain(HierarchicalModel& model,
                                           bool force) {
  if (!force && log_.num_feedback_events() < options_.retrain_threshold) {
    return false;
  }
  if (log_.num_feedback_events() == 0) return false;

  OfflineLearner learner(OfflineLearnerOptions{options_.pi_semantics});
  HMMM_RETURN_IF_ERROR(learner.ApplyShotPatterns(model, log_.shot_patterns()));
  HMMM_RETURN_IF_ERROR(
      learner.ApplyVideoPatterns(model, log_.video_patterns()));
  if (options_.relearn_feature_weights) {
    HMMM_RETURN_IF_ERROR(learner.RelearnFeatureWeights(model, catalog_));
  }
  log_.Clear();
  ++rounds_trained_;
  return true;
}

}  // namespace hmmm
