#include "feedback/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {
namespace {

/// Flattened snapshot of every affinity matrix the learner rewrites
/// (A2 followed by each local A1), used to measure update magnitude.
std::vector<double> FlattenAffinities(const HierarchicalModel& model) {
  std::vector<double> flat(model.a2().ptr(),
                           model.a2().ptr() + model.a2().size());
  for (const LocalShotModel& local : model.locals()) {
    const double* a1 = local.a1.ptr();
    flat.insert(flat.end(), a1, a1 + local.a1.size());
  }
  return flat;
}

double L1Diff(const std::vector<double>& before,
              const std::vector<double>& after) {
  double sum = 0.0;
  const size_t n = std::min(before.size(), after.size());
  for (size_t i = 0; i < n; ++i) sum += std::fabs(after[i] - before[i]);
  return sum;
}

}  // namespace

FeedbackTrainer::FeedbackTrainer(const VideoCatalog& catalog,
                                 FeedbackTrainerOptions options)
    : catalog_(catalog), options_(options) {}

void FeedbackTrainer::AttachMetrics(MetricsRegistry* registry) {
  HMMM_CHECK(registry != nullptr);
  marks_metric_ = registry->GetCounter("hmmm_feedback_marks_total",
                                       "patterns marked Positive");
  rounds_metric_ = registry->GetCounter("hmmm_feedback_training_rounds_total",
                                        "offline retraining rounds run");
  // Affinity deltas span decades: a single mark nudges a few entries by
  // ~1e-3 while a forced full round can move whole rows.
  update_magnitude_metric_ = registry->GetHistogram(
      "hmmm_feedback_update_magnitude",
      {0.001, 0.01, 0.1, 1.0, 10.0, 100.0},
      "L1 norm of the A1/A2 change per training round");
  model_version_metric_ = registry->GetGauge(
      "hmmm_model_version", "model version counter; bumps on feedback training");
}

Status FeedbackTrainer::MarkPositive(const HierarchicalModel& model,
                                     const RetrievedPattern& pattern) {
  if (pattern.shots.empty()) {
    return Status::InvalidArgument("empty pattern marked positive");
  }
  std::vector<int> states;
  std::vector<VideoId> videos;
  states.reserve(pattern.shots.size());
  for (ShotId shot : pattern.shots) {
    const int state = model.GlobalStateOf(shot);
    if (state < 0) {
      return Status::InvalidArgument(
          StrFormat("shot %d is not an HMMM state", shot));
    }
    states.push_back(state);
    const VideoId video = catalog_.shot(shot).video_id;
    if (std::find(videos.begin(), videos.end(), video) == videos.end()) {
      videos.push_back(video);
    }
  }
  log_.RecordShotPattern(states);
  log_.RecordVideoAccess(videos);
  if (marks_metric_ != nullptr) marks_metric_->Increment();
  return Status::OK();
}

StatusOr<bool> FeedbackTrainer::MaybeTrain(HierarchicalModel& model,
                                           bool force) {
  if (!force && log_.num_feedback_events() < options_.retrain_threshold) {
    return false;
  }
  if (log_.num_feedback_events() == 0) return false;

  // Snapshot the affinity matrices only when someone is listening: the
  // copy is O(model size) and pure observability overhead otherwise.
  std::vector<double> before;
  if (update_magnitude_metric_ != nullptr) before = FlattenAffinities(model);

  OfflineLearner learner(OfflineLearnerOptions{options_.pi_semantics});
  HMMM_RETURN_IF_ERROR(learner.ApplyShotPatterns(model, log_.shot_patterns()));
  HMMM_RETURN_IF_ERROR(
      learner.ApplyVideoPatterns(model, log_.video_patterns()));
  if (options_.relearn_feature_weights) {
    HMMM_RETURN_IF_ERROR(learner.RelearnFeatureWeights(model, catalog_));
  }
  log_.Clear();
  ++rounds_trained_;
  if (rounds_metric_ != nullptr) rounds_metric_->Increment();
  if (update_magnitude_metric_ != nullptr) {
    update_magnitude_metric_->Observe(L1Diff(before, FlattenAffinities(model)));
  }
  if (model_version_metric_ != nullptr) {
    model_version_metric_->Set(static_cast<double>(model.version()));
  }
  return true;
}

}  // namespace hmmm
