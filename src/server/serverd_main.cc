// hmmm_serverd: stand-alone TCP front end for an HMMM video database.
//
// Serve a persisted archive:
//   hmmm_serverd --catalog soccer.catalog --model soccer.model --port 8787
//
// Or spin up a synthetic soccer archive for demos and smoke tests:
//   hmmm_serverd --synthetic --videos 12 --port 0
//
// The daemon prints one machine-readable line once it accepts traffic:
//   LISTENING port=<port>
// and shuts down gracefully (drain, then cooperative cancel) on SIGINT
// or SIGTERM.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "api/video_database.h"
#include "media/feature_level_generator.h"
#include "server/query_server.h"
#include "storage/catalog.h"

namespace {

// Signal handlers may only touch lock-free state; the main thread polls
// this flag and runs the actual (lock-taking) shutdown.
volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int /*signal*/) { g_stop_requested = 1; }

struct ServerdFlags {
  std::string catalog_path;
  std::string model_path;
  std::string snapshot_path;
  std::string snapshot_publish_dir;
  bool snapshot_verify = false;
  bool snapshot_willneed = false;
  bool synthetic = false;
  int videos = 12;
  std::string host = "127.0.0.1";
  int port = 8787;
  int workers = 2;
  int query_threads = 0;  // 0 = hardware concurrency
  int max_concurrent = 0;
  int max_queued = 0;
  int cache_entries = 64;
  double trace_sample_rate = 0.0;
  double slow_query_threshold_ms = 250.0;
  int slow_query_capacity = 128;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--catalog PATH --model PATH | --synthetic [--videos N])\n"
      "          [--snapshot PATH] [--snapshot-verify] [--snapshot-willneed]\n"
      "          [--snapshot-publish-dir DIR]\n"
      "          [--host ADDR] [--port N] [--workers N] [--query-threads N]\n"
      "          [--max-concurrent N] [--max-queued N] [--cache-entries N]\n"
      "          [--trace-sample-rate F] [--slow-query-threshold-ms F]\n"
      "          [--slow-query-capacity N]\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, ServerdFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--catalog") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->catalog_path = value;
    } else if (arg == "--model") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->model_path = value;
    } else if (arg == "--snapshot") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->snapshot_path = value;
    } else if (arg == "--snapshot-publish-dir") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->snapshot_publish_dir = value;
    } else if (arg == "--snapshot-verify") {
      flags->snapshot_verify = true;
    } else if (arg == "--snapshot-willneed") {
      flags->snapshot_willneed = true;
    } else if (arg == "--synthetic") {
      flags->synthetic = true;
    } else if (arg == "--videos") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->videos = std::atoi(value);
    } else if (arg == "--host") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->host = value;
    } else if (arg == "--port") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->port = std::atoi(value);
    } else if (arg == "--workers") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->workers = std::atoi(value);
    } else if (arg == "--query-threads") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->query_threads = std::atoi(value);
    } else if (arg == "--max-concurrent") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->max_concurrent = std::atoi(value);
    } else if (arg == "--max-queued") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->max_queued = std::atoi(value);
    } else if (arg == "--cache-entries") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->cache_entries = std::atoi(value);
    } else if (arg == "--trace-sample-rate") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->trace_sample_rate = std::atof(value);
    } else if (arg == "--slow-query-threshold-ms") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->slow_query_threshold_ms = std::atof(value);
    } else if (arg == "--slow-query-capacity") {
      const char* value = next();
      if (value == nullptr) return false;
      flags->slow_query_capacity = std::atoi(value);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  const bool persisted =
      (!flags->catalog_path.empty() && !flags->model_path.empty()) ||
      !flags->snapshot_path.empty();
  return persisted != flags->synthetic;  // exactly one source
}

hmmm::StatusOr<hmmm::VideoDatabase> OpenDatabase(const ServerdFlags& flags) {
  hmmm::VideoDatabaseOptions options;
  options.traversal.num_threads = flags.query_threads;
  options.admission.max_concurrent = flags.max_concurrent;
  options.admission.max_queued = flags.max_queued;
  options.query_cache_entries =
      flags.cache_entries > 0 ? static_cast<size_t>(flags.cache_entries) : 0;
  if (flags.synthetic) {
    hmmm::FeatureLevelConfig config = hmmm::SoccerFeatureLevelDefaults(1);
    config.num_videos = flags.videos;
    hmmm::FeatureLevelGenerator generator(config);
    HMMM_ASSIGN_OR_RETURN(
        hmmm::VideoCatalog catalog,
        hmmm::VideoCatalog::FromGeneratedCorpus(generator.Generate()));
    return hmmm::VideoDatabase::Create(std::move(catalog), options);
  }
  if (!flags.snapshot_path.empty()) {
    // Snapshot-first cold start: mmap the frozen image; fall back to the
    // blob pair (when given) on any snapshot failure.
    hmmm::SnapshotOptions snapshot_options;
    snapshot_options.verify_section_crcs = flags.snapshot_verify;
    snapshot_options.advise_willneed = flags.snapshot_willneed;
    if (!flags.catalog_path.empty() && !flags.model_path.empty()) {
      return hmmm::VideoDatabase::OpenSnapshotWithFallback(
          flags.snapshot_path, flags.catalog_path, flags.model_path, options,
          snapshot_options);
    }
    return hmmm::VideoDatabase::OpenSnapshot(flags.snapshot_path, options,
                                             snapshot_options);
  }
  return hmmm::VideoDatabase::Open(flags.catalog_path, flags.model_path,
                                   options);
}

}  // namespace

int main(int argc, char** argv) {
  ServerdFlags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage(argv[0]);
    return 2;
  }
  hmmm::StatusOr<hmmm::VideoDatabase> db = OpenDatabase(flags);
  if (!db.ok()) {
    std::fprintf(stderr, "failed to open database: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  hmmm::QueryServiceOptions service_options;
  service_options.trace_sample_rate = flags.trace_sample_rate;
  service_options.slow_query_threshold_ms = flags.slow_query_threshold_ms;
  service_options.snapshot_publish_dir = flags.snapshot_publish_dir;
  if (flags.slow_query_capacity > 0) {
    service_options.slow_query_capacity =
        static_cast<size_t>(flags.slow_query_capacity);
  }
  hmmm::VideoDatabaseService service(&db.value(), service_options);

  hmmm::QueryServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.num_workers = flags.workers;
  hmmm::QueryServer server(&service, server_options);
  const hmmm::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "failed to start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING port=%u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0 && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down\n");
  std::fflush(stdout);
  server.Shutdown();
  return 0;
}
