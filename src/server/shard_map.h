#ifndef HMMM_SERVER_SHARD_MAP_H_
#define HMMM_SERVER_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/catalog_partition.h"
#include "common/status.h"
#include "storage/catalog.h"

namespace hmmm {

/// File-format magic for serialized shard maps (sibling of kCatalogMagic
/// / kModelMagic in storage/model_io.h).
inline constexpr uint32_t kShardMapMagic = 0x484D4D53;  // "SMMH"
/// v1: endpoint + range + shot mapping. v2 adds a replica endpoint list
/// per entry and a map-wide epoch (monotone reload fencing). v1 blobs
/// still load (no replicas, epoch 0).
inline constexpr uint32_t kShardMapVersion = 2;
inline constexpr uint32_t kShardMapMinVersion = 1;

/// One shard's entry in the serving map: which contiguous global video
/// range it owns, how its slice-local ShotIds map back to global ones,
/// and (optionally) where it is reachable. Endpoints are deployment
/// config, not partition output — hmmm_shardctl writes maps with empty
/// endpoints and hmmm_coordd fills them from its --shard flags.
struct ShardMapEntry {
  std::string endpoint;  // primary "host:port", may be empty until deployment
  /// Additional replicas serving the same slice (identical catalog +
  /// model), tried in order after the primary. Failover between them is
  /// ranking-transparent: any replica returns byte-identical slices.
  std::vector<std::string> replica_endpoints;
  VideoId video_begin = 0;
  VideoId video_end = 0;  // global range [video_begin, video_end)
  /// Slice ShotId -> global ShotId, dense over the shard's catalog.
  std::vector<ShotId> shot_to_global;

  int num_videos() const { return video_end - video_begin; }
  /// Primary followed by replicas, in deterministic failover order.
  std::vector<std::string> all_endpoints() const {
    std::vector<std::string> all;
    all.reserve(1 + replica_endpoints.size());
    all.push_back(endpoint);
    all.insert(all.end(), replica_endpoints.begin(), replica_endpoints.end());
    return all;
  }
};

/// The catalog partition of one serving deployment: contiguous,
/// non-overlapping video ranges covering [0, total_videos), with every
/// global shot owned by exactly one shard.
struct ShardMap {
  int64_t total_videos = 0;
  int64_t total_shots = 0;
  /// Monotone map generation. A live coordinator only accepts a reload
  /// whose epoch is strictly greater than the one it is serving.
  uint64_t epoch = 0;
  std::vector<ShardMapEntry> shards;
};

/// Structural validation: at least one shard, ranges contiguous from 0
/// and covering total_videos, every shot id in range and owned exactly
/// once across the map.
Status ValidateShardMap(const ShardMap& map);

/// Builds the serving map for a PartitionForServing result (endpoints
/// left empty).
ShardMap ShardMapFromPartition(const std::vector<CatalogShard>& shards,
                               const VideoCatalog& catalog);

/// Checksummed binary round-trip (WrapChecksummed envelope, same
/// corruption guarantees as the catalog/model codecs). Deserialize
/// validates before returning and accepts any version in
/// [kShardMapMinVersion, kShardMapVersion]. `version` lets tests (and
/// tools talking to old coordinators) emit the legacy layout; writing
/// v1 drops replicas/epoch.
std::string SerializeShardMap(const ShardMap& map,
                              uint32_t version = kShardMapVersion);
StatusOr<ShardMap> DeserializeShardMap(std::string_view data);
Status SaveShardMap(const ShardMap& map, const std::string& path);
StatusOr<ShardMap> LoadShardMap(const std::string& path);

}  // namespace hmmm

#endif  // HMMM_SERVER_SHARD_MAP_H_
