#ifndef HMMM_SERVER_WIRE_PROTOCOL_H_
#define HMMM_SERVER_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "retrieval/qbe.h"
#include "retrieval/result.h"

namespace hmmm {

// The HMMM query wire protocol: versioned, length-prefixed binary frames
// over TCP. Every message — request, response or typed error — is one
// frame:
//
//   offset  size  field
//   0       4     magic 0x484D4D51 ("QMMH" in memory, little-endian)
//   4       2     protocol version (1 or 2)
//   6       2     message type (MessageType)
//   8       4     payload size in bytes
//   12      4     CRC-32C of the payload
//   16      ...   payload (BinaryWriter encoding, little-endian)
//
// Versioning rules: the 16-byte header layout is frozen across all
// versions, so any peer can always frame-align and answer a version it
// does not speak with a typed kUnsupportedVersion error. Payload schemas
// may only change with a version bump; within one version fields are
// append-only.
//
// Version history:
//   v1  initial protocol (PR 5).
//   v2  distributed tracing: TemporalQuery/Qbe requests append a trace
//       context (128-bit trace id, parent span id; the existing
//       want_trace bit doubles as the sampling flag), their responses
//       append a serialized sub-trace blob, MetricsResponse appends a
//       machine-readable registry snapshot, and the DumpSlowQueries
//       message pair is added. A v2 speaker answers each request in the
//       request frame's version, so v1 clients get byte-identical v1
//       service; a client that receives kUnsupportedVersion for its v2
//       frame downgrades the connection to v1 and retries.
//   v3  replication control plane: the ReloadShardMap message pair is
//       added (request carries a serialized SMMH shard-map blob, the
//       response echoes the applied map epoch), and TrainResponse
//       appends per-shard broadcast accounting (shards_attempted /
//       shards_failed) so a coordinator fan-out can report partial
//       training failures instead of masking them.

inline constexpr uint32_t kWireMagic = 0x484D4D51u;
inline constexpr uint16_t kWireProtocolVersion = 3;
/// Oldest version this build still speaks. Frames inside
/// [kWireMinProtocolVersion, kWireProtocolVersion] are served; anything
/// else gets a typed kUnsupportedVersion answer.
inline constexpr uint16_t kWireMinProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Default per-connection frame cap (requests and responses). A header
/// announcing more than the cap is treated as corruption.
inline constexpr uint32_t kDefaultMaxFrameBytes = 8u << 20;

/// Frame tags. Requests are < 128; each success response is request+128;
/// kError answers any request.
enum class MessageType : uint16_t {
  kHealthRequest = 1,
  kTemporalQueryRequest = 2,
  kQbeRequest = 3,
  kMarkPositiveRequest = 4,
  kTrainRequest = 5,
  kMetricsRequest = 6,
  kDumpSlowQueriesRequest = 7,  // v2+
  kReloadShardMapRequest = 8,   // v3+
  kHealthResponse = 129,
  kTemporalQueryResponse = 130,
  kQbeResponse = 131,
  kMarkPositiveResponse = 132,
  kTrainResponse = 133,
  kMetricsResponse = 134,
  kDumpSlowQueriesResponse = 135,  // v2+
  kReloadShardMapResponse = 136,   // v3+
  kErrorResponse = 255,
};

/// True for the request tags.
bool IsRequestType(MessageType type);
/// Stable lowercase label for metrics/logging ("temporal_query", ...).
const char* MessageTypeLabel(MessageType type);

/// Error codes carried by kErrorResponse frames. 1..10 mirror StatusCode
/// one-to-one so library errors round-trip; 100+ are wire-layer errors.
enum class WireError : uint16_t {
  kNone = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kDataLoss = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kIOError = 9,
  kResourceExhausted = 10,
  kBadMagic = 100,
  kBadCrc = 101,
  kFrameTooLarge = 102,
  kUnknownMessageType = 103,
  kUnsupportedVersion = 104,
  kMalformedPayload = 105,
  kSuperseded = 106,     // a newer cancel_generation arrived first
  kShuttingDown = 107,   // server draining; retry elsewhere/later
};

/// Mapping between library StatusCodes and wire error codes (and back).
/// Unknown wire codes map to kInternal so a newer server cannot crash an
/// older client.
WireError WireErrorFromStatus(const Status& status);
Status StatusFromWireError(WireError code, const std::string& message);

/// Errors a client may safely retry: the server did not (and will not)
/// execute the request.
bool WireErrorRetriable(WireError code);

/// Stable lowercase name for metrics/logging ("bad_crc", ...).
const char* WireErrorName(WireError code);

struct FrameHeader {
  uint16_t version = 0;
  MessageType type = MessageType::kErrorResponse;
  uint32_t payload_bytes = 0;
  uint32_t crc32c = 0;
};

/// One ready-to-send frame: header + payload. `version` is the protocol
/// version stamped into the header — encode the payload with the same
/// version.
std::string EncodeFrame(MessageType type, std::string_view payload,
                        uint16_t version = kWireProtocolVersion);

/// Validates the fixed 16-byte prefix (magic, version, length bound).
/// Returns kNone and fills `out` on success. `bytes` must hold at least
/// kFrameHeaderBytes. Versions in [kWireMinProtocolVersion, max_version]
/// pass; others return kUnsupportedVersion after filling `out`, so the
/// caller can still skip the well-framed payload and answer typed.
WireError DecodeFrameHeader(std::string_view bytes, uint32_t max_frame_bytes,
                            FrameHeader* out,
                            uint16_t max_version = kWireProtocolVersion);

/// CRC check of a received payload against its header.
WireError VerifyFramePayload(const FrameHeader& header,
                             std::string_view payload);

// -- Request payloads -----------------------------------------------------

struct TemporalQueryRequest {
  std::string text;
  /// Wall-clock budget the server maps onto TraversalOptions::deadline;
  /// -1 = no deadline. A fired budget returns a degraded (anytime)
  /// ranking, not an error.
  int64_t budget_ms = -1;
  /// Client-supplied cancellation generation, monotone per connection. A
  /// pipelined request whose generation is below the connection's newest
  /// seen generation is answered with kSuperseded instead of executing —
  /// the client replaced it.
  uint64_t cancel_generation = 0;
  bool want_stats = false;
  /// Ask the server to record and return a QueryTrace. Doubles as the
  /// trace-context sampling flag in v2: a sampled hop propagates it
  /// downstream together with the trace id.
  bool want_trace = false;
  /// v2 trace context (ignored by v1 peers; see trace_codec.h). Zero
  /// trace id = unset; a traced server mints one.
  uint64_t trace_id_hi = 0;   // v2+
  uint64_t trace_id_lo = 0;   // v2+
  uint64_t parent_span_id = 0;  // v2+
};

struct QbeRequest {
  std::vector<double> features;
  int32_t max_results = 20;
  bool want_trace = false;      // v2+
  uint64_t trace_id_hi = 0;     // v2+
  uint64_t trace_id_lo = 0;     // v2+
  uint64_t parent_span_id = 0;  // v2+
};

struct MarkPositiveRequest {
  RetrievedPattern pattern;
};

/// ReloadShardMap (v3+): hot-swaps a coordinator's shard map. The blob
/// is a complete serialized SMMH map (SerializeShardMap output); the
/// receiver validates it and rejects the swap unless the new epoch is
/// strictly greater than the epoch it is serving.
struct ReloadShardMapRequest {
  std::string map_blob;
};

// Train / Metrics / Health requests have empty payloads.

// -- Response payloads ----------------------------------------------------

struct TemporalQueryResponse {
  std::vector<RetrievedPattern> results;
  bool degraded = false;
  uint64_t videos_skipped = 0;
  bool has_stats = false;
  RetrievalStats stats;
  /// QueryTrace::RenderJsonl of the serving traversal; empty when the
  /// request did not ask for a trace.
  std::string trace_jsonl;
  /// v2: SerializeSpans() of the same trace — the machine-readable
  /// sub-trace a coordinator grafts into its cross-process tree.
  std::string trace_blob;  // v2+
};

struct QbeResponse {
  std::vector<QbeResult> results;
  std::string trace_blob;  // v2+
};

struct MarkPositiveResponse {
  uint64_t training_rounds = 0;
};

struct TrainResponse {
  bool trained = false;
  uint64_t training_rounds = 0;
  /// v3: per-shard broadcast accounting from a coordinator fan-out.
  /// Standalone servers report 1/0 (or 1/1 on failure — but a failed
  /// standalone Train is an error frame, so in practice 1/0).
  uint32_t shards_attempted = 1;  // v3+
  uint32_t shards_failed = 0;     // v3+
};

struct MetricsResponse {
  std::string prometheus_text;
  /// v2: MetricsRegistry::SnapshotJson() of the same registry, so a
  /// coordinator can merge shard metrics instead of scraping text.
  std::string json_snapshot;  // v2+
};

/// DumpSlowQueries (v2+): request payload is empty; the response carries
/// the server's SlowQueryLog::DumpJsonl(), oldest entry first.
struct DumpSlowQueriesResponse {
  std::string jsonl;
};

/// ReloadShardMap (v3+) success answer: the epoch now being served.
struct ReloadShardMapResponse {
  uint64_t epoch = 0;
  uint32_t num_shards = 0;
};

struct HealthResponse {
  uint64_t videos = 0;
  uint64_t shots = 0;
  uint64_t annotated_shots = 0;
  uint64_t model_version = 0;
  bool draining = false;
};

struct ErrorResponse {
  WireError code = WireError::kInternal;
  bool retriable = false;
  std::string message;
};

// -- Payload codecs -------------------------------------------------------
//
// Encode* returns the payload bytes (frame them with EncodeFrame);
// Decode* returns kDataLoss/kInvalidArgument on truncated or
// out-of-range input — the server answers those with kMalformedPayload.
// Codecs whose schema changed in v2 take the frame's protocol version:
// encoding at v1 stops before the v2 fields, decoding at v1 leaves them
// defaulted.

std::string EncodeTemporalQueryRequest(
    const TemporalQueryRequest& request,
    uint16_t version = kWireProtocolVersion);
StatusOr<TemporalQueryRequest> DecodeTemporalQueryRequest(
    std::string_view payload, uint16_t version = kWireProtocolVersion);

std::string EncodeQbeRequest(const QbeRequest& request,
                             uint16_t version = kWireProtocolVersion);
StatusOr<QbeRequest> DecodeQbeRequest(
    std::string_view payload, uint16_t version = kWireProtocolVersion);

std::string EncodeMarkPositiveRequest(const MarkPositiveRequest& request);
StatusOr<MarkPositiveRequest> DecodeMarkPositiveRequest(
    std::string_view payload);

std::string EncodeReloadShardMapRequest(const ReloadShardMapRequest& request);
StatusOr<ReloadShardMapRequest> DecodeReloadShardMapRequest(
    std::string_view payload);

std::string EncodeTemporalQueryResponse(
    const TemporalQueryResponse& response,
    uint16_t version = kWireProtocolVersion);
StatusOr<TemporalQueryResponse> DecodeTemporalQueryResponse(
    std::string_view payload, uint16_t version = kWireProtocolVersion);

std::string EncodeQbeResponse(const QbeResponse& response,
                              uint16_t version = kWireProtocolVersion);
StatusOr<QbeResponse> DecodeQbeResponse(
    std::string_view payload, uint16_t version = kWireProtocolVersion);

std::string EncodeMarkPositiveResponse(const MarkPositiveResponse& response);
StatusOr<MarkPositiveResponse> DecodeMarkPositiveResponse(
    std::string_view payload);

std::string EncodeTrainResponse(const TrainResponse& response,
                                uint16_t version = kWireProtocolVersion);
StatusOr<TrainResponse> DecodeTrainResponse(
    std::string_view payload, uint16_t version = kWireProtocolVersion);

std::string EncodeMetricsResponse(const MetricsResponse& response,
                                  uint16_t version = kWireProtocolVersion);
StatusOr<MetricsResponse> DecodeMetricsResponse(
    std::string_view payload, uint16_t version = kWireProtocolVersion);

std::string EncodeDumpSlowQueriesResponse(
    const DumpSlowQueriesResponse& response);
StatusOr<DumpSlowQueriesResponse> DecodeDumpSlowQueriesResponse(
    std::string_view payload);

std::string EncodeReloadShardMapResponse(
    const ReloadShardMapResponse& response);
StatusOr<ReloadShardMapResponse> DecodeReloadShardMapResponse(
    std::string_view payload);

std::string EncodeHealthResponse(const HealthResponse& response);
StatusOr<HealthResponse> DecodeHealthResponse(std::string_view payload);

std::string EncodeErrorResponse(const ErrorResponse& response);
StatusOr<ErrorResponse> DecodeErrorResponse(std::string_view payload);

}  // namespace hmmm

#endif  // HMMM_SERVER_WIRE_PROTOCOL_H_
