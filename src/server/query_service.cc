#include "server/query_service.h"

#include <utility>

#include "common/logging.h"
#include "observability/query_trace.h"

namespace hmmm {

VideoDatabaseService::VideoDatabaseService(VideoDatabase* db) : db_(db) {
  HMMM_CHECK(db_ != nullptr);
}

MetricsRegistry& VideoDatabaseService::metrics_registry() {
  return db_->metrics_registry();
}

StatusOr<TemporalQueryResponse> VideoDatabaseService::TemporalQuery(
    const TemporalQueryRequest& request, const CancellationToken* shutdown) {
  QueryControls controls;
  if (request.budget_ms >= 0) {
    controls.deadline =
        DeadlineAfter(std::chrono::milliseconds(request.budget_ms));
  }
  controls.cancellation = shutdown;
  QueryTrace trace;
  if (request.want_trace) controls.trace = &trace;
  RetrievalStats stats;
  HMMM_ASSIGN_OR_RETURN(std::vector<RetrievedPattern> results,
                        db_->Query(request.text, controls, &stats));
  TemporalQueryResponse response;
  response.results = std::move(results);
  response.degraded = stats.degraded;
  response.videos_skipped = stats.videos_skipped;
  response.has_stats = request.want_stats;
  if (request.want_stats) response.stats = stats;
  if (request.want_trace) response.trace_jsonl = trace.RenderJsonl();
  return response;
}

StatusOr<QbeResponse> VideoDatabaseService::QueryByExample(
    const QbeRequest& request) {
  QbeOptions options;
  options.max_results = request.max_results;
  HMMM_ASSIGN_OR_RETURN(std::vector<QbeResult> results,
                        db_->QueryByExample(request.features, options));
  QbeResponse response;
  response.results = std::move(results);
  return response;
}

StatusOr<MarkPositiveResponse> VideoDatabaseService::MarkPositive(
    const MarkPositiveRequest& request) {
  HMMM_RETURN_IF_ERROR(db_->MarkPositive(request.pattern));
  MarkPositiveResponse response;
  response.training_rounds = db_->training_rounds();
  return response;
}

StatusOr<TrainResponse> VideoDatabaseService::Train() {
  HMMM_ASSIGN_OR_RETURN(const bool trained, db_->Train());
  TrainResponse response;
  response.trained = trained;
  response.training_rounds = db_->training_rounds();
  return response;
}

StatusOr<MetricsResponse> VideoDatabaseService::Metrics() {
  MetricsResponse response;
  response.prometheus_text = db_->DumpMetricsPrometheus();
  return response;
}

StatusOr<HealthResponse> VideoDatabaseService::Health() {
  const VideoDatabase::HealthSnapshot health = db_->Health();
  HealthResponse response;
  response.videos = health.videos;
  response.shots = health.shots;
  response.annotated_shots = health.annotated_shots;
  response.model_version = health.model_version;
  return response;
}

}  // namespace hmmm
