#include "server/query_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "observability/query_trace.h"

namespace hmmm {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StatusOr<DumpSlowQueriesResponse> QueryService::DumpSlowQueries() {
  return DumpSlowQueriesResponse{};
}

StatusOr<ReloadShardMapResponse> QueryService::ReloadShardMap(
    const ReloadShardMapRequest&) {
  return Status::Unimplemented("this service does not route a shard map");
}

VideoDatabaseService::VideoDatabaseService(VideoDatabase* db,
                                           QueryServiceOptions options)
    : db_(db),
      options_(options),
      sampler_(options.trace_sample_rate),
      slow_log_(options.slow_query_capacity == 0 ? 1
                                                 : options.slow_query_capacity) {
  HMMM_CHECK(db_ != nullptr);
}

MetricsRegistry& VideoDatabaseService::metrics_registry() {
  return db_->metrics_registry();
}

StatusOr<TemporalQueryResponse> VideoDatabaseService::TemporalQuery(
    const TemporalQueryRequest& request, const CancellationToken* shutdown) {
  // Chaos hook: a fired point stalls this replica long enough for a
  // coordinator's hedge delay to elapse, without failing the request.
  if (HMMM_FAULT_FIRED("service.slow_temporal_query")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  const auto start = std::chrono::steady_clock::now();
  QueryControls controls;
  if (request.budget_ms >= 0) {
    controls.deadline =
        DeadlineAfter(std::chrono::milliseconds(request.budget_ms));
  }
  controls.cancellation = shutdown;

  // want_trace always traces (the caller asked); otherwise the head
  // sampler decides. A sampled hop that arrived without an id mints one.
  const bool sampled = request.want_trace || sampler_.Decide();
  TraceContext context;
  context.trace_id_hi = request.trace_id_hi;
  context.trace_id_lo = request.trace_id_lo;
  context.parent_span_id = request.parent_span_id;
  if (sampled && !context.has_trace_id()) {
    const TraceContext minted = MintTraceContext();
    context.trace_id_hi = minted.trace_id_hi;
    context.trace_id_lo = minted.trace_id_lo;
  }
  const std::string trace_id_hex =
      sampled ? TraceIdHex(context.trace_id_hi, context.trace_id_lo)
              : std::string();

  QueryTrace trace;
  int server_span = -1;
  if (sampled) {
    server_span = trace.BeginSpan("server_query");
    trace.AddAttribute(server_span, "trace_id", trace_id_hex);
    if (context.parent_span_id != 0) {
      trace.AddAttribute(server_span, "parent_span_id",
                         std::to_string(context.parent_span_id));
    }
    controls.trace = &trace;
  }

  RetrievalStats stats;
  StatusOr<std::vector<RetrievedPattern>> results =
      db_->Query(request.text, controls, &stats);
  if (!results.ok()) {
    HMMM_LOG(Error) << "temporal query failed: "
                    << results.status().message()
                    << (sampled ? " trace_id=" + trace_id_hex : "");
    return results.status();
  }
  const double total_ms = ElapsedMs(start);

  if (sampled) {
    trace.AddCounter(server_span, "videos_skipped", stats.videos_skipped);
    trace.AddCounter(server_span, "degraded", stats.degraded ? 1 : 0);
    // The traversal opened its phase spans as roots; adopt them so the
    // request renders as one tree under server_query.
    trace.ReparentRoots(server_span);
    trace.EndSpan(server_span);
  }

  TemporalQueryResponse response;
  response.results = std::move(results).value();
  response.degraded = stats.degraded;
  response.videos_skipped = stats.videos_skipped;
  response.has_stats = request.want_stats;
  if (request.want_stats) response.stats = stats;
  if (request.want_trace) {
    response.trace_jsonl = trace.RenderJsonl();
    response.trace_blob = SerializeSpans(trace.Spans());
  }

  if (stats.degraded || total_ms >= options_.slow_query_threshold_ms) {
    SlowQueryEntry entry;
    entry.reason = stats.degraded ? "degraded" : "slow";
    entry.pattern = request.text;
    entry.trace_id = trace_id_hex;
    entry.total_ms = total_ms;
    entry.budget_ms =
        request.budget_ms >= 0 ? static_cast<double>(request.budget_ms) : -1.0;
    entry.degraded = stats.degraded;
    entry.videos_skipped = stats.videos_skipped;
    slow_log_.Add(std::move(entry));
  }
  return response;
}

StatusOr<QbeResponse> VideoDatabaseService::QueryByExample(
    const QbeRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  QbeOptions options;
  options.max_results = request.max_results;

  const bool sampled = request.want_trace || sampler_.Decide();
  TraceContext context;
  context.trace_id_hi = request.trace_id_hi;
  context.trace_id_lo = request.trace_id_lo;
  context.parent_span_id = request.parent_span_id;
  if (sampled && !context.has_trace_id()) {
    const TraceContext minted = MintTraceContext();
    context.trace_id_hi = minted.trace_id_hi;
    context.trace_id_lo = minted.trace_id_lo;
  }

  QueryTrace trace;
  int server_span = -1;
  if (sampled) {
    server_span = trace.BeginSpan("server_qbe");
    trace.AddAttribute(server_span, "trace_id",
                       TraceIdHex(context.trace_id_hi, context.trace_id_lo));
    if (context.parent_span_id != 0) {
      trace.AddAttribute(server_span, "parent_span_id",
                         std::to_string(context.parent_span_id));
    }
  }

  StatusOr<std::vector<QbeResult>> results =
      db_->QueryByExample(request.features, options);
  if (!results.ok()) {
    HMMM_LOG(Error) << "query-by-example failed: "
                    << results.status().message()
                    << (sampled ? " trace_id=" + TraceIdHex(
                                      context.trace_id_hi, context.trace_id_lo)
                                : "");
    return results.status();
  }

  QbeResponse response;
  response.results = std::move(results).value();
  if (sampled) {
    trace.AddCounter(server_span, "results",
                     static_cast<uint64_t>(response.results.size()));
    trace.EndSpan(server_span);
  }
  if (request.want_trace) {
    response.trace_blob = SerializeSpans(trace.Spans());
  }

  const double total_ms = ElapsedMs(start);
  if (total_ms >= options_.slow_query_threshold_ms) {
    SlowQueryEntry entry;
    entry.reason = "slow";
    entry.pattern = "qbe:" + std::to_string(request.features.size());
    entry.trace_id =
        sampled ? TraceIdHex(context.trace_id_hi, context.trace_id_lo)
                : std::string();
    entry.total_ms = total_ms;
    slow_log_.Add(std::move(entry));
  }
  return response;
}

StatusOr<MarkPositiveResponse> VideoDatabaseService::MarkPositive(
    const MarkPositiveRequest& request) {
  HMMM_RETURN_IF_ERROR(db_->MarkPositive(request.pattern));
  MarkPositiveResponse response;
  response.training_rounds = db_->training_rounds();
  return response;
}

StatusOr<TrainResponse> VideoDatabaseService::Train() {
  HMMM_ASSIGN_OR_RETURN(const bool trained, db_->Train());
  TrainResponse response;
  response.trained = trained;
  response.training_rounds = db_->training_rounds();
  if (trained && !options_.snapshot_publish_dir.empty()) {
    const StatusOr<std::string> published = db_->PublishSnapshot(
        options_.snapshot_publish_dir,
        static_cast<uint64_t>(response.training_rounds));
    if (!published.ok()) {
      HMMM_LOG(Warning) << "snapshot publish after training failed: "
                        << published.status().ToString();
    }
  }
  return response;
}

StatusOr<MetricsResponse> VideoDatabaseService::Metrics() {
  MetricsResponse response;
  response.prometheus_text = db_->DumpMetricsPrometheus();
  response.json_snapshot = db_->metrics_registry().SnapshotJson();
  return response;
}

StatusOr<HealthResponse> VideoDatabaseService::Health() {
  const VideoDatabase::HealthSnapshot health = db_->Health();
  HealthResponse response;
  response.videos = health.videos;
  response.shots = health.shots;
  response.annotated_shots = health.annotated_shots;
  response.model_version = health.model_version;
  return response;
}

StatusOr<DumpSlowQueriesResponse> VideoDatabaseService::DumpSlowQueries() {
  DumpSlowQueriesResponse response;
  response.jsonl = slow_log_.DumpJsonl();
  return response;
}

}  // namespace hmmm
