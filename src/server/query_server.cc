#include "server/query_server.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Human message for a framing error answered just before closing.
const char* FramingErrorMessage(WireError code) {
  switch (code) {
    case WireError::kBadMagic:
      return "frame does not start with the protocol magic";
    case WireError::kBadCrc:
      return "payload checksum mismatch";
    case WireError::kFrameTooLarge:
      return "frame exceeds the server's frame size limit";
    case WireError::kUnsupportedVersion:
      return "unsupported protocol version";
    case WireError::kUnknownMessageType:
      return "unknown request tag";
    default:
      return "malformed frame";
  }
}

/// True when `buffer` holds either one complete frame or a framing error
/// that MaybeDispatch would turn into an answerable job.
bool HasCompleteFrame(const std::string& buffer, uint32_t max_frame_bytes,
                      uint16_t max_version) {
  if (buffer.size() < kFrameHeaderBytes) return false;
  FrameHeader header;
  const WireError error =
      DecodeFrameHeader(buffer, max_frame_bytes, &header, max_version);
  if (error == WireError::kBadMagic || error == WireError::kFrameTooLarge ||
      error == WireError::kUnsupportedVersion) {
    return true;
  }
  return buffer.size() >= kFrameHeaderBytes + header.payload_bytes;
}

}  // namespace

QueryServer::QueryServer(VideoDatabase* db, QueryServerOptions options)
    : owned_service_(std::make_unique<VideoDatabaseService>(db)),
      service_(owned_service_.get()),
      options_(std::move(options)) {
  if (options_.num_workers <= 0) {
    options_.num_workers = ThreadPool::ResolveThreadCount(0);
  }
}

QueryServer::QueryServer(QueryService* service, QueryServerOptions options)
    : service_(service), options_(std::move(options)) {
  HMMM_CHECK(service_ != nullptr);
  if (options_.num_workers <= 0) {
    options_.num_workers = ThreadPool::ResolveThreadCount(0);
  }
}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  HMMM_ASSIGN_OR_RETURN(listener_,
                        TcpListen(options_.host, options_.port));
  HMMM_ASSIGN_OR_RETURN(port_, LocalPort(listener_));
  // Non-blocking listener: a peer that resets between poll() and
  // accept() must not wedge the IO thread.
  HMMM_RETURN_IF_ERROR(SetNonBlocking(listener_.fd(), true));
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError("pipe: failed to create self-wake pipe");
  }
  wake_read_ = Socket(pipe_fds[0]);
  wake_write_ = Socket(pipe_fds[1]);
  HMMM_RETURN_IF_ERROR(SetNonBlocking(wake_read_.fd(), true));
  HMMM_RETURN_IF_ERROR(SetNonBlocking(wake_write_.fd(), true));

  MetricsRegistry& registry = service_->metrics_registry();
  connections_total_ = registry.GetCounter("hmmm_server_connections_total",
                                           "TCP connections accepted");
  connections_open_ =
      registry.GetGauge("hmmm_server_connections_open",
                        "TCP connections currently tracked");
  corrupt_frames_total_ = registry.GetCounter(
      "hmmm_server_corrupt_frames_total",
      "frames rejected for bad magic, bad CRC or an oversized length");
  bytes_read_total_ = registry.GetCounter("hmmm_server_bytes_read_total",
                                          "request bytes read from clients");
  bytes_written_total_ = registry.GetCounter(
      "hmmm_server_bytes_written_total", "response bytes written to clients");
  request_latency_ms_ = registry.GetHistogram(
      "hmmm_server_request_latency_ms", DefaultLatencyBucketsMs(),
      "per-request wall time from dispatch to response written");
  for (uint16_t tag = 1; tag <= 8; ++tag) {
    const auto type = static_cast<MessageType>(tag);
    requests_total_by_type_[tag] = registry.GetCounter(
        "hmmm_server_requests_total", {{"type", MessageTypeLabel(type)}},
        "requests received, by message type");
  }

  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = false;
    stop_io_ = false;
  }
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  HMMM_LOG(Info) << "query server listening on " << options_.host << ":"
                 << port_ << " (" << options_.num_workers << " workers)";
  return Status::OK();
}

void QueryServer::Wake() {
  const char byte = 'w';
  // A full pipe already guarantees a pending wake-up; EAGAIN is fine.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_write_.fd(), &byte, 1);
}

void QueryServer::Shutdown() {
  // One shutdown at a time; later callers wait for the first to finish
  // (the mutex) and then see running_ == false.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  Wake();  // IO thread closes the listener and stops accepting
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool drained =
        drained_.wait_for(lock, options_.drain_timeout,
                          [this] { return busy_connections_ == 0; });
    if (!drained) {
      // Stragglers get cancelled cooperatively: their queries degrade to
      // an anytime prefix and the workers still write well-formed
      // responses before handing their connections back.
      shutdown_token_.Cancel();
    }
    drained_.wait(lock, [this] { return busy_connections_ == 0; });
    stop_io_ = true;
  }
  Wake();
  io_thread_.join();
  workers_.reset();  // joins idle workers
  {
    // Connections that were re-dispatched in the IO loop's final
    // iteration outlive the loop; with the workers joined nothing can
    // touch them anymore, so free them here.
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.clear();
    rearm_queue_.clear();
    if (connections_open_ != nullptr) connections_open_->Set(0);
  }
  wake_read_.Close();
  wake_write_.Close();
  running_.store(false, std::memory_order_release);
  HMMM_LOG(Info) << "query server on port " << port_ << " shut down";
}

void QueryServer::IoLoop() {
  std::vector<pollfd> poll_set;
  std::vector<int> polled_fds;  // connection fds, parallel to the tail
  for (;;) {
    poll_set.clear();
    polled_fds.clear();
    bool include_listener = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_io_) break;
      if (draining_ && listener_.valid()) listener_.Close();
      include_listener = listener_.valid();
      poll_set.push_back({wake_read_.fd(), POLLIN, 0});
      if (include_listener) poll_set.push_back({listener_.fd(), POLLIN, 0});
      for (const auto& [fd, conn] : connections_) {
        if (conn->busy) continue;
        poll_set.push_back({fd, POLLIN, 0});
        polled_fds.push_back(fd);
      }
    }
    const int ready =
        ::poll(poll_set.data(), static_cast<nfds_t>(poll_set.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      HMMM_LOG(Error) << "query server poll failed; stopping IO loop";
      break;
    }
    size_t index = 0;
    if (poll_set[index].revents & POLLIN) {
      char drain[64];
      while (::read(wake_read_.fd(), drain, sizeof(drain)) > 0) {
      }
    }
    ++index;
    if (include_listener) {
      if (poll_set[index].revents & POLLIN) AcceptPending();
      ++index;
    }
    for (size_t i = 0; i < polled_fds.size(); ++i) {
      const pollfd& entry = poll_set[index + i];
      if ((entry.revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const int fd = polled_fds[i];
      Connection* conn = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = connections_.find(fd);
        if (it == connections_.end() || it->second->busy) continue;
        conn = it->second.get();
      }
      if (!ReadAvailable(conn)) {
        EraseConnection(fd);
        continue;
      }
      MaybeDispatch(fd, conn);
    }
    ProcessRearms();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Shutdown can set stop_io_ before this thread ever observes
  // draining_ (nothing was busy, so the drain wait returned at once);
  // close the listener here too, or late connects would sit in the
  // kernel accept backlog forever instead of being refused.
  listener_.Close();
  // Only idle connections can be destroyed here: Shutdown's drain wait
  // can observe busy == 0 and set stop_io_ while this thread is mid
  // iteration dispatching one more buffered batch, so a busy connection
  // may still be in a worker's hands. Those are freed by Shutdown after
  // it joins the worker pool.
  for (auto it = connections_.begin(); it != connections_.end();) {
    it = it->second->busy ? std::next(it) : connections_.erase(it);
  }
  if (connections_open_ != nullptr) {
    connections_open_->Set(static_cast<double>(connections_.size()));
  }
}

void QueryServer::AcceptPending() {
  for (;;) {
    StatusOr<Socket> accepted = Accept(listener_);
    if (!accepted.ok()) break;  // EAGAIN (no more pending) or a dead peer
    connections_total_->Increment();
    if (!SetNonBlocking(accepted->fd(), true).ok()) continue;
    std::lock_guard<std::mutex> lock(mutex_);
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Over the connection cap: the accepted socket closes on scope
      // exit, which the client observes as an immediate disconnect.
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(accepted).value();
    const int fd = conn->socket.fd();
    connections_.emplace(fd, std::move(conn));
    connections_open_->Set(static_cast<double>(connections_.size()));
  }
}

void QueryServer::EraseConnection(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  connections_.erase(fd);
  connections_open_->Set(static_cast<double>(connections_.size()));
}

bool QueryServer::ReadAvailable(Connection* conn) {
  if (HMMM_FAULT_FIRED("server.read")) return false;
  // Backpressure bound: past two frames' worth of unprocessed bytes we
  // stop draining the kernel buffer and let TCP flow control slow the
  // peer down.
  const size_t read_cap =
      2 * (static_cast<size_t>(options_.max_frame_bytes) + kFrameHeaderBytes);
  char chunk[16384];
  for (;;) {
    if (conn->buffer.size() >= read_cap) return true;
    const ssize_t n = ::recv(conn->socket.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->buffer.append(chunk, static_cast<size_t>(n));
      bytes_read_total_->Increment(static_cast<uint64_t>(n));
      continue;
    }
    if (n == 0) {
      // Peer finished sending. Frames already buffered in full still get
      // answered (pipelined requests then close); anything partial dies
      // with the connection.
      if (HasCompleteFrame(conn->buffer, options_.max_frame_bytes,
                           options_.protocol_version)) {
        conn->close_after_flush = true;
        return true;
      }
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

void QueryServer::MaybeDispatch(int fd, Connection* conn) {
  std::vector<FrameJob> jobs;
  while (conn->buffer.size() >= kFrameHeaderBytes) {
    FrameHeader header;
    const WireError header_error =
        DecodeFrameHeader(conn->buffer, options_.max_frame_bytes, &header,
                          options_.protocol_version);
    if (header_error == WireError::kBadMagic ||
        header_error == WireError::kFrameTooLarge ||
        header_error == WireError::kUnsupportedVersion) {
      // The stream cannot be trusted past this point (desynced, about to
      // overflow, or speaking a schema we don't know): answer a typed
      // error, then close.
      if (header_error != WireError::kUnsupportedVersion) {
        corrupt_frames_total_->Increment();
      }
      FrameJob job;
      job.framing_error = header_error;
      jobs.push_back(std::move(job));
      conn->buffer.clear();
      conn->close_after_flush = true;
      break;
    }
    const size_t frame_bytes = kFrameHeaderBytes + header.payload_bytes;
    if (conn->buffer.size() < frame_bytes) break;  // wait for the payload
    std::string payload =
        conn->buffer.substr(kFrameHeaderBytes, header.payload_bytes);
    conn->buffer.erase(0, frame_bytes);
    const WireError payload_error = VerifyFramePayload(header, payload);
    if (payload_error != WireError::kNone) {
      // Framing stayed intact (the length was right) but the bytes are
      // corrupt; close after answering — the peer's link is suspect.
      corrupt_frames_total_->Increment();
      FrameJob job;
      job.framing_error = payload_error;
      jobs.push_back(std::move(job));
      conn->buffer.clear();
      conn->close_after_flush = true;
      break;
    }
    FrameJob job;
    job.type = header.type;
    // The header passed magic/CRC/version checks, so the frame's own
    // version is trusted and the response is stamped with it.
    job.version = header.version;
    if (!IsRequestType(header.type)) {
      // Well-framed but not a request we know: typed error, connection
      // stays usable.
      job.framing_error = WireError::kUnknownMessageType;
    } else {
      job.payload = std::move(payload);
    }
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conn->busy = true;
    ++busy_connections_;
  }
  // shared_ptr keeps the task copyable for std::function.
  auto batch = std::make_shared<std::vector<FrameJob>>(std::move(jobs));
  workers_->Submit([this, fd, conn, batch] {
    ProcessBatch(fd, conn, std::move(*batch));
  });
}

void QueryServer::ProcessRearms() {
  std::deque<int> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending.swap(rearm_queue_);
  }
  for (const int fd : pending) {
    Connection* conn = nullptr;
    bool close_now = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      if (it->second->busy) continue;  // redispatched already; next re-arm
                                       // will revisit
      conn = it->second.get();
      close_now = conn->close_after_flush;
    }
    if (close_now) {
      EraseConnection(fd);
      continue;
    }
    // Pipelined frames may already be buffered past the batch that was
    // just answered.
    MaybeDispatch(fd, conn);
  }
}

void QueryServer::ProcessBatch(int fd, Connection* conn,
                               std::vector<FrameJob> jobs) {
  // Supersession pre-pass: the newest cancel_generation in the batch
  // wins before any request executes, so a stale query queued behind a
  // fresh one is skipped even within one batch.
  for (const FrameJob& job : jobs) {
    if (job.framing_error != WireError::kNone ||
        job.type != MessageType::kTemporalQueryRequest) {
      continue;
    }
    StatusOr<TemporalQueryRequest> decoded =
        DecodeTemporalQueryRequest(job.payload, job.version);
    if (decoded.ok() && decoded->cancel_generation > conn->max_generation) {
      conn->max_generation = decoded->cancel_generation;
    }
  }
  bool write_failed = false;
  for (const FrameJob& job : jobs) {
    const auto start = std::chrono::steady_clock::now();
    const std::string frame = HandleJob(conn, job);
    if (!write_failed) {
      if (HMMM_FAULT_FIRED("server.write")) {
        write_failed = true;
      } else {
        const Status written =
            WriteAll(conn->socket.fd(), frame,
                     DeadlineAfter(options_.write_timeout));
        if (written.ok()) {
          bytes_written_total_->Increment(frame.size());
        } else {
          write_failed = true;
        }
      }
    }
    request_latency_ms_->Observe(ElapsedMs(start));
  }
  if (write_failed) conn->close_after_flush = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conn->busy = false;
    --busy_connections_;
    rearm_queue_.push_back(fd);
  }
  drained_.notify_all();
  Wake();
}

std::string QueryServer::HandleJob(Connection* conn, const FrameJob& job) {
  if (job.framing_error != WireError::kNone) {
    return ErrorFrame(job.framing_error,
                      FramingErrorMessage(job.framing_error), job.version);
  }
  const auto tag = static_cast<uint16_t>(job.type);
  if (tag < requests_total_by_type_.size() &&
      requests_total_by_type_[tag] != nullptr) {
    requests_total_by_type_[tag]->Increment();
  }
  bool draining;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining = draining_;
  }
  switch (job.type) {
    // Health, Metrics and the slow-query dump keep answering during a
    // drain so probes (and a post-incident scrape) can watch the
    // shutdown progress.
    case MessageType::kHealthRequest:
      return HandleHealth(job.version);
    case MessageType::kMetricsRequest:
      return HandleMetrics(job.version);
    case MessageType::kDumpSlowQueriesRequest:
      return HandleDumpSlowQueries(job.version);
    default:
      break;
  }
  if (draining) {
    return ErrorFrame(WireError::kShuttingDown,
                      "server is draining; retry against another replica",
                      job.version);
  }
  switch (job.type) {
    case MessageType::kTemporalQueryRequest:
      return HandleTemporalQuery(conn, job.payload, job.version);
    case MessageType::kQbeRequest:
      return HandleQbe(job.payload, job.version);
    case MessageType::kMarkPositiveRequest:
      return HandleMarkPositive(job.payload, job.version);
    case MessageType::kTrainRequest:
      return HandleTrain(job.version);
    case MessageType::kReloadShardMapRequest:
      return HandleReloadShardMap(job.payload, job.version);
    default:
      return ErrorFrame(WireError::kUnknownMessageType,
                        FramingErrorMessage(WireError::kUnknownMessageType),
                        job.version);
  }
}

std::string QueryServer::HandleTemporalQuery(Connection* conn,
                                             const std::string& payload,
                                             uint16_t version) {
  StatusOr<TemporalQueryRequest> decoded =
      DecodeTemporalQueryRequest(payload, version);
  if (!decoded.ok()) {
    return ErrorFrame(WireError::kMalformedPayload,
                      decoded.status().message(), version);
  }
  const TemporalQueryRequest& request = *decoded;
  if (request.cancel_generation != 0 &&
      request.cancel_generation < conn->max_generation) {
    return ErrorFrame(WireError::kSuperseded,
                      "replaced by a newer request generation", version);
  }
  StatusOr<TemporalQueryResponse> response =
      service_->TemporalQuery(request, &shutdown_token_);
  if (!response.ok()) return StatusErrorFrame(response.status(), version);
  return EncodeFrame(MessageType::kTemporalQueryResponse,
                     EncodeTemporalQueryResponse(*response, version), version);
}

std::string QueryServer::HandleQbe(const std::string& payload,
                                   uint16_t version) {
  StatusOr<QbeRequest> decoded = DecodeQbeRequest(payload, version);
  if (!decoded.ok()) {
    return ErrorFrame(WireError::kMalformedPayload,
                      decoded.status().message(), version);
  }
  StatusOr<QbeResponse> response = service_->QueryByExample(*decoded);
  if (!response.ok()) return StatusErrorFrame(response.status(), version);
  return EncodeFrame(MessageType::kQbeResponse,
                     EncodeQbeResponse(*response, version), version);
}

std::string QueryServer::HandleMarkPositive(const std::string& payload,
                                            uint16_t version) {
  StatusOr<MarkPositiveRequest> decoded = DecodeMarkPositiveRequest(payload);
  if (!decoded.ok()) {
    return ErrorFrame(WireError::kMalformedPayload,
                      decoded.status().message(), version);
  }
  StatusOr<MarkPositiveResponse> response =
      service_->MarkPositive(*decoded);
  if (!response.ok()) return StatusErrorFrame(response.status(), version);
  return EncodeFrame(MessageType::kMarkPositiveResponse,
                     EncodeMarkPositiveResponse(*response), version);
}

std::string QueryServer::HandleTrain(uint16_t version) {
  StatusOr<TrainResponse> response = service_->Train();
  if (!response.ok()) return StatusErrorFrame(response.status(), version);
  return EncodeFrame(MessageType::kTrainResponse,
                     EncodeTrainResponse(*response), version);
}

std::string QueryServer::HandleMetrics(uint16_t version) {
  StatusOr<MetricsResponse> response = service_->Metrics();
  if (!response.ok()) return StatusErrorFrame(response.status(), version);
  return EncodeFrame(MessageType::kMetricsResponse,
                     EncodeMetricsResponse(*response, version), version);
}

std::string QueryServer::HandleHealth(uint16_t version) {
  StatusOr<HealthResponse> health = service_->Health();
  if (!health.ok()) return StatusErrorFrame(health.status(), version);
  HealthResponse response = std::move(health).value();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    response.draining = draining_;
  }
  return EncodeFrame(MessageType::kHealthResponse,
                     EncodeHealthResponse(response), version);
}

std::string QueryServer::HandleDumpSlowQueries(uint16_t version) {
  StatusOr<DumpSlowQueriesResponse> response = service_->DumpSlowQueries();
  if (!response.ok()) return StatusErrorFrame(response.status(), version);
  return EncodeFrame(MessageType::kDumpSlowQueriesResponse,
                     EncodeDumpSlowQueriesResponse(*response), version);
}

std::string QueryServer::HandleReloadShardMap(const std::string& payload,
                                              uint16_t version) {
  StatusOr<ReloadShardMapRequest> decoded =
      DecodeReloadShardMapRequest(payload);
  if (!decoded.ok()) {
    return ErrorFrame(WireError::kMalformedPayload,
                      decoded.status().message(), version);
  }
  StatusOr<ReloadShardMapResponse> response =
      service_->ReloadShardMap(*decoded);
  if (!response.ok()) return StatusErrorFrame(response.status(), version);
  return EncodeFrame(MessageType::kReloadShardMapResponse,
                     EncodeReloadShardMapResponse(*response), version);
}

std::string QueryServer::ErrorFrame(WireError code,
                                    const std::string& message,
                                    uint16_t version) {
  service_->metrics_registry()
      .GetCounter("hmmm_server_errors_total",
                  {{"code", WireErrorName(code)}},
                  "typed error responses, by wire error code")
      ->Increment();
  ErrorResponse response;
  response.code = code;
  response.retriable = WireErrorRetriable(code);
  response.message = message;
  return EncodeFrame(MessageType::kErrorResponse,
                     EncodeErrorResponse(response), version);
}

std::string QueryServer::StatusErrorFrame(const Status& status,
                                          uint16_t version) {
  return ErrorFrame(WireErrorFromStatus(status), status.message(), version);
}

}  // namespace hmmm
