#include "server/wire_protocol.h"

#include "common/crc32.h"
#include "common/serialization.h"
#include "common/strings.h"

namespace hmmm {
namespace {

/// Guard against absurd vector lengths in decoded payloads: the frame
/// cap already bounds the byte count, but a corrupted varint length
/// could still demand a huge allocation before the element reads fail.
constexpr uint64_t kMaxWireElements = 1u << 24;

Status CheckCount(uint64_t count, const char* what) {
  if (count > kMaxWireElements) {
    return Status::InvalidArgument(
        StrFormat("%s count %llu exceeds wire bound", what,
                  static_cast<unsigned long long>(count)));
  }
  return Status::OK();
}

void EncodeRetrievedPattern(BinaryWriter& writer,
                            const RetrievedPattern& pattern) {
  writer.WriteInt32Vector(pattern.shots);
  writer.WriteDoubleVector(pattern.edge_weights);
  writer.WriteDouble(pattern.score);
  writer.WriteInt32(pattern.video);
  writer.WriteUint8(pattern.crosses_videos ? 1 : 0);
}

StatusOr<RetrievedPattern> DecodeRetrievedPattern(BinaryReader& reader) {
  RetrievedPattern pattern;
  HMMM_ASSIGN_OR_RETURN(pattern.shots, reader.ReadInt32Vector());
  HMMM_ASSIGN_OR_RETURN(pattern.edge_weights, reader.ReadDoubleVector());
  HMMM_ASSIGN_OR_RETURN(pattern.score, reader.ReadDouble());
  HMMM_ASSIGN_OR_RETURN(pattern.video, reader.ReadInt32());
  HMMM_ASSIGN_OR_RETURN(const uint8_t crosses, reader.ReadUint8());
  pattern.crosses_videos = crosses != 0;
  return pattern;
}

void EncodeStats(BinaryWriter& writer, const RetrievalStats& stats) {
  writer.WriteUint64(stats.videos_considered);
  writer.WriteUint64(stats.states_visited);
  writer.WriteUint64(stats.sim_evaluations);
  writer.WriteUint64(stats.candidates_scored);
  writer.WriteUint64(stats.beam_pruned);
  writer.WriteUint64(stats.annotated_fallbacks);
  writer.WriteUint64(stats.sim_memo_hits);
  writer.WriteUint64(stats.candidate_list_reuse);
  writer.WriteUint8(stats.truncated ? 1 : 0);
  writer.WriteUint8(stats.degraded ? 1 : 0);
  writer.WriteUint64(stats.videos_skipped);
}

StatusOr<RetrievalStats> DecodeStats(BinaryReader& reader) {
  RetrievalStats stats;
  HMMM_ASSIGN_OR_RETURN(stats.videos_considered, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(stats.states_visited, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(stats.sim_evaluations, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(stats.candidates_scored, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(stats.beam_pruned, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(stats.annotated_fallbacks, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(stats.sim_memo_hits, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(stats.candidate_list_reuse, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(const uint8_t truncated, reader.ReadUint8());
  stats.truncated = truncated != 0;
  HMMM_ASSIGN_OR_RETURN(const uint8_t degraded, reader.ReadUint8());
  stats.degraded = degraded != 0;
  HMMM_ASSIGN_OR_RETURN(stats.videos_skipped, reader.ReadUint64());
  return stats;
}

}  // namespace

bool IsRequestType(MessageType type) {
  switch (type) {
    case MessageType::kHealthRequest:
    case MessageType::kTemporalQueryRequest:
    case MessageType::kQbeRequest:
    case MessageType::kMarkPositiveRequest:
    case MessageType::kTrainRequest:
    case MessageType::kMetricsRequest:
    case MessageType::kDumpSlowQueriesRequest:
    case MessageType::kReloadShardMapRequest:
      return true;
    default:
      return false;
  }
}

const char* MessageTypeLabel(MessageType type) {
  switch (type) {
    case MessageType::kHealthRequest:
    case MessageType::kHealthResponse:
      return "health";
    case MessageType::kTemporalQueryRequest:
    case MessageType::kTemporalQueryResponse:
      return "temporal_query";
    case MessageType::kQbeRequest:
    case MessageType::kQbeResponse:
      return "query_by_example";
    case MessageType::kMarkPositiveRequest:
    case MessageType::kMarkPositiveResponse:
      return "mark_positive";
    case MessageType::kTrainRequest:
    case MessageType::kTrainResponse:
      return "train";
    case MessageType::kMetricsRequest:
    case MessageType::kMetricsResponse:
      return "metrics";
    case MessageType::kDumpSlowQueriesRequest:
    case MessageType::kDumpSlowQueriesResponse:
      return "dump_slow_queries";
    case MessageType::kReloadShardMapRequest:
    case MessageType::kReloadShardMapResponse:
      return "reload_shard_map";
    case MessageType::kErrorResponse:
      return "error";
  }
  return "unknown";
}

WireError WireErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireError::kNone;
    case StatusCode::kInvalidArgument:
      return WireError::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireError::kNotFound;
    case StatusCode::kOutOfRange:
      return WireError::kOutOfRange;
    case StatusCode::kFailedPrecondition:
      return WireError::kFailedPrecondition;
    case StatusCode::kAlreadyExists:
      return WireError::kAlreadyExists;
    case StatusCode::kDataLoss:
      return WireError::kDataLoss;
    case StatusCode::kInternal:
      return WireError::kInternal;
    case StatusCode::kUnimplemented:
      return WireError::kUnimplemented;
    case StatusCode::kIOError:
      return WireError::kIOError;
    case StatusCode::kResourceExhausted:
      return WireError::kResourceExhausted;
  }
  return WireError::kInternal;
}

Status StatusFromWireError(WireError code, const std::string& message) {
  switch (code) {
    case WireError::kNone:
      return Status::OK();
    case WireError::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireError::kNotFound:
      return Status::NotFound(message);
    case WireError::kOutOfRange:
      return Status::OutOfRange(message);
    case WireError::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case WireError::kAlreadyExists:
      return Status::AlreadyExists(message);
    case WireError::kDataLoss:
      return Status::DataLoss(message);
    case WireError::kInternal:
      return Status::Internal(message);
    case WireError::kUnimplemented:
      return Status::Unimplemented(message);
    case WireError::kIOError:
      return Status::IOError(message);
    case WireError::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case WireError::kBadMagic:
    case WireError::kBadCrc:
    case WireError::kFrameTooLarge:
    case WireError::kMalformedPayload:
      return Status::InvalidArgument("rejected by server: " + message);
    case WireError::kUnknownMessageType:
    case WireError::kUnsupportedVersion:
      return Status::Unimplemented(message);
    case WireError::kSuperseded:
      return Status::FailedPrecondition(message);
    case WireError::kShuttingDown:
      return Status::ResourceExhausted(message);
  }
  return Status::Internal(StrFormat("unknown wire error %u: %s",
                                    static_cast<unsigned>(code),
                                    message.c_str()));
}

bool WireErrorRetriable(WireError code) {
  // Both mean "the server refused before executing": admission shed and
  // drain refusal. Everything else is either permanent or ambiguous
  // about server-side effects.
  return code == WireError::kResourceExhausted ||
         code == WireError::kShuttingDown;
}

const char* WireErrorName(WireError code) {
  switch (code) {
    case WireError::kNone:
      return "ok";
    case WireError::kInvalidArgument:
      return "invalid_argument";
    case WireError::kNotFound:
      return "not_found";
    case WireError::kOutOfRange:
      return "out_of_range";
    case WireError::kFailedPrecondition:
      return "failed_precondition";
    case WireError::kAlreadyExists:
      return "already_exists";
    case WireError::kDataLoss:
      return "data_loss";
    case WireError::kInternal:
      return "internal";
    case WireError::kUnimplemented:
      return "unimplemented";
    case WireError::kIOError:
      return "io_error";
    case WireError::kResourceExhausted:
      return "resource_exhausted";
    case WireError::kBadMagic:
      return "bad_magic";
    case WireError::kBadCrc:
      return "bad_crc";
    case WireError::kFrameTooLarge:
      return "frame_too_large";
    case WireError::kUnknownMessageType:
      return "unknown_message_type";
    case WireError::kUnsupportedVersion:
      return "unsupported_version";
    case WireError::kMalformedPayload:
      return "malformed_payload";
    case WireError::kSuperseded:
      return "superseded";
    case WireError::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

std::string EncodeFrame(MessageType type, std::string_view payload,
                        uint16_t version) {
  BinaryWriter writer;
  writer.WriteUint32(kWireMagic);
  writer.WriteUint8(static_cast<uint8_t>(version & 0xFF));
  writer.WriteUint8(static_cast<uint8_t>(version >> 8));
  const uint16_t tag = static_cast<uint16_t>(type);
  writer.WriteUint8(static_cast<uint8_t>(tag & 0xFF));
  writer.WriteUint8(static_cast<uint8_t>(tag >> 8));
  writer.WriteUint32(static_cast<uint32_t>(payload.size()));
  writer.WriteUint32(Crc32c(payload.data(), payload.size()));
  std::string frame = std::move(writer).TakeBuffer();
  frame.append(payload.data(), payload.size());
  return frame;
}

WireError DecodeFrameHeader(std::string_view bytes, uint32_t max_frame_bytes,
                            FrameHeader* out, uint16_t max_version) {
  if (bytes.size() < kFrameHeaderBytes) return WireError::kMalformedPayload;
  BinaryReader reader(bytes.substr(0, kFrameHeaderBytes));
  const uint32_t magic = *reader.ReadUint32();
  if (magic != kWireMagic) return WireError::kBadMagic;
  const uint16_t version = static_cast<uint16_t>(
      *reader.ReadUint8() | (static_cast<uint16_t>(*reader.ReadUint8()) << 8));
  const uint16_t tag = static_cast<uint16_t>(
      *reader.ReadUint8() | (static_cast<uint16_t>(*reader.ReadUint8()) << 8));
  const uint32_t payload_bytes = *reader.ReadUint32();
  const uint32_t crc = *reader.ReadUint32();
  // The version check comes after frame-aligning fields so a peer can
  // still answer kUnsupportedVersion on a well-framed future message.
  if (payload_bytes > max_frame_bytes) return WireError::kFrameTooLarge;
  out->version = version;
  out->type = static_cast<MessageType>(tag);
  out->payload_bytes = payload_bytes;
  out->crc32c = crc;
  if (version < kWireMinProtocolVersion || version > max_version) {
    return WireError::kUnsupportedVersion;
  }
  return WireError::kNone;
}

WireError VerifyFramePayload(const FrameHeader& header,
                             std::string_view payload) {
  if (payload.size() != header.payload_bytes) {
    return WireError::kMalformedPayload;
  }
  if (Crc32c(payload.data(), payload.size()) != header.crc32c) {
    return WireError::kBadCrc;
  }
  return WireError::kNone;
}

std::string EncodeTemporalQueryRequest(const TemporalQueryRequest& request,
                                       uint16_t version) {
  BinaryWriter writer;
  writer.WriteString(request.text);
  writer.WriteInt64(request.budget_ms);
  writer.WriteUint64(request.cancel_generation);
  writer.WriteUint8(request.want_stats ? 1 : 0);
  writer.WriteUint8(request.want_trace ? 1 : 0);
  if (version >= 2) {
    writer.WriteUint64(request.trace_id_hi);
    writer.WriteUint64(request.trace_id_lo);
    writer.WriteUint64(request.parent_span_id);
  }
  return std::move(writer).TakeBuffer();
}

StatusOr<TemporalQueryRequest> DecodeTemporalQueryRequest(
    std::string_view payload, uint16_t version) {
  BinaryReader reader(payload);
  TemporalQueryRequest request;
  HMMM_ASSIGN_OR_RETURN(request.text, reader.ReadString());
  HMMM_ASSIGN_OR_RETURN(request.budget_ms, reader.ReadInt64());
  HMMM_ASSIGN_OR_RETURN(request.cancel_generation, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(const uint8_t want_stats, reader.ReadUint8());
  request.want_stats = want_stats != 0;
  HMMM_ASSIGN_OR_RETURN(const uint8_t want_trace, reader.ReadUint8());
  request.want_trace = want_trace != 0;
  if (version >= 2) {
    HMMM_ASSIGN_OR_RETURN(request.trace_id_hi, reader.ReadUint64());
    HMMM_ASSIGN_OR_RETURN(request.trace_id_lo, reader.ReadUint64());
    HMMM_ASSIGN_OR_RETURN(request.parent_span_id, reader.ReadUint64());
  }
  return request;
}

std::string EncodeQbeRequest(const QbeRequest& request, uint16_t version) {
  BinaryWriter writer;
  writer.WriteDoubleVector(request.features);
  writer.WriteInt32(request.max_results);
  if (version >= 2) {
    writer.WriteUint8(request.want_trace ? 1 : 0);
    writer.WriteUint64(request.trace_id_hi);
    writer.WriteUint64(request.trace_id_lo);
    writer.WriteUint64(request.parent_span_id);
  }
  return std::move(writer).TakeBuffer();
}

StatusOr<QbeRequest> DecodeQbeRequest(std::string_view payload,
                                      uint16_t version) {
  BinaryReader reader(payload);
  QbeRequest request;
  HMMM_ASSIGN_OR_RETURN(request.features, reader.ReadDoubleVector());
  HMMM_ASSIGN_OR_RETURN(request.max_results, reader.ReadInt32());
  if (version >= 2) {
    HMMM_ASSIGN_OR_RETURN(const uint8_t want_trace, reader.ReadUint8());
    request.want_trace = want_trace != 0;
    HMMM_ASSIGN_OR_RETURN(request.trace_id_hi, reader.ReadUint64());
    HMMM_ASSIGN_OR_RETURN(request.trace_id_lo, reader.ReadUint64());
    HMMM_ASSIGN_OR_RETURN(request.parent_span_id, reader.ReadUint64());
  }
  return request;
}

std::string EncodeMarkPositiveRequest(const MarkPositiveRequest& request) {
  BinaryWriter writer;
  EncodeRetrievedPattern(writer, request.pattern);
  return std::move(writer).TakeBuffer();
}

StatusOr<MarkPositiveRequest> DecodeMarkPositiveRequest(
    std::string_view payload) {
  BinaryReader reader(payload);
  MarkPositiveRequest request;
  HMMM_ASSIGN_OR_RETURN(request.pattern, DecodeRetrievedPattern(reader));
  return request;
}

std::string EncodeTemporalQueryResponse(const TemporalQueryResponse& response,
                                        uint16_t version) {
  BinaryWriter writer;
  writer.WriteVarint(response.results.size());
  for (const RetrievedPattern& pattern : response.results) {
    EncodeRetrievedPattern(writer, pattern);
  }
  writer.WriteUint8(response.degraded ? 1 : 0);
  writer.WriteUint64(response.videos_skipped);
  writer.WriteUint8(response.has_stats ? 1 : 0);
  if (response.has_stats) EncodeStats(writer, response.stats);
  writer.WriteString(response.trace_jsonl);
  if (version >= 2) writer.WriteString(response.trace_blob);
  return std::move(writer).TakeBuffer();
}

StatusOr<TemporalQueryResponse> DecodeTemporalQueryResponse(
    std::string_view payload, uint16_t version) {
  BinaryReader reader(payload);
  TemporalQueryResponse response;
  HMMM_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadVarint());
  HMMM_RETURN_IF_ERROR(CheckCount(count, "result"));
  response.results.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    HMMM_ASSIGN_OR_RETURN(RetrievedPattern pattern,
                          DecodeRetrievedPattern(reader));
    response.results.push_back(std::move(pattern));
  }
  HMMM_ASSIGN_OR_RETURN(const uint8_t degraded, reader.ReadUint8());
  response.degraded = degraded != 0;
  HMMM_ASSIGN_OR_RETURN(response.videos_skipped, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(const uint8_t has_stats, reader.ReadUint8());
  response.has_stats = has_stats != 0;
  if (response.has_stats) {
    HMMM_ASSIGN_OR_RETURN(response.stats, DecodeStats(reader));
  }
  HMMM_ASSIGN_OR_RETURN(response.trace_jsonl, reader.ReadString());
  if (version >= 2) {
    HMMM_ASSIGN_OR_RETURN(response.trace_blob, reader.ReadString());
  }
  return response;
}

std::string EncodeQbeResponse(const QbeResponse& response,
                              uint16_t version) {
  BinaryWriter writer;
  writer.WriteVarint(response.results.size());
  for (const QbeResult& result : response.results) {
    writer.WriteInt32(result.shot);
    writer.WriteDouble(result.similarity);
  }
  if (version >= 2) writer.WriteString(response.trace_blob);
  return std::move(writer).TakeBuffer();
}

StatusOr<QbeResponse> DecodeQbeResponse(std::string_view payload,
                                        uint16_t version) {
  BinaryReader reader(payload);
  QbeResponse response;
  HMMM_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadVarint());
  HMMM_RETURN_IF_ERROR(CheckCount(count, "result"));
  response.results.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    QbeResult result;
    HMMM_ASSIGN_OR_RETURN(result.shot, reader.ReadInt32());
    HMMM_ASSIGN_OR_RETURN(result.similarity, reader.ReadDouble());
    response.results.push_back(result);
  }
  if (version >= 2) {
    HMMM_ASSIGN_OR_RETURN(response.trace_blob, reader.ReadString());
  }
  return response;
}

std::string EncodeMarkPositiveResponse(const MarkPositiveResponse& response) {
  BinaryWriter writer;
  writer.WriteUint64(response.training_rounds);
  return std::move(writer).TakeBuffer();
}

StatusOr<MarkPositiveResponse> DecodeMarkPositiveResponse(
    std::string_view payload) {
  BinaryReader reader(payload);
  MarkPositiveResponse response;
  HMMM_ASSIGN_OR_RETURN(response.training_rounds, reader.ReadUint64());
  return response;
}

std::string EncodeTrainResponse(const TrainResponse& response,
                                uint16_t version) {
  BinaryWriter writer;
  writer.WriteUint8(response.trained ? 1 : 0);
  writer.WriteUint64(response.training_rounds);
  if (version >= 3) {
    writer.WriteUint32(response.shards_attempted);
    writer.WriteUint32(response.shards_failed);
  }
  return std::move(writer).TakeBuffer();
}

StatusOr<TrainResponse> DecodeTrainResponse(std::string_view payload,
                                            uint16_t version) {
  BinaryReader reader(payload);
  TrainResponse response;
  HMMM_ASSIGN_OR_RETURN(const uint8_t trained, reader.ReadUint8());
  response.trained = trained != 0;
  HMMM_ASSIGN_OR_RETURN(response.training_rounds, reader.ReadUint64());
  if (version >= 3) {
    HMMM_ASSIGN_OR_RETURN(response.shards_attempted, reader.ReadUint32());
    HMMM_ASSIGN_OR_RETURN(response.shards_failed, reader.ReadUint32());
  }
  return response;
}

std::string EncodeMetricsResponse(const MetricsResponse& response,
                                  uint16_t version) {
  BinaryWriter writer;
  writer.WriteString(response.prometheus_text);
  if (version >= 2) writer.WriteString(response.json_snapshot);
  return std::move(writer).TakeBuffer();
}

StatusOr<MetricsResponse> DecodeMetricsResponse(std::string_view payload,
                                                uint16_t version) {
  BinaryReader reader(payload);
  MetricsResponse response;
  HMMM_ASSIGN_OR_RETURN(response.prometheus_text, reader.ReadString());
  if (version >= 2) {
    HMMM_ASSIGN_OR_RETURN(response.json_snapshot, reader.ReadString());
  }
  return response;
}

std::string EncodeDumpSlowQueriesResponse(
    const DumpSlowQueriesResponse& response) {
  BinaryWriter writer;
  writer.WriteString(response.jsonl);
  return std::move(writer).TakeBuffer();
}

StatusOr<DumpSlowQueriesResponse> DecodeDumpSlowQueriesResponse(
    std::string_view payload) {
  BinaryReader reader(payload);
  DumpSlowQueriesResponse response;
  HMMM_ASSIGN_OR_RETURN(response.jsonl, reader.ReadString());
  return response;
}

std::string EncodeReloadShardMapRequest(const ReloadShardMapRequest& request) {
  BinaryWriter writer;
  writer.WriteString(request.map_blob);
  return std::move(writer).TakeBuffer();
}

StatusOr<ReloadShardMapRequest> DecodeReloadShardMapRequest(
    std::string_view payload) {
  BinaryReader reader(payload);
  ReloadShardMapRequest request;
  HMMM_ASSIGN_OR_RETURN(request.map_blob, reader.ReadString());
  return request;
}

std::string EncodeReloadShardMapResponse(
    const ReloadShardMapResponse& response) {
  BinaryWriter writer;
  writer.WriteUint64(response.epoch);
  writer.WriteUint32(response.num_shards);
  return std::move(writer).TakeBuffer();
}

StatusOr<ReloadShardMapResponse> DecodeReloadShardMapResponse(
    std::string_view payload) {
  BinaryReader reader(payload);
  ReloadShardMapResponse response;
  HMMM_ASSIGN_OR_RETURN(response.epoch, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(response.num_shards, reader.ReadUint32());
  return response;
}

std::string EncodeHealthResponse(const HealthResponse& response) {
  BinaryWriter writer;
  writer.WriteUint64(response.videos);
  writer.WriteUint64(response.shots);
  writer.WriteUint64(response.annotated_shots);
  writer.WriteUint64(response.model_version);
  writer.WriteUint8(response.draining ? 1 : 0);
  return std::move(writer).TakeBuffer();
}

StatusOr<HealthResponse> DecodeHealthResponse(std::string_view payload) {
  BinaryReader reader(payload);
  HealthResponse response;
  HMMM_ASSIGN_OR_RETURN(response.videos, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(response.shots, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(response.annotated_shots, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(response.model_version, reader.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(const uint8_t draining, reader.ReadUint8());
  response.draining = draining != 0;
  return response;
}

std::string EncodeErrorResponse(const ErrorResponse& response) {
  BinaryWriter writer;
  writer.WriteUint32(static_cast<uint32_t>(response.code));
  writer.WriteUint8(response.retriable ? 1 : 0);
  writer.WriteString(response.message);
  return std::move(writer).TakeBuffer();
}

StatusOr<ErrorResponse> DecodeErrorResponse(std::string_view payload) {
  BinaryReader reader(payload);
  ErrorResponse response;
  HMMM_ASSIGN_OR_RETURN(const uint32_t code, reader.ReadUint32());
  response.code = static_cast<WireError>(code);
  HMMM_ASSIGN_OR_RETURN(const uint8_t retriable, reader.ReadUint8());
  response.retriable = retriable != 0;
  HMMM_ASSIGN_OR_RETURN(response.message, reader.ReadString());
  return response;
}

}  // namespace hmmm
