#ifndef HMMM_SERVER_QUERY_SERVER_H_
#define HMMM_SERVER_QUERY_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/video_database.h"
#include "common/cancellation.h"
#include "common/socket.h"
#include "common/thread_pool.h"
#include "server/query_service.h"
#include "server/wire_protocol.h"

namespace hmmm {

struct QueryServerOptions {
  /// Bind address: IPv4 dotted quad or "localhost".
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  /// Connection-worker pool size (request execution); the IO thread is
  /// separate. <= 0 resolves to the hardware concurrency.
  int num_workers = 2;
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 64;
  /// Frames whose header announces a larger payload are answered with
  /// kFrameTooLarge and the connection is closed (per-connection read
  /// limit: the server never buffers more than one frame beyond this).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Deadline for writing one response back to a client; a slower peer
  /// loses its connection (the server never blocks a worker forever).
  std::chrono::milliseconds write_timeout{30000};
  /// Graceful-shutdown budget: how long Shutdown() lets in-flight
  /// requests finish before cancelling them through the shutdown token.
  std::chrono::milliseconds drain_timeout{5000};
  /// Highest wire protocol version this server speaks. Requests above it
  /// are answered with a typed kUnsupportedVersion error; requests at or
  /// below are answered in the request frame's own version, so old
  /// clients get old-schema responses byte-for-byte. Lowering this below
  /// kWireProtocolVersion emulates an old server (used by the
  /// mixed-version tests).
  uint16_t protocol_version = kWireProtocolVersion;
};

/// Multi-threaded TCP front end for a VideoDatabase, speaking the binary
/// wire protocol of server/wire_protocol.h.
///
/// Threading model: one IO thread owns the listener and every idle
/// connection through a poll() loop (a self-wake pipe lets other threads
/// interrupt it). When a connection has buffered at least one complete
/// frame, the IO thread marks it busy — removing it from the poll set —
/// and dispatches the batch of complete frames to the worker pool. The
/// owning worker decodes, executes against the database, writes the
/// response frames, and hands the connection back to the IO thread for
/// re-arming. One connection is therefore touched by at most one thread
/// at a time, and responses to pipelined requests keep request order.
///
/// Deadlines and cancellation: a request's budget_ms becomes the query's
/// TraversalOptions deadline, and every query runs under the server's
/// shutdown CancellationToken — both degrade (anytime prefix ranking)
/// rather than fail. A pipelined TemporalQuery whose cancel_generation is
/// below the newest generation seen on its connection is answered with
/// kSuperseded without executing.
///
/// Graceful shutdown: Shutdown() stops accepting, answers new query
/// frames with retriable kShuttingDown (Health/Metrics still work, with
/// draining = true), waits up to drain_timeout for in-flight work, then
/// cancels stragglers through the shutdown token and waits for them to
/// degrade out. Workers always finish writing the response of the
/// request they are on, so clients never observe a torn frame.
class QueryServer {
 public:
  /// `db` must outlive the server. Server metrics register into the
  /// database's MetricsRegistry (hmmm_server_* families). Convenience
  /// for the common single-process case: wraps the database in an owned
  /// VideoDatabaseService.
  explicit QueryServer(VideoDatabase* db, QueryServerOptions options = {});

  /// Serves an arbitrary backend (e.g. a shard-fan-out
  /// CoordinatorService). `service` must outlive the server; transport
  /// metrics register into service->metrics_registry().
  explicit QueryServer(QueryService* service, QueryServerOptions options = {});

  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens and starts the IO thread + worker pool.
  Status Start();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Graceful shutdown as described above. Idempotent; also invoked by
  /// the destructor.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Fired when drain_timeout expires during Shutdown(); exposed so
  /// embedders can share one token across subsystems.
  const CancellationToken& shutdown_token() const { return shutdown_token_; }

 private:
  /// One complete frame as extracted by the IO thread, or a framing
  /// error to be answered (then the connection closes).
  struct FrameJob {
    MessageType type = MessageType::kErrorResponse;
    std::string payload;
    WireError framing_error = WireError::kNone;
    /// Protocol version of the request frame; responses (including typed
    /// errors) are encoded and stamped at this version. Framing errors
    /// where no version could be trusted answer at the floor version.
    uint16_t version = kWireMinProtocolVersion;
  };

  /// Per-connection state. Ownership alternates: the IO thread touches
  /// buffer/socket while the connection is idle (busy == false), the
  /// dispatched worker while busy == true; the busy flip itself happens
  /// under mutex_.
  struct Connection {
    Socket socket;
    std::string buffer;
    bool busy = false;
    bool close_after_flush = false;
    /// Highest TemporalQuery cancel_generation seen (worker-owned).
    uint64_t max_generation = 0;
  };

  void IoLoop();
  /// Accepts every pending connection on the (non-blocking) listener.
  void AcceptPending();
  void EraseConnection(int fd);
  /// Handles connections handed back by workers: close the flagged ones,
  /// redispatch any with frames already buffered, re-poll the rest.
  void ProcessRearms();
  /// Reads whatever is available on an idle connection. Returns false
  /// when the connection died and must be erased.
  bool ReadAvailable(Connection* conn);
  /// Extracts complete frames from conn->buffer; dispatches a worker
  /// batch when at least one is ready. Caller: IO thread, conn idle.
  void MaybeDispatch(int fd, Connection* conn);
  /// Worker entry: execute the batch, write responses, re-arm.
  void ProcessBatch(int fd, Connection* conn, std::vector<FrameJob> jobs);
  /// Executes one request job into a ready-to-send response frame.
  std::string HandleJob(Connection* conn, const FrameJob& job);
  std::string HandleTemporalQuery(Connection* conn, const std::string& payload,
                                  uint16_t version);
  std::string HandleQbe(const std::string& payload, uint16_t version);
  std::string HandleMarkPositive(const std::string& payload, uint16_t version);
  std::string HandleTrain(uint16_t version);
  std::string HandleMetrics(uint16_t version);
  std::string HandleHealth(uint16_t version);
  std::string HandleDumpSlowQueries(uint16_t version);
  std::string HandleReloadShardMap(const std::string& payload,
                                   uint16_t version);
  /// Builds a typed error frame (stamped at `version`) and bumps
  /// hmmm_server_errors_total{code}.
  std::string ErrorFrame(WireError code, const std::string& message,
                         uint16_t version);
  std::string StatusErrorFrame(const Status& status, uint16_t version);

  /// Writes one byte into the self-wake pipe (interrupts poll()).
  void Wake();

  /// Set by the VideoDatabase convenience constructor; service_ points
  /// at it then.
  std::unique_ptr<VideoDatabaseService> owned_service_;
  QueryService* service_;
  QueryServerOptions options_;
  uint16_t port_ = 0;

  Socket listener_;
  Socket wake_read_;
  Socket wake_write_;
  std::thread io_thread_;
  std::unique_ptr<ThreadPool> workers_;

  std::atomic<bool> running_{false};
  CancellationToken shutdown_token_;
  /// Serializes Shutdown() against concurrent callers (including the
  /// destructor racing a signal handler's explicit call).
  std::mutex shutdown_mutex_;

  /// Guards connections_ membership, the busy flips, the re-arm queue
  /// and the drain accounting below.
  std::mutex mutex_;
  std::condition_variable drained_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::deque<int> rearm_queue_;
  int busy_connections_ = 0;
  bool draining_ = false;
  bool stop_io_ = false;

  // Metric handles into db_->metrics_registry() (stable addresses).
  Counter* connections_total_ = nullptr;
  Gauge* connections_open_ = nullptr;
  Counter* corrupt_frames_total_ = nullptr;
  Counter* bytes_read_total_ = nullptr;
  Counter* bytes_written_total_ = nullptr;
  Histogram* request_latency_ms_ = nullptr;
  /// hmmm_server_requests_total{type=...}, indexed by request tag (1-8);
  /// pre-resolved so the per-request path never takes the registry lock.
  std::array<Counter*, 9> requests_total_by_type_{};
};

}  // namespace hmmm

#endif  // HMMM_SERVER_QUERY_SERVER_H_
