#include "server/shard_map.h"

#include "common/logging.h"
#include "common/serialization.h"
#include "common/strings.h"

namespace hmmm {

Status ValidateShardMap(const ShardMap& map) {
  if (map.shards.empty()) {
    return Status::InvalidArgument("shard map has no shards");
  }
  if (map.total_videos < 0 || map.total_shots < 0) {
    return Status::InvalidArgument("shard map totals negative");
  }
  VideoId next_video = 0;
  std::vector<bool> shot_owned(static_cast<size_t>(map.total_shots), false);
  for (size_t s = 0; s < map.shards.size(); ++s) {
    const ShardMapEntry& entry = map.shards[s];
    if (entry.video_begin != next_video || entry.video_end < entry.video_begin) {
      return Status::InvalidArgument(
          StrFormat("shard %zu range [%d, %d) not contiguous from %d", s,
                    entry.video_begin, entry.video_end, next_video));
    }
    next_video = entry.video_end;
    for (const ShotId shot : entry.shot_to_global) {
      if (shot < 0 || shot >= map.total_shots) {
        return Status::InvalidArgument(
            StrFormat("shard %zu maps shot %d outside [0, %lld)", s, shot,
                      static_cast<long long>(map.total_shots)));
      }
      if (shot_owned[static_cast<size_t>(shot)]) {
        return Status::InvalidArgument(
            StrFormat("shot %d owned by more than one shard", shot));
      }
      shot_owned[static_cast<size_t>(shot)] = true;
    }
  }
  if (next_video != map.total_videos) {
    return Status::InvalidArgument(
        StrFormat("shard ranges cover %d of %lld videos", next_video,
                  static_cast<long long>(map.total_videos)));
  }
  for (size_t shot = 0; shot < shot_owned.size(); ++shot) {
    if (!shot_owned[shot]) {
      return Status::InvalidArgument(
          StrFormat("shot %zu owned by no shard", shot));
    }
  }
  return Status::OK();
}

ShardMap ShardMapFromPartition(const std::vector<CatalogShard>& shards,
                               const VideoCatalog& catalog) {
  ShardMap map;
  map.total_videos = static_cast<int64_t>(catalog.num_videos());
  map.total_shots = static_cast<int64_t>(catalog.num_shots());
  map.shards.reserve(shards.size());
  for (const CatalogShard& shard : shards) {
    ShardMapEntry entry;
    entry.video_begin = shard.video_begin;
    entry.video_end = shard.video_end;
    entry.shot_to_global = shard.shot_to_global;
    map.shards.push_back(std::move(entry));
  }
  return map;
}

std::string SerializeShardMap(const ShardMap& map, uint32_t version) {
  HMMM_CHECK(version >= kShardMapMinVersion && version <= kShardMapVersion);
  BinaryWriter w;
  w.WriteInt64(map.total_videos);
  w.WriteInt64(map.total_shots);
  if (version >= 2) w.WriteVarint(map.epoch);
  w.WriteVarint(map.shards.size());
  for (const ShardMapEntry& entry : map.shards) {
    w.WriteString(entry.endpoint);
    if (version >= 2) {
      w.WriteVarint(entry.replica_endpoints.size());
      for (const std::string& replica : entry.replica_endpoints) {
        w.WriteString(replica);
      }
    }
    w.WriteInt32(entry.video_begin);
    w.WriteInt32(entry.video_end);
    w.WriteInt32Vector(std::vector<int32_t>(entry.shot_to_global.begin(),
                                            entry.shot_to_global.end()));
  }
  return WrapChecksummed(kShardMapMagic, version, w.buffer());
}

StatusOr<ShardMap> DeserializeShardMap(std::string_view data) {
  uint32_t version = 0;
  HMMM_ASSIGN_OR_RETURN(std::string payload,
                        UnwrapChecksummed(kShardMapMagic, data, &version));
  if (version < kShardMapMinVersion || version > kShardMapVersion) {
    return Status::DataLoss("unsupported shard map version");
  }
  BinaryReader r(payload);
  ShardMap map;
  HMMM_ASSIGN_OR_RETURN(map.total_videos, r.ReadInt64());
  HMMM_ASSIGN_OR_RETURN(map.total_shots, r.ReadInt64());
  if (version >= 2) {
    HMMM_ASSIGN_OR_RETURN(map.epoch, r.ReadVarint());
  }
  HMMM_ASSIGN_OR_RETURN(const uint64_t num_shards, r.ReadVarint());
  for (uint64_t i = 0; i < num_shards; ++i) {
    ShardMapEntry entry;
    HMMM_ASSIGN_OR_RETURN(entry.endpoint, r.ReadString());
    if (version >= 2) {
      HMMM_ASSIGN_OR_RETURN(const uint64_t num_replicas, r.ReadVarint());
      if (num_replicas > payload.size()) {
        return Status::DataLoss("shard map replica count implausible");
      }
      entry.replica_endpoints.reserve(num_replicas);
      for (uint64_t k = 0; k < num_replicas; ++k) {
        HMMM_ASSIGN_OR_RETURN(std::string replica, r.ReadString());
        entry.replica_endpoints.push_back(std::move(replica));
      }
    }
    HMMM_ASSIGN_OR_RETURN(entry.video_begin, r.ReadInt32());
    HMMM_ASSIGN_OR_RETURN(entry.video_end, r.ReadInt32());
    HMMM_ASSIGN_OR_RETURN(auto shots, r.ReadInt32Vector());
    entry.shot_to_global.assign(shots.begin(), shots.end());
    map.shards.push_back(std::move(entry));
  }
  if (!r.AtEnd()) return Status::DataLoss("trailing bytes in shard map blob");
  HMMM_RETURN_IF_ERROR(ValidateShardMap(map));
  return map;
}

Status SaveShardMap(const ShardMap& map, const std::string& path) {
  return WriteFile(path, SerializeShardMap(map));
}

StatusOr<ShardMap> LoadShardMap(const std::string& path) {
  HMMM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return DeserializeShardMap(data);
}

}  // namespace hmmm
