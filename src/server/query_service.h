#ifndef HMMM_SERVER_QUERY_SERVICE_H_
#define HMMM_SERVER_QUERY_SERVICE_H_

#include "api/video_database.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "observability/slow_query_log.h"
#include "observability/trace_codec.h"
#include "server/wire_protocol.h"

namespace hmmm {

/// The request-execution backend behind a QueryServer: one method per
/// wire-protocol request, working in decoded request/response structs.
/// The server owns everything transport-shaped — framing, pipelining,
/// supersession, drain — and delegates execution here, so the same
/// front end can serve a local VideoDatabase (VideoDatabaseService) or
/// fan out across shard servers (CoordinatorService) without the wire
/// protocol changing.
///
/// Implementations must be safe to call from multiple server workers
/// concurrently.
class QueryService {
 public:
  virtual ~QueryService() = default;

  /// Registry the owning server registers its hmmm_server_* transport
  /// metrics into (and Metrics() typically dumps). Stable for the
  /// service's lifetime.
  virtual MetricsRegistry& metrics_registry() = 0;

  /// `shutdown` is the server's shutdown token (never null while the
  /// server runs); implementations should degrade, not fail, when it
  /// fires mid-request.
  virtual StatusOr<TemporalQueryResponse> TemporalQuery(
      const TemporalQueryRequest& request,
      const CancellationToken* shutdown) = 0;
  virtual StatusOr<QbeResponse> QueryByExample(const QbeRequest& request) = 0;
  virtual StatusOr<MarkPositiveResponse> MarkPositive(
      const MarkPositiveRequest& request) = 0;
  virtual StatusOr<TrainResponse> Train() = 0;
  virtual StatusOr<MetricsResponse> Metrics() = 0;
  /// The server overrides HealthResponse::draining with its own state.
  virtual StatusOr<HealthResponse> Health() = 0;
  /// Snapshot of the service's slow-query ring buffer (v2 wire request).
  /// Default: empty log, so minimal test services need not implement it.
  virtual StatusOr<DumpSlowQueriesResponse> DumpSlowQueries();
  /// Hot shard-map swap (v3 wire request). Only routing front ends
  /// (CoordinatorService) implement it; default: kUnimplemented, so leaf
  /// shard servers answer with a typed error.
  virtual StatusOr<ReloadShardMapResponse> ReloadShardMap(
      const ReloadShardMapRequest& request);
};

/// Tracing/observability knobs shared by the service implementations.
struct QueryServiceOptions {
  /// Head-sampling rate for queries that did not ask for a trace
  /// themselves (want_trace always traces). 0.0 = never, 1.0 = always;
  /// the sampler is deterministic (see TraceSampler).
  double trace_sample_rate = 0.0;
  /// A query at least this slow is captured in the slow-query log.
  /// Degraded (budget-fired) queries are always captured.
  double slow_query_threshold_ms = 250.0;
  /// Ring-buffer capacity of the slow-query log.
  size_t slow_query_capacity = 128;
  /// When non-empty, every Train() round that actually trained publishes
  /// a fresh snapshot generation into this directory (atomic write +
  /// CURRENT repoint, generation = training_rounds), so cold-starting
  /// replicas pick up learned weights via the mmap path instead of
  /// re-serializing blobs. Publish failures are logged, never propagated:
  /// training succeeded, and the snapshot is a serving accelerator.
  std::string snapshot_publish_dir;
};

/// QueryService over one local VideoDatabase — the single-process
/// backend (previously inlined in QueryServer's handlers). Maps a
/// request's budget_ms onto the query deadline; a fired budget or
/// shutdown degrades to the anytime prefix ranking.
///
/// Tracing: a sampled request (want_trace, or the head sampler firing)
/// runs under a "server_query" root span tagged with the trace id; the
/// traversal's Fig.-2 phase spans are adopted as its children. Only
/// requests that asked (want_trace) get the trace bytes back on the
/// wire — sampler-only traces feed the slow-query log's trace ids.
class VideoDatabaseService : public QueryService {
 public:
  /// `db` must outlive the service.
  explicit VideoDatabaseService(VideoDatabase* db,
                                QueryServiceOptions options = {});

  MetricsRegistry& metrics_registry() override;
  StatusOr<TemporalQueryResponse> TemporalQuery(
      const TemporalQueryRequest& request,
      const CancellationToken* shutdown) override;
  StatusOr<QbeResponse> QueryByExample(const QbeRequest& request) override;
  StatusOr<MarkPositiveResponse> MarkPositive(
      const MarkPositiveRequest& request) override;
  StatusOr<TrainResponse> Train() override;
  StatusOr<MetricsResponse> Metrics() override;
  StatusOr<HealthResponse> Health() override;
  StatusOr<DumpSlowQueriesResponse> DumpSlowQueries() override;

  SlowQueryLog& slow_query_log() { return slow_log_; }

 private:
  VideoDatabase* db_;
  QueryServiceOptions options_;
  TraceSampler sampler_;
  SlowQueryLog slow_log_;
};

}  // namespace hmmm

#endif  // HMMM_SERVER_QUERY_SERVICE_H_
