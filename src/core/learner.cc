#include "core/learner.h"

#include <cmath>
#include <map>

#include "common/strings.h"

namespace hmmm {

Matrix UniformFeatureWeights(size_t num_events, size_t num_features) {
  const double weight =
      num_features > 0 ? 1.0 / static_cast<double>(num_features) : 0.0;
  return Matrix(num_events, num_features, weight);
}

StatusOr<Matrix> ComputeEventCentroids(const HierarchicalModel& model,
                                       const VideoCatalog& catalog) {
  const size_t num_events = model.vocabulary().size();
  const size_t k = model.b1().cols();
  Matrix centroids(num_events, k, 0.0);
  std::vector<double> counts(num_events, 0.0);

  for (size_t state = 0; state < model.num_global_states(); ++state) {
    const ShotId shot = model.ShotOfGlobalState(static_cast<int>(state));
    for (EventId e : catalog.shot(shot).events) {
      counts[static_cast<size_t>(e)] += 1.0;
      for (size_t f = 0; f < k; ++f) {
        centroids.at(static_cast<size_t>(e), f) += model.b1().at(state, f);
      }
    }
  }
  for (size_t e = 0; e < num_events; ++e) {
    if (counts[e] <= 0.0) continue;
    for (size_t f = 0; f < k; ++f) centroids.at(e, f) /= counts[e];
  }
  return centroids;
}

StatusOr<Matrix> ComputeFeatureWeights(const HierarchicalModel& model,
                                       const VideoCatalog& catalog,
                                       double min_stddev) {
  const size_t num_events = model.vocabulary().size();
  const size_t k = model.b1().cols();
  if (min_stddev <= 0.0) {
    return Status::InvalidArgument("min_stddev must be positive");
  }

  // Per-event Welford accumulation over B1 rows of shots carrying it.
  struct Accum {
    std::vector<double> mean, m2;
    double count = 0.0;
  };
  std::vector<Accum> accums(num_events);
  for (Accum& a : accums) {
    a.mean.assign(k, 0.0);
    a.m2.assign(k, 0.0);
  }
  for (size_t state = 0; state < model.num_global_states(); ++state) {
    const ShotId shot = model.ShotOfGlobalState(static_cast<int>(state));
    for (EventId e : catalog.shot(shot).events) {
      Accum& a = accums[static_cast<size_t>(e)];
      a.count += 1.0;
      for (size_t f = 0; f < k; ++f) {
        const double x = model.b1().at(state, f);
        const double delta = x - a.mean[f];
        a.mean[f] += delta / a.count;
        a.m2[f] += delta * (x - a.mean[f]);
      }
    }
  }

  Matrix p12 = UniformFeatureWeights(num_events, k);
  for (size_t e = 0; e < num_events; ++e) {
    const Accum& a = accums[e];
    if (a.count < 2.0) continue;  // keep the uniform row (Eq. 7)
    // Eq. 8: P'(i,j) = 1 / Std_{i,j}; Eq. 9-10: row-normalize.
    std::vector<double> inverse_std(k, 0.0);
    double row_sum = 0.0;
    for (size_t f = 0; f < k; ++f) {
      const double stddev = std::sqrt(a.m2[f] / a.count);
      inverse_std[f] = 1.0 / std::max(stddev, min_stddev);
      row_sum += inverse_std[f];
    }
    for (size_t f = 0; f < k; ++f) {
      p12.at(e, f) = inverse_std[f] / row_sum;
    }
  }
  return p12;
}

Status OfflineLearner::ApplyShotPatterns(
    HierarchicalModel& model, const std::vector<AccessPattern>& patterns) const {
  // Split each global pattern into per-video fragments with local indices.
  std::map<VideoId, std::vector<AccessPattern>> per_video;
  for (const AccessPattern& pattern : patterns) {
    std::map<VideoId, AccessPattern> fragments;
    for (int state : pattern.states) {
      if (state < 0 ||
          static_cast<size_t>(state) >= model.num_global_states()) {
        return Status::OutOfRange(
            StrFormat("global state %d out of range", state));
      }
      // Locate the owning local model and the local index. Global states
      // are laid out video-by-video in local order.
      int remaining = state;
      VideoId video = -1;
      int local_index = -1;
      for (const LocalShotModel& local : model.locals()) {
        const int n = static_cast<int>(local.num_states());
        if (remaining < n) {
          video = local.video_id;
          local_index = remaining;
          break;
        }
        remaining -= n;
      }
      if (video < 0) return Status::Internal("state mapping failure");
      AccessPattern& fragment = fragments[video];
      fragment.access_count = pattern.access_count;
      fragment.states.push_back(local_index);
    }
    for (auto& [video, fragment] : fragments) {
      per_video[video].push_back(std::move(fragment));
    }
  }

  for (auto& [video, video_patterns] : per_video) {
    LocalShotModel& local =
        model.mutable_locals()[static_cast<size_t>(video)];
    HMMM_ASSIGN_OR_RETURN(Matrix af1,
                          AccumulateShotAffinity(local.a1, video_patterns));
    local.a1 = NormalizeAffinity(af1, local.a1);
    local.pi1 = DistributionFromPatterns(local.num_states(), video_patterns,
                                         options_.pi_semantics, local.pi1);
  }
  model.BumpVersion();
  return Status::OK();
}

Status OfflineLearner::ApplyVideoPatterns(
    HierarchicalModel& model, const std::vector<AccessPattern>& patterns) const {
  HMMM_ASSIGN_OR_RETURN(Matrix af2,
                        AccumulateVideoAffinity(model.num_videos(), patterns));
  model.mutable_a2() = NormalizeAffinity(af2, model.a2());
  model.mutable_pi2() = DistributionFromPatterns(
      model.num_videos(), patterns, options_.pi_semantics, model.pi2());
  model.BumpVersion();
  return Status::OK();
}

Status OfflineLearner::RelearnFeatureWeights(HierarchicalModel& model,
                                             const VideoCatalog& catalog) const {
  HMMM_ASSIGN_OR_RETURN(Matrix p12, ComputeFeatureWeights(model, catalog));
  HMMM_ASSIGN_OR_RETURN(Matrix centroids,
                        ComputeEventCentroids(model, catalog));
  model.mutable_p12() = std::move(p12);
  model.mutable_b1_prime() = std::move(centroids);
  model.BumpVersion();
  return Status::OK();
}

}  // namespace hmmm
