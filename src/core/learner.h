#ifndef HMMM_CORE_LEARNER_H_
#define HMMM_CORE_LEARNER_H_

#include <vector>

#include "core/affinity.h"
#include "core/hierarchical_model.h"
#include "storage/catalog.h"

namespace hmmm {

/// Uniform P12 of Eq. 7: every feature weighs 1/K for every event.
Matrix UniformFeatureWeights(size_t num_events, size_t num_features);

/// Per-event feature centroids B1' of Eq. 11, computed from the model's
/// normalized B1 and the catalog's annotations. Events with no annotated
/// shot get an all-zero row.
StatusOr<Matrix> ComputeEventCentroids(const HierarchicalModel& model,
                                       const VideoCatalog& catalog);

/// Learned P12 of Eqs. 8-10: P12(i,j) proportional to 1/Std_{i,j}, rows
/// normalized to sum 1. `min_stddev` guards zero deviations (a feature
/// that is constant within an event class would otherwise get infinite
/// weight). Events with fewer than 2 annotated shots keep uniform weights.
StatusOr<Matrix> ComputeFeatureWeights(const HierarchicalModel& model,
                                       const VideoCatalog& catalog,
                                       double min_stddev = 1e-4);

/// Offline learning (Section 4.2.1.1 "Update of A1", 4.2.2.1, Eq. 4):
/// batch application of accumulated positive access patterns to the model
/// matrices. Stateless — the feedback::AccessLog owns accumulation and the
/// retraining trigger.
struct OfflineLearnerOptions {
  PiSemantics pi_semantics = PiSemantics::kInitialStateCounts;
};

class OfflineLearner {
 public:
  explicit OfflineLearner(OfflineLearnerOptions options = {})
      : options_(options) {}

  /// Applies shot-level positive patterns. Pattern states are *global*
  /// state indices (rows of B1); a pattern spanning several videos is
  /// split into its per-video fragments. Updates each touched video's A1
  /// (Eqs. 1-2) and Pi1 (Eq. 4).
  Status ApplyShotPatterns(HierarchicalModel& model,
                           const std::vector<AccessPattern>& patterns) const;

  /// Applies video-level patterns (states are VideoIds), updating A2
  /// (Eqs. 5-6) and Pi2.
  Status ApplyVideoPatterns(HierarchicalModel& model,
                            const std::vector<AccessPattern>& patterns) const;

  /// Re-learns P12 (Eq. 10) and B1' (Eq. 11) from current annotations.
  Status RelearnFeatureWeights(HierarchicalModel& model,
                               const VideoCatalog& catalog) const;

 private:
  OfflineLearnerOptions options_;
};

}  // namespace hmmm

#endif  // HMMM_CORE_LEARNER_H_
