#include "core/generative.h"

#include <cmath>
#include <limits>

namespace hmmm {

namespace {
constexpr double kNegativeInfinity = -std::numeric_limits<double>::infinity();
}  // namespace

double SequenceLogProbability(const LocalShotModel& local,
                              const std::vector<int>& states) {
  if (states.empty()) return kNegativeInfinity;
  const int n = static_cast<int>(local.num_states());
  for (int s : states) {
    if (s < 0 || s >= n) return kNegativeInfinity;
  }
  double log_probability =
      local.pi1[static_cast<size_t>(states[0])] > 0.0
          ? std::log(local.pi1[static_cast<size_t>(states[0])])
          : kNegativeInfinity;
  for (size_t j = 0; j + 1 < states.size(); ++j) {
    const double transition = local.a1.at(static_cast<size_t>(states[j]),
                                          static_cast<size_t>(states[j + 1]));
    log_probability +=
        transition > 0.0 ? std::log(transition) : kNegativeInfinity;
  }
  return log_probability;
}

StatusOr<SampledPattern> SamplePattern(const HierarchicalModel& model,
                                       Rng& rng, size_t length) {
  if (length == 0) return Status::InvalidArgument("length must be >= 1");

  // Restrict the video draw to locals that can host the walk at all.
  std::vector<double> weights(model.num_videos(), 0.0);
  bool any = false;
  for (size_t v = 0; v < model.num_videos(); ++v) {
    if (model.local(static_cast<VideoId>(v)).num_states() >= length) {
      weights[v] = model.pi2()[v];
      any = true;
    }
  }
  if (!any) {
    return Status::FailedPrecondition(
        "no video has enough annotated shots for the requested length");
  }
  // Pi2 mass may sit entirely on too-short videos; fall back to uniform
  // over the feasible ones.
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    for (size_t v = 0; v < model.num_videos(); ++v) {
      if (model.local(static_cast<VideoId>(v)).num_states() >= length) {
        weights[v] = 1.0;
      }
    }
  }
  const int video = rng.NextWeighted(weights);
  if (video < 0) return Status::Internal("video sampling failed");
  const LocalShotModel& local = model.local(video);
  const int n = static_cast<int>(local.num_states());

  SampledPattern sample;
  sample.video = video;
  // Start state from Pi1, then walk A1. A walk can stall in an absorbing
  // state whose remaining row mass cannot reach `length` more states; the
  // upper-triangular structure guarantees progress while mass remains, so
  // retry a few times from fresh starts.
  for (int attempt = 0; attempt < 32; ++attempt) {
    sample.local_states.clear();
    int state = rng.NextWeighted(local.pi1);
    if (state < 0) break;
    sample.local_states.push_back(state);
    while (sample.local_states.size() < length) {
      std::vector<double> row(static_cast<size_t>(n), 0.0);
      // Exclude the self-loop so the walk always advances.
      for (int t = state + 1; t < n; ++t) {
        row[static_cast<size_t>(t)] =
            local.a1.at(static_cast<size_t>(state), static_cast<size_t>(t));
      }
      const int next = rng.NextWeighted(row);
      if (next < 0) break;  // stalled
      sample.local_states.push_back(next);
      state = next;
    }
    if (sample.local_states.size() == length) {
      sample.log_probability =
          SequenceLogProbability(local, sample.local_states);
      for (int s : sample.local_states) {
        sample.shots.push_back(local.states[static_cast<size_t>(s)]);
      }
      return sample;
    }
  }
  return Status::FailedPrecondition(
      "sampling stalled: the learned chain cannot produce the length");
}

StatusOr<std::vector<EventId>> SampleEventPattern(
    const HierarchicalModel& model, const VideoCatalog& catalog, Rng& rng,
    size_t length) {
  HMMM_ASSIGN_OR_RETURN(SampledPattern sample,
                        SamplePattern(model, rng, length));
  std::vector<EventId> events;
  events.reserve(sample.shots.size());
  for (ShotId shot : sample.shots) {
    const std::vector<EventId>& annotations = catalog.shot(shot).events;
    if (annotations.empty()) {
      return Status::Internal("sampled state without annotations");
    }
    const auto pick =
        static_cast<size_t>(rng.NextUint64(annotations.size()));
    events.push_back(annotations[pick]);
  }
  return events;
}

}  // namespace hmmm
