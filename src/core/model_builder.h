#ifndef HMMM_CORE_MODEL_BUILDER_H_
#define HMMM_CORE_MODEL_BUILDER_H_

#include "core/hierarchical_model.h"
#include "features/normalization.h"
#include "storage/catalog.h"

namespace hmmm {

/// Options controlling initial model construction.
struct ModelBuilderOptions {
  /// Learn P12 from per-event feature deviations at build time (Eq. 10)
  /// instead of the uniform 1/K initialization of Eq. 7. The paper
  /// initializes uniform and learns later; benchmarks ablate this.
  bool learn_feature_weights = false;
};

/// Builds the initial two-level HMMM from a catalog (Section 4.2):
///  - per video: A1 from annotation counts, Pi1 uniform (no training data
///    yet; Eq. 4 applies once feedback exists),
///  - B1 by Eq.-3 normalization over all annotated shots,
///  - A2 uniform (co-access training applies Eqs. 5-6 later), B2 event
///    counts, Pi2 uniform,
///  - P12 by Eq. 7 (or Eq. 10 when learn_feature_weights), B1' by Eq. 11,
///  - L12 from shot membership.
class ModelBuilder {
 public:
  explicit ModelBuilder(const VideoCatalog& catalog,
                        ModelBuilderOptions options = {});

  StatusOr<HierarchicalModel> Build() const;

  /// The Eq.-3 normalizer fitted over the annotated shots' raw features;
  /// valid after a successful Build().
  const FeatureNormalizer& normalizer() const { return normalizer_; }

 private:
  const VideoCatalog& catalog_;
  ModelBuilderOptions options_;
  mutable FeatureNormalizer normalizer_;
};

/// Rebuilds the model over a (typically grown) catalog while carrying
/// over what feedback has taught the old model:
///  - videos whose annotated-shot list is unchanged keep their learned
///    A1 and Pi1 (new/changed videos get fresh initialization),
///  - the old A2 block is embedded into the new matrix and re-normalized
///    (rows of new videos start uniform),
///  - Pi2 carries the old preferences, giving each new video a uniform
///    1/M share before re-normalizing.
/// B1/B2/P12/B1' always come from the new catalog (Eq. 3 renormalizes
/// over the grown archive). This is the maintenance path after appending
/// footage through the CatalogJournal.
StatusOr<HierarchicalModel> RebuildPreservingLearning(
    const HierarchicalModel& old_model, const VideoCatalog& catalog,
    ModelBuilderOptions options = {});

}  // namespace hmmm

#endif  // HMMM_CORE_MODEL_BUILDER_H_
