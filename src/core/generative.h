#ifndef HMMM_CORE_GENERATIVE_H_
#define HMMM_CORE_GENERATIVE_H_

#include <vector>

#include "common/rng.h"
#include "core/hierarchical_model.h"
#include "storage/catalog.h"

namespace hmmm {

/// Log-probability of a local state sequence under one video's shot-level
/// MMM: log Pi1(s1) + sum log A1(s_j, s_(j+1)). Returns -infinity for
/// impossible sequences (zero-probability hop or out-of-range state).
/// The generative reading of the mediator: Eq. 12/13 without the
/// similarity terms.
double SequenceLogProbability(const LocalShotModel& local,
                              const std::vector<int>& states);

/// A pattern drawn from the model's own stochastic process.
struct SampledPattern {
  VideoId video = -1;
  std::vector<ShotId> shots;       // length as requested
  std::vector<int> local_states;   // the local indices walked
  double log_probability = 0.0;
};

/// Samples a temporal pattern of `length` shots: a video from Pi2
/// (restricted to videos with enough states to finish the walk), a start
/// state from Pi1, then hops along A1. After feedback training the walk
/// concentrates on the access patterns users marked positive — sampling
/// is how one inspects what the mediator has learned, and a natural
/// query-workload generator for benchmarks.
StatusOr<SampledPattern> SamplePattern(const HierarchicalModel& model,
                                       Rng& rng, size_t length);

/// Samples a pattern and maps each shot to one of its annotated events —
/// a model-driven temporal *event* pattern (e.g. to feed back in as a
/// query). Shots are annotated by construction (they are HMMM states).
StatusOr<std::vector<EventId>> SampleEventPattern(
    const HierarchicalModel& model, const VideoCatalog& catalog, Rng& rng,
    size_t length);

}  // namespace hmmm

#endif  // HMMM_CORE_GENERATIVE_H_
