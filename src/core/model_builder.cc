#include "core/model_builder.h"

#include "core/affinity.h"
#include "core/learner.h"

namespace hmmm {

ModelBuilder::ModelBuilder(const VideoCatalog& catalog,
                           ModelBuilderOptions options)
    : catalog_(catalog), options_(options) {}

StatusOr<HierarchicalModel> ModelBuilder::Build() const {
  HMMM_RETURN_IF_ERROR(catalog_.Validate());

  HierarchicalModel model;
  model.vocabulary_ = catalog_.vocabulary();

  // Level 1: one local MMM per video over its annotated shots.
  std::vector<ShotId> all_states;
  for (const VideoRecord& video : catalog_.videos()) {
    LocalShotModel local;
    local.video_id = video.id;
    local.states = catalog_.AnnotatedShots(video.id);

    std::vector<int> event_counts;
    event_counts.reserve(local.states.size());
    for (ShotId sid : local.states) {
      event_counts.push_back(catalog_.shot(sid).NumEvents());
    }
    HMMM_ASSIGN_OR_RETURN(local.a1, InitialShotAffinity(event_counts));
    // No training data yet: uniform initial-state preference (Eq. 4 is
    // applied by the learner once feedback exists).
    local.pi1 = UniformDistribution(local.states.size());

    all_states.insert(all_states.end(), local.states.begin(),
                      local.states.end());
    model.locals_.push_back(std::move(local));
  }
  model.RebuildStateIndex();

  // B1: Eq.-3 min-max normalization over the annotated shots' features.
  if (!all_states.empty()) {
    const Matrix raw = catalog_.RawFeatureMatrixFor(all_states);
    HMMM_ASSIGN_OR_RETURN(model.b1_, normalizer_.FitTransform(raw));
    model.feature_minima_ = normalizer_.minima();
    model.feature_maxima_ = normalizer_.maxima();
  } else {
    model.b1_ = Matrix(0, static_cast<size_t>(catalog_.num_features()));
  }

  // Level 2: the integrated MMM over videos.
  const size_t m = catalog_.num_videos();
  model.a2_ = Matrix(m, m, m > 0 ? 1.0 / static_cast<double>(m) : 0.0);
  model.b2_ = catalog_.EventCountMatrix();
  model.pi2_ = UniformDistribution(m);

  // Cross-level: P12 (Eq. 7 or Eq. 10) and B1' (Eq. 11).
  model.p12_ = UniformFeatureWeights(model.vocabulary_.size(),
                                     static_cast<size_t>(catalog_.num_features()));
  HMMM_ASSIGN_OR_RETURN(model.b1_prime_,
                        ComputeEventCentroids(model, catalog_));
  if (options_.learn_feature_weights) {
    HMMM_ASSIGN_OR_RETURN(model.p12_, ComputeFeatureWeights(model, catalog_));
  }

  HMMM_RETURN_IF_ERROR(model.Validate());
  return model;
}

StatusOr<HierarchicalModel> RebuildPreservingLearning(
    const HierarchicalModel& old_model, const VideoCatalog& catalog,
    ModelBuilderOptions options) {
  ModelBuilder builder(catalog, options);
  HMMM_ASSIGN_OR_RETURN(HierarchicalModel model, builder.Build());

  // Carry over local learning for videos whose state list is unchanged.
  const size_t old_m = old_model.num_videos();
  for (LocalShotModel& local : model.mutable_locals()) {
    if (static_cast<size_t>(local.video_id) >= old_m) continue;
    const LocalShotModel& old_local = old_model.local(local.video_id);
    if (old_local.states != local.states) continue;
    local.a1 = old_local.a1;
    local.pi1 = old_local.pi1;
  }

  // Embed the old A2 block; rows re-normalize over the grown video set.
  const size_t m = model.num_videos();
  if (old_m > 0 && old_m <= m) {
    Matrix& a2 = model.mutable_a2();
    for (size_t r = 0; r < old_m; ++r) {
      for (size_t c = 0; c < m; ++c) {
        a2.at(r, c) = c < old_m ? old_model.a2().at(r, c) : 0.0;
      }
    }
    a2.NormalizeRows();

    // Pi2: keep old preferences, seed each new video with 1/m mass.
    std::vector<double>& pi2 = model.mutable_pi2();
    double total = 0.0;
    for (size_t v = 0; v < m; ++v) {
      pi2[v] = v < old_m ? old_model.pi2()[v] : 1.0 / static_cast<double>(m);
      total += pi2[v];
    }
    if (total > 0.0) {
      for (double& p : pi2) p /= total;
    }
  }
  HMMM_RETURN_IF_ERROR(model.Validate());
  return model;
}

}  // namespace hmmm
