#include "core/pattern_mining.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace hmmm {

std::string MinedPattern::ToQuery(const EventVocabulary& vocabulary) const {
  std::vector<std::string> names;
  names.reserve(events.size());
  for (EventId e : events) names.push_back(vocabulary.Name(e));
  return StrJoin(names, " ; ");
}

std::vector<MinedPattern> MineFrequentEventPatterns(
    const VideoCatalog& catalog, const PatternMiningOptions& options) {
  struct Counts {
    size_t occurrences = 0;
    std::set<VideoId> videos;
  };
  std::map<std::vector<EventId>, Counts> counts;
  size_t budget = options.max_occurrences;

  for (const VideoRecord& video : catalog.videos()) {
    const std::vector<ShotId> annotated = catalog.AnnotatedShots(video.id);
    const int n = static_cast<int>(annotated.size());

    // DFS over gap-bounded positions; at each extension, branch over the
    // shot's event annotations.
    std::vector<EventId> current;
    auto extend = [&](auto&& self, int position) -> bool {
      if (current.size() >= options.min_length) {
        if (budget == 0) return false;
        --budget;
        Counts& entry = counts[current];
        ++entry.occurrences;
        entry.videos.insert(video.id);
      }
      if (current.size() >= options.max_length) return true;
      const int last = position + options.max_gap;
      for (int next = position + 1; next <= last && next < n; ++next) {
        for (EventId e :
             catalog.shot(annotated[static_cast<size_t>(next)]).events) {
          current.push_back(e);
          const bool keep_going = self(self, next);
          current.pop_back();
          if (!keep_going) return false;
        }
      }
      return true;
    };
    bool keep_going = true;
    for (int start = 0; start < n && keep_going; ++start) {
      for (EventId e :
           catalog.shot(annotated[static_cast<size_t>(start)]).events) {
        current.push_back(e);
        keep_going = extend(extend, start);
        current.pop_back();
        if (!keep_going) break;
      }
    }
    if (!keep_going) break;
  }

  std::vector<MinedPattern> results;
  for (const auto& [events, entry] : counts) {
    if (entry.occurrences < options.min_support) continue;
    MinedPattern pattern;
    pattern.events = events;
    pattern.support = entry.occurrences;
    pattern.video_support = entry.videos.size();
    results.push_back(std::move(pattern));
  }
  std::sort(results.begin(), results.end(),
            [](const MinedPattern& a, const MinedPattern& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.video_support != b.video_support) {
                return a.video_support > b.video_support;
              }
              return a.events < b.events;
            });
  if (results.size() > options.max_results) {
    results.resize(options.max_results);
  }
  return results;
}

}  // namespace hmmm
