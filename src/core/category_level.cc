#include "core/category_level.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"

namespace hmmm {

namespace {

/// Row-normalized event distribution per video; all-zero rows (videos
/// without annotations) stay zero.
Matrix EventDistributions(const Matrix& b2) {
  Matrix out = b2;
  out.NormalizeRows();
  return out;
}

double SquaredDistance(const Matrix& a, size_t row_a, const Matrix& b,
                       size_t row_b) {
  double sum = 0.0;
  for (size_t c = 0; c < a.cols(); ++c) {
    const double d = a.at(row_a, c) - b.at(row_b, c);
    sum += d * d;
  }
  return sum;
}

}  // namespace

std::vector<std::vector<VideoId>> CategoryLevel::VideosByCluster() const {
  std::vector<std::vector<VideoId>> out(num_clusters());
  for (size_t v = 0; v < cluster_of_video_.size(); ++v) {
    out[static_cast<size_t>(cluster_of_video_[v])].push_back(
        static_cast<VideoId>(v));
  }
  return out;
}

bool CategoryLevel::ClusterContainsEvent(int cluster, EventId event) const {
  if (cluster < 0 || static_cast<size_t>(cluster) >= b3_.rows()) return false;
  if (event < 0 || static_cast<size_t>(event) >= b3_.cols()) return false;
  return b3_.at(static_cast<size_t>(cluster), static_cast<size_t>(event)) >
         0.0;
}

Status CategoryLevel::Validate() const {
  const size_t k = num_clusters();
  for (int c : cluster_of_video_) {
    if (c < 0 || static_cast<size_t>(c) >= k) {
      return Status::Internal("video assigned to invalid cluster");
    }
  }
  if (a3_.rows() != k || a3_.cols() != k) {
    return Status::Internal("A3 shape mismatch");
  }
  if (!a3_.IsRowStochastic(1e-6, /*accept_zero_rows=*/true)) {
    return Status::Internal("A3 not row-stochastic");
  }
  if (pi3_.size() != k) return Status::Internal("Pi3 size mismatch");
  double pi_sum = 0.0;
  for (double p : pi3_) pi_sum += p;
  if (k > 0 && std::abs(pi_sum - 1.0) > 1e-6) {
    return Status::Internal("Pi3 not a distribution");
  }
  if (centroids_.rows() != k || centroids_.cols() != b3_.cols()) {
    return Status::Internal("centroid shape mismatch");
  }
  return Status::OK();
}

std::string CategoryLevel::ToString(const EventVocabulary& vocabulary) const {
  std::string out;
  const auto members = VideosByCluster();
  for (size_t c = 0; c < num_clusters(); ++c) {
    out += StrFormat("cluster %zu: %zu videos, top events:", c,
                     members[c].size());
    // Top-3 events by B3 mass.
    std::vector<size_t> order(b3_.cols());
    for (size_t e = 0; e < order.size(); ++e) order[e] = e;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return b3_.at(c, a) > b3_.at(c, b);
    });
    for (size_t i = 0; i < std::min<size_t>(3, order.size()); ++i) {
      if (b3_.at(c, order[i]) <= 0.0) break;
      out += StrFormat(" %s(%.0f)",
                       vocabulary.Name(static_cast<EventId>(order[i])).c_str(),
                       b3_.at(c, order[i]));
    }
    out += "\n";
  }
  return out;
}

StatusOr<CategoryLevel> BuildCategoryLevel(const HierarchicalModel& model,
                                           const CategoryLevelOptions& options) {
  const size_t m = model.num_videos();
  if (m == 0) return Status::InvalidArgument("no videos to cluster");
  const Matrix distributions = EventDistributions(model.b2());
  const size_t num_events = distributions.cols();

  size_t k = options.num_clusters > 0
                 ? static_cast<size_t>(options.num_clusters)
                 : std::max<size_t>(
                       m > 1 ? 2 : 1,
                       static_cast<size_t>(std::sqrt(static_cast<double>(m) / 2.0)));
  k = std::min(k, m);

  // k-means++ seeding.
  Rng rng(options.seed);
  Matrix centroids(k, num_events, 0.0);
  std::vector<size_t> seeds;
  seeds.push_back(rng.NextUint64(m));
  while (seeds.size() < k) {
    std::vector<double> weights(m, 0.0);
    for (size_t v = 0; v < m; ++v) {
      double best = 1e300;
      for (size_t s : seeds) {
        best = std::min(best, SquaredDistance(distributions, v,
                                              distributions, s));
      }
      weights[v] = best;
    }
    int pick = rng.NextWeighted(weights);
    if (pick < 0) pick = static_cast<int>(rng.NextUint64(m));
    seeds.push_back(static_cast<size_t>(pick));
  }
  for (size_t c = 0; c < k; ++c) {
    for (size_t e = 0; e < num_events; ++e) {
      centroids.at(c, e) = distributions.at(seeds[c], e);
    }
  }

  // Lloyd iterations.
  std::vector<int> assignment(m, 0);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    bool changed = false;
    for (size_t v = 0; v < m; ++v) {
      int best = 0;
      double best_distance = 1e300;
      for (size_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(distributions, v, centroids, c);
        if (d < best_distance) {
          best_distance = d;
          best = static_cast<int>(c);
        }
      }
      if (assignment[v] != best) {
        assignment[v] = best;
        changed = true;
      }
    }
    // Recompute centroids; empty clusters keep their previous centroid.
    Matrix sums(k, num_events, 0.0);
    std::vector<double> counts(k, 0.0);
    for (size_t v = 0; v < m; ++v) {
      const auto c = static_cast<size_t>(assignment[v]);
      counts[c] += 1.0;
      for (size_t e = 0; e < num_events; ++e) {
        sums.at(c, e) += distributions.at(v, e);
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] <= 0.0) continue;
      for (size_t e = 0; e < num_events; ++e) {
        centroids.at(c, e) = sums.at(c, e) / counts[c];
      }
    }
    if (!changed) break;
  }

  CategoryLevel level;
  level.cluster_of_video_ = assignment;
  level.centroids_ = centroids;
  level.b3_ = Matrix(k, num_events, 0.0);
  for (size_t v = 0; v < m; ++v) {
    const auto c = static_cast<size_t>(assignment[v]);
    for (size_t e = 0; e < num_events; ++e) {
      level.b3_.at(c, e) += model.b2().at(v, e);
    }
  }
  level.a3_ = Matrix(k, k, 1.0 / static_cast<double>(k));
  level.pi3_.assign(k, 0.0);
  for (int c : assignment) {
    level.pi3_[static_cast<size_t>(c)] += 1.0 / static_cast<double>(m);
  }
  HMMM_RETURN_IF_ERROR(level.Validate());
  return level;
}

}  // namespace hmmm
