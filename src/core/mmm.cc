#include "core/mmm.h"

#include <cmath>

#include "common/strings.h"

namespace hmmm {

Status Mmm::Validate() const {
  const size_t n = pi.size();
  if (a.rows() != n || a.cols() != n) {
    return Status::Internal(
        StrFormat("A is %zux%zu for %zu states", a.rows(), a.cols(), n));
  }
  if (b.rows() != n) {
    return Status::Internal(
        StrFormat("B has %zu rows for %zu states", b.rows(), n));
  }
  if (!a.IsRowStochastic(1e-6, /*accept_zero_rows=*/true)) {
    return Status::Internal("A is not row-stochastic");
  }
  double pi_sum = 0.0;
  for (double p : pi) {
    if (p < -1e-12) return Status::Internal("negative Pi entry");
    pi_sum += p;
  }
  if (n > 0 && std::abs(pi_sum - 1.0) > 1e-6) {
    return Status::Internal(StrFormat("Pi sums to %f", pi_sum));
  }
  return Status::OK();
}

std::vector<double> UniformDistribution(size_t n) {
  if (n == 0) return {};
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

}  // namespace hmmm
