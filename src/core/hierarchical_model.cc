#include "core/hierarchical_model.h"

#include <algorithm>
#include <cmath>

#include "common/serialization.h"
#include "common/strings.h"
#include "storage/model_io.h"

namespace hmmm {

namespace {
constexpr uint32_t kModelVersion = 1;
}  // namespace

StatusOr<std::vector<double>> HierarchicalModel::NormalizeFeatures(
    const std::vector<double>& raw) const {
  if (feature_minima_.empty()) {
    return Status::FailedPrecondition("model has no normalizer parameters");
  }
  if (raw.size() != feature_minima_.size()) {
    return Status::InvalidArgument("feature width mismatch");
  }
  std::vector<double> out(raw.size());
  for (size_t c = 0; c < raw.size(); ++c) {
    const double span = feature_maxima_[c] - feature_minima_[c];
    const double v = span > 0.0 ? (raw[c] - feature_minima_[c]) / span : 0.0;
    out[c] = std::clamp(v, 0.0, 1.0);
  }
  return out;
}

Matrix HierarchicalModel::LinkMatrix() const {
  Matrix l12(locals_.size(), state_shots_.size(), 0.0);
  size_t state = 0;
  for (size_t v = 0; v < locals_.size(); ++v) {
    for (size_t s = 0; s < locals_[v].states.size(); ++s) {
      l12.at(v, state++) = 1.0;
    }
  }
  return l12;
}

int HierarchicalModel::GlobalStateOf(ShotId shot) const {
  if (shot < 0 || static_cast<size_t>(shot) >= state_of_shot_.size()) {
    return -1;
  }
  return state_of_shot_[static_cast<size_t>(shot)];
}

void HierarchicalModel::RebuildStateIndex() {
  state_shots_.clear();
  state_videos_.clear();
  state_local_index_.clear();
  ShotId max_shot = -1;
  for (const LocalShotModel& local : locals_) {
    for (size_t i = 0; i < local.states.size(); ++i) {
      state_shots_.push_back(local.states[i]);
      state_videos_.push_back(local.video_id);
      state_local_index_.push_back(static_cast<int>(i));
      max_shot = std::max(max_shot, local.states[i]);
    }
  }
  state_of_shot_.assign(static_cast<size_t>(max_shot) + 1, -1);
  for (size_t i = 0; i < state_shots_.size(); ++i) {
    state_of_shot_[static_cast<size_t>(state_shots_[i])] =
        static_cast<int>(i);
  }
}

Status HierarchicalModel::Validate() const {
  const size_t num_events = vocabulary_.size();
  const size_t k = b1_.cols();

  size_t total_states = 0;
  for (size_t v = 0; v < locals_.size(); ++v) {
    const LocalShotModel& local = locals_[v];
    if (local.video_id != static_cast<VideoId>(v)) {
      return Status::Internal("local model video_id not dense");
    }
    const size_t n = local.num_states();
    total_states += n;
    Mmm level_view{local.a1, Matrix(n, k, 0.0), local.pi1};
    HMMM_RETURN_IF_ERROR(level_view.Validate());
  }
  if (b1_.rows() != total_states) {
    return Status::Internal(StrFormat("B1 has %zu rows for %zu states",
                                      b1_.rows(), total_states));
  }
  if (state_shots_.size() != total_states) {
    return Status::Internal("state index out of sync");
  }
  if (a2_.rows() != locals_.size() || a2_.cols() != locals_.size()) {
    return Status::Internal("A2 shape mismatch");
  }
  if (!a2_.IsRowStochastic(1e-6, /*accept_zero_rows=*/true)) {
    return Status::Internal("A2 not row-stochastic");
  }
  if (b2_.rows() != locals_.size() || b2_.cols() != num_events) {
    return Status::Internal("B2 shape mismatch");
  }
  if (pi2_.size() != locals_.size()) {
    return Status::Internal("Pi2 size mismatch");
  }
  double pi2_sum = 0.0;
  for (double p : pi2_) pi2_sum += p;
  if (!locals_.empty() && std::abs(pi2_sum - 1.0) > 1e-6) {
    return Status::Internal("Pi2 not a distribution");
  }
  if (p12_.rows() != num_events || p12_.cols() != k) {
    return Status::Internal("P12 shape mismatch");
  }
  if (b1_prime_.rows() != num_events || b1_prime_.cols() != k) {
    return Status::Internal("B1' shape mismatch");
  }
  return Status::OK();
}

StatusOr<HierarchicalModel> HierarchicalModel::SliceForServing(
    VideoId video_begin, VideoId video_end,
    const std::vector<ShotId>& global_to_local_shot) const {
  if (video_begin < 0 || video_end < video_begin ||
      static_cast<size_t>(video_end) > locals_.size()) {
    return Status::InvalidArgument(
        StrFormat("video range [%d, %d) outside [0, %zu)", video_begin,
                  video_end, locals_.size()));
  }
  const size_t n = static_cast<size_t>(video_end - video_begin);
  HierarchicalModel slice;
  slice.vocabulary_ = vocabulary_;

  // Level 1: local MMMs copied verbatim, states renumbered into the
  // slice catalog's dense ShotId space.
  size_t state_begin = 0;
  for (VideoId v = 0; v < video_begin; ++v) {
    state_begin += locals_[static_cast<size_t>(v)].num_states();
  }
  size_t num_states = 0;
  slice.locals_.reserve(n);
  for (VideoId v = video_begin; v < video_end; ++v) {
    const LocalShotModel& src = locals_[static_cast<size_t>(v)];
    LocalShotModel local;
    local.video_id = v - video_begin;
    local.states.reserve(src.states.size());
    for (ShotId shot : src.states) {
      if (shot < 0 ||
          static_cast<size_t>(shot) >= global_to_local_shot.size() ||
          global_to_local_shot[static_cast<size_t>(shot)] < 0) {
        return Status::InvalidArgument(
            StrFormat("shot %d of video %d has no slice mapping", shot, v));
      }
      local.states.push_back(global_to_local_shot[static_cast<size_t>(shot)]);
    }
    local.a1 = src.a1;
    local.pi1 = src.pi1;
    num_states += local.states.size();
    slice.locals_.push_back(std::move(local));
  }

  // B1: the shard's rows form one contiguous block because the global
  // state index enumerates locals_ in video order.
  const size_t k = b1_.cols();
  slice.b1_ = Matrix(num_states, k, 0.0);
  for (size_t r = 0; r < num_states; ++r) {
    for (size_t c = 0; c < k; ++c) {
      slice.b1_.at(r, c) = b1_.at(state_begin + r, c);
    }
  }

  // Archive-global pieces, carried over unchanged so Eq.-3/-14 terms
  // stay bit-identical.
  slice.feature_minima_ = feature_minima_;
  slice.feature_maxima_ = feature_maxima_;
  slice.p12_ = p12_;
  slice.b1_prime_ = b1_prime_;

  // Level 2 restricted to the range. A2 rows and Pi2 lose the mass that
  // pointed at videos outside the shard, so renormalize (uniform
  // fallback when everything pointed outside) — this only reorders the
  // Step-2 walk within the shard.
  slice.a2_ = Matrix(n, n, 0.0);
  for (size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < n; ++c) {
      const double value = a2_.at(static_cast<size_t>(video_begin) + r,
                                  static_cast<size_t>(video_begin) + c);
      slice.a2_.at(r, c) = value;
      sum += value;
    }
    if (sum > 0.0) {
      for (size_t c = 0; c < n; ++c) slice.a2_.at(r, c) /= sum;
    }
  }
  slice.b2_ = Matrix(n, b2_.cols(), 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < b2_.cols(); ++c) {
      slice.b2_.at(r, c) = b2_.at(static_cast<size_t>(video_begin) + r, c);
    }
  }
  slice.pi2_.assign(n, 0.0);
  double pi2_sum = 0.0;
  for (size_t r = 0; r < n; ++r) {
    slice.pi2_[r] = pi2_[static_cast<size_t>(video_begin) + r];
    pi2_sum += slice.pi2_[r];
  }
  if (pi2_sum > 0.0) {
    for (double& p : slice.pi2_) p /= pi2_sum;
  } else if (n > 0) {
    for (double& p : slice.pi2_) p = 1.0 / static_cast<double>(n);
  }

  slice.RebuildStateIndex();
  HMMM_RETURN_IF_ERROR(slice.Validate());
  return slice;
}

std::string HierarchicalModel::Serialize() const {
  BinaryWriter w;
  w.WriteVarint(vocabulary_.size());
  for (const std::string& name : vocabulary_.names()) w.WriteString(name);

  w.WriteVarint(locals_.size());
  for (const LocalShotModel& local : locals_) {
    w.WriteInt32(local.video_id);
    w.WriteInt32Vector(
        std::vector<int32_t>(local.states.begin(), local.states.end()));
    w.WriteMatrix(local.a1);
    w.WriteDoubleVector(local.pi1);
  }
  w.WriteMatrix(b1_);
  w.WriteDoubleVector(feature_minima_);
  w.WriteDoubleVector(feature_maxima_);
  w.WriteMatrix(a2_);
  w.WriteMatrix(b2_);
  w.WriteDoubleVector(pi2_);
  w.WriteMatrix(p12_);
  w.WriteMatrix(b1_prime_);
  return WrapChecksummed(kModelMagic, kModelVersion, w.buffer());
}

StatusOr<HierarchicalModel> HierarchicalModel::Deserialize(
    std::string_view data) {
  uint32_t version = 0;
  HMMM_ASSIGN_OR_RETURN(std::string payload,
                        UnwrapChecksummed(kModelMagic, data, &version));
  if (version != kModelVersion) {
    return Status::DataLoss("unsupported model version");
  }
  BinaryReader r(payload);
  HierarchicalModel model;

  HMMM_ASSIGN_OR_RETURN(uint64_t vocab_size, r.ReadVarint());
  for (uint64_t i = 0; i < vocab_size; ++i) {
    HMMM_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    model.vocabulary_.Register(name);
  }
  HMMM_ASSIGN_OR_RETURN(uint64_t num_locals, r.ReadVarint());
  for (uint64_t i = 0; i < num_locals; ++i) {
    LocalShotModel local;
    HMMM_ASSIGN_OR_RETURN(local.video_id, r.ReadInt32());
    HMMM_ASSIGN_OR_RETURN(auto states, r.ReadInt32Vector());
    local.states.assign(states.begin(), states.end());
    HMMM_ASSIGN_OR_RETURN(local.a1, r.ReadMatrix());
    HMMM_ASSIGN_OR_RETURN(local.pi1, r.ReadDoubleVector());
    model.locals_.push_back(std::move(local));
  }
  HMMM_ASSIGN_OR_RETURN(model.b1_, r.ReadMatrix());
  HMMM_ASSIGN_OR_RETURN(model.feature_minima_, r.ReadDoubleVector());
  HMMM_ASSIGN_OR_RETURN(model.feature_maxima_, r.ReadDoubleVector());
  HMMM_ASSIGN_OR_RETURN(model.a2_, r.ReadMatrix());
  HMMM_ASSIGN_OR_RETURN(model.b2_, r.ReadMatrix());
  HMMM_ASSIGN_OR_RETURN(model.pi2_, r.ReadDoubleVector());
  HMMM_ASSIGN_OR_RETURN(model.p12_, r.ReadMatrix());
  HMMM_ASSIGN_OR_RETURN(model.b1_prime_, r.ReadMatrix());
  if (!r.AtEnd()) return Status::DataLoss("trailing bytes in model blob");
  model.RebuildStateIndex();
  HMMM_RETURN_IF_ERROR(model.Validate());
  return model;
}

Status HierarchicalModel::SaveToFile(const std::string& path) const {
  return WriteFile(path, Serialize());
}

StatusOr<HierarchicalModel> HierarchicalModel::LoadFromFile(
    const std::string& path) {
  // Same load contract as LoadCatalog: kNotFound / kIOError pass through
  // (the read is already retried), truncation and corruption surface as
  // kDataLoss with file context.
  HMMM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  StatusOr<HierarchicalModel> model = Deserialize(data);
  if (!model.ok()) {
    return AnnotateBlobError(model.status(), "model", path, data.size());
  }
  return model;
}

}  // namespace hmmm
