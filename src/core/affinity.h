#ifndef HMMM_CORE_AFFINITY_H_
#define HMMM_CORE_AFFINITY_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace hmmm {

/// A positive access pattern (user feedback): the sequence of local state
/// indices that were accessed together, with its access frequency. At the
/// shot level the states must be in temporal order; at the video level the
/// order is irrelevant (A2 ignores temporal direction, Section 4.2.2.1).
struct AccessPattern {
  std::vector<int> states;
  double access_count = 1.0;
};

/// How Pi is derived from access patterns. The paper's Eq. 4 as printed
/// counts every access of a state, while the surrounding prose counts only
/// occurrences *as the initial state*; both are provided (DESIGN.md §5).
enum class PiSemantics {
  kInitialStateCounts,  // prose semantics (default)
  kLiteralEquation4,    // formula-as-printed semantics
};

/// Initializes the shot-level temporal affinity matrix A1 from annotation
/// counts (Section 4.2.1.1). `event_counts[i]` is NE(s_i) for the video's
/// annotated shots in temporal order; every entry must be >= 1.
///
///   A1(i,j) = 0                                        for j < i
///   A1(i,j) = NE(s_j)     / (sum_{k>=i} NE(s_k) - 1)   for i < j
///   A1(i,i) = (NE(s_i)-1) / (sum_{k>=i} NE(s_k) - 1)   for i < N-1
///   A1(N-1,N-1) = 1
///
/// The result is row-stochastic and upper-triangular.
StatusOr<Matrix> InitialShotAffinity(const std::vector<int>& event_counts);

/// Accumulates the temporal co-access matrix AF1 of Eq. 1:
///   aff1(m,n) = A1(m,n) * sum_k use(m,k) * use(n,k) * access(k)
/// restricted to m <= n (temporal order; states are temporally indexed).
/// `prior` is the current A1. State indices out of range are an error.
StatusOr<Matrix> AccumulateShotAffinity(
    const Matrix& prior, const std::vector<AccessPattern>& patterns);

/// Row-normalizes an accumulated affinity matrix into a new transition
/// matrix (Eq. 2 / Eq. 6). Rows with zero accumulated affinity keep the
/// corresponding `prior` row, so A stays row-stochastic for states that
/// were never part of a positive pattern.
Matrix NormalizeAffinity(const Matrix& accumulated, const Matrix& prior);

/// Accumulates the video-level co-access matrix AF2 of Eq. 5 (no temporal
/// restriction, no prior weighting):
///   aff2(m,n) = sum_k use(m,k) * use(n,k) * access(k).
StatusOr<Matrix> AccumulateVideoAffinity(
    size_t num_videos, const std::vector<AccessPattern>& patterns);

/// Derives an initial-state distribution from access patterns (Eq. 4 under
/// either semantics, see PiSemantics). Returns `fallback` when the
/// patterns touch no state.
std::vector<double> DistributionFromPatterns(
    size_t num_states, const std::vector<AccessPattern>& patterns,
    PiSemantics semantics, const std::vector<double>& fallback);

}  // namespace hmmm

#endif  // HMMM_CORE_AFFINITY_H_
