#ifndef HMMM_CORE_CATEGORY_LEVEL_H_
#define HMMM_CORE_CATEGORY_LEVEL_H_

#include <string>
#include <vector>

#include "core/hierarchical_model.h"

namespace hmmm {

/// Options for building the third HMMM level.
struct CategoryLevelOptions {
  /// Number of clusters (S3 states); 0 = heuristic sqrt(M/2), at least 2
  /// when the archive has more than one video.
  int num_clusters = 0;
  int max_iterations = 64;
  uint64_t seed = 17;
};

/// The video-category level of a d=3 HMMM (Definition 1 with one more
/// level): S3 states are semantic video clusters discovered from the B2
/// event signatures ("the integrated MMM is constructed such that the
/// system is able to learn the semantic concepts and then cluster the
/// videos into different categories", Section 4.2.2). Carries the
/// level-3 matrices (A3, B3, Pi3) and the L23 links (cluster_of_video).
class CategoryLevel {
 public:
  CategoryLevel() = default;

  size_t num_clusters() const { return b3_.rows(); }
  size_t num_videos() const { return cluster_of_video_.size(); }

  /// L23 membership: cluster index of each video.
  const std::vector<int>& cluster_of_video() const {
    return cluster_of_video_;
  }
  int ClusterOf(VideoId video) const {
    return cluster_of_video_[static_cast<size_t>(video)];
  }

  /// B3: clusters x events — summed event counts of member videos.
  const Matrix& b3() const { return b3_; }
  /// A3: cluster-level transition/affinity matrix (uniform until video
  /// co-access feedback is aggregated through L23).
  const Matrix& a3() const { return a3_; }
  Matrix& mutable_a3() { return a3_; }
  /// Pi3: initial cluster distribution, proportional to cluster size.
  const std::vector<double>& pi3() const { return pi3_; }

  /// Cluster centroids in event-distribution space (rows sum to 1 for
  /// non-empty clusters).
  const Matrix& centroids() const { return centroids_; }

  /// Member videos per cluster.
  std::vector<std::vector<VideoId>> VideosByCluster() const;

  /// True if any member video of `cluster` contains `event` (B3 check —
  /// the level-3 analogue of the traversal's Step-2 B2 check).
  bool ClusterContainsEvent(int cluster, EventId event) const;

  /// Structural invariants.
  Status Validate() const;

  /// Human-readable summary ("cluster 0: 6 videos, top events ...").
  std::string ToString(const EventVocabulary& vocabulary) const;

 private:
  friend StatusOr<CategoryLevel> BuildCategoryLevel(
      const HierarchicalModel& model, const CategoryLevelOptions& options);

  std::vector<int> cluster_of_video_;
  Matrix b3_;
  Matrix a3_;
  std::vector<double> pi3_;
  Matrix centroids_;
};

/// Builds the category level by k-means (k-means++ seeding, deterministic
/// in options.seed) over the videos' row-normalized B2 event signatures.
/// Requires a model with at least one video.
StatusOr<CategoryLevel> BuildCategoryLevel(
    const HierarchicalModel& model, const CategoryLevelOptions& options = {});

}  // namespace hmmm

#endif  // HMMM_CORE_CATEGORY_LEVEL_H_
