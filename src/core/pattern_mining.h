#ifndef HMMM_CORE_PATTERN_MINING_H_
#define HMMM_CORE_PATTERN_MINING_H_

#include <string>
#include <vector>

#include "storage/catalog.h"

namespace hmmm {

/// A frequent temporal event pattern discovered in the archive.
struct MinedPattern {
  std::vector<EventId> events;
  /// Number of gap-bounded occurrences across the archive.
  size_t support = 0;
  /// Number of distinct videos containing at least one occurrence.
  size_t video_support = 0;

  /// Renders the pattern in query-language syntax ("free_kick ; goal"),
  /// ready to feed back into RetrievalEngine::Query.
  std::string ToQuery(const EventVocabulary& vocabulary) const;
};

/// Options for frequent-pattern mining.
struct PatternMiningOptions {
  size_t min_length = 2;
  size_t max_length = 3;
  /// Consecutive pattern events must occur within this many annotated
  /// shots of each other (the same unit as the query language's `;<N`).
  int max_gap = 3;
  /// Patterns below this occurrence count are dropped.
  size_t min_support = 2;
  size_t max_results = 20;
  /// Safety cap on enumerated occurrences archive-wide.
  size_t max_occurrences = 2000000;
};

/// Mines the archive's frequent temporal event patterns: gap-bounded
/// event n-grams over each video's annotated shot sequence, ranked by
/// support (occurrences), ties broken by video support then lexicographic
/// order. The discovery complement to retrieval — it surfaces which
/// temporal patterns an archive actually contains, and its output is
/// directly queryable (MinedPattern::ToQuery).
std::vector<MinedPattern> MineFrequentEventPatterns(
    const VideoCatalog& catalog, const PatternMiningOptions& options = {});

}  // namespace hmmm

#endif  // HMMM_CORE_PATTERN_MINING_H_
