#ifndef HMMM_CORE_MMM_H_
#define HMMM_CORE_MMM_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace hmmm {

/// One Markov Model Mediator level: states with a transition matrix A, a
/// feature matrix B, and an initial state distribution Pi. The states'
/// external identities (ShotId / VideoId) are kept by the owner; an Mmm
/// works in dense local indices 0..n-1.
struct Mmm {
  Matrix a;                // n x n transition/affinity matrix
  Matrix b;                // n x k feature matrix
  std::vector<double> pi;  // n initial-state probabilities

  size_t num_states() const { return pi.size(); }

  /// Checks shape consistency, row-stochasticity of A (empty rows allowed
  /// for never-trained states) and that Pi is a distribution.
  Status Validate() const;
};

/// Uniform distribution over n states (used before any training data
/// exists; the paper derives Pi from the training set, Eq. 4).
std::vector<double> UniformDistribution(size_t n);

}  // namespace hmmm

#endif  // HMMM_CORE_MMM_H_
