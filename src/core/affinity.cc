#include "core/affinity.h"

#include <algorithm>

#include "common/strings.h"

namespace hmmm {

StatusOr<Matrix> InitialShotAffinity(const std::vector<int>& event_counts) {
  const size_t n = event_counts.size();
  if (n == 0) return Matrix();
  for (int ne : event_counts) {
    if (ne < 1) {
      return Status::InvalidArgument(
          "annotated shots must have at least one event (NE >= 1)");
    }
  }
  // Suffix sums: suffix[i] = sum_{k>=i} NE(s_k).
  std::vector<double> suffix(n + 1, 0.0);
  for (size_t i = n; i-- > 0;) {
    suffix[i] = suffix[i + 1] + static_cast<double>(event_counts[i]);
  }

  Matrix a1(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (i == n - 1) {
      // Last annotated shot: absorbing (paper: A1(N,N) = 1).
      a1.at(i, i) = 1.0;
      continue;
    }
    const double denom = suffix[i] - 1.0;
    // denom >= 1 because at least two shots remain, each with NE >= 1.
    a1.at(i, i) = (static_cast<double>(event_counts[i]) - 1.0) / denom;
    for (size_t j = i + 1; j < n; ++j) {
      a1.at(i, j) = static_cast<double>(event_counts[j]) / denom;
    }
  }
  return a1;
}

namespace {

Status ValidatePatterns(size_t num_states,
                        const std::vector<AccessPattern>& patterns) {
  for (const AccessPattern& pattern : patterns) {
    if (pattern.access_count < 0.0) {
      return Status::InvalidArgument("negative access count");
    }
    for (int state : pattern.states) {
      if (state < 0 || static_cast<size_t>(state) >= num_states) {
        return Status::OutOfRange(
            StrFormat("state %d out of %zu", state, num_states));
      }
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<Matrix> AccumulateShotAffinity(
    const Matrix& prior, const std::vector<AccessPattern>& patterns) {
  if (prior.rows() != prior.cols()) {
    return Status::InvalidArgument("prior affinity must be square");
  }
  const size_t n = prior.rows();
  HMMM_RETURN_IF_ERROR(ValidatePatterns(n, patterns));

  // co_access(m, n) = sum_k use(m,k) * use(n,k) * access(k), m <= n.
  Matrix co_access(n, n, 0.0);
  for (const AccessPattern& pattern : patterns) {
    // De-duplicate states within the pattern: `use` is an indicator.
    std::vector<int> states = pattern.states;
    std::sort(states.begin(), states.end());
    states.erase(std::unique(states.begin(), states.end()), states.end());
    for (size_t x = 0; x < states.size(); ++x) {
      for (size_t y = x; y < states.size(); ++y) {
        // states are temporally indexed, so sorted order == T_m <= T_n.
        co_access.at(static_cast<size_t>(states[x]),
                     static_cast<size_t>(states[y])) += pattern.access_count;
      }
    }
  }
  Matrix af1(n, n, 0.0);
  for (size_t m = 0; m < n; ++m) {
    for (size_t j = 0; j < n; ++j) {
      af1.at(m, j) = prior.at(m, j) * co_access.at(m, j);
    }
  }
  return af1;
}

Matrix NormalizeAffinity(const Matrix& accumulated, const Matrix& prior) {
  Matrix out = accumulated;
  for (size_t r = 0; r < out.rows(); ++r) {
    const double sum = out.RowSum(r);
    if (sum <= 0.0) {
      // Never-accessed state: keep the prior transition row.
      for (size_t c = 0; c < out.cols(); ++c) out.at(r, c) = prior.at(r, c);
    } else {
      for (size_t c = 0; c < out.cols(); ++c) out.at(r, c) /= sum;
    }
  }
  return out;
}

StatusOr<Matrix> AccumulateVideoAffinity(
    size_t num_videos, const std::vector<AccessPattern>& patterns) {
  HMMM_RETURN_IF_ERROR(ValidatePatterns(num_videos, patterns));
  Matrix af2(num_videos, num_videos, 0.0);
  for (const AccessPattern& pattern : patterns) {
    std::vector<int> states = pattern.states;
    std::sort(states.begin(), states.end());
    states.erase(std::unique(states.begin(), states.end()), states.end());
    for (int m : states) {
      for (int v : states) {
        af2.at(static_cast<size_t>(m), static_cast<size_t>(v)) +=
            pattern.access_count;
      }
    }
  }
  return af2;
}

std::vector<double> DistributionFromPatterns(
    size_t num_states, const std::vector<AccessPattern>& patterns,
    PiSemantics semantics, const std::vector<double>& fallback) {
  std::vector<double> counts(num_states, 0.0);
  double total = 0.0;
  for (const AccessPattern& pattern : patterns) {
    if (pattern.states.empty()) continue;
    if (semantics == PiSemantics::kInitialStateCounts) {
      const int first = pattern.states.front();
      if (first >= 0 && static_cast<size_t>(first) < num_states) {
        counts[static_cast<size_t>(first)] += pattern.access_count;
        total += pattern.access_count;
      }
    } else {
      for (int state : pattern.states) {
        if (state >= 0 && static_cast<size_t>(state) < num_states) {
          counts[static_cast<size_t>(state)] += pattern.access_count;
          total += pattern.access_count;
        }
      }
    }
  }
  if (total <= 0.0) return fallback;
  for (double& c : counts) c /= total;
  return counts;
}

}  // namespace hmmm
