#ifndef HMMM_CORE_HIERARCHICAL_MODEL_H_
#define HMMM_CORE_HIERARCHICAL_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "core/mmm.h"
#include "media/event_types.h"
#include "storage/catalog.h"

namespace hmmm {

/// One per-video local MMM at the shot level. Its states are the video's
/// annotated shots in temporal order; `a1` and `pi1` are over those local
/// indices; `states` maps local index -> global ShotId.
struct LocalShotModel {
  VideoId video_id = -1;
  std::vector<ShotId> states;
  Matrix a1;                 // temporal relative affinity (Section 4.2.1.1)
  std::vector<double> pi1;   // initial-state probabilities (Eq. 4)

  size_t num_states() const { return states.size(); }
};

/// The two-level Hierarchical Markov Model Mediator of Definition 1,
/// instantiated at d = 2:
///   level 1: one local MMM per video over annotated shots (A1, B1, Pi1)
///   level 2: the integrated MMM over videos (A2, B2, Pi2)
///   cross-level: P12 (feature importance), B1' (event centroids), and
///   L12 (video <-> shot membership links).
///
/// All matrices are owned here; the retrieval engine and the learner
/// operate on this object. The model refers to catalog shots by ShotId and
/// is only meaningful next to the catalog it was built from.
class HierarchicalModel {
 public:
  HierarchicalModel() = default;

  /// Definition 1's `d` — the number of levels.
  static constexpr int kLevels = 2;

  // -- Level 1 (shot level) --------------------------------------------
  const std::vector<LocalShotModel>& locals() const { return locals_; }
  std::vector<LocalShotModel>& mutable_locals() { return locals_; }
  const LocalShotModel& local(VideoId video) const {
    return locals_[static_cast<size_t>(video)];
  }

  /// B1: normalized (Eq. 3) feature matrix over all annotated shots.
  /// Rows are indexed by *global state index* (see GlobalStateOf).
  const Matrix& b1() const { return b1_; }
  Matrix& mutable_b1() { return b1_; }

  /// Per-feature minima/maxima the Eq.-3 normalizer was fitted with;
  /// needed to map *new* raw feature vectors (query samples, freshly
  /// ingested shots) into B1 space.
  const std::vector<double>& feature_minima() const { return feature_minima_; }
  const std::vector<double>& feature_maxima() const { return feature_maxima_; }

  /// Applies Eq. 3 with the stored parameters to a raw feature vector,
  /// clamping to [0, 1].
  StatusOr<std::vector<double>> NormalizeFeatures(
      const std::vector<double>& raw) const;

  // -- Level 2 (video level) -------------------------------------------
  const Matrix& a2() const { return a2_; }
  Matrix& mutable_a2() { return a2_; }
  const Matrix& b2() const { return b2_; }
  Matrix& mutable_b2() { return b2_; }
  const std::vector<double>& pi2() const { return pi2_; }
  std::vector<double>& mutable_pi2() { return pi2_; }

  // -- Cross-level ------------------------------------------------------
  /// P12: events x features weight-importance matrix (Eqs. 7-10).
  const Matrix& p12() const { return p12_; }
  Matrix& mutable_p12() { return p12_; }
  /// B1': events x features per-event feature centroids (Eq. 11).
  const Matrix& b1_prime() const { return b1_prime_; }
  Matrix& mutable_b1_prime() { return b1_prime_; }

  /// L12 as an explicit videos x global-states 0/1 matrix
  /// (Section 4.2.3.3); built on demand from the membership links.
  Matrix LinkMatrix() const;

  // -- State index mapping ----------------------------------------------
  /// Dense index of `shot` among all annotated shots (the row of B1), or
  /// -1 if the shot is not an HMMM state.
  int GlobalStateOf(ShotId shot) const;
  /// Inverse of GlobalStateOf.
  ShotId ShotOfGlobalState(int state) const {
    return state_shots_[static_cast<size_t>(state)];
  }
  /// The video owning global state `state` (the local MMM it belongs to).
  VideoId VideoOfGlobalState(int state) const {
    return state_videos_[static_cast<size_t>(state)];
  }
  /// Position of global state `state` inside its video's local MMM, i.e.
  /// the `t` with local(video).states[t] == ShotOfGlobalState(state).
  /// O(1); replaces linear scans over LocalShotModel::states.
  int LocalStateIndexOf(int state) const {
    return state_local_index_[static_cast<size_t>(state)];
  }
  size_t num_global_states() const { return state_shots_.size(); }

  const EventVocabulary& vocabulary() const { return vocabulary_; }
  int num_features() const { return static_cast<int>(b1_.cols()); }
  size_t num_videos() const { return locals_.size(); }

  // -- Versioning --------------------------------------------------------
  /// Monotone counter bumped by every learning pass that rewrites the
  /// model's matrices (OfflineLearner, and therefore feedback training).
  /// Consumers keying derived data on the model — e.g. the engine's
  /// QueryCache — compare versions to detect staleness. Code mutating
  /// matrices directly through the mutable_* accessors must call
  /// BumpVersion() itself. Not serialized: a loaded model restarts at 0.
  uint64_t version() const { return version_; }
  void BumpVersion() { ++version_; }

  /// Full structural validation of the 8-tuple.
  Status Validate() const;

  /// Extracts the serving model of one shard owning the contiguous video
  /// range [video_begin, video_end): local MMMs and B1 rows are copied
  /// verbatim (states renumbered through `global_to_local_shot`, a
  /// catalog-wide vector mapping global ShotId -> slice ShotId, -1 for
  /// shots outside the shard), and the archive-global pieces — B1', P12,
  /// the Eq.-3 normalizer parameters and the vocabulary — are carried
  /// over unchanged. Because a candidate's Eq.-12-15 score depends only
  /// on its own video's local MMM, its B1 rows and those global pieces,
  /// per-video scores computed on the slice are bit-identical to the
  /// full model's. The sliced A2 rows and Pi2 are renormalized so the
  /// slice validates as a standalone model; they only steer the Step-2
  /// visiting order within the shard, never a score. Requires the full
  /// model's cross_video hand-over to be unused by the serving layer (a
  /// slice cannot continue a pattern into a video another shard owns).
  StatusOr<HierarchicalModel> SliceForServing(
      VideoId video_begin, VideoId video_end,
      const std::vector<ShotId>& global_to_local_shot) const;

  /// Checksummed binary round-trip.
  std::string Serialize() const;
  static StatusOr<HierarchicalModel> Deserialize(std::string_view data);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<HierarchicalModel> LoadFromFile(const std::string& path);

 private:
  friend class ModelBuilder;
  friend class SnapshotReader;

  /// Rebuilds the ShotId <-> global-state maps from `locals_`.
  void RebuildStateIndex();

  EventVocabulary vocabulary_;
  std::vector<LocalShotModel> locals_;
  Matrix b1_;
  std::vector<double> feature_minima_;
  std::vector<double> feature_maxima_;
  Matrix a2_;
  Matrix b2_;
  std::vector<double> pi2_;
  Matrix p12_;
  Matrix b1_prime_;
  std::vector<ShotId> state_shots_;       // global state -> ShotId
  std::vector<VideoId> state_videos_;     // global state -> owning video
  std::vector<int> state_local_index_;    // global state -> local index
  std::vector<int> state_of_shot_;        // ShotId -> global state (-1)
  uint64_t version_ = 0;
};

}  // namespace hmmm

#endif  // HMMM_CORE_HIERARCHICAL_MODEL_H_
