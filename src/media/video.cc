#include "media/video.h"

#include <cmath>

namespace hmmm {

AudioClip SyntheticVideo::AudioForFrames(int begin_frame, int end_frame) const {
  const double spf = samples_per_frame();
  if (spf <= 0.0) return AudioClip(audio.sample_rate(), {});
  const auto begin_sample = static_cast<size_t>(std::llround(begin_frame * spf));
  const auto end_sample = static_cast<size_t>(std::llround(end_frame * spf));
  return audio.Slice(begin_sample, end_sample);
}

std::vector<int> SyntheticVideo::TrueBoundaries() const {
  std::vector<int> boundaries;
  for (size_t i = 1; i < shots.size(); ++i) {
    boundaries.push_back(shots[i].begin_frame);
  }
  return boundaries;
}

}  // namespace hmmm
