#ifndef HMMM_MEDIA_FEATURE_LEVEL_GENERATOR_H_
#define HMMM_MEDIA_FEATURE_LEVEL_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "media/event_types.h"

namespace hmmm {

/// One synthesized shot at the annotation/feature level (no raster media).
struct GeneratedShot {
  double begin_time = 0.0;
  double end_time = 0.0;
  std::vector<EventId> events;     // empty => un-annotated shot
  std::vector<double> features;    // raw (un-normalized) Table-1-like values
};

/// One synthesized video.
struct GeneratedVideo {
  std::string name;
  std::vector<GeneratedShot> shots;
};

/// A whole synthesized archive, ready for VideoCatalog ingestion.
struct GeneratedCorpus {
  EventVocabulary vocabulary;
  int num_features = 0;
  std::vector<GeneratedVideo> videos;

  size_t TotalShots() const;
  size_t TotalAnnotatedShots() const;
};

/// Configuration of the fast feature-level corpus generator. Defaults
/// reproduce the paper's corpus scale: 54 videos, ~11.5k shots, ~5% of
/// shots annotated (paper: 506 of 11,567).
struct FeatureLevelConfig {
  uint64_t seed = 1;

  int num_videos = 54;
  int min_shots_per_video = 160;
  int max_shots_per_video = 270;
  double mean_shot_seconds = 6.0;

  /// Fraction of shots carrying >= 1 event annotation.
  double event_shot_fraction = 0.044;
  double double_event_probability = 0.10;

  int num_features = 20;
  /// How many of the features actually separate event classes; the rest
  /// share one background distribution (this is what the P12 learner is
  /// supposed to discover).
  int informative_features = 14;
  /// Within-class feature standard deviation.
  double feature_noise = 0.10;
  /// Scale of between-class mean spread; larger = easier retrieval.
  double class_separation = 1.0;

  /// Event vocabulary (defaults to soccer via UseSoccerDefaults()).
  EventVocabulary vocabulary;
  /// Row-stochastic transitions between events, one row per event plus a
  /// final initial-distribution row; empty => soccer defaults.
  std::vector<std::vector<double>> transitions;
};

/// Synthesizes corpora at the annotation/feature level: per-video shot
/// lists with event labels drawn from a Markov chain and feature vectors
/// drawn from event-conditional Gaussians. This skips raster rendering, so
/// paper-scale archives (tens of videos, >10k shots) build in milliseconds
/// while exercising exactly the statistics HMMM consumes.
class FeatureLevelGenerator {
 public:
  explicit FeatureLevelGenerator(FeatureLevelConfig config);

  const FeatureLevelConfig& config() const { return config_; }

  /// Event-conditional feature means, rows = events (+ one background row
  /// last), cols = features. Deterministic in config.seed.
  const Matrix& event_means() const { return event_means_; }

  GeneratedCorpus Generate() const;

 private:
  std::vector<double> SampleFeatures(Rng& rng,
                                     const std::vector<EventId>& events) const;

  FeatureLevelConfig config_;
  std::vector<std::vector<double>> transitions_;
  Matrix event_means_;  // (num_events + 1) x num_features
};

/// Fills soccer defaults into a config: SoccerEvents() vocabulary and the
/// SoccerVideoGenerator transition chain.
FeatureLevelConfig SoccerFeatureLevelDefaults(uint64_t seed = 1);

}  // namespace hmmm

#endif  // HMMM_MEDIA_FEATURE_LEVEL_GENERATOR_H_
