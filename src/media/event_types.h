#ifndef HMMM_MEDIA_EVENT_TYPES_H_
#define HMMM_MEDIA_EVENT_TYPES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace hmmm {

/// Identifier of a semantic event concept (a column of B2, a row of P12).
using EventId = int;

/// Registry of semantic event names <-> ids. The HMMM core is domain
/// agnostic; vocabularies define the event set for a concrete archive
/// (soccer, news, ...).
class EventVocabulary {
 public:
  EventVocabulary() = default;

  /// Registers `name`, returning its id; returns the existing id if the
  /// name is already present.
  EventId Register(const std::string& name);

  /// Looks up the id of `name`.
  StatusOr<EventId> Find(const std::string& name) const;

  /// True if the name is registered.
  bool Contains(const std::string& name) const;

  /// Name of event `id`; "<invalid>" for out-of-range ids.
  const std::string& Name(EventId id) const;

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EventId> ids_;
};

/// Canonical soccer event names from the paper (Section 3): goal,
/// corner_kick, free_kick, foul, goal_kick, yellow_card, red_card, plus the
/// player_change used in the paper's example temporal query.
namespace soccer {
inline constexpr const char* kGoal = "goal";
inline constexpr const char* kCornerKick = "corner_kick";
inline constexpr const char* kFreeKick = "free_kick";
inline constexpr const char* kFoul = "foul";
inline constexpr const char* kGoalKick = "goal_kick";
inline constexpr const char* kYellowCard = "yellow_card";
inline constexpr const char* kRedCard = "red_card";
inline constexpr const char* kPlayerChange = "player_change";
}  // namespace soccer

/// Vocabulary holding the eight soccer events above, ids in declaration
/// order starting at 0.
EventVocabulary SoccerEvents();

/// Vocabulary for the news-archive generality demo: anchor, interview,
/// field_report, weather, sports_recap, commercial.
EventVocabulary NewsEvents();

}  // namespace hmmm

#endif  // HMMM_MEDIA_EVENT_TYPES_H_
