#include "media/feature_level_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "media/soccer_generator.h"

namespace hmmm {

size_t GeneratedCorpus::TotalShots() const {
  size_t n = 0;
  for (const auto& v : videos) n += v.shots.size();
  return n;
}

size_t GeneratedCorpus::TotalAnnotatedShots() const {
  size_t n = 0;
  for (const auto& v : videos) {
    for (const auto& s : v.shots) {
      if (!s.events.empty()) ++n;
    }
  }
  return n;
}

FeatureLevelConfig SoccerFeatureLevelDefaults(uint64_t seed) {
  FeatureLevelConfig config;
  config.seed = seed;
  config.vocabulary = SoccerEvents();
  config.transitions = SoccerVideoGenerator::EventTransitions();
  return config;
}

FeatureLevelGenerator::FeatureLevelGenerator(FeatureLevelConfig config)
    : config_(std::move(config)) {
  if (config_.vocabulary.size() == 0) {
    config_.vocabulary = SoccerEvents();
  }
  transitions_ = config_.transitions.empty()
                     ? SoccerVideoGenerator::EventTransitions()
                     : config_.transitions;
  HMMM_CHECK(transitions_.size() == config_.vocabulary.size() + 1);
  HMMM_CHECK(config_.num_features >= 1);
  HMMM_CHECK(config_.informative_features >= 0 &&
             config_.informative_features <= config_.num_features);

  // Event-conditional means: informative features get a per-event mean
  // spread around 0.5; uninformative ones share the background mean. The
  // final row is the background (non-event play) profile.
  const size_t num_events = config_.vocabulary.size();
  Rng rng(config_.seed ^ 0xFEA7A7E5ull);
  event_means_ = Matrix(num_events + 1, static_cast<size_t>(config_.num_features));
  std::vector<double> background(static_cast<size_t>(config_.num_features));
  for (int f = 0; f < config_.num_features; ++f) {
    background[static_cast<size_t>(f)] = std::clamp(
        0.5 + 0.15 * rng.NextGaussian(), 0.05, 0.95);
  }
  for (size_t e = 0; e <= num_events; ++e) {
    for (int f = 0; f < config_.num_features; ++f) {
      const bool informative = f < config_.informative_features;
      double mean = background[static_cast<size_t>(f)];
      if (informative && e < num_events) {
        mean = std::clamp(
            0.5 + config_.class_separation * 0.28 * rng.NextGaussian(), 0.02,
            0.98);
      }
      event_means_.at(e, static_cast<size_t>(f)) = mean;
    }
  }
}

std::vector<double> FeatureLevelGenerator::SampleFeatures(
    Rng& rng, const std::vector<EventId>& events) const {
  const size_t background_row = config_.vocabulary.size();
  std::vector<double> features(static_cast<size_t>(config_.num_features));
  for (int f = 0; f < config_.num_features; ++f) {
    double mean = 0.0;
    if (events.empty()) {
      mean = event_means_.at(background_row, static_cast<size_t>(f));
    } else {
      for (EventId e : events) {
        mean += event_means_.at(static_cast<size_t>(e), static_cast<size_t>(f));
      }
      mean /= static_cast<double>(events.size());
    }
    // Uninformative features carry extra noise so they actively hurt a
    // uniform-weight similarity; the learned P12 should down-weight them.
    const bool informative = f < config_.informative_features;
    const double noise = informative ? config_.feature_noise
                                     : config_.feature_noise * 2.5;
    features[static_cast<size_t>(f)] =
        std::clamp(mean + noise * rng.NextGaussian(), 0.0, 1.0);
  }
  return features;
}

GeneratedCorpus FeatureLevelGenerator::Generate() const {
  GeneratedCorpus corpus;
  corpus.vocabulary = config_.vocabulary;
  corpus.num_features = config_.num_features;

  Rng corpus_rng(config_.seed);
  const size_t num_events = config_.vocabulary.size();
  for (int v = 0; v < config_.num_videos; ++v) {
    Rng rng = corpus_rng.Fork();
    GeneratedVideo video;
    video.name = StrFormat("video_%04d", v);
    const int shots = corpus_rng.NextInt(config_.min_shots_per_video,
                                         config_.max_shots_per_video);
    double clock = 0.0;
    int previous_event = -1;
    for (int s = 0; s < shots; ++s) {
      GeneratedShot shot;
      shot.begin_time = clock;
      clock += std::max(0.5, rng.NextExponential(1.0 / config_.mean_shot_seconds));
      shot.end_time = clock;
      if (rng.NextBernoulli(config_.event_shot_fraction)) {
        const auto& row =
            previous_event >= 0
                ? transitions_[static_cast<size_t>(previous_event)]
                : transitions_.back();
        const int event = rng.NextWeighted(row);
        HMMM_CHECK(event >= 0 && static_cast<size_t>(event) < num_events);
        shot.events.push_back(event);
        if (rng.NextBernoulli(config_.double_event_probability)) {
          const int second =
              rng.NextWeighted(transitions_[static_cast<size_t>(event)]);
          if (second >= 0 && second != event) shot.events.push_back(second);
        }
        previous_event = shot.events.front();
      }
      shot.features = SampleFeatures(rng, shot.events);
      video.shots.push_back(std::move(shot));
    }
    corpus.videos.push_back(std::move(video));
  }
  return corpus;
}

}  // namespace hmmm
