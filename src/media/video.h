#ifndef HMMM_MEDIA_VIDEO_H_
#define HMMM_MEDIA_VIDEO_H_

#include <string>
#include <vector>

#include "media/audio.h"
#include "media/event_types.h"
#include "media/frame.h"

namespace hmmm {

/// Ground-truth description of one shot inside a synthetic video: frame
/// span, semantic events occurring in it (possibly several, possibly none),
/// and the scene class the renderer used (useful for tests).
struct ShotTruth {
  int begin_frame = 0;  // inclusive
  int end_frame = 0;    // exclusive
  std::vector<EventId> events;
  int scene_class = 0;  // renderer-internal view type
  /// True when the transition *into* this shot is a gradual dissolve
  /// rather than a hard cut (always false for the first shot).
  bool dissolve_in = false;

  int length() const { return end_frame - begin_frame; }
};

/// A fully rendered synthetic video: frames + synchronized audio + the
/// ground truth the generator knows (true shot boundaries, true events).
class SyntheticVideo {
 public:
  SyntheticVideo() = default;

  std::string name;
  double fps = 25.0;
  std::vector<Frame> frames;
  AudioClip audio;
  std::vector<ShotTruth> shots;

  /// Samples of audio per frame (sample_rate / fps).
  double samples_per_frame() const {
    return fps > 0.0 ? audio.sample_rate() / fps : 0.0;
  }

  /// Audio slice aligned with the frame span [begin_frame, end_frame).
  AudioClip AudioForFrames(int begin_frame, int end_frame) const;

  /// True shot boundary frame indices (start of every shot except the
  /// first), the reference for boundary-detector evaluation.
  std::vector<int> TrueBoundaries() const;
};

}  // namespace hmmm

#endif  // HMMM_MEDIA_VIDEO_H_
