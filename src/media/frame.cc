#include "media/frame.h"

#include <algorithm>
#include <cstdlib>

namespace hmmm {

Frame::Frame(int width, int height, Rgb fill)
    : width_(width),
      height_(height),
      pixels_(static_cast<size_t>(width) * static_cast<size_t>(height), fill) {}

void Frame::FillRect(int x0, int y0, int x1, int y1, Rgb color) {
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, width_);
  y1 = std::min(y1, height_);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) at(x, y) = color;
  }
}

double Frame::Luminance(const Rgb& p) {
  return 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
}

double GrassRatio(const Frame& frame) {
  if (frame.empty()) return 0.0;
  size_t grass = 0;
  for (const Rgb& p : frame.pixels()) {
    // Grass: clearly dominant green with moderate brightness.
    if (p.g > 70 && p.g > p.r + 20 && p.g > p.b + 20) ++grass;
  }
  return static_cast<double>(grass) / static_cast<double>(frame.pixel_count());
}

double PixelChangeFraction(const Frame& a, const Frame& b, int threshold) {
  if (a.width() != b.width() || a.height() != b.height() || a.empty()) {
    return 0.0;
  }
  size_t changed = 0;
  const auto& pa = a.pixels();
  const auto& pb = b.pixels();
  for (size_t i = 0; i < pa.size(); ++i) {
    const int dr = std::abs(static_cast<int>(pa[i].r) - pb[i].r);
    const int dg = std::abs(static_cast<int>(pa[i].g) - pb[i].g);
    const int db = std::abs(static_cast<int>(pa[i].b) - pb[i].b);
    if (dr > threshold || dg > threshold || db > threshold) ++changed;
  }
  return static_cast<double>(changed) / static_cast<double>(pa.size());
}

}  // namespace hmmm
