#ifndef HMMM_MEDIA_NEWS_GENERATOR_H_
#define HMMM_MEDIA_NEWS_GENERATOR_H_

#include <cstdint>

#include "media/feature_level_generator.h"

namespace hmmm {

/// Feature-level config for a synthetic broadcast-news archive. News
/// programmes have a strongly periodic structure (anchor -> report ->
/// anchor -> weather ...), a different vocabulary, and denser annotations
/// than soccer; the video-level MMM should cluster news videos apart from
/// soccer videos when both live in one archive (the paper's §4.2.2 claim).
FeatureLevelConfig NewsFeatureLevelDefaults(uint64_t seed = 7);

}  // namespace hmmm

#endif  // HMMM_MEDIA_NEWS_GENERATOR_H_
