#include "media/soccer_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {

namespace {

// Event ids follow the registration order in SoccerEvents().
constexpr EventId kGoal = 0;
constexpr EventId kCornerKick = 1;
constexpr EventId kFreeKick = 2;
constexpr EventId kFoul = 3;
constexpr EventId kGoalKick = 4;
constexpr EventId kYellowCard = 5;
constexpr EventId kRedCard = 6;
constexpr EventId kPlayerChange = 7;
constexpr int kNumSoccerEvents = 8;

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
}

Rgb Jitter(Rng& rng, Rgb base, double amount) {
  return Rgb{ClampByte(base.r + rng.NextGaussian(0.0, amount)),
             ClampByte(base.g + rng.NextGaussian(0.0, amount)),
             ClampByte(base.b + rng.NextGaussian(0.0, amount))};
}

}  // namespace

SoccerVideoGenerator::SoccerVideoGenerator(const SoccerGeneratorConfig& config)
    : config_(config), vocabulary_(SoccerEvents()) {
  HMMM_CHECK(config_.frame_width > 4 && config_.frame_height > 4);
  HMMM_CHECK(config_.min_shots_per_video >= 1);
  HMMM_CHECK(config_.max_shots_per_video >= config_.min_shots_per_video);
  HMMM_CHECK(config_.min_frames_per_shot >= 2);
  HMMM_CHECK(config_.max_frames_per_shot >= config_.min_frames_per_shot);
}

SoccerVideoGenerator::EventProfile SoccerVideoGenerator::ProfileFor(
    EventId event) {
  switch (event) {
    case kGoal:
      return {SceneClass::kMediumShot, 3.2, 0.95, false};
    case kCornerKick:
      return {SceneClass::kLongShot, 1.8, 0.55, true};
    case kFreeKick:
      return {SceneClass::kLongShot, 1.2, 0.45, true};
    case kFoul:
      return {SceneClass::kMediumShot, 2.4, 0.60, true};
    case kGoalKick:
      return {SceneClass::kLongShot, 0.8, 0.25, false};
    case kYellowCard:
      return {SceneClass::kCloseUp, 0.5, 0.40, true};
    case kRedCard:
      return {SceneClass::kCloseUp, 0.5, 0.70, true};
    case kPlayerChange:
      return {SceneClass::kCloseUp, 0.4, 0.20, false};
    default:
      return {SceneClass::kMediumShot, 1.0, 0.30, false};
  }
}

std::vector<std::vector<double>> SoccerVideoGenerator::EventTransitions() {
  // Rows: previous event (0..7); final row: initial distribution. Values
  // encode soccer-plausible temporal structure: free kicks and corners set
  // up goals, fouls precede free kicks and cards, goals restart play.
  //            goal  corner free  foul  g.kick yellow red  change
  std::vector<std::vector<double>> t = {
      /*goal*/ {0.05, 0.15, 0.10, 0.15, 0.25, 0.05, 0.01, 0.24},
      /*corner*/ {0.30, 0.15, 0.10, 0.15, 0.20, 0.05, 0.01, 0.04},
      /*free*/ {0.35, 0.15, 0.08, 0.15, 0.17, 0.05, 0.01, 0.04},
      /*foul*/ {0.04, 0.08, 0.40, 0.08, 0.10, 0.22, 0.04, 0.04},
      /*g.kick*/ {0.08, 0.12, 0.15, 0.25, 0.15, 0.08, 0.02, 0.15},
      /*yellow*/ {0.06, 0.10, 0.35, 0.15, 0.15, 0.05, 0.04, 0.10},
      /*red*/ {0.05, 0.10, 0.30, 0.10, 0.15, 0.05, 0.01, 0.24},
      /*change*/ {0.12, 0.15, 0.15, 0.18, 0.20, 0.08, 0.02, 0.10},
      /*initial*/ {0.10, 0.15, 0.20, 0.20, 0.20, 0.08, 0.02, 0.05},
  };
  for (auto& row : t) {
    double sum = 0.0;
    for (double v : row) sum += v;
    for (double& v : row) v /= sum;
  }
  return t;
}

SoccerVideoGenerator::ShotPlan SoccerVideoGenerator::PlanShot(
    Rng& rng, int previous_event) const {
  static const std::vector<std::vector<double>>& transitions =
      *new std::vector<std::vector<double>>(EventTransitions());

  ShotPlan plan;
  plan.frames = rng.NextInt(config_.min_frames_per_shot,
                            config_.max_frames_per_shot);
  const bool has_event = rng.NextBernoulli(config_.event_shot_fraction);
  if (has_event) {
    const auto& row = previous_event >= 0
                          ? transitions[static_cast<size_t>(previous_event)]
                          : transitions.back();
    const int event = rng.NextWeighted(row);
    HMMM_CHECK(event >= 0 && event < kNumSoccerEvents);
    plan.events.push_back(event);
    if (rng.NextBernoulli(config_.double_event_probability)) {
      // A second simultaneous annotation, e.g. "free kick" + "goal".
      const int second = rng.NextWeighted(transitions[static_cast<size_t>(event)]);
      if (second >= 0 && second != event) plan.events.push_back(second);
    }
    const EventProfile profile = ProfileFor(event);
    plan.scene = profile.scene;
    plan.motion = profile.motion;
    plan.excitement = profile.excitement;
    plan.whistle = profile.whistle;
  } else {
    // Generic play: wide or medium view, calm crowd.
    plan.scene = rng.NextBernoulli(0.6) ? SceneClass::kLongShot
                                        : SceneClass::kMediumShot;
    plan.motion = rng.NextDouble(0.6, 1.6);
    plan.excitement = rng.NextDouble(0.10, 0.35);
    plan.whistle = false;
  }
  return plan;
}

void SoccerVideoGenerator::RenderShot(const ShotPlan& plan, Rng& rng,
                                      SyntheticVideo& video) const {
  const int w = config_.frame_width;
  const int h = config_.frame_height;

  // Per-shot scene parameters. A new shot re-rolls all of them, which is
  // what makes the histogram jump at cuts (the boundary detector's signal).
  double horizon = 0.0;  // fraction of the frame above the grass
  Rgb grass_base{40, 150, 45};
  Rgb upper_base{120, 120, 135};  // crowd / stands
  switch (plan.scene) {
    case SceneClass::kLongShot:
      horizon = rng.NextDouble(0.10, 0.25);
      break;
    case SceneClass::kMediumShot:
      horizon = rng.NextDouble(0.35, 0.50);
      break;
    case SceneClass::kCloseUp:
      horizon = rng.NextDouble(0.80, 0.95);
      upper_base = Rgb{ClampByte(rng.NextDouble(90, 220)),
                       ClampByte(rng.NextDouble(60, 160)),
                       ClampByte(rng.NextDouble(60, 160))};
      break;
    case SceneClass::kCrowd:
      horizon = 1.0;
      break;
  }
  grass_base = Jitter(rng, grass_base, 10.0);
  const int horizon_y = static_cast<int>(horizon * h);

  // Players: coloured blocks with per-shot velocities.
  struct Player {
    double x, y, vx, vy;
    Rgb color;
  };
  const int player_count =
      plan.scene == SceneClass::kCloseUp ? 1 : rng.NextInt(3, 6);
  std::vector<Player> players;
  for (int i = 0; i < player_count; ++i) {
    players.push_back(Player{
        rng.NextDouble(0, w), rng.NextDouble(horizon_y, h),
        rng.NextGaussian(0.0, plan.motion), rng.NextGaussian(0.0, plan.motion * 0.4),
        rng.NextBernoulli(0.5) ? Rgb{200, 30, 30} : Rgb{240, 240, 240}});
  }
  const double pan_speed = rng.NextGaussian(0.0, plan.motion * 0.6);
  double pan = rng.NextDouble(0.0, 64.0);

  for (int f = 0; f < plan.frames; ++f) {
    Frame frame(w, h);
    // Upper region: crowd speckle keyed on (x+pan, y) so panning moves it.
    for (int y = 0; y < horizon_y; ++y) {
      for (int x = 0; x < w; ++x) {
        const int phase =
            static_cast<int>(x + pan) * 31 + y * 17;
        const double n = ((phase * 2654435761u) >> 24) / 255.0;
        frame.at(x, y) = Rgb{ClampByte(upper_base.r * (0.6 + 0.6 * n)),
                             ClampByte(upper_base.g * (0.6 + 0.6 * n)),
                             ClampByte(upper_base.b * (0.6 + 0.6 * n))};
      }
    }
    // Grass with mowing stripes that move under camera pan.
    for (int y = horizon_y; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const int stripe = (static_cast<int>(x + pan) / 6) % 2;
        const double shade = stripe == 0 ? 1.0 : 0.86;
        frame.at(x, y) = Rgb{ClampByte(grass_base.r * shade),
                             ClampByte(grass_base.g * shade),
                             ClampByte(grass_base.b * shade)};
      }
    }
    // Players.
    for (Player& p : players) {
      const int size = plan.scene == SceneClass::kCloseUp
                           ? std::max(4, h / 2)
                           : std::max(2, h / 10);
      const int px = static_cast<int>(p.x);
      const int py = static_cast<int>(p.y);
      frame.FillRect(px, py - size, px + std::max(1, size / 2), py, p.color);
      p.x += p.vx;
      p.y += p.vy;
      if (p.x < 0 || p.x >= w) p.vx = -p.vx;
      if (p.y < horizon_y || p.y >= h) p.vy = -p.vy;
      p.x = std::clamp(p.x, 0.0, static_cast<double>(w - 1));
      p.y = std::clamp(p.y, static_cast<double>(horizon_y),
                       static_cast<double>(h - 1));
    }
    pan += pan_speed;
    video.frames.push_back(std::move(frame));
  }
}

void SoccerVideoGenerator::SynthesizeShotAudio(const ShotPlan& plan, Rng& rng,
                                               AudioClip& audio) const {
  const int rate = config_.audio_sample_rate;
  const auto samples =
      static_cast<size_t>(plan.frames / config_.fps * rate);
  std::vector<double> shot_audio(samples, 0.0);

  // Crowd noise: white noise through a crude one-pole lowpass, volume
  // envelope rising with excitement (goals: crescendo over the shot).
  double lp = 0.0;
  for (size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(samples);
    const double envelope =
        0.08 + plan.excitement * (0.4 + 0.6 * t);
    const double noise = rng.NextDouble(-1.0, 1.0);
    lp = 0.85 * lp + 0.15 * noise;
    shot_audio[i] = envelope * lp;
  }
  // Referee whistle: ~3 kHz burst in the first 150 ms with vibrato.
  if (plan.whistle) {
    const size_t burst = std::min(samples, static_cast<size_t>(0.15 * rate));
    for (size_t i = 0; i < burst; ++i) {
      const double t = static_cast<double>(i) / rate;
      const double vibrato = 1.0 + 0.01 * std::sin(2.0 * M_PI * 40.0 * t);
      shot_audio[i] += 0.5 * std::sin(2.0 * M_PI * 3000.0 * vibrato * t);
    }
  }
  AudioClip clip(rate, std::move(shot_audio));
  HMMM_CHECK(audio.Append(clip).ok());
}

SyntheticVideo SoccerVideoGenerator::Generate(int video_index) const {
  Rng corpus_rng(config_.seed);
  // Derive a per-video stream so Generate(i) is independent of other calls.
  Rng rng(corpus_rng.NextUint64() ^
          (static_cast<uint64_t>(video_index) * 0xA24BAED4963EE407ull +
           0x9FB21C651E98DF25ull));

  SyntheticVideo video;
  video.name = StrFormat("soccer_%04d", video_index);
  video.fps = config_.fps;
  video.audio = AudioClip(config_.audio_sample_rate, {});

  const int shot_count =
      rng.NextInt(config_.min_shots_per_video, config_.max_shots_per_video);
  int previous_event = -1;
  int frame_cursor = 0;
  for (int s = 0; s < shot_count; ++s) {
    const ShotPlan plan = PlanShot(rng, previous_event);
    ShotTruth truth;
    truth.begin_frame = frame_cursor;
    truth.end_frame = frame_cursor + plan.frames;
    truth.events = plan.events;
    truth.scene_class = static_cast<int>(plan.scene);
    truth.dissolve_in =
        s > 0 && rng.NextBernoulli(config_.dissolve_probability);
    video.shots.push_back(truth);

    RenderShot(plan, rng, video);
    SynthesizeShotAudio(plan, rng, video.audio);

    frame_cursor += plan.frames;
    if (!plan.events.empty()) previous_event = plan.events.front();
  }

  // Post-pass: replace the frames around dissolve boundaries with an
  // alpha blend between the outgoing and incoming scene (broadcast-style
  // gradual transition). Frame indices are unchanged: the blend spans the
  // last half of the window in the previous shot and the first half in
  // the next.
  for (size_t s = 1; s < video.shots.size(); ++s) {
    if (!video.shots[s].dissolve_in) continue;
    const int boundary = video.shots[s].begin_frame;
    const int half = std::max(1, config_.dissolve_frames / 2);
    const int lo = std::max(video.shots[s - 1].begin_frame, boundary - half);
    const int hi = std::min(video.shots[s].end_frame - 1, boundary + half);
    if (hi <= lo) continue;
    const Frame from = video.frames[static_cast<size_t>(lo)];
    const Frame to = video.frames[static_cast<size_t>(hi)];
    if (from.width() != to.width() || from.height() != to.height()) continue;
    for (int f = lo; f <= hi; ++f) {
      const double alpha = static_cast<double>(f - lo) /
                           static_cast<double>(hi - lo);
      Frame& frame = video.frames[static_cast<size_t>(f)];
      for (size_t p = 0; p < frame.pixel_count(); ++p) {
        const Rgb& a = from.pixels()[p];
        const Rgb& b = to.pixels()[p];
        frame.mutable_pixels()[p] = Rgb{
            static_cast<uint8_t>((1.0 - alpha) * a.r + alpha * b.r),
            static_cast<uint8_t>((1.0 - alpha) * a.g + alpha * b.g),
            static_cast<uint8_t>((1.0 - alpha) * a.b + alpha * b.b)};
      }
    }
  }
  return video;
}

}  // namespace hmmm
