#include "media/event_types.h"

#include "common/strings.h"

namespace hmmm {

namespace {
const std::string kInvalidName = "<invalid>";
}  // namespace

EventId EventVocabulary::Register(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const EventId id = static_cast<EventId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

StatusOr<EventId> EventVocabulary::Find(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return Status::NotFound(StrFormat("unknown event '%s'", name.c_str()));
  }
  return it->second;
}

bool EventVocabulary::Contains(const std::string& name) const {
  return ids_.count(name) > 0;
}

const std::string& EventVocabulary::Name(EventId id) const {
  if (id < 0 || static_cast<size_t>(id) >= names_.size()) return kInvalidName;
  return names_[static_cast<size_t>(id)];
}

EventVocabulary SoccerEvents() {
  EventVocabulary vocab;
  vocab.Register(soccer::kGoal);
  vocab.Register(soccer::kCornerKick);
  vocab.Register(soccer::kFreeKick);
  vocab.Register(soccer::kFoul);
  vocab.Register(soccer::kGoalKick);
  vocab.Register(soccer::kYellowCard);
  vocab.Register(soccer::kRedCard);
  vocab.Register(soccer::kPlayerChange);
  return vocab;
}

EventVocabulary NewsEvents() {
  EventVocabulary vocab;
  vocab.Register("anchor");
  vocab.Register("interview");
  vocab.Register("field_report");
  vocab.Register("weather");
  vocab.Register("sports_recap");
  vocab.Register("commercial");
  return vocab;
}

}  // namespace hmmm
