#ifndef HMMM_MEDIA_FRAME_H_
#define HMMM_MEDIA_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hmmm {

/// A single RGB pixel.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  bool operator==(const Rgb&) const = default;
};

/// A raster video frame (row-major RGB, 8 bits per channel). The synthetic
/// generator renders small frames (default 48x32) — large enough for the
/// visual features (grass ratio, histograms, background statistics) to be
/// meaningful, small enough to run thousands of shots quickly.
class Frame {
 public:
  Frame() = default;
  Frame(int width, int height, Rgb fill = Rgb{0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }
  size_t pixel_count() const { return pixels_.size(); }

  Rgb& at(int x, int y) { return pixels_[static_cast<size_t>(y) * width_ + x]; }
  const Rgb& at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }

  const std::vector<Rgb>& pixels() const { return pixels_; }
  std::vector<Rgb>& mutable_pixels() { return pixels_; }

  /// Fills an axis-aligned rectangle (clipped to the frame) with `color`.
  void FillRect(int x0, int y0, int x1, int y1, Rgb color);

  /// Per-pixel luminance (ITU BT.601) in [0, 255].
  static double Luminance(const Rgb& p);

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> pixels_;
};

/// Fraction of pixels in [0,1] whose colour classifies as soccer-pitch
/// grass (dominant green channel). The basis of the paper's grass_ratio
/// feature.
double GrassRatio(const Frame& frame);

/// Fraction of pixels whose colour differs between two equally-sized
/// frames by more than `threshold` per channel (paper: pixel_change_percent).
/// Returns 0 for mismatched sizes.
double PixelChangeFraction(const Frame& a, const Frame& b, int threshold = 16);

}  // namespace hmmm

#endif  // HMMM_MEDIA_FRAME_H_
