#include "media/audio.h"

#include <algorithm>

namespace hmmm {

AudioClip AudioClip::Slice(size_t begin_sample, size_t end_sample) const {
  begin_sample = std::min(begin_sample, samples_.size());
  end_sample = std::min(end_sample, samples_.size());
  if (begin_sample >= end_sample) return AudioClip(sample_rate_, {});
  return AudioClip(
      sample_rate_,
      std::vector<double>(samples_.begin() + static_cast<ptrdiff_t>(begin_sample),
                          samples_.begin() + static_cast<ptrdiff_t>(end_sample)));
}

Status AudioClip::Append(const AudioClip& other) {
  if (other.empty()) return Status::OK();
  if (empty()) {
    *this = other;
    return Status::OK();
  }
  if (sample_rate_ != other.sample_rate_) {
    return Status::InvalidArgument("sample rate mismatch in AudioClip::Append");
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  return Status::OK();
}

}  // namespace hmmm
