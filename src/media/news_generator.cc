#include "media/news_generator.h"

namespace hmmm {

FeatureLevelConfig NewsFeatureLevelDefaults(uint64_t seed) {
  FeatureLevelConfig config;
  config.seed = seed;
  config.vocabulary = NewsEvents();
  config.num_videos = 12;
  config.min_shots_per_video = 60;
  config.max_shots_per_video = 120;
  config.mean_shot_seconds = 8.0;
  config.event_shot_fraction = 0.5;  // news segments are densely annotated
  config.double_event_probability = 0.02;

  // Periodic programme structure: anchor alternates with field content.
  //                anchor intrvw report weathr sports commcl
  config.transitions = {
      /*anchor*/ {0.05, 0.20, 0.40, 0.10, 0.15, 0.10},
      /*interview*/ {0.55, 0.15, 0.15, 0.02, 0.03, 0.10},
      /*field_report*/ {0.55, 0.15, 0.15, 0.02, 0.03, 0.10},
      /*weather*/ {0.40, 0.02, 0.05, 0.03, 0.30, 0.20},
      /*sports_recap*/ {0.40, 0.05, 0.05, 0.10, 0.15, 0.25},
      /*commercial*/ {0.60, 0.05, 0.15, 0.05, 0.05, 0.10},
      /*initial*/ {0.80, 0.02, 0.08, 0.02, 0.03, 0.05},
  };
  return config;
}

}  // namespace hmmm
