#ifndef HMMM_MEDIA_AUDIO_H_
#define HMMM_MEDIA_AUDIO_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace hmmm {

/// Mono PCM audio clip, float samples nominally in [-1, 1].
class AudioClip {
 public:
  AudioClip() = default;
  AudioClip(int sample_rate, std::vector<double> samples)
      : sample_rate_(sample_rate), samples_(std::move(samples)) {}

  int sample_rate() const { return sample_rate_; }
  const std::vector<double>& samples() const { return samples_; }
  std::vector<double>& mutable_samples() { return samples_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Duration in seconds.
  double duration() const {
    return sample_rate_ > 0
               ? static_cast<double>(samples_.size()) / sample_rate_
               : 0.0;
  }

  /// Copies samples in the half-open window [begin_sample, end_sample),
  /// clipped to the clip bounds.
  AudioClip Slice(size_t begin_sample, size_t end_sample) const;

  /// Appends another clip; sample rates must match (error otherwise).
  Status Append(const AudioClip& other);

 private:
  int sample_rate_ = 0;
  std::vector<double> samples_;
};

}  // namespace hmmm

#endif  // HMMM_MEDIA_AUDIO_H_
