#ifndef HMMM_MEDIA_SOCCER_GENERATOR_H_
#define HMMM_MEDIA_SOCCER_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "media/video.h"

namespace hmmm {

/// Scene classes the renderer uses; exposed so tests can assert on the
/// visual statistics each class produces.
enum class SceneClass {
  kLongShot = 0,   // wide field view, high grass ratio
  kMediumShot = 1, // mid-field action, moderate grass ratio
  kCloseUp = 2,    // player close-up, little grass
  kCrowd = 3,      // stands, no grass
};

/// Configuration of the procedural soccer-broadcast generator.
struct SoccerGeneratorConfig {
  uint64_t seed = 1;

  int frame_width = 48;
  int frame_height = 32;
  double fps = 25.0;
  int audio_sample_rate = 8000;

  int min_shots_per_video = 8;
  int max_shots_per_video = 14;
  int min_frames_per_shot = 12;
  int max_frames_per_shot = 40;

  /// Fraction of shots that carry at least one semantic event annotation
  /// (the paper's corpus has 506 annotated of 11,567 shots in 54 videos,
  /// i.e. ~4.4%; demos default higher so small corpora stay interesting).
  double event_shot_fraction = 0.30;

  /// Probability that an event shot carries a second simultaneous event
  /// (e.g. "free kick" and "goal" in the paper's Section 4.2.1.1 example).
  double double_event_probability = 0.10;

  /// Probability that a shot boundary is a gradual dissolve instead of a
  /// hard cut: the frames around the boundary are alpha-blended across
  /// `dissolve_frames` frames (broadcast-style transition). 0 = cuts only.
  double dissolve_probability = 0.0;
  int dissolve_frames = 6;
};

/// Renders synthetic soccer videos: grass/crowd/close-up scenes with moving
/// players and camera pan, plus synchronized PCM audio (crowd noise whose
/// excitement tracks the event, referee whistles). Event occurrences follow
/// a first-order Markov chain with soccer-plausible transitions (free kicks
/// tend to precede goals, fouls precede cards, ...), which gives the
/// temporal patterns HMMM is designed to retrieve.
class SoccerVideoGenerator {
 public:
  explicit SoccerVideoGenerator(const SoccerGeneratorConfig& config);

  const EventVocabulary& vocabulary() const { return vocabulary_; }
  const SoccerGeneratorConfig& config() const { return config_; }

  /// Generates the `video_index`-th video of the corpus. Deterministic in
  /// (config.seed, video_index).
  SyntheticVideo Generate(int video_index) const;

  /// Visual/audio signature of an event class; exposed for tests.
  struct EventProfile {
    SceneClass scene;
    double motion;      // player velocity scale, pixels/frame
    double excitement;  // crowd volume scale in [0, 1]
    bool whistle;       // referee whistle at shot start
  };
  static EventProfile ProfileFor(EventId event);

  /// Row-stochastic event transition probabilities used by the Markov
  /// chain over event annotations (index = event id; an extra last row is
  /// the initial distribution). Exposed for tests and EXPERIMENTS.md.
  static std::vector<std::vector<double>> EventTransitions();

 private:
  struct ShotPlan {
    int frames;
    SceneClass scene;
    std::vector<EventId> events;
    double motion;
    double excitement;
    bool whistle;
  };

  ShotPlan PlanShot(Rng& rng, int previous_event) const;
  void RenderShot(const ShotPlan& plan, Rng& rng, SyntheticVideo& video) const;
  void SynthesizeShotAudio(const ShotPlan& plan, Rng& rng,
                           AudioClip& audio) const;

  SoccerGeneratorConfig config_;
  EventVocabulary vocabulary_;
};

}  // namespace hmmm

#endif  // HMMM_MEDIA_SOCCER_GENERATOR_H_
