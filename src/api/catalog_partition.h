#ifndef HMMM_API_CATALOG_PARTITION_H_
#define HMMM_API_CATALOG_PARTITION_H_

#include <vector>

#include "common/status.h"
#include "core/hierarchical_model.h"
#include "storage/catalog.h"

namespace hmmm {

/// One shard's share of a partitioned archive: the contiguous global
/// video range it owns, a densely re-indexed slice catalog, a
/// score-equivalent slice of the global model
/// (HierarchicalModel::SliceForServing), and the local -> global shot
/// map a serving coordinator needs to reassemble global results.
struct CatalogShard {
  VideoId video_begin = 0;  // global range [video_begin, video_end)
  VideoId video_end = 0;
  VideoCatalog catalog;
  HierarchicalModel model;
  /// Slice ShotId -> global ShotId, dense over the slice catalog.
  std::vector<ShotId> shot_to_global;
};

/// Partitions an archive and its built model into `num_shards` serving
/// shards over contiguous video ranges (videos split as evenly as the
/// count allows; the first `num_videos % num_shards` shards take one
/// extra). Each shard's catalog re-adds its videos and shots in global
/// order, so slice ShotIds enumerate the shard's shots in (video,
/// temporal) order and the slice model's global-state order is the
/// matching contiguous block of the full model's — the property the
/// coordinator's deterministic merge relies on. Per-video query scores
/// computed against a shard pair are bit-identical to the full archive's
/// (see SliceForServing). Requires 1 <= num_shards <= num_videos and a
/// model built from exactly this catalog.
StatusOr<std::vector<CatalogShard>> PartitionForServing(
    const VideoCatalog& catalog, const HierarchicalModel& model,
    int num_shards);

}  // namespace hmmm

#endif  // HMMM_API_CATALOG_PARTITION_H_
