#include "api/catalog_partition.h"

#include <utility>

#include "common/strings.h"

namespace hmmm {

StatusOr<std::vector<CatalogShard>> PartitionForServing(
    const VideoCatalog& catalog, const HierarchicalModel& model,
    int num_shards) {
  HMMM_RETURN_IF_ERROR(catalog.Validate());
  const int num_videos = static_cast<int>(catalog.num_videos());
  if (num_shards < 1 || num_shards > num_videos) {
    return Status::InvalidArgument(
        StrFormat("num_shards %d outside [1, %d]", num_shards, num_videos));
  }
  if (model.num_videos() != catalog.num_videos()) {
    return Status::FailedPrecondition(
        "model and catalog disagree on video count");
  }
  if (model.num_global_states() != catalog.num_annotated_shots()) {
    return Status::FailedPrecondition(
        "model and catalog disagree on annotated shots");
  }

  const int base = num_videos / num_shards;
  const int extra = num_videos % num_shards;
  std::vector<CatalogShard> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  VideoId next_video = 0;
  for (int s = 0; s < num_shards; ++s) {
    CatalogShard shard;
    shard.video_begin = next_video;
    shard.video_end = next_video + base + (s < extra ? 1 : 0);
    next_video = shard.video_end;

    VideoCatalog slice(catalog.vocabulary(), catalog.num_features());
    std::vector<ShotId> global_to_local(catalog.num_shots(), -1);
    for (VideoId v = shard.video_begin; v < shard.video_end; ++v) {
      const VideoRecord& video = catalog.video(v);
      const VideoId local_video = slice.AddVideo(video.name);
      for (ShotId shot : video.shots) {
        const ShotRecord& record = catalog.shot(shot);
        HMMM_ASSIGN_OR_RETURN(
            const ShotId local_shot,
            slice.AddShot(local_video, record.begin_time, record.end_time,
                          record.events, catalog.raw_features_of(shot)));
        global_to_local[static_cast<size_t>(shot)] = local_shot;
        shard.shot_to_global.push_back(shot);
      }
    }
    HMMM_ASSIGN_OR_RETURN(shard.model,
                          model.SliceForServing(shard.video_begin,
                                                shard.video_end,
                                                global_to_local));
    shard.catalog = std::move(slice);
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace hmmm
