#include "api/video_database.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/logging.h"
#include "storage/model_io.h"

namespace hmmm {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Mutex + cv + in-flight counters of the admission gate, behind a
/// pointer so the database stays movable.
struct VideoDatabase::Admission {
  std::mutex mutex;
  std::condition_variable slot_freed;
  AdmissionOptions options;
  int in_flight = 0;
  int queued = 0;
};

VideoDatabase::VideoDatabase(VideoCatalog catalog, HierarchicalModel model,
                             VideoDatabaseOptions options)
    : options_(std::move(options)),
      catalog_(std::make_unique<VideoCatalog>(std::move(catalog))),
      model_(std::make_unique<HierarchicalModel>(std::move(model))),
      metrics_(std::make_unique<MetricsRegistry>()),
      trainer_(std::make_unique<FeedbackTrainer>(*catalog_,
                                                 options_.feedback)),
      pool_(MakeThreadPool(options_.traversal.num_threads)),
      state_mutex_(std::make_unique<std::shared_mutex>()),
      admission_(std::make_unique<Admission>()) {
  admission_->options = options_.admission;
  queries_total_ = metrics_->GetCounter("hmmm_queries_total",
                                        "temporal-pattern retrievals answered");
  query_errors_total_ = metrics_->GetCounter(
      "hmmm_query_errors_total", "retrievals that returned a non-OK status");
  queries_degraded_total_ = metrics_->GetCounter(
      "hmmm_queries_degraded_total",
      "retrievals that returned an anytime prefix result after a "
      "deadline or cancellation fired");
  admission_rejected_total_ = metrics_->GetCounter(
      "hmmm_admission_rejected_total",
      "retrievals shed by admission control (kResourceExhausted)");
  query_latency_ms_ =
      metrics_->GetHistogram("hmmm_query_latency_ms", DefaultLatencyBucketsMs(),
                             "end-to-end Retrieve() wall time");
  if (options_.query_cache_entries > 0) {
    cache_ = std::make_unique<QueryCache>(options_.query_cache_entries);
    cache_->AttachMetrics(metrics_.get(), "hmmm_query_cache_");
  }
  trainer_->AttachMetrics(metrics_.get());
}

VideoDatabase::VideoDatabase(VideoDatabase&&) noexcept = default;
VideoDatabase& VideoDatabase::operator=(VideoDatabase&&) noexcept = default;
VideoDatabase::~VideoDatabase() = default;

StatusOr<VideoDatabase> VideoDatabase::Create(VideoCatalog catalog,
                                              VideoDatabaseOptions options) {
  HMMM_RETURN_IF_ERROR(catalog.Validate());
  ModelBuilder builder(catalog, options.builder);
  HMMM_ASSIGN_OR_RETURN(HierarchicalModel model, builder.Build());
  VideoDatabase db(std::move(catalog), std::move(model), std::move(options));
  if (db.options_.enable_category_level) {
    HMMM_RETURN_IF_ERROR(db.RebuildCategories());
  }
  return db;
}

StatusOr<VideoDatabase> VideoDatabase::Open(const std::string& catalog_path,
                                            const std::string& model_path,
                                            VideoDatabaseOptions options) {
  HMMM_ASSIGN_OR_RETURN(VideoCatalog catalog, LoadCatalog(catalog_path));
  HMMM_ASSIGN_OR_RETURN(HierarchicalModel model,
                        HierarchicalModel::LoadFromFile(model_path));
  if (model.num_videos() != catalog.num_videos()) {
    return Status::FailedPrecondition(
        "model and catalog disagree on video count");
  }
  if (model.num_global_states() != catalog.num_annotated_shots()) {
    return Status::FailedPrecondition(
        "model and catalog disagree on annotated shots");
  }
  VideoDatabase db(std::move(catalog), std::move(model), std::move(options));
  if (db.options_.enable_category_level) {
    HMMM_RETURN_IF_ERROR(db.RebuildCategories());
  }
  return db;
}

StatusOr<VideoDatabase> VideoDatabase::OpenSnapshot(
    const std::string& path, VideoDatabaseOptions options,
    const SnapshotOptions& snapshot_options) {
  HMMM_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotReader> reader,
                        SnapshotReader::Open(path, snapshot_options));
  HMMM_ASSIGN_OR_RETURN(VideoCatalog catalog, reader->BuildCatalog());
  HMMM_ASSIGN_OR_RETURN(HierarchicalModel model, reader->BuildModel());
  // The same agreement checks Open() runs on a blob pair; the full
  // Validate() pair is skipped deliberately — the writer ran it, and
  // rerunning it here would rescan every mapped matrix.
  if (model.num_videos() != catalog.num_videos()) {
    return Status::FailedPrecondition(
        "snapshot model and catalog disagree on video count");
  }
  if (model.num_global_states() != catalog.num_annotated_shots()) {
    return Status::FailedPrecondition(
        "snapshot model and catalog disagree on annotated shots");
  }
  VideoDatabase db(std::move(catalog), std::move(model), std::move(options));
  if (reader->has_event_index()) {
    HMMM_ASSIGN_OR_RETURN(EventBitmapIndex index,
                          reader->BuildEventIndex(*db.model_, *db.catalog_));
    db.prebuilt_index_ =
        std::make_unique<EventBitmapIndex>(std::move(index));
  }
  // The keepalive goes in AFTER everything borrowing it was built, and
  // the member order guarantees borrowers are destroyed first.
  db.snapshot_keepalive_ = std::move(reader);
  if (db.options_.enable_category_level) {
    HMMM_RETURN_IF_ERROR(db.RebuildCategories());
  }
  return db;
}

StatusOr<VideoDatabase> VideoDatabase::OpenSnapshotWithFallback(
    const std::string& snapshot_path, const std::string& catalog_path,
    const std::string& model_path, VideoDatabaseOptions options,
    const SnapshotOptions& snapshot_options) {
  if (!snapshot_path.empty()) {
    StatusOr<VideoDatabase> db =
        OpenSnapshot(snapshot_path, options, snapshot_options);
    if (db.ok()) return db;
    HMMM_LOG(Warning) << "snapshot open failed (" << db.status().ToString()
                      << "); falling back to blob load";
  }
  return Open(catalog_path, model_path, std::move(options));
}

StatusOr<VideoDatabase> VideoDatabase::CreateWithModel(
    VideoCatalog catalog, HierarchicalModel model,
    VideoDatabaseOptions options) {
  HMMM_RETURN_IF_ERROR(catalog.Validate());
  HMMM_RETURN_IF_ERROR(model.Validate());
  if (model.num_videos() != catalog.num_videos()) {
    return Status::FailedPrecondition(
        "model and catalog disagree on video count");
  }
  if (model.num_global_states() != catalog.num_annotated_shots()) {
    return Status::FailedPrecondition(
        "model and catalog disagree on annotated shots");
  }
  VideoDatabase db(std::move(catalog), std::move(model), std::move(options));
  if (db.options_.enable_category_level) {
    HMMM_RETURN_IF_ERROR(db.RebuildCategories());
  }
  return db;
}

Status VideoDatabase::Save(const std::string& catalog_path,
                           const std::string& model_path) const {
  std::shared_lock<std::shared_mutex> lock(*state_mutex_);
  HMMM_RETURN_IF_ERROR(SaveCatalog(*catalog_, catalog_path));
  return model_->SaveToFile(model_path);
}

Status VideoDatabase::WriteSnapshot(const std::string& path,
                                    SnapshotWriteOptions options) const {
  std::shared_lock<std::shared_mutex> lock(*state_mutex_);
  return ::hmmm::WriteSnapshot(*model_, *catalog_, path, options);
}

StatusOr<std::string> VideoDatabase::PublishSnapshot(const std::string& dir,
                                                     uint64_t generation) const {
  std::shared_lock<std::shared_mutex> lock(*state_mutex_);
  return ::hmmm::PublishSnapshot(*model_, *catalog_, dir, generation);
}

StatusOr<std::vector<RetrievedPattern>> VideoDatabase::Query(
    const std::string& text, RetrievalStats* stats) const {
  return Query(text, QueryControls{}, stats);
}

StatusOr<std::vector<RetrievedPattern>> VideoDatabase::Query(
    const std::string& text, const QueryControls& controls,
    RetrievalStats* stats) const {
  TemporalPattern pattern;
  {
    std::shared_lock<std::shared_mutex> lock(*state_mutex_);
    HMMM_ASSIGN_OR_RETURN(pattern,
                          CompileQuery(text, catalog_->vocabulary()));
  }
  return Retrieve(pattern, controls, stats);
}

StatusOr<std::vector<RetrievedPattern>> VideoDatabase::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  return Retrieve(pattern, QueryControls{}, stats);
}

StatusOr<std::vector<RetrievedPattern>> VideoDatabase::Retrieve(
    const TemporalPattern& pattern, const QueryControls& controls,
    RetrievalStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  // Admission before anything else: a shed query must be near-free. Only
  // admitted queries count toward hmmm_queries_total or take the state
  // lock.
  HMMM_RETURN_IF_ERROR(AcquireSlot());
  struct SlotGuard {
    const VideoDatabase* db;
    ~SlotGuard() { db->ReleaseSlot(); }
  } slot_guard{this};
  std::shared_lock<std::shared_mutex> state_lock(*state_mutex_);
  queries_total_->Increment();

  // Per-query controls override the database-wide defaults only when
  // explicitly set, so plain Retrieve(pattern) keeps any deadline/trace
  // the caller baked into VideoDatabaseOptions::traversal.
  TraversalOptions traversal_options = options_.traversal;
  if (controls.deadline != kNoDeadline) {
    traversal_options.deadline = controls.deadline;
  }
  if (controls.cancellation != nullptr) {
    traversal_options.cancellation = controls.cancellation;
  }
  if (controls.trace != nullptr) traversal_options.trace = controls.trace;

  // A snapshot-opened database hands its adopted frozen index to every
  // traversal while it is still fresh; training bumps the model version,
  // after which traversals silently revert to building their own. The
  // frozen sims are the same bits the build would produce, so rankings
  // are identical either way.
  const EventBitmapIndex* prebuilt =
      (prebuilt_index_ != nullptr && prebuilt_index_->FreshFor(*model_))
          ? prebuilt_index_.get()
          : nullptr;
  const auto run_traversal =
      [&](RetrievalStats* computed) -> StatusOr<std::vector<RetrievedPattern>> {
    if (categories_.has_value()) {
      ThreeLevelTraversal traversal(*model_, *catalog_, *categories_,
                                    traversal_options, pool_.get(), prebuilt);
      return traversal.Retrieve(pattern, computed);
    }
    HmmmTraversal traversal(*model_, *catalog_, traversal_options,
                            pool_.get(), prebuilt);
    return traversal.Retrieve(pattern, computed);
  };

  if (cache_ != nullptr) {
    const std::string key = PatternSignature(pattern);
    std::vector<RetrievedPattern> cached;
    // A hit replays the recorded traversal stats into `stats`. A miss
    // makes this call the single-flight compute leader for `key`:
    // identical concurrent queries park inside LookupOrCompute instead
    // of re-traversing. (Waiters park holding their shared state lock,
    // which is safe: the leader holds a shared lock too, so it can
    // always finish.)
    if (cache_->LookupOrCompute(key, model_->version(), &cached, stats) ==
        QueryCache::LookupOutcome::kHit) {
      if (controls.trace != nullptr) {
        const int span = controls.trace->BeginSpan("cache_hit");
        controls.trace->EndSpan(span);
      }
      query_latency_ms_->Observe(ElapsedMs(start));
      return cached;
    }
    struct ComputeGuard {
      QueryCache* cache;
      const std::string& key;
      ~ComputeGuard() { cache->FinishCompute(key); }
    } compute_guard{cache_.get(), key};
    RetrievalStats computed;
    auto results = run_traversal(&computed);
    if (!results.ok()) {
      query_errors_total_->Increment();
    } else if (computed.degraded) {
      // An anytime result answers *this* caller but is never cached:
      // the next uncontended asker deserves the full ranking.
      queries_degraded_total_->Increment();
    } else {
      cache_->Insert(key, model_->version(), results.value(), computed);
    }
    if (stats != nullptr) AccumulateRetrievalStats(computed, stats);
    query_latency_ms_->Observe(ElapsedMs(start));
    return results;
  }
  // A local stats block (merged into the caller's at the end) lets the
  // degraded-query counter fire even when the caller passed no stats.
  RetrievalStats computed;
  auto results = run_traversal(&computed);
  if (!results.ok()) query_errors_total_->Increment();
  if (results.ok() && computed.degraded) queries_degraded_total_->Increment();
  if (stats != nullptr) AccumulateRetrievalStats(computed, stats);
  query_latency_ms_->Observe(ElapsedMs(start));
  return results;
}

StatusOr<std::vector<QbeResult>> VideoDatabase::QueryByExample(
    const std::vector<double>& raw_features, QbeOptions options) const {
  std::shared_lock<std::shared_mutex> lock(*state_mutex_);
  QbeMatcher matcher(*model_, std::move(options));
  return matcher.Retrieve(raw_features);
}

StatusOr<std::vector<QbeResult>> VideoDatabase::MoreLikeShot(
    ShotId shot, QbeOptions options) const {
  std::shared_lock<std::shared_mutex> lock(*state_mutex_);
  QbeMatcher matcher(*model_, std::move(options));
  return matcher.RetrieveSimilarTo(shot);
}

Status VideoDatabase::MarkPositive(const RetrievedPattern& pattern) {
  std::unique_lock<std::shared_mutex> lock(*state_mutex_);
  HMMM_RETURN_IF_ERROR(trainer_->MarkPositive(*model_, pattern));
  HMMM_ASSIGN_OR_RETURN(bool trained, trainer_->MaybeTrain(*model_));
  // Training rewrites A1/Pi1/A2/Pi2 and bumps the model version; the
  // cache's version guard would lazily flush, but an eager clear keeps
  // the occupancy gauge honest immediately.
  if (trained && cache_ != nullptr) cache_->Clear();
  return Status::OK();
}

StatusOr<bool> VideoDatabase::Train() {
  std::unique_lock<std::shared_mutex> lock(*state_mutex_);
  HMMM_ASSIGN_OR_RETURN(bool trained,
                        trainer_->MaybeTrain(*model_, /*force=*/true));
  if (trained && cache_ != nullptr) cache_->Clear();
  return trained;
}

Status VideoDatabase::ReplaceCatalog(VideoCatalog catalog) {
  std::unique_lock<std::shared_mutex> lock(*state_mutex_);
  HMMM_RETURN_IF_ERROR(catalog.Validate());
  HMMM_ASSIGN_OR_RETURN(
      HierarchicalModel model,
      RebuildPreservingLearning(*model_, catalog, options_.builder));
  *catalog_ = std::move(catalog);
  *model_ = std::move(model);
  // The rebuilt model's version counter restarts, so it can collide with
  // the version the cached rankings were computed under — the guard
  // cannot catch that; clear explicitly. The adopted snapshot index has
  // the same version-collision hazard (FreshFor compares counters), and
  // nothing borrows the mapping once the old catalog/model are gone, so
  // both go now — index first, it borrows the mapping's sims.
  prebuilt_index_.reset();
  snapshot_keepalive_.reset();
  if (cache_ != nullptr) cache_->Clear();
  // The trainer references the catalog object (stable address), but any
  // pending global-state feedback refers to the old model: start fresh.
  trainer_ = std::make_unique<FeedbackTrainer>(*catalog_, options_.feedback);
  trainer_->AttachMetrics(metrics_.get());
  if (options_.enable_category_level) {
    HMMM_RETURN_IF_ERROR(RebuildCategoriesLocked());
  }
  return Status::OK();
}

size_t VideoDatabase::training_rounds() const {
  std::shared_lock<std::shared_mutex> lock(*state_mutex_);
  return trainer_->rounds_trained();
}

VideoDatabase::HealthSnapshot VideoDatabase::Health() const {
  std::shared_lock<std::shared_mutex> lock(*state_mutex_);
  HealthSnapshot health;
  health.videos = catalog_->num_videos();
  health.shots = catalog_->num_shots();
  health.annotated_shots = catalog_->num_annotated_shots();
  health.model_version = model_->version();
  return health;
}

void VideoDatabase::ClearQueryCache() {
  if (cache_ != nullptr) cache_->Clear();
}

QueryCacheStats VideoDatabase::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : QueryCacheStats{};
}

void VideoDatabase::set_admission_options(const AdmissionOptions& options) {
  std::lock_guard<std::mutex> lock(admission_->mutex);
  admission_->options = options;
  // Parked waiters re-check against the new bounds.
  admission_->slot_freed.notify_all();
}

AdmissionOptions VideoDatabase::admission_options() const {
  std::lock_guard<std::mutex> lock(admission_->mutex);
  return admission_->options;
}

Status VideoDatabase::AcquireSlot() const {
  Admission& admission = *admission_;
  std::unique_lock<std::mutex> lock(admission.mutex);
  const auto admitted = [&admission] {
    return admission.options.max_concurrent <= 0 ||
           admission.in_flight < admission.options.max_concurrent;
  };
  if (!admitted()) {
    if (admission.queued >= admission.options.max_queued) {
      // Saturated and the bounded wait queue is full: shed immediately
      // rather than letting latency pile up behind a burst.
      admission_rejected_total_->Increment();
      return Status::ResourceExhausted(
          "retrieval admission queue full (load shed)");
    }
    ++admission.queued;
    const bool got_slot = admission.slot_freed.wait_for(
        lock, admission.options.max_queue_wait, admitted);
    --admission.queued;
    if (!got_slot) {
      admission_rejected_total_->Increment();
      return Status::ResourceExhausted(
          "timed out waiting for a retrieval slot");
    }
  }
  ++admission.in_flight;
  return Status::OK();
}

void VideoDatabase::ReleaseSlot() const {
  std::lock_guard<std::mutex> lock(admission_->mutex);
  --admission_->in_flight;
  admission_->slot_freed.notify_one();
}

void VideoDatabase::RefreshResourceGauges() const {
  metrics_
      ->GetGauge("hmmm_model_version",
                 "model version counter; bumps on feedback training")
      ->Set(static_cast<double>(model_->version()));
  const ThreadPoolStats pool =
      pool_ != nullptr ? pool_->stats() : ThreadPoolStats{};
  metrics_->GetGauge("hmmm_pool_workers", "worker threads in the fan-out pool")
      ->Set(static_cast<double>(pool.workers));
  metrics_->GetGauge("hmmm_pool_queue_depth", "tasks currently queued")
      ->Set(static_cast<double>(pool.queue_depth));
  metrics_
      ->GetGauge("hmmm_pool_tasks_executed",
                 "tasks completed since pool construction")
      ->Set(static_cast<double>(pool.tasks_executed));
  metrics_
      ->GetGauge("hmmm_pool_busy_ms",
                 "summed wall time workers spent inside tasks")
      ->Set(pool.busy_ms);
}

std::string VideoDatabase::DumpMetrics() const {
  {
    std::shared_lock<std::shared_mutex> lock(*state_mutex_);
    RefreshResourceGauges();
  }
  return metrics_->RenderJson();
}

std::string VideoDatabase::DumpMetricsPrometheus() const {
  {
    std::shared_lock<std::shared_mutex> lock(*state_mutex_);
    RefreshResourceGauges();
  }
  return metrics_->RenderPrometheus();
}

Status VideoDatabase::RebuildCategories() {
  std::unique_lock<std::shared_mutex> lock(*state_mutex_);
  return RebuildCategoriesLocked();
}

Status VideoDatabase::RebuildCategoriesLocked() {
  HMMM_ASSIGN_OR_RETURN(CategoryLevel level,
                        BuildCategoryLevel(*model_, options_.categories));
  categories_ = std::move(level);
  return Status::OK();
}

}  // namespace hmmm
