#include "api/video_database.h"

#include <chrono>

#include "storage/model_io.h"

namespace hmmm {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

VideoDatabase::VideoDatabase(VideoCatalog catalog, HierarchicalModel model,
                             VideoDatabaseOptions options)
    : options_(std::move(options)),
      catalog_(std::make_unique<VideoCatalog>(std::move(catalog))),
      model_(std::make_unique<HierarchicalModel>(std::move(model))),
      metrics_(std::make_unique<MetricsRegistry>()),
      trainer_(std::make_unique<FeedbackTrainer>(*catalog_,
                                                 options_.feedback)),
      pool_(MakeThreadPool(options_.traversal.num_threads)) {
  queries_total_ = metrics_->GetCounter("hmmm_queries_total",
                                        "temporal-pattern retrievals answered");
  query_errors_total_ = metrics_->GetCounter(
      "hmmm_query_errors_total", "retrievals that returned a non-OK status");
  queries_degraded_total_ = metrics_->GetCounter(
      "hmmm_queries_degraded_total",
      "retrievals that returned an anytime prefix result after a "
      "deadline or cancellation fired");
  query_latency_ms_ =
      metrics_->GetHistogram("hmmm_query_latency_ms", DefaultLatencyBucketsMs(),
                             "end-to-end Retrieve() wall time");
  trainer_->AttachMetrics(metrics_.get());
}

StatusOr<VideoDatabase> VideoDatabase::Create(VideoCatalog catalog,
                                              VideoDatabaseOptions options) {
  HMMM_RETURN_IF_ERROR(catalog.Validate());
  ModelBuilder builder(catalog, options.builder);
  HMMM_ASSIGN_OR_RETURN(HierarchicalModel model, builder.Build());
  VideoDatabase db(std::move(catalog), std::move(model), std::move(options));
  if (db.options_.enable_category_level) {
    HMMM_RETURN_IF_ERROR(db.RebuildCategories());
  }
  return db;
}

StatusOr<VideoDatabase> VideoDatabase::Open(const std::string& catalog_path,
                                            const std::string& model_path,
                                            VideoDatabaseOptions options) {
  HMMM_ASSIGN_OR_RETURN(VideoCatalog catalog, LoadCatalog(catalog_path));
  HMMM_ASSIGN_OR_RETURN(HierarchicalModel model,
                        HierarchicalModel::LoadFromFile(model_path));
  if (model.num_videos() != catalog.num_videos()) {
    return Status::FailedPrecondition(
        "model and catalog disagree on video count");
  }
  if (model.num_global_states() != catalog.num_annotated_shots()) {
    return Status::FailedPrecondition(
        "model and catalog disagree on annotated shots");
  }
  VideoDatabase db(std::move(catalog), std::move(model), std::move(options));
  if (db.options_.enable_category_level) {
    HMMM_RETURN_IF_ERROR(db.RebuildCategories());
  }
  return db;
}

Status VideoDatabase::Save(const std::string& catalog_path,
                           const std::string& model_path) const {
  HMMM_RETURN_IF_ERROR(SaveCatalog(*catalog_, catalog_path));
  return model_->SaveToFile(model_path);
}

StatusOr<std::vector<RetrievedPattern>> VideoDatabase::Query(
    const std::string& text, RetrievalStats* stats) const {
  HMMM_ASSIGN_OR_RETURN(TemporalPattern pattern,
                        CompileQuery(text, catalog_->vocabulary()));
  return Retrieve(pattern, stats);
}

StatusOr<std::vector<RetrievedPattern>> VideoDatabase::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  queries_total_->Increment();
  // A local stats block (merged into the caller's at the end) lets the
  // degraded-query counter fire even when the caller passed no stats.
  RetrievalStats computed;
  StatusOr<std::vector<RetrievedPattern>> results = [&] {
    if (categories_.has_value()) {
      ThreeLevelTraversal traversal(*model_, *catalog_, *categories_,
                                    options_.traversal, pool_.get());
      return traversal.Retrieve(pattern, &computed);
    }
    HmmmTraversal traversal(*model_, *catalog_, options_.traversal,
                            pool_.get());
    return traversal.Retrieve(pattern, &computed);
  }();
  if (!results.ok()) query_errors_total_->Increment();
  if (results.ok() && computed.degraded) queries_degraded_total_->Increment();
  if (stats != nullptr) AccumulateRetrievalStats(computed, stats);
  query_latency_ms_->Observe(ElapsedMs(start));
  return results;
}

StatusOr<std::vector<QbeResult>> VideoDatabase::QueryByExample(
    const std::vector<double>& raw_features, QbeOptions options) const {
  QbeMatcher matcher(*model_, std::move(options));
  return matcher.Retrieve(raw_features);
}

StatusOr<std::vector<QbeResult>> VideoDatabase::MoreLikeShot(
    ShotId shot, QbeOptions options) const {
  QbeMatcher matcher(*model_, std::move(options));
  return matcher.RetrieveSimilarTo(shot);
}

Status VideoDatabase::MarkPositive(const RetrievedPattern& pattern) {
  HMMM_RETURN_IF_ERROR(trainer_->MarkPositive(*model_, pattern));
  HMMM_ASSIGN_OR_RETURN(bool trained, trainer_->MaybeTrain(*model_));
  (void)trained;
  return Status::OK();
}

StatusOr<bool> VideoDatabase::Train() {
  return trainer_->MaybeTrain(*model_, /*force=*/true);
}

Status VideoDatabase::ReplaceCatalog(VideoCatalog catalog) {
  HMMM_RETURN_IF_ERROR(catalog.Validate());
  HMMM_ASSIGN_OR_RETURN(
      HierarchicalModel model,
      RebuildPreservingLearning(*model_, catalog, options_.builder));
  *catalog_ = std::move(catalog);
  *model_ = std::move(model);
  // The trainer references the catalog object (stable address), but any
  // pending global-state feedback refers to the old model: start fresh.
  trainer_ = std::make_unique<FeedbackTrainer>(*catalog_, options_.feedback);
  trainer_->AttachMetrics(metrics_.get());
  if (options_.enable_category_level) {
    HMMM_RETURN_IF_ERROR(RebuildCategories());
  }
  return Status::OK();
}

void VideoDatabase::RefreshResourceGauges() const {
  metrics_
      ->GetGauge("hmmm_model_version",
                 "model version counter; bumps on feedback training")
      ->Set(static_cast<double>(model_->version()));
  const ThreadPoolStats pool =
      pool_ != nullptr ? pool_->stats() : ThreadPoolStats{};
  metrics_->GetGauge("hmmm_pool_workers", "worker threads in the fan-out pool")
      ->Set(static_cast<double>(pool.workers));
  metrics_->GetGauge("hmmm_pool_queue_depth", "tasks currently queued")
      ->Set(static_cast<double>(pool.queue_depth));
  metrics_
      ->GetGauge("hmmm_pool_tasks_executed",
                 "tasks completed since pool construction")
      ->Set(static_cast<double>(pool.tasks_executed));
  metrics_
      ->GetGauge("hmmm_pool_busy_ms",
                 "summed wall time workers spent inside tasks")
      ->Set(pool.busy_ms);
}

std::string VideoDatabase::DumpMetrics() const {
  RefreshResourceGauges();
  return metrics_->RenderJson();
}

std::string VideoDatabase::DumpMetricsPrometheus() const {
  RefreshResourceGauges();
  return metrics_->RenderPrometheus();
}

Status VideoDatabase::RebuildCategories() {
  HMMM_ASSIGN_OR_RETURN(CategoryLevel level,
                        BuildCategoryLevel(*model_, options_.categories));
  categories_ = std::move(level);
  return Status::OK();
}

}  // namespace hmmm
