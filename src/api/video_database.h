#ifndef HMMM_API_VIDEO_DATABASE_H_
#define HMMM_API_VIDEO_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/category_level.h"
#include "core/model_builder.h"
#include "feedback/trainer.h"
#include "observability/metrics_registry.h"
#include "retrieval/qbe.h"
#include "retrieval/three_level.h"
#include "retrieval/traversal.h"

namespace hmmm {

/// Options bundle for a VideoDatabase instance.
struct VideoDatabaseOptions {
  ModelBuilderOptions builder;
  /// traversal.num_threads sizes a worker pool owned by the database and
  /// shared by every query's per-video fan-out (1 = serial, 0 = one per
  /// hardware thread). Ranked results are identical at any thread count.
  TraversalOptions traversal;
  FeedbackTrainerOptions feedback;
  /// Build and use the third (video-category) level for Step-2 pruning.
  bool enable_category_level = false;
  CategoryLevelOptions categories;
};

/// The multimedia database management system view of this library
/// (the paper's MMDBMS): one object owning the archive catalog, the
/// HMMM, the feedback trainer and (optionally) the category level, with
/// query / feedback / persistence entry points. This is the recommended
/// API for applications; the lower-level pieces remain available for
/// research use.
class VideoDatabase {
 public:
  /// Builds a database over an ingested catalog (takes ownership).
  static StatusOr<VideoDatabase> Create(VideoCatalog catalog,
                                        VideoDatabaseOptions options = {});

  /// Loads a persisted catalog + model pair.
  static StatusOr<VideoDatabase> Open(const std::string& catalog_path,
                                      const std::string& model_path,
                                      VideoDatabaseOptions options = {});

  /// Persists the catalog and the (possibly trained) model.
  Status Save(const std::string& catalog_path,
              const std::string& model_path) const;

  VideoDatabase(VideoDatabase&&) = default;
  VideoDatabase& operator=(VideoDatabase&&) = default;

  // -- Queries -----------------------------------------------------------

  /// Compiles and answers a textual temporal pattern query.
  StatusOr<std::vector<RetrievedPattern>> Query(
      const std::string& text, RetrievalStats* stats = nullptr) const;

  /// Answers a translated pattern.
  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, RetrievalStats* stats = nullptr) const;

  /// Query by example: ranks shots against a raw feature vector.
  StatusOr<std::vector<QbeResult>> QueryByExample(
      const std::vector<double>& raw_features, QbeOptions options = {}) const;

  /// "More like this shot".
  StatusOr<std::vector<QbeResult>> MoreLikeShot(ShotId shot,
                                                QbeOptions options = {}) const;

  // -- Feedback ----------------------------------------------------------

  /// Marks a retrieved pattern as positive; triggers offline retraining
  /// automatically when the feedback threshold is reached.
  Status MarkPositive(const RetrievedPattern& pattern);

  /// Forces a retraining round regardless of the threshold. Returns true
  /// if training ran.
  StatusOr<bool> Train();

  /// Feedback rounds applied so far.
  size_t training_rounds() const { return trainer_->rounds_trained(); }

  // -- Introspection -----------------------------------------------------

  const VideoCatalog& catalog() const { return *catalog_; }
  const HierarchicalModel& model() const { return *model_; }
  /// Present only when options.enable_category_level was set.
  const CategoryLevel* categories() const {
    return categories_.has_value() ? &*categories_ : nullptr;
  }

  /// The database-owned metrics registry: query counters and latency
  /// histogram, feedback-training metrics, pool/model resource gauges.
  /// Stable for the database's lifetime (also across moves).
  MetricsRegistry& metrics_registry() const { return *metrics_; }

  /// One-stop JSON snapshot of every registered metric, refreshing the
  /// pool/model gauges first. The shape matches
  /// MetricsRegistry::RenderJson().
  std::string DumpMetrics() const;
  /// The same dump in Prometheus text exposition format.
  std::string DumpMetricsPrometheus() const;

  /// Re-clusters the category level (e.g. after heavy retraining).
  Status RebuildCategories();

  /// Swaps in a grown catalog (e.g. replayed from a CatalogJournal after
  /// more footage was ingested) and rebuilds the model, carrying over
  /// learned A1/Pi1/A2/Pi2 where possible (RebuildPreservingLearning).
  /// Pending un-trained feedback is dropped.
  Status ReplaceCatalog(VideoCatalog catalog);

 private:
  VideoDatabase(VideoCatalog catalog, HierarchicalModel model,
                VideoDatabaseOptions options);

  /// Copies pool usage and the model version into registry gauges.
  void RefreshResourceGauges() const;

  VideoDatabaseOptions options_;
  std::unique_ptr<VideoCatalog> catalog_;
  std::unique_ptr<HierarchicalModel> model_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<FeedbackTrainer> trainer_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads resolves to 1
  std::optional<CategoryLevel> categories_;
  // Hot-path handles into metrics_ (stable: the registry never relocates
  // entries).
  Counter* queries_total_ = nullptr;
  Counter* query_errors_total_ = nullptr;
  Counter* queries_degraded_total_ = nullptr;
  Histogram* query_latency_ms_ = nullptr;
};

}  // namespace hmmm

#endif  // HMMM_API_VIDEO_DATABASE_H_
