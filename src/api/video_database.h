#ifndef HMMM_API_VIDEO_DATABASE_H_
#define HMMM_API_VIDEO_DATABASE_H_

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/category_level.h"
#include "core/model_builder.h"
#include "feedback/trainer.h"
#include "observability/metrics_registry.h"
#include "retrieval/admission.h"
#include "retrieval/qbe.h"
#include "retrieval/query_cache.h"
#include "retrieval/three_level.h"
#include "retrieval/traversal.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"

namespace hmmm {

/// Options bundle for a VideoDatabase instance.
struct VideoDatabaseOptions {
  ModelBuilderOptions builder;
  /// traversal.num_threads sizes a worker pool owned by the database and
  /// shared by every query's per-video fan-out (1 = serial, 0 = one per
  /// hardware thread). Ranked results are identical at any thread count.
  TraversalOptions traversal;
  FeedbackTrainerOptions feedback;
  /// Build and use the third (video-category) level for Step-2 pruning.
  bool enable_category_level = false;
  CategoryLevelOptions categories;
  /// Entries in the query-result LRU cache (same semantics as the
  /// RetrievalEngine cache: keyed by pattern signature + model version,
  /// single-flight, degraded results never cached). 0 disables caching.
  size_t query_cache_entries = 64;
  /// Bounds concurrent Retrieve/Query calls; saturated databases shed
  /// load with kResourceExhausted. Default: admission control off.
  AdmissionOptions admission;
};

/// Per-query serving controls layered over the database-wide
/// TraversalOptions: an absolute wall-clock deadline (anytime degradation,
/// not an error), an external cancellation token (e.g. a server's
/// shutdown token) and an optional trace sink. Fields left at their
/// defaults inherit whatever VideoDatabaseOptions::traversal carries.
struct QueryControls {
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  const CancellationToken* cancellation = nullptr;
  QueryTrace* trace = nullptr;
};

/// The multimedia database management system view of this library
/// (the paper's MMDBMS): one object owning the archive catalog, the
/// HMMM, the feedback trainer and (optionally) the category level, with
/// query / feedback / persistence entry points. This is the recommended
/// API for applications; the lower-level pieces remain available for
/// research use.
class VideoDatabase {
 public:
  /// Builds a database over an ingested catalog (takes ownership).
  static StatusOr<VideoDatabase> Create(VideoCatalog catalog,
                                        VideoDatabaseOptions options = {});

  /// Loads a persisted catalog + model pair.
  static StatusOr<VideoDatabase> Open(const std::string& catalog_path,
                                      const std::string& model_path,
                                      VideoDatabaseOptions options = {});

  /// Builds a database over an already-built model (same agreement
  /// checks as Open, no file round-trip). This is how a shard server
  /// adopts a PartitionForServing slice: the slice model must be served
  /// as-is — rebuilding it from the slice catalog would refit the Eq.-3
  /// normalizer and the B1'/P12 centroids to the slice and break
  /// bit-identity with the full archive.
  static StatusOr<VideoDatabase> CreateWithModel(
      VideoCatalog catalog, HierarchicalModel model,
      VideoDatabaseOptions options = {});

  /// Opens a frozen snapshot file (snapshot_format.h) by mmap'ing it:
  /// every matrix is served as a borrowed view of the mapped pages (the
  /// reader is kept alive inside the database), and the frozen event
  /// index is adopted so no Eq.-14 sweep runs at open. Cold-start cost is
  /// O(shot records), independent of feature/matrix volume. Queries
  /// return byte-identical rankings to a blob-opened database; training
  /// works too (mutated matrices copy to the heap on first write).
  static StatusOr<VideoDatabase> OpenSnapshot(
      const std::string& path, VideoDatabaseOptions options = {},
      const SnapshotOptions& snapshot_options = {});

  /// OpenSnapshot, degrading to the legacy blob pair on ANY snapshot
  /// failure (missing file, map failure, corruption) — a snapshot is a
  /// serving accelerator, never a single point of failure. Pass an empty
  /// `snapshot_path` to skip straight to the blobs.
  static StatusOr<VideoDatabase> OpenSnapshotWithFallback(
      const std::string& snapshot_path, const std::string& catalog_path,
      const std::string& model_path, VideoDatabaseOptions options = {},
      const SnapshotOptions& snapshot_options = {});

  /// Persists the catalog and the (possibly trained) model.
  Status Save(const std::string& catalog_path,
              const std::string& model_path) const;

  /// Freezes the current catalog + model (+ event index) into a snapshot
  /// file at `path` (atomic tmp + rename), under the shared state lock.
  Status WriteSnapshot(const std::string& path,
                       SnapshotWriteOptions options = {}) const;

  /// Freezes into `dir/snapshot-<generation>.hmms` and repoints
  /// `dir/CURRENT` (the generation publish protocol); returns the
  /// published path. This is how Train() results reach cold-starting
  /// shards without a byte of re-serialization on their side.
  StatusOr<std::string> PublishSnapshot(const std::string& dir,
                                        uint64_t generation) const;

  // Defined in video_database.cc where Admission is complete.
  VideoDatabase(VideoDatabase&&) noexcept;
  VideoDatabase& operator=(VideoDatabase&&) noexcept;
  ~VideoDatabase();

  // -- Queries -----------------------------------------------------------
  //
  // All query entry points are safe to call concurrently with each other
  // and with the feedback/replace entry points: queries hold a shared
  // lock over the catalog/model/category state, mutators an exclusive
  // one. Results are served from the LRU cache when an identical pattern
  // was answered under the current model version (hits replay the
  // recorded RetrievalStats); concurrent identical misses are coalesced
  // (single-flight). May fail with kResourceExhausted when admission
  // control is configured and the database is saturated.

  /// Compiles and answers a textual temporal pattern query.
  StatusOr<std::vector<RetrievedPattern>> Query(
      const std::string& text, RetrievalStats* stats = nullptr) const;

  /// Same, with per-query deadline/cancellation/trace controls.
  StatusOr<std::vector<RetrievedPattern>> Query(
      const std::string& text, const QueryControls& controls,
      RetrievalStats* stats = nullptr) const;

  /// Answers a translated pattern.
  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, RetrievalStats* stats = nullptr) const;

  /// Same, with per-query deadline/cancellation/trace controls. A fired
  /// deadline or cancellation degrades (anytime prefix ranking,
  /// stats->degraded = true) rather than failing; degraded results are
  /// never cached.
  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, const QueryControls& controls,
      RetrievalStats* stats = nullptr) const;

  /// Query by example: ranks shots against a raw feature vector.
  StatusOr<std::vector<QbeResult>> QueryByExample(
      const std::vector<double>& raw_features, QbeOptions options = {}) const;

  /// "More like this shot".
  StatusOr<std::vector<QbeResult>> MoreLikeShot(ShotId shot,
                                                QbeOptions options = {}) const;

  // -- Feedback ----------------------------------------------------------

  /// Marks a retrieved pattern as positive; triggers offline retraining
  /// automatically when the feedback threshold is reached.
  Status MarkPositive(const RetrievedPattern& pattern);

  /// Forces a retraining round regardless of the threshold. Returns true
  /// if training ran.
  StatusOr<bool> Train();

  /// Feedback rounds applied so far.
  size_t training_rounds() const;

  // -- Introspection -----------------------------------------------------

  /// Consistent snapshot of the archive/model shape, taken under the
  /// state lock — safe to read while feedback or ReplaceCatalog runs on
  /// another thread (unlike the raw catalog()/model() references).
  struct HealthSnapshot {
    size_t videos = 0;
    size_t shots = 0;
    size_t annotated_shots = 0;
    uint64_t model_version = 0;
  };
  HealthSnapshot Health() const;

  const VideoCatalog& catalog() const { return *catalog_; }
  const HierarchicalModel& model() const { return *model_; }
  /// Present only when options.enable_category_level was set.
  const CategoryLevel* categories() const {
    return categories_.has_value() ? &*categories_ : nullptr;
  }

  /// The database-owned metrics registry: query counters and latency
  /// histogram, feedback-training metrics, pool/model resource gauges.
  /// Stable for the database's lifetime (also across moves).
  MetricsRegistry& metrics_registry() const { return *metrics_; }

  /// One-stop JSON snapshot of every registered metric, refreshing the
  /// pool/model gauges first. The shape matches
  /// MetricsRegistry::RenderJson().
  std::string DumpMetrics() const;
  /// The same dump in Prometheus text exposition format.
  std::string DumpMetricsPrometheus() const;

  /// Drops every cached query result. Called internally whenever the
  /// model is replaced wholesale (ReplaceCatalog) or retrained (Train,
  /// threshold-triggered training inside MarkPositive): a rebuilt model's
  /// version counter restarts at zero, so the cache's version guard alone
  /// cannot tell a fresh model from the one the entries were computed
  /// under.
  void ClearQueryCache();

  /// Hit/miss/occupancy counters of the query-result cache; all-zero
  /// capacity when caching is disabled.
  QueryCacheStats cache_stats() const;

  /// Replaces the admission policy. Takes effect for subsequent
  /// Retrieve/Query calls; already-parked waiters re-evaluate against
  /// the new bounds.
  void set_admission_options(const AdmissionOptions& options);
  AdmissionOptions admission_options() const;

  /// Re-clusters the category level (e.g. after heavy retraining).
  Status RebuildCategories();

  /// Swaps in a grown catalog (e.g. replayed from a CatalogJournal after
  /// more footage was ingested) and rebuilds the model, carrying over
  /// learned A1/Pi1/A2/Pi2 where possible (RebuildPreservingLearning).
  /// Pending un-trained feedback is dropped.
  Status ReplaceCatalog(VideoCatalog catalog);

 private:
  VideoDatabase(VideoCatalog catalog, HierarchicalModel model,
                VideoDatabaseOptions options);

  /// Copies pool usage and the model version into registry gauges.
  /// Caller holds state_mutex_ (shared suffices).
  void RefreshResourceGauges() const;

  /// RebuildCategories body; caller holds state_mutex_ exclusively.
  Status RebuildCategoriesLocked();

  /// Blocks (bounded) for an admission slot per admission_options().
  /// Every OK must be paired with ReleaseSlot().
  Status AcquireSlot() const;
  void ReleaseSlot() const;

  VideoDatabaseOptions options_;
  std::unique_ptr<VideoCatalog> catalog_;
  std::unique_ptr<HierarchicalModel> model_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<FeedbackTrainer> trainer_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads resolves to 1
  std::optional<CategoryLevel> categories_;
  /// Readers-writer lock over catalog_/model_/categories_/trainer_:
  /// queries share, mutators (MarkPositive/Train/ReplaceCatalog) are
  /// exclusive. unique_ptr keeps the database movable.
  std::unique_ptr<std::shared_mutex> state_mutex_;
  std::unique_ptr<QueryCache> cache_;  // null when caching is disabled
  /// For a snapshot-opened database: the mapping every borrowed matrix
  /// points into. Declared above the prebuilt index so the index (which
  /// borrows the frozen sims) is destroyed first.
  std::unique_ptr<SnapshotReader> snapshot_keepalive_;
  /// The adopted frozen event index. Used by Retrieve only while
  /// FreshFor(model) holds — the first training round invalidates it and
  /// traversals fall back to their own per-model index build.
  std::unique_ptr<EventBitmapIndex> prebuilt_index_;
  /// Admission mutex + cv + in-flight counters behind a pointer, same
  /// movability trick as state_mutex_.
  struct Admission;
  std::unique_ptr<Admission> admission_;
  // Hot-path handles into metrics_ (stable: the registry never relocates
  // entries).
  Counter* queries_total_ = nullptr;
  Counter* query_errors_total_ = nullptr;
  Counter* queries_degraded_total_ = nullptr;
  Counter* admission_rejected_total_ = nullptr;
  Histogram* query_latency_ms_ = nullptr;
};

}  // namespace hmmm

#endif  // HMMM_API_VIDEO_DATABASE_H_
