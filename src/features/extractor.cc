#include "features/extractor.h"

#include "common/strings.h"

namespace hmmm {

ShotFeatureExtractor::ShotFeatureExtractor(AudioAnalysisOptions audio_options)
    : audio_options_(audio_options) {}

std::vector<double> ShotFeatureExtractor::Pack(const VisualFeatures& visual,
                                               const AudioFeatures& audio) {
  std::vector<double> out(static_cast<size_t>(kNumFeatures), 0.0);
  out[static_cast<size_t>(FeatureIndex::kGrassRatio)] = visual.grass_ratio;
  out[static_cast<size_t>(FeatureIndex::kPixelChangePercent)] =
      visual.pixel_change_percent;
  out[static_cast<size_t>(FeatureIndex::kHistoChange)] = visual.histo_change;
  out[static_cast<size_t>(FeatureIndex::kBackgroundVar)] =
      visual.background_var;
  out[static_cast<size_t>(FeatureIndex::kBackgroundMean)] =
      visual.background_mean;
  out[static_cast<size_t>(FeatureIndex::kVolumeMean)] = audio.volume_mean;
  out[static_cast<size_t>(FeatureIndex::kVolumeStd)] = audio.volume_std;
  out[static_cast<size_t>(FeatureIndex::kVolumeStdd)] = audio.volume_stdd;
  out[static_cast<size_t>(FeatureIndex::kVolumeRange)] = audio.volume_range;
  out[static_cast<size_t>(FeatureIndex::kEnergyMean)] = audio.energy_mean;
  out[static_cast<size_t>(FeatureIndex::kSub1Mean)] = audio.sub1_mean;
  out[static_cast<size_t>(FeatureIndex::kSub3Mean)] = audio.sub3_mean;
  out[static_cast<size_t>(FeatureIndex::kEnergyLowRate)] =
      audio.energy_lowrate;
  out[static_cast<size_t>(FeatureIndex::kSub1LowRate)] = audio.sub1_lowrate;
  out[static_cast<size_t>(FeatureIndex::kSub3LowRate)] = audio.sub3_lowrate;
  out[static_cast<size_t>(FeatureIndex::kSub1Std)] = audio.sub1_std;
  out[static_cast<size_t>(FeatureIndex::kSfMean)] = audio.sf_mean;
  out[static_cast<size_t>(FeatureIndex::kSfStd)] = audio.sf_std;
  out[static_cast<size_t>(FeatureIndex::kSfStdd)] = audio.sf_stdd;
  out[static_cast<size_t>(FeatureIndex::kSfRange)] = audio.sf_range;
  return out;
}

StatusOr<std::vector<double>> ShotFeatureExtractor::Extract(
    const std::vector<Frame>& frames, int begin_frame, int end_frame,
    const AudioClip& shot_audio) const {
  HMMM_ASSIGN_OR_RETURN(VisualFeatures visual,
                        ExtractVisualFeatures(frames, begin_frame, end_frame));
  HMMM_ASSIGN_OR_RETURN(AudioFeatures audio,
                        ExtractAudioFeatures(shot_audio, audio_options_));
  return Pack(visual, audio);
}

StatusOr<std::vector<double>> ShotFeatureExtractor::ExtractForShot(
    const SyntheticVideo& video, size_t shot_index) const {
  if (shot_index >= video.shots.size()) {
    return Status::OutOfRange(
        StrFormat("shot %zu out of %zu", shot_index, video.shots.size()));
  }
  const ShotTruth& shot = video.shots[shot_index];
  return Extract(video.frames, shot.begin_frame, shot.end_frame,
                 video.AudioForFrames(shot.begin_frame, shot.end_frame));
}

}  // namespace hmmm
