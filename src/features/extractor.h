#ifndef HMMM_FEATURES_EXTRACTOR_H_
#define HMMM_FEATURES_EXTRACTOR_H_

#include <vector>

#include "common/status.h"
#include "features/audio_features.h"
#include "features/feature_schema.h"
#include "features/visual_features.h"
#include "media/video.h"

namespace hmmm {

/// Assembles the 20-dimensional Table-1 feature vector of a shot from its
/// frames and aligned audio. Produces the raw (un-normalized) values that
/// populate the BB1 matrix of Eq. 3; the FeatureNormalizer turns those into
/// the B1 matrix.
class ShotFeatureExtractor {
 public:
  explicit ShotFeatureExtractor(AudioAnalysisOptions audio_options = {});

  /// Features for the frame span [begin_frame, end_frame) with that span's
  /// audio. The result has exactly kNumFeatures entries in FeatureIndex
  /// order.
  StatusOr<std::vector<double>> Extract(const std::vector<Frame>& frames,
                                        int begin_frame, int end_frame,
                                        const AudioClip& shot_audio) const;

  /// Features for the `shot_index`-th ground-truth shot of a synthetic
  /// video (convenience for pipeline code and tests).
  StatusOr<std::vector<double>> ExtractForShot(const SyntheticVideo& video,
                                               size_t shot_index) const;

  /// Packs the two typed blocks into the flat FeatureIndex-ordered vector.
  static std::vector<double> Pack(const VisualFeatures& visual,
                                  const AudioFeatures& audio);

 private:
  AudioAnalysisOptions audio_options_;
};

}  // namespace hmmm

#endif  // HMMM_FEATURES_EXTRACTOR_H_
