#include "features/audio_features.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"
#include "dsp/filterbank.h"
#include "dsp/stats.h"
#include "dsp/window.h"

namespace hmmm {

StatusOr<AudioFeatures> ExtractAudioFeatures(
    const AudioClip& clip, const AudioAnalysisOptions& options) {
  AudioFeatures out;
  if (clip.sample_rate() <= 0) {
    if (clip.empty()) return out;  // empty clip: all-zero features
    return Status::InvalidArgument("audio clip without sample rate");
  }
  const auto window_size = static_cast<size_t>(
      std::max(1.0, options.window_seconds * clip.sample_rate()));
  const auto hop_size = static_cast<size_t>(
      std::max(1.0, options.hop_seconds * clip.sample_rate()));
  const auto frames = dsp::FrameSignal(clip.samples(), window_size, hop_size);
  if (frames.empty()) return out;  // too short to analyze

  const std::vector<double> hann = dsp::HannWindow(window_size);
  const std::vector<dsp::SubBand> bands = dsp::DefaultSubBands();

  std::vector<double> volume;        // time-domain RMS per window
  std::vector<double> sub1_energy;   // sub-band 1 RMS per window
  std::vector<double> sub3_energy;   // sub-band 3 RMS per window
  std::vector<double> flux;          // spectral flux per window pair
  volume.reserve(frames.size());
  sub1_energy.reserve(frames.size());
  sub3_energy.reserve(frames.size());

  std::vector<double> previous_spectrum;
  for (const auto& raw_frame : frames) {
    volume.push_back(dsp::FrameRms(raw_frame));

    std::vector<double> windowed = raw_frame;
    dsp::ApplyWindow(windowed, hann);
    HMMM_ASSIGN_OR_RETURN(auto spectrum, dsp::MagnitudeSpectrum(windowed));
    HMMM_ASSIGN_OR_RETURN(auto band_rms, dsp::SubBandRms(windowed, bands));
    sub1_energy.push_back(band_rms[0]);
    sub3_energy.push_back(band_rms[2]);

    if (!previous_spectrum.empty()) {
      HMMM_ASSIGN_OR_RETURN(double f,
                            dsp::SpectralFlux(previous_spectrum, spectrum));
      flux.push_back(f);
    }
    previous_spectrum = std::move(spectrum);
  }

  const double max_volume =
      *std::max_element(volume.begin(), volume.end());
  const double volume_norm = max_volume > 0.0 ? max_volume : 1.0;
  out.volume_mean = dsp::Mean(volume) / volume_norm;
  out.volume_std = dsp::StdDev(volume) / volume_norm;
  out.volume_stdd = dsp::StdDev(dsp::Differences(volume)) / volume_norm;
  out.volume_range = dsp::DynamicRange(volume);

  out.energy_mean = dsp::Mean(volume);
  out.sub1_mean = dsp::Mean(sub1_energy);
  out.sub3_mean = dsp::Mean(sub3_energy);
  out.energy_lowrate = dsp::LowRate(volume, 0.5);
  out.sub1_lowrate = dsp::LowRate(sub1_energy, 0.5);
  out.sub3_lowrate = dsp::LowRate(sub3_energy, 0.5);
  out.sub1_std = dsp::StdDev(sub1_energy);

  if (!flux.empty()) {
    const double max_flux = *std::max_element(flux.begin(), flux.end());
    const double flux_norm = max_flux > 0.0 ? max_flux : 1.0;
    out.sf_mean = dsp::Mean(flux);
    out.sf_std = dsp::StdDev(flux) / flux_norm;
    out.sf_stdd = dsp::StdDev(dsp::Differences(flux)) / flux_norm;
    out.sf_range = dsp::DynamicRange(flux);
  }
  return out;
}

}  // namespace hmmm
