#include "features/feature_schema.h"

#include "common/strings.h"

namespace hmmm {

namespace {

struct FeatureInfo {
  std::string name;
  std::string description;
};

const std::vector<FeatureInfo>& Infos() {
  static const std::vector<FeatureInfo>& infos = *new std::vector<FeatureInfo>{
      {"grass_ratio", "Average percent of grass areas in a shot"},
      {"pixel_change_percent",
       "Average percent of the changed pixels between frames within a shot"},
      {"histo_change",
       "Mean value of the histogram difference between frames within a shot"},
      {"background_var", "Mean value of the variance of background pixels"},
      {"background_mean", "Mean value of the background pixels"},
      {"volume_mean",
       "Mean volume, normalized by the maximum volume (reconstructed from "
       "ref [6])"},
      {"volume_std",
       "Standard deviation of the volume, normalized by the maximum volume"},
      {"volume_stdd",
       "Standard deviation of the difference of the volume"},
      {"volume_range",
       "Dynamic range of the volume, (max(v) - min(v)) / max(v)"},
      {"energy_mean", "Average RMS energy"},
      {"sub1_mean", "Average RMS energy of the first sub-band"},
      {"sub3_mean", "Average RMS energy of the third sub-band"},
      {"energy_lowrate",
       "Percentage of samples with RMS power less than 0.5 times the mean "
       "RMS power"},
      {"sub1_lowrate",
       "Percentage of samples with RMS power less than 0.5 times the mean "
       "RMS power of the first sub-band"},
      {"sub3_lowrate",
       "Percentage of samples with RMS power less than 0.5 times the mean "
       "RMS power of the third sub-band"},
      {"sub1_std",
       "Standard deviation of the mean RMS power of the first sub-band "
       "energy"},
      {"sf_mean", "Mean value of the spectrum flux"},
      {"sf_std",
       "Standard deviation of the spectrum flux, normalized by the maximum "
       "spectrum flux"},
      {"sf_stdd",
       "Standard deviation of the difference of the spectrum flux, "
       "normalized"},
      {"sf_range", "Dynamic range of the spectrum flux"},
  };
  return infos;
}

const std::string kUnknown = "<unknown>";

}  // namespace

const std::string& FeatureName(int index) {
  if (index < 0 || index >= kNumFeatures) return kUnknown;
  return Infos()[static_cast<size_t>(index)].name;
}

const std::string& FeatureDescription(int index) {
  if (index < 0 || index >= kNumFeatures) return kUnknown;
  return Infos()[static_cast<size_t>(index)].description;
}

bool IsVisualFeature(int index) {
  return index >= 0 && index < kNumVisualFeatures;
}

const std::vector<std::string>& AllFeatureNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>([] {
    std::vector<std::string> out;
    out.reserve(kNumFeatures);
    for (const auto& info : Infos()) out.push_back(info.name);
    return out;
  }());
  return names;
}

StatusOr<int> FindFeature(const std::string& name) {
  const auto& infos = Infos();
  for (size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound(StrFormat("unknown feature '%s'", name.c_str()));
}

}  // namespace hmmm
