#include "features/visual_features.h"

#include <cmath>
#include <cstdlib>

#include "dsp/stats.h"
#include "shots/histogram.h"

namespace hmmm {

namespace {

// A pixel is "background" if it barely changes between consecutive frames.
constexpr int kBackgroundStableThreshold = 10;

}  // namespace

StatusOr<VisualFeatures> ExtractVisualFeatures(const std::vector<Frame>& frames,
                                               int begin_frame, int end_frame) {
  if (begin_frame < 0 || end_frame > static_cast<int>(frames.size()) ||
      begin_frame >= end_frame) {
    return Status::InvalidArgument("bad frame span for visual features");
  }

  VisualFeatures out;
  dsp::RunningStats grass;
  dsp::RunningStats pixel_change;
  dsp::RunningStats histo_change;
  dsp::RunningStats bg_mean_per_frame;
  dsp::RunningStats bg_var_per_frame;

  ColorHistogram previous_histogram =
      ColorHistogram::FromFrame(frames[static_cast<size_t>(begin_frame)]);
  grass.Add(GrassRatio(frames[static_cast<size_t>(begin_frame)]));

  for (int f = begin_frame + 1; f < end_frame; ++f) {
    const Frame& prev = frames[static_cast<size_t>(f - 1)];
    const Frame& curr = frames[static_cast<size_t>(f)];
    grass.Add(GrassRatio(curr));
    pixel_change.Add(PixelChangeFraction(prev, curr));

    const ColorHistogram histogram = ColorHistogram::FromFrame(curr);
    histo_change.Add(previous_histogram.L1Distance(histogram));
    previous_histogram = histogram;

    // Background = temporally stable pixels; take their luminance stats.
    dsp::RunningStats luminance;
    const auto& pp = prev.pixels();
    const auto& cp = curr.pixels();
    if (pp.size() == cp.size()) {
      for (size_t i = 0; i < cp.size(); ++i) {
        const int dr = std::abs(static_cast<int>(pp[i].r) - cp[i].r);
        const int dg = std::abs(static_cast<int>(pp[i].g) - cp[i].g);
        const int db = std::abs(static_cast<int>(pp[i].b) - cp[i].b);
        if (dr <= kBackgroundStableThreshold &&
            dg <= kBackgroundStableThreshold &&
            db <= kBackgroundStableThreshold) {
          luminance.Add(Frame::Luminance(cp[i]) / 255.0);
        }
      }
    }
    if (luminance.count() > 0) {
      bg_mean_per_frame.Add(luminance.mean());
      bg_var_per_frame.Add(luminance.variance());
    }
  }

  out.grass_ratio = grass.mean();
  out.pixel_change_percent = pixel_change.mean();
  out.histo_change = histo_change.mean();
  out.background_mean = bg_mean_per_frame.mean();
  out.background_var = bg_var_per_frame.mean();
  return out;
}

}  // namespace hmmm
