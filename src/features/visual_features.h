#ifndef HMMM_FEATURES_VISUAL_FEATURES_H_
#define HMMM_FEATURES_VISUAL_FEATURES_H_

#include <vector>

#include "common/status.h"
#include "media/frame.h"

namespace hmmm {

/// The five visual features of Table 1 computed over one shot's frames.
struct VisualFeatures {
  double grass_ratio = 0.0;
  double pixel_change_percent = 0.0;
  double histo_change = 0.0;
  double background_var = 0.0;
  double background_mean = 0.0;
};

/// Computes the visual feature block for the frame span
/// [begin_frame, end_frame) of `frames`. Background pixels are the
/// temporally stable pixels between consecutive frames (per-channel change
/// below a small threshold); their luminance mean/variance give
/// background_mean/background_var. Shots need at least one frame; with a
/// single frame the inter-frame features are zero.
StatusOr<VisualFeatures> ExtractVisualFeatures(const std::vector<Frame>& frames,
                                               int begin_frame, int end_frame);

}  // namespace hmmm

#endif  // HMMM_FEATURES_VISUAL_FEATURES_H_
