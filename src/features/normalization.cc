#include "features/normalization.h"

#include <algorithm>

namespace hmmm {

Status FeatureNormalizer::Fit(const Matrix& raw) {
  if (raw.rows() == 0 || raw.cols() == 0) {
    return Status::InvalidArgument("cannot fit normalizer on empty matrix");
  }
  minima_.assign(raw.cols(), 0.0);
  maxima_.assign(raw.cols(), 0.0);
  for (size_t c = 0; c < raw.cols(); ++c) {
    double lo = raw.at(0, c);
    double hi = raw.at(0, c);
    for (size_t r = 1; r < raw.rows(); ++r) {
      lo = std::min(lo, raw.at(r, c));
      hi = std::max(hi, raw.at(r, c));
    }
    minima_[c] = lo;
    maxima_[c] = hi;
  }
  return Status::OK();
}

StatusOr<Matrix> FeatureNormalizer::Transform(const Matrix& raw) const {
  if (!fitted()) return Status::FailedPrecondition("normalizer not fitted");
  if (raw.cols() != minima_.size()) {
    return Status::InvalidArgument("column count mismatch in Transform");
  }
  Matrix out(raw.rows(), raw.cols());
  for (size_t r = 0; r < raw.rows(); ++r) {
    for (size_t c = 0; c < raw.cols(); ++c) {
      const double span = maxima_[c] - minima_[c];
      const double v = span > 0.0 ? (raw.at(r, c) - minima_[c]) / span : 0.0;
      out.at(r, c) = std::clamp(v, 0.0, 1.0);
    }
  }
  return out;
}

StatusOr<Matrix> FeatureNormalizer::FitTransform(const Matrix& raw) {
  HMMM_RETURN_IF_ERROR(Fit(raw));
  return Transform(raw);
}

StatusOr<std::vector<double>> FeatureNormalizer::TransformRow(
    const std::vector<double>& raw) const {
  if (!fitted()) return Status::FailedPrecondition("normalizer not fitted");
  if (raw.size() != minima_.size()) {
    return Status::InvalidArgument("width mismatch in TransformRow");
  }
  std::vector<double> out(raw.size());
  for (size_t c = 0; c < raw.size(); ++c) {
    const double span = maxima_[c] - minima_[c];
    const double v = span > 0.0 ? (raw[c] - minima_[c]) / span : 0.0;
    out[c] = std::clamp(v, 0.0, 1.0);
  }
  return out;
}

}  // namespace hmmm
