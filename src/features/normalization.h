#ifndef HMMM_FEATURES_NORMALIZATION_H_
#define HMMM_FEATURES_NORMALIZATION_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace hmmm {

/// Per-column min-max normalizer implementing Eq. 3 of the paper:
///   B1(i,j) = (BB1(i,j) - min_j) / (max_j - min_j),
/// mapping every feature column of the raw matrix BB1 into [0, 1].
/// Constant columns (max == min) normalize to 0 — documented behaviour,
/// since Eq. 3 is undefined there.
class FeatureNormalizer {
 public:
  FeatureNormalizer() = default;

  /// Learns column minima/maxima from the raw feature matrix BB1 (rows =
  /// shots, cols = features). Requires at least one row.
  Status Fit(const Matrix& raw);

  /// Applies Eq. 3 to a whole matrix (must have the fitted column count).
  StatusOr<Matrix> Transform(const Matrix& raw) const;

  /// Fit + Transform in one call: builds B1 from BB1.
  StatusOr<Matrix> FitTransform(const Matrix& raw);

  /// Applies Eq. 3 to one raw feature vector. Values outside the fitted
  /// range are clamped to [0, 1] (new shots may exceed the training range).
  StatusOr<std::vector<double>> TransformRow(
      const std::vector<double>& raw) const;

  bool fitted() const { return !minima_.empty(); }
  const std::vector<double>& minima() const { return minima_; }
  const std::vector<double>& maxima() const { return maxima_; }

 private:
  std::vector<double> minima_;
  std::vector<double> maxima_;
};

}  // namespace hmmm

#endif  // HMMM_FEATURES_NORMALIZATION_H_
