#ifndef HMMM_FEATURES_FEATURE_SCHEMA_H_
#define HMMM_FEATURES_FEATURE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace hmmm {

/// The 20 shot-level features of the paper's Table 1: 5 visual + 15 audio.
/// The printed table legibly lists 14 audio features; volume_mean is
/// reconstructed from the feature set of the authors' companion work
/// (ref [6]) to reach the stated count of 15.
enum class FeatureIndex : int {
  // Visual.
  kGrassRatio = 0,         // average percent of grass pixels per frame
  kPixelChangePercent = 1, // avg changed-pixel fraction between frames
  kHistoChange = 2,        // mean histogram difference between frames
  kBackgroundVar = 3,      // mean variance of background pixels
  kBackgroundMean = 4,     // mean value of background pixels
  // Audio: volume.
  kVolumeMean = 5,         // mean volume / max volume (reconstructed)
  kVolumeStd = 6,          // std of volume / max volume
  kVolumeStdd = 7,         // std of the volume first differences
  kVolumeRange = 8,        // (max - min) / max of volume
  // Audio: energy.
  kEnergyMean = 9,         // average RMS energy
  kSub1Mean = 10,          // average RMS energy, sub-band 1
  kSub3Mean = 11,          // average RMS energy, sub-band 3
  kEnergyLowRate = 12,     // fraction of windows below 0.5 * mean RMS
  kSub1LowRate = 13,       // same, sub-band 1
  kSub3LowRate = 14,       // same, sub-band 3
  kSub1Std = 15,           // std of sub-band-1 RMS
  // Audio: spectrum flux.
  kSfMean = 16,            // mean spectral flux
  kSfStd = 17,             // std of flux / max flux
  kSfStdd = 18,            // std of the flux first differences
  kSfRange = 19,           // (max - min) / max of flux
};

/// Total feature count K (the paper's "1 <= K <= 20").
inline constexpr int kNumFeatures = 20;
inline constexpr int kNumVisualFeatures = 5;
inline constexpr int kNumAudioFeatures = 15;

/// Stable snake_case name of feature `index` ("grass_ratio", ...).
const std::string& FeatureName(int index);

/// One-line description of feature `index` (Table 1's right column).
const std::string& FeatureDescription(int index);

/// True for the 5 visual features.
bool IsVisualFeature(int index);

/// All 20 names in index order.
const std::vector<std::string>& AllFeatureNames();

/// Looks up a feature index by name.
StatusOr<int> FindFeature(const std::string& name);

}  // namespace hmmm

#endif  // HMMM_FEATURES_FEATURE_SCHEMA_H_
