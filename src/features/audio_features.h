#ifndef HMMM_FEATURES_AUDIO_FEATURES_H_
#define HMMM_FEATURES_AUDIO_FEATURES_H_

#include "common/status.h"
#include "media/audio.h"

namespace hmmm {

/// The fifteen audio features of Table 1 computed over one shot's audio.
struct AudioFeatures {
  double volume_mean = 0.0;
  double volume_std = 0.0;
  double volume_stdd = 0.0;
  double volume_range = 0.0;
  double energy_mean = 0.0;
  double sub1_mean = 0.0;
  double sub3_mean = 0.0;
  double energy_lowrate = 0.0;
  double sub1_lowrate = 0.0;
  double sub3_lowrate = 0.0;
  double sub1_std = 0.0;
  double sf_mean = 0.0;
  double sf_std = 0.0;
  double sf_stdd = 0.0;
  double sf_range = 0.0;
};

/// STFT framing used by the audio extractor.
struct AudioAnalysisOptions {
  double window_seconds = 0.032;
  double hop_seconds = 0.016;
};

/// Computes the audio feature block of a shot. Volume is the per-window
/// RMS; sub-band energies come from an FFT magnitude-spectrum filterbank
/// (band 1 = lowest quarter, band 3 = third quarter of the spectrum, as in
/// refs [6][7]); spectral flux is the normalized L2 distance between
/// consecutive magnitude spectra. Clips shorter than one analysis window
/// yield all-zero features (valid — silent/empty shots exist).
StatusOr<AudioFeatures> ExtractAudioFeatures(
    const AudioClip& clip, const AudioAnalysisOptions& options = {});

}  // namespace hmmm

#endif  // HMMM_FEATURES_AUDIO_FEATURES_H_
