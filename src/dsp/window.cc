#include "dsp/window.h"

#include <algorithm>
#include <cmath>

namespace hmmm::dsp {

std::vector<double> HannWindow(size_t n) {
  std::vector<double> w(n, 1.0);
  if (n < 2) return w;
  for (size_t i = 0; i < n; ++i) {
    w[i] = 0.5 * (1.0 - std::cos(2.0 * M_PI * static_cast<double>(i) /
                                 static_cast<double>(n - 1)));
  }
  return w;
}

std::vector<double> HammingWindow(size_t n) {
  std::vector<double> w(n, 1.0);
  if (n < 2) return w;
  for (size_t i = 0; i < n; ++i) {
    w[i] = 0.54 - 0.46 * std::cos(2.0 * M_PI * static_cast<double>(i) /
                                  static_cast<double>(n - 1));
  }
  return w;
}

void ApplyWindow(std::vector<double>& frame,
                 const std::vector<double>& window) {
  const size_t n = std::min(frame.size(), window.size());
  for (size_t i = 0; i < n; ++i) frame[i] *= window[i];
}

std::vector<std::vector<double>> FrameSignal(const std::vector<double>& signal,
                                             size_t frame_size,
                                             size_t hop_size) {
  std::vector<std::vector<double>> frames;
  if (frame_size == 0 || hop_size == 0 || signal.size() < frame_size) {
    return frames;
  }
  for (size_t start = 0; start + frame_size <= signal.size();
       start += hop_size) {
    frames.emplace_back(signal.begin() + static_cast<ptrdiff_t>(start),
                        signal.begin() + static_cast<ptrdiff_t>(start + frame_size));
  }
  return frames;
}

}  // namespace hmmm::dsp
