#ifndef HMMM_DSP_STATS_H_
#define HMMM_DSP_STATS_H_

#include <cstddef>
#include <vector>

namespace hmmm::dsp {

/// Streaming mean / variance / min / max accumulator (Welford's algorithm),
/// used throughout feature extraction and the P12 learner.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector (0 for empty input).
double Mean(const std::vector<double>& values);

/// Population standard deviation (0 for fewer than 2 values).
double StdDev(const std::vector<double>& values);

/// First differences: out[i] = values[i+1] - values[i].
std::vector<double> Differences(const std::vector<double>& values);

/// Dynamic range (max - min) / max as used by the paper's volume_range
/// feature; returns 0 when max <= 0.
double DynamicRange(const std::vector<double>& values);

/// Fraction of values strictly below `threshold_factor * mean(values)`
/// (the paper's *_lowrate features use threshold_factor = 0.5).
double LowRate(const std::vector<double>& values, double threshold_factor);

}  // namespace hmmm::dsp

#endif  // HMMM_DSP_STATS_H_
