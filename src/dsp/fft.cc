#include "dsp/fft.h"

#include <cmath>

namespace hmmm::dsp {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Status Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  if (n == 0) return Status::InvalidArgument("empty FFT input");
  if ((n & (n - 1)) != 0) {
    return Status::InvalidArgument("FFT size must be a power of two");
  }
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  return Status::OK();
}

StatusOr<std::vector<std::complex<double>>> RealFft(
    const std::vector<double>& signal) {
  if (signal.empty()) return Status::InvalidArgument("empty signal");
  const size_t n = NextPowerOfTwo(signal.size());
  std::vector<std::complex<double>> data(n, std::complex<double>(0.0, 0.0));
  for (size_t i = 0; i < signal.size(); ++i) data[i] = signal[i];
  HMMM_RETURN_IF_ERROR(Fft(data));
  return data;
}

StatusOr<std::vector<double>> MagnitudeSpectrum(
    const std::vector<double>& signal) {
  HMMM_ASSIGN_OR_RETURN(auto spectrum, RealFft(signal));
  const size_t bins = spectrum.size() / 2 + 1;
  std::vector<double> mags(bins);
  for (size_t i = 0; i < bins; ++i) mags[i] = std::abs(spectrum[i]);
  return mags;
}

}  // namespace hmmm::dsp
