#ifndef HMMM_DSP_FFT_H_
#define HMMM_DSP_FFT_H_

#include <complex>
#include <vector>

#include "common/status.h"

namespace hmmm::dsp {

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
/// power of two. `inverse` computes the unnormalized inverse transform;
/// callers divide by N to invert exactly.
Status Fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Forward FFT of a real signal; returns the full complex spectrum.
/// The input is zero-padded to the next power of two.
StatusOr<std::vector<std::complex<double>>> RealFft(
    const std::vector<double>& signal);

/// Magnitude spectrum (|X[k]|) of the first N/2+1 bins of a real signal's
/// FFT, the usual one-sided representation for audio analysis.
StatusOr<std::vector<double>> MagnitudeSpectrum(
    const std::vector<double>& signal);

/// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

}  // namespace hmmm::dsp

#endif  // HMMM_DSP_FFT_H_
