#ifndef HMMM_DSP_WINDOW_H_
#define HMMM_DSP_WINDOW_H_

#include <cstddef>
#include <vector>

namespace hmmm::dsp {

/// Hann window of length n.
std::vector<double> HannWindow(size_t n);

/// Hamming window of length n.
std::vector<double> HammingWindow(size_t n);

/// Multiplies `frame` elementwise by `window` (sizes must match; the
/// shorter length is used if they differ).
void ApplyWindow(std::vector<double>& frame, const std::vector<double>& window);

/// Splits `signal` into consecutive frames of `frame_size` advancing by
/// `hop_size`. The trailing partial frame is dropped (standard STFT framing).
std::vector<std::vector<double>> FrameSignal(const std::vector<double>& signal,
                                             size_t frame_size,
                                             size_t hop_size);

}  // namespace hmmm::dsp

#endif  // HMMM_DSP_WINDOW_H_
