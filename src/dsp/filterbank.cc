#include "dsp/filterbank.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"

namespace hmmm::dsp {

std::vector<SubBand> DefaultSubBands() {
  return {
      {0.00, 0.25},
      {0.25, 0.50},
      {0.50, 0.75},
      {0.75, 1.00},
  };
}

StatusOr<std::vector<double>> SubBandRms(const std::vector<double>& frame,
                                         const std::vector<SubBand>& bands) {
  if (bands.empty()) return Status::InvalidArgument("no sub-bands given");
  HMMM_ASSIGN_OR_RETURN(auto mags, MagnitudeSpectrum(frame));
  const size_t bins = mags.size();
  std::vector<double> out;
  out.reserve(bands.size());
  for (const SubBand& band : bands) {
    if (band.low_fraction < 0.0 || band.high_fraction > 1.0 ||
        band.low_fraction >= band.high_fraction) {
      return Status::InvalidArgument("malformed sub-band");
    }
    const size_t lo = static_cast<size_t>(band.low_fraction *
                                          static_cast<double>(bins));
    size_t hi = static_cast<size_t>(band.high_fraction *
                                    static_cast<double>(bins));
    hi = std::max(hi, lo + 1);
    hi = std::min(hi, bins);
    double energy = 0.0;
    for (size_t k = lo; k < hi; ++k) energy += mags[k] * mags[k];
    out.push_back(std::sqrt(energy / static_cast<double>(hi - lo)));
  }
  return out;
}

double FrameRms(const std::vector<double>& frame) {
  if (frame.empty()) return 0.0;
  double sum_sq = 0.0;
  for (double x : frame) sum_sq += x * x;
  return std::sqrt(sum_sq / static_cast<double>(frame.size()));
}

StatusOr<double> SpectralFlux(const std::vector<double>& previous,
                              const std::vector<double>& current) {
  if (previous.size() != current.size()) {
    return Status::InvalidArgument("spectra size mismatch in SpectralFlux");
  }
  if (previous.empty()) return Status::InvalidArgument("empty spectra");
  double sum_sq = 0.0;
  for (size_t i = 0; i < previous.size(); ++i) {
    const double diff = current[i] - previous[i];
    sum_sq += diff * diff;
  }
  return std::sqrt(sum_sq) / static_cast<double>(previous.size());
}

}  // namespace hmmm::dsp
