#include "dsp/stats.h"

#include <algorithm>
#include <cmath>

namespace hmmm::dsp {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size()));
}

std::vector<double> Differences(const std::vector<double>& values) {
  std::vector<double> out;
  if (values.size() < 2) return out;
  out.reserve(values.size() - 1);
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    out.push_back(values[i + 1] - values[i]);
  }
  return out;
}

double DynamicRange(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  if (*max_it <= 0.0) return 0.0;
  return (*max_it - *min_it) / *max_it;
}

double LowRate(const std::vector<double>& values, double threshold_factor) {
  if (values.empty()) return 0.0;
  const double threshold = threshold_factor * Mean(values);
  size_t below = 0;
  for (double v : values) {
    if (v < threshold) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(values.size());
}

}  // namespace hmmm::dsp
