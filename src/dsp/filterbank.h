#ifndef HMMM_DSP_FILTERBANK_H_
#define HMMM_DSP_FILTERBANK_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace hmmm::dsp {

/// A frequency sub-band expressed as a fraction of the Nyquist frequency,
/// [low, high) with 0 <= low < high <= 1.
struct SubBand {
  double low_fraction;
  double high_fraction;
};

/// Default 4-band split used by the paper's audio features (refs [6][7]
/// use sub-band 1 = lowest quarter and sub-band 3 = third quarter of the
/// spectrum).
std::vector<SubBand> DefaultSubBands();

/// Computes the RMS energy of `frame` restricted to each sub-band: the
/// frame's magnitude spectrum is integrated over the band's bins and
/// normalized by the band width. One value per band.
StatusOr<std::vector<double>> SubBandRms(const std::vector<double>& frame,
                                         const std::vector<SubBand>& bands);

/// Plain time-domain RMS of a frame (sqrt(mean(x^2))).
double FrameRms(const std::vector<double>& frame);

/// Spectral flux between two consecutive magnitude spectra: the L2 norm of
/// the (positive) bin-to-bin differences, normalized by bin count. Spectra
/// must be equal length.
StatusOr<double> SpectralFlux(const std::vector<double>& previous,
                              const std::vector<double>& current);

}  // namespace hmmm::dsp

#endif  // HMMM_DSP_FILTERBANK_H_
