#include "storage/catalog.h"

#include <algorithm>

#include "common/strings.h"

namespace hmmm {

bool ShotRecord::HasEvent(EventId event) const {
  return std::find(events.begin(), events.end(), event) != events.end();
}

VideoCatalog::VideoCatalog(EventVocabulary vocabulary, int num_features)
    : vocabulary_(std::move(vocabulary)),
      num_features_(num_features),
      features_(0, static_cast<size_t>(num_features)) {}

StatusOr<VideoCatalog> VideoCatalog::FromGeneratedCorpus(
    const GeneratedCorpus& corpus) {
  VideoCatalog catalog(corpus.vocabulary, corpus.num_features);
  for (const GeneratedVideo& video : corpus.videos) {
    const VideoId vid = catalog.AddVideo(video.name);
    for (const GeneratedShot& shot : video.shots) {
      HMMM_ASSIGN_OR_RETURN(
          ShotId unused,
          catalog.AddShot(vid, shot.begin_time, shot.end_time, shot.events,
                          shot.features));
      (void)unused;
    }
  }
  HMMM_RETURN_IF_ERROR(catalog.Validate());
  return catalog;
}

VideoId VideoCatalog::AddVideo(const std::string& name) {
  const VideoId id = static_cast<VideoId>(videos_.size());
  VideoRecord record;
  record.id = id;
  record.name = name;
  videos_.push_back(std::move(record));
  return id;
}

Status VideoCatalog::ValidateNewShot(
    VideoId video_id, double begin_time, const std::vector<EventId>& events,
    const std::vector<double>& raw_features) const {
  if (video_id < 0 || static_cast<size_t>(video_id) >= videos_.size()) {
    return Status::NotFound(StrFormat("no video %d", video_id));
  }
  if (raw_features.size() != static_cast<size_t>(num_features_)) {
    return Status::InvalidArgument(
        StrFormat("expected %d features, got %zu", num_features_,
                  raw_features.size()));
  }
  for (EventId e : events) {
    if (e < 0 || static_cast<size_t>(e) >= vocabulary_.size()) {
      return Status::InvalidArgument(StrFormat("event id %d out of range", e));
    }
  }
  const VideoRecord& video = videos_[static_cast<size_t>(video_id)];
  if (!video.shots.empty()) {
    const ShotRecord& last = shots_[static_cast<size_t>(video.shots.back())];
    if (begin_time < last.begin_time) {
      return Status::InvalidArgument("shots must be added in temporal order");
    }
  }
  return Status::OK();
}

StatusOr<ShotId> VideoCatalog::AddShot(VideoId video_id, double begin_time,
                                       double end_time,
                                       std::vector<EventId> events,
                                       std::vector<double> raw_features) {
  HMMM_RETURN_IF_ERROR(
      ValidateNewShot(video_id, begin_time, events, raw_features));
  VideoRecord& video = videos_[static_cast<size_t>(video_id)];
  ShotRecord shot;
  shot.id = static_cast<ShotId>(shots_.size());
  shot.video_id = video_id;
  shot.index_in_video = static_cast<int>(video.shots.size());
  shot.begin_time = begin_time;
  shot.end_time = end_time;
  shot.events = std::move(events);
  video.shots.push_back(shot.id);
  const ShotId id = shot.id;
  shots_.push_back(std::move(shot));
  HMMM_RETURN_IF_ERROR(features_.AppendRow(raw_features));
  return id;
}

size_t VideoCatalog::num_annotated_shots() const {
  size_t n = 0;
  for (const ShotRecord& s : shots_) {
    if (!s.events.empty()) ++n;
  }
  return n;
}

size_t VideoCatalog::num_annotations() const {
  size_t n = 0;
  for (const ShotRecord& s : shots_) n += s.events.size();
  return n;
}

std::vector<ShotId> VideoCatalog::AnnotatedShots(VideoId id) const {
  std::vector<ShotId> out;
  for (ShotId shot_id : videos_[static_cast<size_t>(id)].shots) {
    if (!shots_[static_cast<size_t>(shot_id)].events.empty()) {
      out.push_back(shot_id);
    }
  }
  return out;
}

std::vector<ShotId> VideoCatalog::AllAnnotatedShots() const {
  std::vector<ShotId> out;
  for (const VideoRecord& video : videos_) {
    for (ShotId shot_id : video.shots) {
      if (!shots_[static_cast<size_t>(shot_id)].events.empty()) {
        out.push_back(shot_id);
      }
    }
  }
  return out;
}

Matrix VideoCatalog::RawFeatureMatrix() const { return features_; }

Matrix VideoCatalog::RawFeatureMatrixFor(
    const std::vector<ShotId>& shots) const {
  Matrix m(shots.size(), static_cast<size_t>(num_features_));
  for (size_t r = 0; r < shots.size(); ++r) {
    const double* row = features_.RowPtr(static_cast<size_t>(shots[r]));
    for (size_t c = 0; c < static_cast<size_t>(num_features_); ++c) {
      m.at(r, c) = row[c];
    }
  }
  return m;
}

Matrix VideoCatalog::EventCountMatrix() const {
  Matrix b2(videos_.size(), vocabulary_.size(), 0.0);
  for (const ShotRecord& shot : shots_) {
    for (EventId e : shot.events) {
      b2.at(static_cast<size_t>(shot.video_id), static_cast<size_t>(e)) += 1.0;
    }
  }
  return b2;
}

Status VideoCatalog::Validate() const {
  if (features_.rows() != shots_.size() ||
      features_.cols() != static_cast<size_t>(num_features_)) {
    return Status::Internal("feature table out of sync with shots");
  }
  for (size_t v = 0; v < videos_.size(); ++v) {
    const VideoRecord& video = videos_[v];
    if (video.id != static_cast<VideoId>(v)) {
      return Status::Internal("video id not dense");
    }
    double previous_time = -1.0;
    int expected_index = 0;
    for (ShotId sid : video.shots) {
      if (sid < 0 || static_cast<size_t>(sid) >= shots_.size()) {
        return Status::Internal("dangling shot id");
      }
      const ShotRecord& shot = shots_[static_cast<size_t>(sid)];
      if (shot.video_id != video.id) {
        return Status::Internal("shot/video link mismatch");
      }
      if (shot.index_in_video != expected_index++) {
        return Status::Internal("shot index_in_video not dense");
      }
      if (shot.begin_time < previous_time) {
        return Status::Internal("shots out of temporal order");
      }
      previous_time = shot.begin_time;
    }
  }
  for (size_t s = 0; s < shots_.size(); ++s) {
    if (shots_[s].id != static_cast<ShotId>(s)) {
      return Status::Internal("shot id not dense");
    }
    for (EventId e : shots_[s].events) {
      if (e < 0 || static_cast<size_t>(e) >= vocabulary_.size()) {
        return Status::Internal("event id out of vocabulary");
      }
    }
  }
  return Status::OK();
}

}  // namespace hmmm
