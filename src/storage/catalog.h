#ifndef HMMM_STORAGE_CATALOG_H_
#define HMMM_STORAGE_CATALOG_H_

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "media/event_types.h"
#include "media/feature_level_generator.h"

namespace hmmm {

using VideoId = int;
/// Global (archive-wide) shot identifier, dense from 0.
using ShotId = int;

/// One video shot: the elementary unit of the video database.
struct ShotRecord {
  ShotId id = -1;
  VideoId video_id = -1;
  int index_in_video = -1;
  double begin_time = 0.0;
  double end_time = 0.0;
  /// Semantic event annotations; empty for un-annotated shots.
  std::vector<EventId> events;

  /// NE(s_i) of Section 4.2.1.1 — the number of event annotations.
  int NumEvents() const { return static_cast<int>(events.size()); }
  bool HasEvent(EventId event) const;
};

/// One source video with its temporally ordered shots.
struct VideoRecord {
  VideoId id = -1;
  std::string name;
  std::vector<ShotId> shots;  // temporal order
};

/// The video database archive: videos, shots, event annotations and the
/// raw shot-feature table BB1. This is the ground store the HMMM is built
/// over (Fig. 1's "multimedia database" box).
class VideoCatalog {
 public:
  VideoCatalog() = default;
  VideoCatalog(EventVocabulary vocabulary, int num_features);

  /// Ingests a feature-level generated corpus wholesale.
  static StatusOr<VideoCatalog> FromGeneratedCorpus(
      const GeneratedCorpus& corpus);

  /// Adds a video; returns its id.
  VideoId AddVideo(const std::string& name);

  /// Appends a shot to `video_id` (shots must be added in temporal order;
  /// begin_time must be >= the previous shot's begin_time). `raw_features`
  /// must have num_features() entries.
  StatusOr<ShotId> AddShot(VideoId video_id, double begin_time,
                           double end_time, std::vector<EventId> events,
                           std::vector<double> raw_features);

  /// The validation AddShot would run, without mutating anything. Lets a
  /// write-ahead caller (the catalog journal) check an op *before*
  /// logging it, then apply it only after the log write succeeded — so a
  /// failed write leaves the in-memory catalog and the log agreeing.
  Status ValidateNewShot(VideoId video_id, double begin_time,
                         const std::vector<EventId>& events,
                         const std::vector<double>& raw_features) const;

  const EventVocabulary& vocabulary() const { return vocabulary_; }
  int num_features() const { return num_features_; }
  size_t num_videos() const { return videos_.size(); }
  size_t num_shots() const { return shots_.size(); }
  size_t num_annotated_shots() const;
  /// Total number of event annotations across all shots (paper: 506).
  size_t num_annotations() const;

  const VideoRecord& video(VideoId id) const {
    return videos_[static_cast<size_t>(id)];
  }
  const ShotRecord& shot(ShotId id) const {
    return shots_[static_cast<size_t>(id)];
  }
  const std::vector<VideoRecord>& videos() const { return videos_; }
  const std::vector<ShotRecord>& shots() const { return shots_; }
  /// Copies the shot's raw feature row out. For hot zero-copy scans use
  /// RawFeatureRow().
  std::vector<double> raw_features_of(ShotId id) const {
    return features_.Row(static_cast<size_t>(id));
  }
  /// Borrowed pointer to the shot's num_features() contiguous raw
  /// features — rows of the catalog-wide BB1 table. For a snapshot-opened
  /// catalog this points straight into the mapped pages.
  const double* RawFeatureRow(ShotId id) const {
    return features_.RowPtr(static_cast<size_t>(id));
  }

  /// Annotated shots of one video in temporal order — the S1 states of
  /// that video's local MMM.
  std::vector<ShotId> AnnotatedShots(VideoId id) const;

  /// All annotated shots in (video, temporal) order.
  std::vector<ShotId> AllAnnotatedShots() const;

  /// The raw feature matrix BB1 (rows = all shots by ShotId).
  Matrix RawFeatureMatrix() const;

  /// Raw features restricted to the given shots (rows in given order).
  Matrix RawFeatureMatrixFor(const std::vector<ShotId>& shots) const;

  /// The event-count matrix B2: rows = videos, cols = events, integer
  /// counts kept as doubles (Section 4.2.2.2 — not normalized).
  Matrix EventCountMatrix() const;

  /// Structural invariants: id density, temporal order, label ranges.
  Status Validate() const;

 private:
  /// Fills the private members directly from a mapped snapshot (the
  /// packed shot table plus a borrowed feature matrix), bypassing the
  /// per-shot AddShot validation the writer already ran.
  friend class SnapshotReader;

  EventVocabulary vocabulary_;
  int num_features_ = 0;
  std::vector<VideoRecord> videos_;
  std::vector<ShotRecord> shots_;
  /// The raw shot-feature table BB1 as one dense shots x features matrix
  /// (row = ShotId). Owned for an ingested catalog; borrowed (a view
  /// into mmap'ed pages) for a snapshot-opened one.
  Matrix features_;
};

}  // namespace hmmm

#endif  // HMMM_STORAGE_CATALOG_H_
