#ifndef HMMM_STORAGE_RECORD_LOG_H_
#define HMMM_STORAGE_RECORD_LOG_H_

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hmmm {

/// Append-only record log: the durability primitive under the catalog
/// journal. Each record is framed as
///   varint payload_size | uint32 crc32c(payload) | payload
/// so a crashed writer leaves at worst a torn tail, which recovery
/// detects and drops (the classic WAL contract).
class RecordLogWriter {
 public:
  /// Opens `path` for appending (creates it if missing).
  static StatusOr<RecordLogWriter> Open(const std::string& path);

  RecordLogWriter(RecordLogWriter&& other) noexcept;
  RecordLogWriter& operator=(RecordLogWriter&& other) noexcept;
  RecordLogWriter(const RecordLogWriter&) = delete;
  RecordLogWriter& operator=(const RecordLogWriter&) = delete;
  ~RecordLogWriter();

  /// Appends one record (buffered; call Flush for durability).
  Status Append(std::string_view record);

  /// Flushes buffered appends to the OS.
  Status Flush();

  /// Flushes and closes; further Appends fail.
  Status Close();

  size_t records_appended() const { return records_appended_; }

 private:
  explicit RecordLogWriter(std::FILE* file) : file_(file) {}

  std::FILE* file_ = nullptr;
  size_t records_appended_ = 0;
};

/// Result of replaying a record log.
struct RecordLogContents {
  std::vector<std::string> records;
  /// Bytes of torn tail dropped during recovery (0 for a clean log).
  size_t dropped_tail_bytes = 0;
};

/// Replays all records of a log. A torn tail (truncated frame or checksum
/// mismatch in the final frame) is dropped and reported; corruption
/// *before* the tail is a kDataLoss error. A missing file is kNotFound.
/// The file itself is left untouched (read-only inspection).
StatusOr<RecordLogContents> ReadRecordLog(const std::string& path);

/// ReadRecordLog plus physical recovery: when a torn tail was dropped,
/// the file is truncated back to the intact prefix so a subsequently
/// opened writer appends at a valid frame boundary. Without the
/// truncation, appends after a crash would land behind the torn bytes
/// and turn the recoverable tail into mid-file corruption (kDataLoss) on
/// the next replay.
StatusOr<RecordLogContents> RecoverRecordLog(const std::string& path);

}  // namespace hmmm

#endif  // HMMM_STORAGE_RECORD_LOG_H_
