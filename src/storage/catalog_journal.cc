#include "storage/catalog_journal.h"

#include "common/serialization.h"
#include "common/strings.h"

namespace hmmm {

namespace {

// Op tags.
constexpr uint8_t kOpHeader = 0;
constexpr uint8_t kOpAddVideo = 1;
constexpr uint8_t kOpAddShot = 2;

std::string EncodeHeader(const EventVocabulary& vocabulary,
                         int num_features) {
  BinaryWriter w;
  w.WriteUint8(kOpHeader);
  w.WriteVarint(vocabulary.size());
  for (const std::string& name : vocabulary.names()) w.WriteString(name);
  w.WriteInt32(num_features);
  return w.buffer();
}

std::string EncodeAddVideo(const std::string& name) {
  BinaryWriter w;
  w.WriteUint8(kOpAddVideo);
  w.WriteString(name);
  return w.buffer();
}

std::string EncodeAddShot(VideoId video, double begin_time, double end_time,
                          const std::vector<EventId>& events,
                          const std::vector<double>& raw_features) {
  BinaryWriter w;
  w.WriteUint8(kOpAddShot);
  w.WriteInt32(video);
  w.WriteDouble(begin_time);
  w.WriteDouble(end_time);
  w.WriteInt32Vector(std::vector<int32_t>(events.begin(), events.end()));
  w.WriteDoubleVector(raw_features);
  return w.buffer();
}

Status ApplyOp(const std::string& op, VideoCatalog& catalog) {
  BinaryReader r(op);
  HMMM_ASSIGN_OR_RETURN(uint8_t tag, r.ReadUint8());
  switch (tag) {
    case kOpAddVideo: {
      HMMM_ASSIGN_OR_RETURN(std::string name, r.ReadString());
      catalog.AddVideo(name);
      return Status::OK();
    }
    case kOpAddShot: {
      HMMM_ASSIGN_OR_RETURN(int32_t video, r.ReadInt32());
      HMMM_ASSIGN_OR_RETURN(double begin_time, r.ReadDouble());
      HMMM_ASSIGN_OR_RETURN(double end_time, r.ReadDouble());
      HMMM_ASSIGN_OR_RETURN(auto event_ids, r.ReadInt32Vector());
      HMMM_ASSIGN_OR_RETURN(auto features, r.ReadDoubleVector());
      HMMM_ASSIGN_OR_RETURN(
          ShotId unused,
          catalog.AddShot(video, begin_time, end_time,
                          std::vector<EventId>(event_ids.begin(),
                                               event_ids.end()),
                          std::move(features)));
      (void)unused;
      return Status::OK();
    }
    default:
      return Status::DataLoss(StrFormat("unknown journal op %d", tag));
  }
}

}  // namespace

StatusOr<CatalogJournal> CatalogJournal::Open(
    const std::string& path, const EventVocabulary& vocabulary,
    int num_features) {
  // Replay whatever exists, truncating a torn tail back to the intact
  // prefix so the writer opened below appends at a frame boundary. A
  // missing file is an empty journal; any other failure (mid-file
  // corruption, a genuine IO error surviving the bounded retry) must not
  // be masked.
  RecordLogContents contents;
  if (auto existing = RecoverRecordLog(path); existing.ok()) {
    contents = std::move(existing).value();
  } else if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }

  VideoCatalog catalog(vocabulary, num_features);
  bool have_header = false;
  for (const std::string& record : contents.records) {
    BinaryReader r(record);
    HMMM_ASSIGN_OR_RETURN(uint8_t tag, r.ReadUint8());
    if (tag == kOpHeader) {
      if (have_header) return Status::DataLoss("duplicate journal header");
      // Verify the header matches what the caller expects.
      HMMM_ASSIGN_OR_RETURN(uint64_t vocab_size, r.ReadVarint());
      if (vocab_size != vocabulary.size()) {
        return Status::FailedPrecondition("journal vocabulary mismatch");
      }
      for (uint64_t i = 0; i < vocab_size; ++i) {
        HMMM_ASSIGN_OR_RETURN(std::string name, r.ReadString());
        if (name != vocabulary.Name(static_cast<EventId>(i))) {
          return Status::FailedPrecondition("journal vocabulary mismatch");
        }
      }
      HMMM_ASSIGN_OR_RETURN(int32_t journal_features, r.ReadInt32());
      if (journal_features != num_features) {
        return Status::FailedPrecondition("journal feature count mismatch");
      }
      have_header = true;
      continue;
    }
    if (!have_header) {
      return Status::DataLoss("journal records before header");
    }
    HMMM_RETURN_IF_ERROR(ApplyOp(record, catalog));
  }
  HMMM_RETURN_IF_ERROR(catalog.Validate());

  HMMM_ASSIGN_OR_RETURN(RecordLogWriter writer, RecordLogWriter::Open(path));
  CatalogJournal journal(std::move(writer), std::move(catalog),
                         contents.dropped_tail_bytes);
  if (!have_header) {
    HMMM_RETURN_IF_ERROR(
        journal.writer_.Append(EncodeHeader(vocabulary, num_features)));
    HMMM_RETURN_IF_ERROR(journal.writer_.Flush());
  }
  return journal;
}

StatusOr<VideoId> CatalogJournal::AppendVideo(const std::string& name) {
  HMMM_RETURN_IF_ERROR(writer_.Append(EncodeAddVideo(name)));
  return catalog_.AddVideo(name);
}

StatusOr<ShotId> CatalogJournal::AppendShot(
    VideoId video, double begin_time, double end_time,
    std::vector<EventId> events, std::vector<double> raw_features) {
  // Validate first so the log never records an op that would fail to
  // replay; log second; apply last. The ordering makes a failed append
  // atomic: the in-memory catalog and the log still agree (nothing
  // applied, nothing durably written — RecordLogWriter::Append fails
  // before emitting any byte or not at all within one frame).
  HMMM_RETURN_IF_ERROR(
      catalog_.ValidateNewShot(video, begin_time, events, raw_features));
  HMMM_RETURN_IF_ERROR(writer_.Append(
      EncodeAddShot(video, begin_time, end_time, events, raw_features)));
  return catalog_.AddShot(video, begin_time, end_time, std::move(events),
                          std::move(raw_features));
}

Status CatalogJournal::Flush() { return writer_.Flush(); }

}  // namespace hmmm
