#include "storage/event_index.h"

namespace hmmm {

EventIndex::EventIndex(const VideoCatalog& catalog) {
  postings_.resize(catalog.vocabulary().size());
  for (const VideoRecord& video : catalog.videos()) {
    for (ShotId sid : video.shots) {
      const ShotRecord& shot = catalog.shot(sid);
      for (EventId e : shot.events) {
        postings_[static_cast<size_t>(e)].push_back(sid);
      }
    }
  }
}

const std::vector<ShotId>& EventIndex::Lookup(EventId event) const {
  if (event < 0 || static_cast<size_t>(event) >= postings_.size()) {
    return empty_;
  }
  return postings_[static_cast<size_t>(event)];
}

std::vector<ShotId> EventIndex::LookupInVideo(const VideoCatalog& catalog,
                                              VideoId video,
                                              EventId event) const {
  std::vector<ShotId> out;
  for (ShotId sid : Lookup(event)) {
    if (catalog.shot(sid).video_id == video) out.push_back(sid);
  }
  return out;
}

size_t EventIndex::size() const {
  size_t n = 0;
  for (const auto& p : postings_) n += p.size();
  return n;
}

}  // namespace hmmm
