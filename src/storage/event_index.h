#ifndef HMMM_STORAGE_EVENT_INDEX_H_
#define HMMM_STORAGE_EVENT_INDEX_H_

#include <vector>

#include "storage/catalog.h"

namespace hmmm {

/// Inverted index from event id to the annotated shots carrying it, in
/// (video, temporal) order. This is the hash-table style access structure
/// of ClassView-like systems ([10] in the paper) and powers the index-join
/// retrieval baseline the benchmarks compare HMMM against.
class EventIndex {
 public:
  EventIndex() = default;

  /// Builds the index over a catalog snapshot.
  explicit EventIndex(const VideoCatalog& catalog);

  /// All shots annotated with `event` in (video, temporal) order.
  const std::vector<ShotId>& Lookup(EventId event) const;

  /// Shots annotated with `event` within one video, temporal order.
  std::vector<ShotId> LookupInVideo(const VideoCatalog& catalog,
                                    VideoId video, EventId event) const;

  size_t num_events() const { return postings_.size(); }
  /// Total postings across all events.
  size_t size() const;

 private:
  std::vector<std::vector<ShotId>> postings_;
  std::vector<ShotId> empty_;
};

}  // namespace hmmm

#endif  // HMMM_STORAGE_EVENT_INDEX_H_
