#include "storage/model_io.h"

#include "common/strings.h"

namespace hmmm {

Status AnnotateBlobError(const Status& status, const char* kind,
                         const std::string& path, size_t file_bytes) {
  if (status.code() != StatusCode::kDataLoss) return status;
  if (file_bytes < kChecksummedEnvelopeBytes) {
    return Status::DataLoss(
        StrFormat("%s file %s truncated: %zu bytes, checksummed envelope "
                  "needs at least %zu",
                  kind, path.c_str(), file_bytes, kChecksummedEnvelopeBytes));
  }
  return Status::DataLoss(StrFormat("%s file %s (%zu bytes): %s", kind,
                                    path.c_str(), file_bytes,
                                    status.message().c_str()));
}

std::string SerializeCatalog(const VideoCatalog& catalog) {
  BinaryWriter w;
  // Vocabulary.
  w.WriteVarint(catalog.vocabulary().size());
  for (const std::string& name : catalog.vocabulary().names()) {
    w.WriteString(name);
  }
  w.WriteInt32(catalog.num_features());
  // Videos with their shots inline (global ids are re-derived on load).
  w.WriteVarint(catalog.num_videos());
  for (const VideoRecord& video : catalog.videos()) {
    w.WriteString(video.name);
    w.WriteVarint(video.shots.size());
    for (ShotId sid : video.shots) {
      const ShotRecord& shot = catalog.shot(sid);
      w.WriteDouble(shot.begin_time);
      w.WriteDouble(shot.end_time);
      w.WriteVarint(shot.events.size());
      for (EventId e : shot.events) w.WriteInt32(e);
      w.WriteDoubleVector(catalog.raw_features_of(sid));
    }
  }
  return WrapChecksummed(kCatalogMagic, kCatalogVersion, w.buffer());
}

StatusOr<VideoCatalog> DeserializeCatalog(std::string_view data) {
  uint32_t version = 0;
  HMMM_ASSIGN_OR_RETURN(std::string payload,
                        UnwrapChecksummed(kCatalogMagic, data, &version));
  if (version != kCatalogVersion) {
    return Status::DataLoss("unsupported catalog version");
  }
  BinaryReader r(payload);
  HMMM_ASSIGN_OR_RETURN(uint64_t vocab_size, r.ReadVarint());
  EventVocabulary vocabulary;
  for (uint64_t i = 0; i < vocab_size; ++i) {
    HMMM_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    vocabulary.Register(name);
  }
  HMMM_ASSIGN_OR_RETURN(int32_t num_features, r.ReadInt32());
  VideoCatalog catalog(std::move(vocabulary), num_features);

  HMMM_ASSIGN_OR_RETURN(uint64_t num_videos, r.ReadVarint());
  for (uint64_t v = 0; v < num_videos; ++v) {
    HMMM_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    const VideoId vid = catalog.AddVideo(name);
    HMMM_ASSIGN_OR_RETURN(uint64_t num_shots, r.ReadVarint());
    for (uint64_t s = 0; s < num_shots; ++s) {
      HMMM_ASSIGN_OR_RETURN(double begin_time, r.ReadDouble());
      HMMM_ASSIGN_OR_RETURN(double end_time, r.ReadDouble());
      HMMM_ASSIGN_OR_RETURN(uint64_t num_events, r.ReadVarint());
      std::vector<EventId> events;
      for (uint64_t e = 0; e < num_events; ++e) {
        HMMM_ASSIGN_OR_RETURN(int32_t event, r.ReadInt32());
        events.push_back(event);
      }
      HMMM_ASSIGN_OR_RETURN(auto features, r.ReadDoubleVector());
      HMMM_ASSIGN_OR_RETURN(
          ShotId unused,
          catalog.AddShot(vid, begin_time, end_time, std::move(events),
                          std::move(features)));
      (void)unused;
    }
  }
  if (!r.AtEnd()) return Status::DataLoss("trailing bytes in catalog blob");
  HMMM_RETURN_IF_ERROR(catalog.Validate());
  return catalog;
}

Status SaveCatalog(const VideoCatalog& catalog, const std::string& path) {
  return WriteFile(path, SerializeCatalog(catalog));
}

StatusOr<VideoCatalog> LoadCatalog(const std::string& path) {
  // ReadFileToString already routes through WithIoRetry, so a transient
  // kIOError here has exhausted its retry budget; it surfaces with its
  // code intact. Parse failures are corruption (kDataLoss), annotated
  // with the file so a short read is diagnosable from the message alone.
  HMMM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  StatusOr<VideoCatalog> catalog = DeserializeCatalog(data);
  if (!catalog.ok()) {
    return AnnotateBlobError(catalog.status(), "catalog", path, data.size());
  }
  return catalog;
}

}  // namespace hmmm
