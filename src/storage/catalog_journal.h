#ifndef HMMM_STORAGE_CATALOG_JOURNAL_H_
#define HMMM_STORAGE_CATALOG_JOURNAL_H_

#include <string>

#include "storage/catalog.h"
#include "storage/record_log.h"

namespace hmmm {

/// Durable, incrementally growing catalog: every mutation (add video, add
/// shot) is appended to a record log before being applied to the
/// in-memory VideoCatalog, and Open() rebuilds the catalog by replaying
/// the log — including recovery from a torn tail after a crash, which is
/// physically truncated away so post-recovery appends land at a valid
/// frame boundary. This is
/// the ingest-side persistence story (SaveCatalog/LoadCatalog snapshots
/// remain the right tool for distributing finished archives).
class CatalogJournal {
 public:
  /// Opens (or creates) the journal at `path`. For a new journal, the
  /// vocabulary and feature count are written as the header record; for
  /// an existing one they are read back and the catalog is replayed.
  /// `vocabulary`/`num_features` must match an existing journal's header.
  static StatusOr<CatalogJournal> Open(const std::string& path,
                                       const EventVocabulary& vocabulary,
                                       int num_features);

  CatalogJournal(CatalogJournal&&) = default;
  CatalogJournal& operator=(CatalogJournal&&) = default;

  /// The replayed + live catalog view.
  const VideoCatalog& catalog() const { return catalog_; }

  /// Appends and applies an add-video op.
  StatusOr<VideoId> AppendVideo(const std::string& name);

  /// Appends and applies an add-shot op (validated against the catalog
  /// before the log write, so the journal never contains invalid ops).
  StatusOr<ShotId> AppendShot(VideoId video, double begin_time,
                              double end_time, std::vector<EventId> events,
                              std::vector<double> raw_features);

  /// Flushes pending log writes.
  Status Flush();

  /// Torn-tail bytes dropped while opening (0 for a clean journal).
  size_t recovered_tail_bytes() const { return recovered_tail_bytes_; }

 private:
  CatalogJournal(RecordLogWriter writer, VideoCatalog catalog,
                 size_t recovered_tail_bytes)
      : writer_(std::move(writer)),
        catalog_(std::move(catalog)),
        recovered_tail_bytes_(recovered_tail_bytes) {}

  RecordLogWriter writer_;
  VideoCatalog catalog_;
  size_t recovered_tail_bytes_ = 0;
};

}  // namespace hmmm

#endif  // HMMM_STORAGE_CATALOG_JOURNAL_H_
