#include "storage/record_log.h"

#include <filesystem>
#include <system_error>

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "common/serialization.h"
#include "common/strings.h"

namespace hmmm {

StatusOr<RecordLogWriter> RecordLogWriter::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError(StrFormat("cannot open %s for append",
                                     path.c_str()));
  }
  return RecordLogWriter(file);
}

RecordLogWriter::RecordLogWriter(RecordLogWriter&& other) noexcept
    : file_(other.file_), records_appended_(other.records_appended_) {
  other.file_ = nullptr;
}

RecordLogWriter& RecordLogWriter::operator=(RecordLogWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    records_appended_ = other.records_appended_;
    other.file_ = nullptr;
  }
  return *this;
}

RecordLogWriter::~RecordLogWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status RecordLogWriter::Append(std::string_view record) {
  if (file_ == nullptr) return Status::FailedPrecondition("log closed");
  // The probe sits before any byte is written: an injected append fault
  // must not leave a partial frame behind, so recovery tests can tell
  // injected failures (clean log) from simulated crashes (torn tail).
  if (HMMM_FAULT_FIRED("storage.append")) {
    return Status::IOError("injected fault: storage.append");
  }
  BinaryWriter frame;
  frame.WriteVarint(record.size());
  frame.WriteUint32(Crc32c(record.data(), record.size()));
  const std::string& header = frame.buffer();
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IOError("short write to record log");
  }
  ++records_appended_;
  return Status::OK();
}

Status RecordLogWriter::Flush() {
  if (file_ == nullptr) return Status::FailedPrecondition("log closed");
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

Status RecordLogWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const bool ok = std::fclose(file_) == 0;
  file_ = nullptr;
  return ok ? Status::OK() : Status::IOError("fclose failed");
}

StatusOr<RecordLogContents> ReadRecordLog(const std::string& path) {
  HMMM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  RecordLogContents contents;
  BinaryReader reader(data);
  while (!reader.AtEnd()) {
    const size_t frame_start = reader.position();
    auto fail_frame = [&](bool is_tail) -> Status {
      if (is_tail) {
        contents.dropped_tail_bytes = data.size() - frame_start;
        return Status::OK();
      }
      return Status::DataLoss(
          StrFormat("corrupt record at offset %zu", frame_start));
    };

    auto size = reader.ReadVarint();
    if (!size.ok()) {
      // Truncated length varint: can only happen at the tail.
      HMMM_RETURN_IF_ERROR(fail_frame(true));
      break;
    }
    auto crc = reader.ReadUint32();
    if (!crc.ok()) {
      HMMM_RETURN_IF_ERROR(fail_frame(true));
      break;
    }
    if (reader.remaining() < *size) {
      HMMM_RETURN_IF_ERROR(fail_frame(true));
      break;
    }
    const std::string_view payload(data.data() + reader.position(),
                                   static_cast<size_t>(*size));
    const bool frame_ends_at_eof = reader.position() + *size == data.size();
    if (Crc32c(payload.data(), payload.size()) != *crc) {
      // A checksum failure on the final frame is a torn tail (partially
      // written payload); anywhere else it is corruption.
      HMMM_RETURN_IF_ERROR(fail_frame(frame_ends_at_eof));
      break;
    }
    contents.records.emplace_back(payload);
    HMMM_RETURN_IF_ERROR(reader.Skip(static_cast<size_t>(*size)));
  }
  return contents;
}

StatusOr<RecordLogContents> RecoverRecordLog(const std::string& path) {
  HMMM_ASSIGN_OR_RETURN(RecordLogContents contents, ReadRecordLog(path));
  if (contents.dropped_tail_bytes > 0) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec) {
      std::filesystem::resize_file(
          path, size - contents.dropped_tail_bytes, ec);
    }
    if (ec) {
      return Status::IOError(StrFormat("cannot truncate torn tail of %s: %s",
                                       path.c_str(),
                                       ec.message().c_str()));
    }
  }
  return contents;
}

}  // namespace hmmm
