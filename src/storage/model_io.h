#ifndef HMMM_STORAGE_MODEL_IO_H_
#define HMMM_STORAGE_MODEL_IO_H_

#include <string>

#include "common/serialization.h"
#include "storage/catalog.h"

namespace hmmm {

/// File-format magics for the on-disk artefacts.
inline constexpr uint32_t kCatalogMagic = 0x484D4D43;  // "HMMC"
inline constexpr uint32_t kModelMagic = 0x484D4D4D;    // "HMMM"
inline constexpr uint32_t kCatalogVersion = 1;

/// Serializes a catalog (vocabulary, videos, shots, annotations, raw
/// features) into a checksummed binary blob.
std::string SerializeCatalog(const VideoCatalog& catalog);

/// Parses a catalog blob produced by SerializeCatalog; verifies the
/// checksum and all structural invariants.
StatusOr<VideoCatalog> DeserializeCatalog(std::string_view data);

/// Convenience file round-trips. LoadCatalog surfaces failure modes
/// distinctly: kNotFound for a missing file, kIOError for a transient
/// read failure (retried by WithIoRetry before it surfaces), kDataLoss
/// with path + size context for a short read / truncated or corrupt
/// blob. HierarchicalModel::LoadFromFile follows the same contract.
Status SaveCatalog(const VideoCatalog& catalog, const std::string& path);
StatusOr<VideoCatalog> LoadCatalog(const std::string& path);

/// Maps a blob-parse failure onto the load contract above: kDataLoss
/// keeps its code but gains file context (kind, path, byte count) so a
/// truncated file reads distinctly from a transient kIOError — which
/// passes through untouched, preserving retryability. Shared by
/// LoadCatalog, HierarchicalModel::LoadFromFile and the snapshot loader.
Status AnnotateBlobError(const Status& status, const char* kind,
                         const std::string& path, size_t file_bytes);

}  // namespace hmmm

#endif  // HMMM_STORAGE_MODEL_IO_H_
