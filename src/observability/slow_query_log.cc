#include "observability/slow_query_log.h"

#include <chrono>

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {

SlowQueryLog::SlowQueryLog(size_t capacity) : capacity_(capacity) {
  HMMM_CHECK(capacity_ > 0) << "slow-query log needs capacity >= 1";
}

void SlowQueryLog::Add(SlowQueryEntry entry) {
  if (entry.unix_ms == 0) {
    entry.unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  while (entries_.size() >= capacity_) {
    entries_.pop_front();
    ++dropped_;
  }
  entries_.push_back(std::move(entry));
}

std::string SlowQueryLog::DumpJsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const SlowQueryEntry& entry : entries_) {
    std::string shard_latency;
    for (const auto& [shard, ms] : entry.shard_latency_ms) {
      if (!shard_latency.empty()) shard_latency += ',';
      shard_latency += StrFormat("\"%d\":%.3f", shard, ms);
    }
    std::string shard_errors;
    for (const auto& [shard, code] : entry.shard_errors) {
      if (!shard_errors.empty()) shard_errors += ',';
      shard_errors +=
          StrFormat("\"%d\":\"%s\"", shard, JsonEscape(code).c_str());
    }
    out += StrFormat(
        "{\"ts_ms\":%lld,\"reason\":\"%s\",\"pattern\":\"%s\","
        "\"trace_id\":\"%s\",\"total_ms\":%.3f,\"budget_ms\":%.3f,"
        "\"degraded\":%s,\"videos_skipped\":%llu,"
        "\"shard_latency_ms\":{%s},\"shard_errors\":{%s}}\n",
        static_cast<long long>(entry.unix_ms),
        JsonEscape(entry.reason).c_str(), JsonEscape(entry.pattern).c_str(),
        JsonEscape(entry.trace_id).c_str(), entry.total_ms, entry.budget_ms,
        entry.degraded ? "true" : "false",
        static_cast<unsigned long long>(entry.videos_skipped),
        shard_latency.c_str(), shard_errors.c_str());
  }
  return out;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

uint64_t SlowQueryLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  dropped_ = 0;
}

}  // namespace hmmm
