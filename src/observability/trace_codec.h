#ifndef HMMM_OBSERVABILITY_TRACE_CODEC_H_
#define HMMM_OBSERVABILITY_TRACE_CODEC_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "observability/query_trace.h"

namespace hmmm {

/// Cross-process trace identity carried in wire-v2 query payloads. A zero
/// trace id means "unset"; the first traced hop mints one and every
/// downstream span and error log line carries it.
struct TraceContext {
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  /// Span id of the caller's span this request runs under (0 = none).
  /// Informational: cross-process assembly grafts by response blob, not by
  /// this id, but servers tag their root span with it for log correlation.
  uint64_t parent_span_id = 0;

  bool has_trace_id() const { return trace_id_hi != 0 || trace_id_lo != 0; }
};

/// Mints a process-unique 128-bit trace id (random per-process hi word,
/// monotonic counter in lo). Never returns the all-zero id.
TraceContext MintTraceContext();

/// 32-hex-digit rendering of a 128-bit trace id, for logs and JSON.
std::string TraceIdHex(uint64_t hi, uint64_t lo);

/// Serializes a span forest into the compact binary form carried in wire
/// responses (`trace_blob`). Round-trips through DeserializeSpans.
std::string SerializeSpans(const std::vector<TraceSpan>& spans);

/// Decodes a blob written by SerializeSpans. Malformed or truncated input
/// returns kDataLoss; element counts are bounded so a hostile blob cannot
/// force a huge allocation.
StatusOr<std::vector<TraceSpan>> DeserializeSpans(std::string_view blob);

/// Grafts `sub` (a remote process's span forest, offsets relative to its
/// own root) into `dest` under span `parent_id`: ids are remapped to fresh
/// values, former roots become children of `parent_id`, and every start
/// offset is shifted by `base_offset_ms` (typically the enclosing fan-out
/// span's own start offset) — clock-sync-free assembly.
void GraftSpans(std::vector<TraceSpan>* dest, int parent_id,
                std::vector<TraceSpan> sub, double base_offset_ms);

/// Deterministic head sampler: accumulates `rate` per Decide() call and
/// fires on every whole-number crossing, so exactly round(rate * n) of n
/// calls sample. rate <= 0 never samples, rate >= 1 always does — exact
/// boundaries, no RNG. Thread-safe.
class TraceSampler {
 public:
  explicit TraceSampler(double rate);

  bool Decide();
  double rate() const { return rate_; }

 private:
  const double rate_;
  std::mutex mutex_;
  double accumulator_ = 0.0;
};

}  // namespace hmmm

#endif  // HMMM_OBSERVABILITY_TRACE_CODEC_H_
