#ifndef HMMM_OBSERVABILITY_QUERY_TRACE_H_
#define HMMM_OBSERVABILITY_QUERY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hmmm {

/// One recorded phase of a query: a named span with wall time and
/// RetrievalStats-style counters, forming a tree through `parent`.
struct TraceSpan {
  std::string name;
  int id = -1;
  int parent = -1;  // -1 = root span
  /// Deterministic ordering key among siblings. Spans opened from the
  /// parallel per-video fan-out pass their Step-7 visiting-order index so
  /// the rendered tree is identical at every thread count; spans opened
  /// serially keep their insertion sequence.
  int64_t sort_key = 0;
  double elapsed_ms = 0.0;
  bool finished = false;
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// Records the spans of one traversal. Attach an instance through
/// TraversalOptions::trace to instrument a query end-to-end. Thread-safe:
/// the parallel fan-out opens per-video spans concurrently (one short
/// mutex hold per begin/end — recording never changes what the traversal
/// computes, so the byte-identical ranking guarantee is unaffected).
///
/// The trace accumulates across retrievals; call Clear() between queries
/// when reusing one instance.
class QueryTrace {
 public:
  QueryTrace() = default;
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Opens a span and returns its id. `sort_key` < 0 means "use the
  /// insertion sequence" (fine for serially opened spans).
  int BeginSpan(std::string name, int parent = -1, int64_t sort_key = -1);

  /// Closes the span, fixing its wall time.
  void EndSpan(int id);

  /// Attaches one named counter to an open or closed span.
  void AddCounter(int id, std::string name, uint64_t value);

  void Clear();

  /// Snapshot of all spans, siblings ordered by (sort_key, id).
  std::vector<TraceSpan> Spans() const;

  /// Indented tree rendering:
  ///   retrieve 1.234ms
  ///     step2_video_order 0.1ms ...
  std::string RenderTree() const;

  /// One JSON object per line per span (JSONL), pre-order, with name,
  /// depth, parent, elapsed_ms and counters.
  std::string RenderJsonl() const;

 private:
  struct Record {
    TraceSpan span;
    std::chrono::steady_clock::time_point start;
  };

  /// Pre-order listing of the span tree with depths, siblings sorted by
  /// (sort_key, id). Caller holds mutex_.
  std::vector<std::pair<const TraceSpan*, int>> PreOrderLocked() const;

  mutable std::mutex mutex_;
  std::vector<Record> records_;
};

/// RAII span that tolerates a null trace (all operations no-op), so call
/// sites read the same with tracing on and off.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, std::string name, int parent = -1,
             int64_t sort_key = -1)
      : trace_(trace),
        id_(trace != nullptr
                ? trace->BeginSpan(std::move(name), parent, sort_key)
                : -1) {}
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  int id() const { return id_; }

  void Counter(std::string name, uint64_t value) {
    if (trace_ != nullptr) trace_->AddCounter(id_, std::move(name), value);
  }

  /// Closes the span early (idempotent).
  void End() {
    if (trace_ != nullptr && !ended_) trace_->EndSpan(id_);
    ended_ = true;
  }

 private:
  QueryTrace* trace_;
  int id_;
  bool ended_ = false;
};

}  // namespace hmmm

#endif  // HMMM_OBSERVABILITY_QUERY_TRACE_H_
