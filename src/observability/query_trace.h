#ifndef HMMM_OBSERVABILITY_QUERY_TRACE_H_
#define HMMM_OBSERVABILITY_QUERY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hmmm {

/// One recorded phase of a query: a named span with wall time and
/// RetrievalStats-style counters, forming a tree through `parent`.
struct TraceSpan {
  std::string name;
  int id = -1;
  int parent = -1;  // -1 = root span
  /// Deterministic ordering key among siblings. Spans opened from the
  /// parallel per-video fan-out pass their Step-7 visiting-order index so
  /// the rendered tree is identical at every thread count; spans opened
  /// serially keep their insertion sequence.
  int64_t sort_key = 0;
  /// Begin time relative to the trace's first span, in milliseconds of the
  /// local process's monotonic clock. Cross-process trace assembly shifts
  /// these offsets when grafting a remote sub-trace, so no clock
  /// synchronization between hosts is ever needed.
  double start_offset_ms = 0.0;
  double elapsed_ms = 0.0;
  bool finished = false;
  /// Named counters, unique by name within a span (see AddCounter).
  std::vector<std::pair<std::string, uint64_t>> counters;
  /// Free-form string tags (shard id, endpoint, trace id, ...), unique by
  /// name within a span; a repeated AddAttribute overwrites.
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Records the spans of one traversal. Attach an instance through
/// TraversalOptions::trace to instrument a query end-to-end. Thread-safe:
/// the parallel fan-out opens per-video spans concurrently (one short
/// mutex hold per begin/end — recording never changes what the traversal
/// computes, so the byte-identical ranking guarantee is unaffected).
///
/// The trace accumulates across retrievals; call Clear() between queries
/// when reusing one instance.
class QueryTrace {
 public:
  QueryTrace() = default;
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Opens a span and returns its id. `sort_key` < 0 means "use the
  /// insertion sequence" (fine for serially opened spans).
  int BeginSpan(std::string name, int parent = -1, int64_t sort_key = -1);

  /// Closes the span, fixing its wall time.
  void EndSpan(int id);

  /// Attaches one named counter to an open or closed span.
  ///
  /// Contract: counter names are unique within a span and values are
  /// additive — calling AddCounter twice with the same name accumulates
  /// into the one existing entry. (Before this was specified, duplicates
  /// were appended verbatim and JSONL consumers saw whichever value their
  /// parser kept, typically the last write.)
  void AddCounter(int id, std::string name, uint64_t value);

  /// Attaches one string attribute to an open or closed span. Attribute
  /// names are unique within a span; a repeated name overwrites.
  void AddAttribute(int id, std::string name, std::string value);

  /// Reparents every root span (parent == -1) other than `new_parent`
  /// itself under `new_parent`. Used by the serving layer to adopt the
  /// traversal's phase spans under a per-request server span that was
  /// opened before the traversal ran.
  void ReparentRoots(int new_parent);

  void Clear();

  /// Snapshot of all spans, siblings ordered by (sort_key, id).
  std::vector<TraceSpan> Spans() const;

  /// Indented tree rendering:
  ///   retrieve 1.234ms
  ///     step2_video_order 0.1ms ...
  std::string RenderTree() const;

  /// One JSON object per line per span (JSONL), pre-order, with name,
  /// depth, parent, start_ms, elapsed_ms, counters and attributes.
  std::string RenderJsonl() const;

 private:
  struct Record {
    TraceSpan span;
    std::chrono::steady_clock::time_point start;
  };

  /// Pre-order listing of the span tree with depths, siblings sorted by
  /// (sort_key, id). Caller holds mutex_.
  std::vector<std::pair<const TraceSpan*, int>> PreOrderLocked() const;

  mutable std::mutex mutex_;
  std::vector<Record> records_;
  /// Monotonic time of the first BeginSpan since construction / Clear();
  /// all start_offset_ms values are relative to it.
  std::chrono::steady_clock::time_point epoch_;
  bool has_epoch_ = false;
};

/// Pre-order rendering of a free-standing span forest (e.g. one assembled
/// from several processes, where spans no longer live in a QueryTrace).
/// Parent references use TraceSpan::id; spans whose parent id is absent
/// from `spans` are treated as roots. Siblings order by (sort_key, id).
std::string RenderSpanTree(const std::vector<TraceSpan>& spans);
std::string RenderSpansJsonl(const std::vector<TraceSpan>& spans);

/// RAII span that tolerates a null trace (all operations no-op), so call
/// sites read the same with tracing on and off.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, std::string name, int parent = -1,
             int64_t sort_key = -1)
      : trace_(trace),
        id_(trace != nullptr
                ? trace->BeginSpan(std::move(name), parent, sort_key)
                : -1) {}
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  int id() const { return id_; }

  void Counter(std::string name, uint64_t value) {
    if (trace_ != nullptr) trace_->AddCounter(id_, std::move(name), value);
  }

  void Attribute(std::string name, std::string value) {
    if (trace_ != nullptr) {
      trace_->AddAttribute(id_, std::move(name), std::move(value));
    }
  }

  /// Closes the span early (idempotent).
  void End() {
    if (trace_ != nullptr && !ended_) trace_->EndSpan(id_);
    ended_ = true;
  }

 private:
  QueryTrace* trace_;
  int id_;
  bool ended_ = false;
};

}  // namespace hmmm

#endif  // HMMM_OBSERVABILITY_QUERY_TRACE_H_
