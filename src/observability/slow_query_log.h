#ifndef HMMM_OBSERVABILITY_SLOW_QUERY_LOG_H_
#define HMMM_OBSERVABILITY_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hmmm {

/// One captured slow / degraded query, rendered as a single JSONL line by
/// SlowQueryLog::DumpJsonl.
struct SlowQueryEntry {
  /// Wall-clock capture time (unix ms); stamped by Add() when left 0.
  int64_t unix_ms = 0;
  /// Why the entry was captured: "slow", "degraded" or "error".
  std::string reason;
  /// The query's pattern signature (normalized event text for temporal
  /// queries, "qbe:<n>" for query-by-example).
  std::string pattern;
  /// 32-hex-digit trace id if the query was sampled, empty otherwise.
  /// Grep this against server logs: error lines carry trace_id=<hex>.
  std::string trace_id;
  double total_ms = 0.0;
  double budget_ms = -1.0;
  bool degraded = false;
  uint64_t videos_skipped = 0;
  /// Per-shard wall latencies, (shard, ms); empty on a single server.
  std::vector<std::pair<int, double>> shard_latency_ms;
  /// Shards that failed this query, (shard, status code name).
  std::vector<std::pair<int, std::string>> shard_errors;
};

/// Bounded ring buffer of slow-query entries. Adding beyond capacity
/// evicts the oldest entry; `dropped()` counts evictions so a scrape can
/// tell how much history it lost. Thread-safe.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity);

  void Add(SlowQueryEntry entry);

  /// One JSON object per line, oldest entry first.
  std::string DumpJsonl() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const;
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<SlowQueryEntry> entries_;
  uint64_t dropped_ = 0;
};

}  // namespace hmmm

#endif  // HMMM_OBSERVABILITY_SLOW_QUERY_LOG_H_
