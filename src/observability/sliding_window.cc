#include "observability/sliding_window.h"

#include <algorithm>

#include "common/logging.h"

namespace hmmm {

SlidingWindowHistogram::SlidingWindowHistogram(
    std::vector<double> bounds, size_t num_slices,
    std::chrono::milliseconds slice_duration)
    : bounds_(std::move(bounds)),
      slice_duration_(slice_duration),
      slice_start_(std::chrono::steady_clock::now()) {
  HMMM_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HMMM_CHECK(bounds_[i] > bounds_[i - 1]) << "bounds must ascend";
  }
  HMMM_CHECK(num_slices >= 2) << "window needs at least two slices";
  HMMM_CHECK(slice_duration_.count() > 0);
  slices_.resize(num_slices);
  for (Slice& slice : slices_) slice.buckets.resize(bounds_.size() + 1, 0);
}

void SlidingWindowHistogram::Observe(double value) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  RotateLocked(now);
  Slice& slice = slices_[current_];
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  slice.buckets[static_cast<size_t>(it - bounds_.begin())] += 1;
  slice.count += 1;
  slice.max_value = std::max(slice.max_value, value);
}

double SlidingWindowHistogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // No rotation here: a read-only scrape reports the window as last
  // written; stale slices age out on the next Observe.
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  uint64_t total = 0;
  double max_value = 0.0;
  for (const Slice& slice : slices_) {
    for (size_t b = 0; b < merged.size(); ++b) merged[b] += slice.buckets[b];
    total += slice.count;
    max_value = std::max(max_value, slice.max_value);
  }
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t b = 0; b < merged.size(); ++b) {
    seen += merged[b];
    if (seen >= rank) {
      return b < bounds_.size() ? bounds_[b] : max_value;
    }
  }
  return max_value;
}

uint64_t SlidingWindowHistogram::WindowCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const Slice& slice : slices_) total += slice.count;
  return total;
}

void SlidingWindowHistogram::RotateForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  AdvanceOneLocked();
}

void SlidingWindowHistogram::RotateLocked(
    std::chrono::steady_clock::time_point now) {
  // Cap the catch-up at one full window: after a long idle gap every slice
  // is stale anyway.
  for (size_t steps = 0;
       now - slice_start_ >= slice_duration_ && steps < slices_.size();
       ++steps) {
    AdvanceOneLocked();
    slice_start_ += slice_duration_;
  }
  if (now - slice_start_ >= slice_duration_) slice_start_ = now;
}

void SlidingWindowHistogram::AdvanceOneLocked() {
  current_ = (current_ + 1) % slices_.size();
  Slice& slice = slices_[current_];
  std::fill(slice.buckets.begin(), slice.buckets.end(), 0);
  slice.count = 0;
  slice.max_value = 0.0;
}

}  // namespace hmmm
