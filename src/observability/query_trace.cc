#include "observability/query_trace.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {

int QueryTrace::BeginSpan(std::string name, int parent, int64_t sort_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = static_cast<int>(records_.size());
  HMMM_CHECK(parent >= -1 && parent < id) << "bad parent span";
  Record record;
  record.span.name = std::move(name);
  record.span.id = id;
  record.span.parent = parent;
  record.span.sort_key = sort_key >= 0 ? sort_key : id;
  record.start = std::chrono::steady_clock::now();
  records_.push_back(std::move(record));
  return id;
}

void QueryTrace::EndSpan(int id) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  HMMM_CHECK(id >= 0 && static_cast<size_t>(id) < records_.size());
  Record& record = records_[static_cast<size_t>(id)];
  record.span.elapsed_ms =
      std::chrono::duration<double, std::milli>(now - record.start).count();
  record.span.finished = true;
}

void QueryTrace::AddCounter(int id, std::string name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  HMMM_CHECK(id >= 0 && static_cast<size_t>(id) < records_.size());
  records_[static_cast<size_t>(id)].span.counters.emplace_back(
      std::move(name), value);
}

void QueryTrace::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

std::vector<std::pair<const TraceSpan*, int>> QueryTrace::PreOrderLocked()
    const {
  // children[i] = ids of i's children; index records_.size() holds roots.
  std::vector<std::vector<int>> children(records_.size() + 1);
  for (const Record& record : records_) {
    const size_t parent = record.span.parent < 0
                              ? records_.size()
                              : static_cast<size_t>(record.span.parent);
    children[parent].push_back(record.span.id);
  }
  for (std::vector<int>& siblings : children) {
    std::sort(siblings.begin(), siblings.end(), [this](int a, int b) {
      const TraceSpan& sa = records_[static_cast<size_t>(a)].span;
      const TraceSpan& sb = records_[static_cast<size_t>(b)].span;
      if (sa.sort_key != sb.sort_key) return sa.sort_key < sb.sort_key;
      return sa.id < sb.id;
    });
  }
  std::vector<std::pair<const TraceSpan*, int>> ordered;
  ordered.reserve(records_.size());
  // Iterative pre-order: push children in reverse so they pop in order.
  std::vector<std::pair<int, int>> stack;  // (id, depth)
  for (auto it = children.back().rbegin(); it != children.back().rend();
       ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    ordered.emplace_back(&records_[static_cast<size_t>(id)].span, depth);
    const std::vector<int>& kids = children[static_cast<size_t>(id)];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return ordered;
}

std::vector<TraceSpan> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSpan> spans;
  spans.reserve(records_.size());
  for (const auto& [span, depth] : PreOrderLocked()) spans.push_back(*span);
  return spans;
}

std::string QueryTrace::RenderTree() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [span, depth] : PreOrderLocked()) {
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += span->name;
    out += StrFormat(" %.3fms", span->elapsed_ms);
    for (const auto& [name, value] : span->counters) {
      out += StrFormat(" %s=%llu", name.c_str(),
                       static_cast<unsigned long long>(value));
    }
    out += '\n';
  }
  return out;
}

std::string QueryTrace::RenderJsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [span, depth] : PreOrderLocked()) {
    std::string counters;
    for (const auto& [name, value] : span->counters) {
      if (!counters.empty()) counters += ',';
      counters += StrFormat("\"%s\":%llu", name.c_str(),
                            static_cast<unsigned long long>(value));
    }
    out += StrFormat(
        "{\"name\":\"%s\",\"id\":%d,\"parent\":%d,\"depth\":%d,"
        "\"elapsed_ms\":%.6f,\"counters\":{%s}}\n",
        span->name.c_str(), span->id, span->parent, depth, span->elapsed_ms,
        counters.c_str());
  }
  return out;
}

}  // namespace hmmm
