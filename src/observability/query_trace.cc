#include "observability/query_trace.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {
namespace {

/// Pre-order over a free-standing span forest: (index into `spans`,
/// depth). Parent references are by TraceSpan::id; unknown parents make a
/// span a root. Siblings order by (sort_key, id).
std::vector<std::pair<size_t, int>> PreOrderSpans(
    const std::vector<TraceSpan>& spans) {
  std::unordered_map<int, size_t> index_of;
  index_of.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) index_of.emplace(spans[i].id, i);
  // children[i] = indices of i's children; spans.size() holds roots.
  std::vector<std::vector<size_t>> children(spans.size() + 1);
  for (size_t i = 0; i < spans.size(); ++i) {
    const auto it = index_of.find(spans[i].parent);
    const size_t parent = spans[i].parent >= 0 && it != index_of.end()
                              ? it->second
                              : spans.size();
    children[parent].push_back(i);
  }
  for (std::vector<size_t>& siblings : children) {
    std::sort(siblings.begin(), siblings.end(), [&](size_t a, size_t b) {
      if (spans[a].sort_key != spans[b].sort_key) {
        return spans[a].sort_key < spans[b].sort_key;
      }
      return spans[a].id < spans[b].id;
    });
  }
  std::vector<std::pair<size_t, int>> ordered;
  ordered.reserve(spans.size());
  std::vector<std::pair<size_t, int>> stack;  // (index, depth)
  for (auto it = children.back().rbegin(); it != children.back().rend();
       ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    // A parent-cycle (possible only in hand-built forests) would revisit
    // indices; bail rather than loop forever.
    if (ordered.size() >= spans.size()) break;
    ordered.emplace_back(index, depth);
    const std::vector<size_t>& kids = children[index];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return ordered;
}

void AppendTreeLine(std::string& out, const TraceSpan& span, int depth) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += span.name;
  out += StrFormat(" %.3fms", span.elapsed_ms);
  for (const auto& [name, value] : span.attributes) {
    out += StrFormat(" %s=%s", name.c_str(), value.c_str());
  }
  for (const auto& [name, value] : span.counters) {
    out += StrFormat(" %s=%llu", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  out += '\n';
}

void AppendJsonlLine(std::string& out, const TraceSpan& span, int depth) {
  std::string counters;
  for (const auto& [name, value] : span.counters) {
    if (!counters.empty()) counters += ',';
    counters += StrFormat("\"%s\":%llu", name.c_str(),
                          static_cast<unsigned long long>(value));
  }
  std::string attributes;
  for (const auto& [name, value] : span.attributes) {
    if (!attributes.empty()) attributes += ',';
    attributes += StrFormat("\"%s\":\"%s\"", JsonEscape(name).c_str(),
                            JsonEscape(value).c_str());
  }
  out += StrFormat(
      "{\"name\":\"%s\",\"id\":%d,\"parent\":%d,\"depth\":%d,"
      "\"start_ms\":%.6f,\"elapsed_ms\":%.6f,\"counters\":{%s},"
      "\"attributes\":{%s}}\n",
      JsonEscape(span.name).c_str(), span.id, span.parent, depth,
      span.start_offset_ms, span.elapsed_ms, counters.c_str(),
      attributes.c_str());
}

}  // namespace

int QueryTrace::BeginSpan(std::string name, int parent, int64_t sort_key) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = static_cast<int>(records_.size());
  HMMM_CHECK(parent >= -1 && parent < id) << "bad parent span";
  if (!has_epoch_) {
    epoch_ = now;
    has_epoch_ = true;
  }
  Record record;
  record.span.name = std::move(name);
  record.span.id = id;
  record.span.parent = parent;
  record.span.sort_key = sort_key >= 0 ? sort_key : id;
  record.span.start_offset_ms =
      std::chrono::duration<double, std::milli>(now - epoch_).count();
  record.start = now;
  records_.push_back(std::move(record));
  return id;
}

void QueryTrace::EndSpan(int id) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  HMMM_CHECK(id >= 0 && static_cast<size_t>(id) < records_.size());
  Record& record = records_[static_cast<size_t>(id)];
  record.span.elapsed_ms =
      std::chrono::duration<double, std::milli>(now - record.start).count();
  record.span.finished = true;
}

void QueryTrace::AddCounter(int id, std::string name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  HMMM_CHECK(id >= 0 && static_cast<size_t>(id) < records_.size());
  auto& counters = records_[static_cast<size_t>(id)].span.counters;
  for (auto& counter : counters) {
    if (counter.first == name) {
      counter.second += value;
      return;
    }
  }
  counters.emplace_back(std::move(name), value);
}

void QueryTrace::AddAttribute(int id, std::string name, std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  HMMM_CHECK(id >= 0 && static_cast<size_t>(id) < records_.size());
  auto& attributes = records_[static_cast<size_t>(id)].span.attributes;
  for (auto& attribute : attributes) {
    if (attribute.first == name) {
      attribute.second = std::move(value);
      return;
    }
  }
  attributes.emplace_back(std::move(name), std::move(value));
}

void QueryTrace::ReparentRoots(int new_parent) {
  std::lock_guard<std::mutex> lock(mutex_);
  HMMM_CHECK(new_parent >= 0 &&
             static_cast<size_t>(new_parent) < records_.size());
  for (Record& record : records_) {
    if (record.span.parent == -1 && record.span.id != new_parent) {
      record.span.parent = new_parent;
    }
  }
}

void QueryTrace::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  has_epoch_ = false;
}

std::vector<std::pair<const TraceSpan*, int>> QueryTrace::PreOrderLocked()
    const {
  // children[i] = ids of i's children; index records_.size() holds roots.
  std::vector<std::vector<int>> children(records_.size() + 1);
  for (const Record& record : records_) {
    const size_t parent = record.span.parent < 0
                              ? records_.size()
                              : static_cast<size_t>(record.span.parent);
    children[parent].push_back(record.span.id);
  }
  for (std::vector<int>& siblings : children) {
    std::sort(siblings.begin(), siblings.end(), [this](int a, int b) {
      const TraceSpan& sa = records_[static_cast<size_t>(a)].span;
      const TraceSpan& sb = records_[static_cast<size_t>(b)].span;
      if (sa.sort_key != sb.sort_key) return sa.sort_key < sb.sort_key;
      return sa.id < sb.id;
    });
  }
  std::vector<std::pair<const TraceSpan*, int>> ordered;
  ordered.reserve(records_.size());
  // Iterative pre-order: push children in reverse so they pop in order.
  std::vector<std::pair<int, int>> stack;  // (id, depth)
  for (auto it = children.back().rbegin(); it != children.back().rend();
       ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    ordered.emplace_back(&records_[static_cast<size_t>(id)].span, depth);
    const std::vector<int>& kids = children[static_cast<size_t>(id)];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return ordered;
}

std::vector<TraceSpan> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSpan> spans;
  spans.reserve(records_.size());
  for (const auto& [span, depth] : PreOrderLocked()) spans.push_back(*span);
  return spans;
}

std::string QueryTrace::RenderTree() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [span, depth] : PreOrderLocked()) {
    AppendTreeLine(out, *span, depth);
  }
  return out;
}

std::string QueryTrace::RenderJsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [span, depth] : PreOrderLocked()) {
    AppendJsonlLine(out, *span, depth);
  }
  return out;
}

std::string RenderSpanTree(const std::vector<TraceSpan>& spans) {
  std::string out;
  for (const auto& [index, depth] : PreOrderSpans(spans)) {
    AppendTreeLine(out, spans[index], depth);
  }
  return out;
}

std::string RenderSpansJsonl(const std::vector<TraceSpan>& spans) {
  std::string out;
  for (const auto& [index, depth] : PreOrderSpans(spans)) {
    AppendJsonlLine(out, spans[index], depth);
  }
  return out;
}

}  // namespace hmmm
