#include "observability/metrics_registry.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {
namespace {

/// Relaxed CAS add: std::atomic<double>::fetch_add is C++20 but not
/// uniformly available, and exact sums are not required for gauges /
/// histogram sums — lost precision, not lost updates, is the only risk.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    if (alpha) continue;
    if (i > 0 && c >= '0' && c <= '9') continue;
    return false;
  }
  return true;
}

bool IsValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    if (alpha) continue;
    if (i > 0 && c >= '0' && c <= '9') continue;
    return false;
  }
  return true;
}

/// The `key="value",...` body of a series' label braces, with values
/// escaped. Used both for rendering and (prefixed by the family name and
/// '\x01') as the series' map key.
std::string RenderLabels(const MetricLabels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first + "=\"" +
           MetricsRegistry::EscapeLabelValue(labels[i].second) + "\"";
  }
  return out;
}

/// The series name as exposed: `name` or `name{key="value",...}`.
std::string SeriesName(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) return name;
  return name + "{" + RenderLabels(labels) + "}";
}

/// `name_bucket{<labels>,le="bound"}`-style merge of the series labels
/// with the histogram's `le` label.
std::string BucketName(const std::string& name, const MetricLabels& labels,
                       const std::string& le) {
  std::string out = name + "_bucket{";
  if (!labels.empty()) out += RenderLabels(labels) + ",";
  return out + "le=\"" + le + "\"}";
}

/// Minimal JSON string escaping for series names used as object keys
/// (labeled series contain double quotes and may contain any byte).
std::string JsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<int>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Deterministic number rendering shared by both expositions: integers
/// print without a decimal point, everything else with 9 significant
/// digits (enough for millisecond sums, stable across platforms).
std::string FormatNumber(double value) {
  const auto integral = static_cast<int64_t>(value);
  if (static_cast<double>(integral) == value && value > -1e15 &&
      value < 1e15) {
    return StrFormat("%lld", static_cast<long long>(integral));
  }
  return StrFormat("%.9g", value);
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(value_, delta); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HMMM_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // upper_bound gives the first bound > value, i.e. values equal to a
  // bound land in that bound's bucket (Prometheus "le" semantics).
  const size_t index =
      bucket > 0 && bounds_[bucket - 1] == value ? bucket - 1 : bucket;
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> cumulative(buckets_.size(), 0);
  uint64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    cumulative[i] = running;
  }
  return cumulative;
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double>& buckets = *new std::vector<double>{
      0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000};
  return buckets;
}

std::string MetricsRegistry::EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::ResolveLocked(
    const std::string& name, const MetricLabels& labels,
    const std::string& help, Kind kind) {
  HMMM_CHECK(IsValidMetricName(name)) << "bad metric name: " << name;
  for (const auto& [label_name, label_value] : labels) {
    (void)label_value;
    HMMM_CHECK(IsValidLabelName(label_name))
        << "bad label name on " << name << ": " << label_name;
  }
  const std::string key = name + '\x01' + RenderLabels(labels);
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.name = name;
    entry.labels = labels;
    entry.help = help;
    it = metrics_.emplace(key, std::move(entry)).first;
  }
  HMMM_CHECK(it->second.kind == kind)
      << name << " already registered under a different kind";
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetCounter(name, {}, help);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = ResolveLocked(name, labels, help, Kind::kCounter);
  if (entry->counter == nullptr) entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetGauge(name, {}, help);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = ResolveLocked(name, labels, help, Kind::kGauge);
  if (entry->gauge == nullptr) entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  return GetHistogram(name, {}, std::move(bounds), help);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = ResolveLocked(name, labels, help, Kind::kHistogram);
  if (entry->histogram == nullptr) {
    entry->histogram = std::make_unique<Histogram>(std::move(bounds));
    return entry->histogram.get();
  }
  HMMM_CHECK(entry->histogram->bounds() == bounds)
      << name << " re-registered with different bucket bounds";
  return entry->histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // HELP/TYPE announce a family once; the map order keeps a family's
  // labeled series contiguous.
  const std::string* last_family = nullptr;
  for (const auto& [key, entry] : metrics_) {
    (void)key;
    const std::string& name = entry.name;
    if (last_family == nullptr || *last_family != name) {
      last_family = &name;
      if (!entry.help.empty()) {
        out += StrFormat("# HELP %s %s\n", name.c_str(), entry.help.c_str());
      }
      const char* type = entry.kind == Kind::kCounter ? "counter"
                         : entry.kind == Kind::kGauge ? "gauge"
                                                      : "histogram";
      out += StrFormat("# TYPE %s %s\n", name.c_str(), type);
    }
    const std::string series = SeriesName(name, entry.labels);
    switch (entry.kind) {
      case Kind::kCounter:
        out += StrFormat("%s %llu\n", series.c_str(),
                         static_cast<unsigned long long>(
                             entry.counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("%s %s\n", series.c_str(),
                         FormatNumber(entry.gauge->value()).c_str());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        const std::vector<uint64_t> cumulative = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          out += StrFormat(
              "%s %llu\n",
              BucketName(name, entry.labels, FormatNumber(h.bounds()[i]))
                  .c_str(),
              static_cast<unsigned long long>(cumulative[i]));
        }
        out += StrFormat("%s %llu\n",
                         BucketName(name, entry.labels, "+Inf").c_str(),
                         static_cast<unsigned long long>(cumulative.back()));
        out += StrFormat("%s %s\n",
                         SeriesName(name + "_sum", entry.labels).c_str(),
                         FormatNumber(h.sum()).c_str());
        out += StrFormat("%s %llu\n",
                         SeriesName(name + "_count", entry.labels).c_str(),
                         static_cast<unsigned long long>(h.count()));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [key, entry] : metrics_) {
    (void)key;
    // Labeled series keep their Prometheus rendering as the JSON key
    // (JSON-escaped, since it contains double quotes).
    const std::string series =
        JsonEscapeString(SeriesName(entry.name, entry.labels));
    switch (entry.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ',';
        counters += StrFormat("\"%s\":%llu", series.c_str(),
                              static_cast<unsigned long long>(
                                  entry.counter->value()));
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ',';
        gauges += StrFormat("\"%s\":%s", series.c_str(),
                            FormatNumber(entry.gauge->value()).c_str());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        if (!histograms.empty()) histograms += ',';
        std::string buckets;
        const std::vector<uint64_t> cumulative = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (!buckets.empty()) buckets += ',';
          buckets += StrFormat(
              "{\"le\":%s,\"count\":%llu}",
              FormatNumber(h.bounds()[i]).c_str(),
              static_cast<unsigned long long>(cumulative[i]));
        }
        if (!buckets.empty()) buckets += ',';
        buckets += StrFormat("{\"le\":\"+Inf\",\"count\":%llu}",
                             static_cast<unsigned long long>(
                                 cumulative.back()));
        histograms += StrFormat(
            "\"%s\":{\"count\":%llu,\"sum\":%s,\"buckets\":[%s]}",
            series.c_str(), static_cast<unsigned long long>(h.count()),
            FormatNumber(h.sum()).c_str(), buckets.c_str());
        break;
      }
    }
  }
  return StrFormat(
      "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}",
      counters.c_str(), gauges.c_str(), histograms.c_str());
}

}  // namespace hmmm
