#include "observability/metrics_registry.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {
namespace {

/// Relaxed CAS add: std::atomic<double>::fetch_add is C++20 but not
/// uniformly available, and exact sums are not required for gauges /
/// histogram sums — lost precision, not lost updates, is the only risk.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    if (alpha) continue;
    if (i > 0 && c >= '0' && c <= '9') continue;
    return false;
  }
  return true;
}

bool IsValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    if (alpha) continue;
    if (i > 0 && c >= '0' && c <= '9') continue;
    return false;
  }
  return true;
}

/// The `key="value",...` body of a series' label braces, with values
/// escaped. Used both for rendering and (prefixed by the family name and
/// '\x01') as the series' map key.
std::string RenderLabels(const MetricLabels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first + "=\"" +
           MetricsRegistry::EscapeLabelValue(labels[i].second) + "\"";
  }
  return out;
}

/// The series name as exposed: `name` or `name{key="value",...}`.
std::string SeriesName(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) return name;
  return name + "{" + RenderLabels(labels) + "}";
}

/// `name_bucket{<labels>,le="bound"}`-style merge of the series labels
/// with the histogram's `le` label.
std::string BucketName(const std::string& name, const MetricLabels& labels,
                       const std::string& le) {
  std::string out = name + "_bucket{";
  if (!labels.empty()) out += RenderLabels(labels) + ",";
  return out + "le=\"" + le + "\"}";
}

/// Minimal JSON string escaping for series names used as object keys
/// (labeled series contain double quotes and may contain any byte).
std::string JsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<int>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Deterministic number rendering shared by both expositions: integers
/// print without a decimal point, everything else with 9 significant
/// digits (enough for millisecond sums, stable across platforms).
std::string FormatNumber(double value) {
  const auto integral = static_cast<int64_t>(value);
  if (static_cast<double>(integral) == value && value > -1e15 &&
      value < 1e15) {
    return StrFormat("%lld", static_cast<long long>(integral));
  }
  return StrFormat("%.9g", value);
}

/// `labels` with `extra` appended, skipping extra labels whose name the
/// series already carries.
MetricLabels MergeConstLabels(const MetricLabels& labels,
                              const MetricLabels& extra) {
  if (extra.empty()) return labels;
  MetricLabels merged = labels;
  for (const auto& [name, value] : extra) {
    bool present = false;
    for (const auto& [existing, unused] : labels) {
      (void)unused;
      if (existing == name) {
        present = true;
        break;
      }
    }
    if (!present) merged.emplace_back(name, value);
  }
  return merged;
}

// -- Minimal JSON reader for SnapshotJson payloads ------------------------
//
// Parses exactly the JSON subset our own serializers emit (objects,
// arrays, double-quoted strings with short escapes, numbers, booleans,
// null). Returns kDataLoss on anything malformed rather than aborting,
// since snapshots arrive over the network.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [name, value] : object) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    HMMM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) return Malformed("trailing bytes");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 32;

  Status Malformed(const char* what) const {
    return Status(StatusCode::kDataLoss,
                  StrFormat("bad metrics snapshot json: %s at byte %zu",
                            what, pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Malformed("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Malformed("truncated");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") return Malformed("bad literal");
      pos_ += 4;
      return JsonValue{};
    }
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return value;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Malformed("expected object key");
      }
      HMMM_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Malformed("expected ':'");
      HMMM_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      value.object.emplace_back(std::move(key.string), std::move(element));
      if (Consume('}')) return value;
      if (!Consume(',')) return Malformed("expected ',' or '}'");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    if (Consume(']')) return value;
    while (true) {
      HMMM_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      value.array.push_back(std::move(element));
      if (Consume(']')) return value;
      if (!Consume(',')) return Malformed("expected ',' or ']'");
    }
  }

  StatusOr<JsonValue> ParseString() {
    JsonValue value;
    value.type = JsonValue::Type::kString;
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': value.string += '"'; break;
        case '\\': value.string += '\\'; break;
        case '/': value.string += '/'; break;
        case 'n': value.string += '\n'; break;
        case 'r': value.string += '\r'; break;
        case 't': value.string += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Malformed("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Malformed("bad \\u escape");
          }
          // Our serializers only emit \u for control bytes; anything
          // beyond Latin-1 would need UTF-8 encoding we don't produce.
          if (code > 0xFF) return Malformed("unsupported \\u escape");
          value.string += static_cast<char>(code);
          break;
        }
        default:
          return Malformed("bad escape");
      }
    }
    return Malformed("unterminated string");
  }

  StatusOr<JsonValue> ParseBool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.substr(pos_, 5) == "false") {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Malformed("bad literal");
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
      ++pos_;
    }
    if (pos_ == start) return Malformed("expected value");
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    value.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Malformed("bad number");
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(value_, delta); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HMMM_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // upper_bound gives the first bound > value, i.e. values equal to a
  // bound land in that bound's bucket (Prometheus "le" semantics).
  const size_t index =
      bucket > 0 && bounds_[bucket - 1] == value ? bucket - 1 : bucket;
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> cumulative(buckets_.size(), 0);
  uint64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    cumulative[i] = running;
  }
  return cumulative;
}

void Histogram::MergeBucketized(const std::vector<uint64_t>& bucket_counts,
                                double sum) {
  HMMM_CHECK(bucket_counts.size() == buckets_.size())
      << "bucketized merge with mismatched bucket count";
  uint64_t total = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(bucket_counts[i], std::memory_order_relaxed);
    total += bucket_counts[i];
  }
  count_.fetch_add(total, std::memory_order_relaxed);
  AtomicAdd(sum_, sum);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double>& buckets = *new std::vector<double>{
      0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000};
  return buckets;
}

std::string MetricsRegistry::EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::ResolveLocked(
    const std::string& name, const MetricLabels& labels,
    const std::string& help, Kind kind) {
  HMMM_CHECK(IsValidMetricName(name)) << "bad metric name: " << name;
  for (const auto& [label_name, label_value] : labels) {
    (void)label_value;
    HMMM_CHECK(IsValidLabelName(label_name))
        << "bad label name on " << name << ": " << label_name;
  }
  const std::string key = name + '\x01' + RenderLabels(labels);
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.name = name;
    entry.labels = labels;
    entry.help = help;
    it = metrics_.emplace(key, std::move(entry)).first;
  }
  HMMM_CHECK(it->second.kind == kind)
      << name << " already registered under a different kind";
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetCounter(name, {}, help);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = ResolveLocked(name, labels, help, Kind::kCounter);
  if (entry->counter == nullptr) entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetGauge(name, {}, help);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = ResolveLocked(name, labels, help, Kind::kGauge);
  if (entry->gauge == nullptr) entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  return GetHistogram(name, {}, std::move(bounds), help);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = ResolveLocked(name, labels, help, Kind::kHistogram);
  if (entry->histogram == nullptr) {
    entry->histogram = std::make_unique<Histogram>(std::move(bounds));
    return entry->histogram.get();
  }
  HMMM_CHECK(entry->histogram->bounds() == bounds)
      << name << " re-registered with different bucket bounds";
  return entry->histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  return RenderPrometheus(MetricLabels{});
}

std::string MetricsRegistry::RenderPrometheus(
    const MetricLabels& const_labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // HELP/TYPE announce a family once; the map order keeps a family's
  // labeled series contiguous.
  const std::string* last_family = nullptr;
  for (const auto& [key, entry] : metrics_) {
    (void)key;
    const std::string& name = entry.name;
    if (last_family == nullptr || *last_family != name) {
      last_family = &name;
      if (!entry.help.empty()) {
        out += StrFormat("# HELP %s %s\n", name.c_str(), entry.help.c_str());
      }
      const char* type = entry.kind == Kind::kCounter ? "counter"
                         : entry.kind == Kind::kGauge ? "gauge"
                                                      : "histogram";
      out += StrFormat("# TYPE %s %s\n", name.c_str(), type);
    }
    const MetricLabels labels = MergeConstLabels(entry.labels, const_labels);
    const std::string series = SeriesName(name, labels);
    switch (entry.kind) {
      case Kind::kCounter:
        out += StrFormat("%s %llu\n", series.c_str(),
                         static_cast<unsigned long long>(
                             entry.counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("%s %s\n", series.c_str(),
                         FormatNumber(entry.gauge->value()).c_str());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        const std::vector<uint64_t> cumulative = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          out += StrFormat(
              "%s %llu\n",
              BucketName(name, labels, FormatNumber(h.bounds()[i])).c_str(),
              static_cast<unsigned long long>(cumulative[i]));
        }
        out += StrFormat("%s %llu\n",
                         BucketName(name, labels, "+Inf").c_str(),
                         static_cast<unsigned long long>(cumulative.back()));
        out += StrFormat("%s %s\n",
                         SeriesName(name + "_sum", labels).c_str(),
                         FormatNumber(h.sum()).c_str());
        out += StrFormat("%s %llu\n",
                         SeriesName(name + "_count", labels).c_str(),
                         static_cast<unsigned long long>(h.count()));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [key, entry] : metrics_) {
    (void)key;
    // Labeled series keep their Prometheus rendering as the JSON key
    // (JSON-escaped, since it contains double quotes).
    const std::string series =
        JsonEscapeString(SeriesName(entry.name, entry.labels));
    switch (entry.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ',';
        counters += StrFormat("\"%s\":%llu", series.c_str(),
                              static_cast<unsigned long long>(
                                  entry.counter->value()));
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ',';
        gauges += StrFormat("\"%s\":%s", series.c_str(),
                            FormatNumber(entry.gauge->value()).c_str());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        if (!histograms.empty()) histograms += ',';
        std::string buckets;
        const std::vector<uint64_t> cumulative = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (!buckets.empty()) buckets += ',';
          buckets += StrFormat(
              "{\"le\":%s,\"count\":%llu}",
              FormatNumber(h.bounds()[i]).c_str(),
              static_cast<unsigned long long>(cumulative[i]));
        }
        if (!buckets.empty()) buckets += ',';
        buckets += StrFormat("{\"le\":\"+Inf\",\"count\":%llu}",
                             static_cast<unsigned long long>(
                                 cumulative.back()));
        histograms += StrFormat(
            "\"%s\":{\"count\":%llu,\"sum\":%s,\"buckets\":[%s]}",
            series.c_str(), static_cast<unsigned long long>(h.count()),
            FormatNumber(h.sum()).c_str(), buckets.c_str());
        break;
      }
    }
  }
  return StrFormat(
      "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}",
      counters.c_str(), gauges.c_str(), histograms.c_str());
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string metrics;
  for (const auto& [key, entry] : metrics_) {
    (void)key;
    if (!metrics.empty()) metrics += ',';
    std::string labels;
    for (const auto& [label_name, label_value] : entry.labels) {
      if (!labels.empty()) labels += ',';
      labels += StrFormat("[\"%s\",\"%s\"]",
                          JsonEscapeString(label_name).c_str(),
                          JsonEscapeString(label_value).c_str());
    }
    metrics += StrFormat(
        "{\"kind\":\"%s\",\"name\":\"%s\",\"labels\":[%s],\"help\":\"%s\"",
        entry.kind == Kind::kCounter ? "counter"
        : entry.kind == Kind::kGauge ? "gauge"
                                     : "histogram",
        JsonEscapeString(entry.name).c_str(), labels.c_str(),
        JsonEscapeString(entry.help).c_str());
    switch (entry.kind) {
      case Kind::kCounter:
        metrics += StrFormat(
            ",\"value\":%llu}",
            static_cast<unsigned long long>(entry.counter->value()));
        break;
      case Kind::kGauge:
        metrics += StrFormat(",\"value\":%s}",
                             FormatNumber(entry.gauge->value()).c_str());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        std::string bounds;
        for (double bound : h.bounds()) {
          if (!bounds.empty()) bounds += ',';
          bounds += FormatNumber(bound);
        }
        // Per-bucket counts (not cumulative) so loading is a plain merge.
        const std::vector<uint64_t> cumulative = h.CumulativeCounts();
        std::string buckets;
        uint64_t previous = 0;
        for (uint64_t c : cumulative) {
          if (!buckets.empty()) buckets += ',';
          buckets += StrFormat("%llu",
                               static_cast<unsigned long long>(c - previous));
          previous = c;
        }
        metrics += StrFormat(
            ",\"bounds\":[%s],\"buckets\":[%s],\"sum\":%s,\"count\":%llu}",
            bounds.c_str(), buckets.c_str(), FormatNumber(h.sum()).c_str(),
            static_cast<unsigned long long>(h.count()));
        break;
      }
    }
  }
  return StrFormat("{\"v\":1,\"metrics\":[%s]}", metrics.c_str());
}

Status MetricsRegistry::LoadSnapshotJson(std::string_view json,
                                         const MetricLabels& extra_labels) {
  JsonReader reader(json);
  HMMM_ASSIGN_OR_RETURN(const JsonValue root, reader.Parse());
  if (root.type != JsonValue::Type::kObject) {
    return Status(StatusCode::kDataLoss, "snapshot is not a json object");
  }
  const JsonValue* version = root.Find("v");
  if (version == nullptr || version->type != JsonValue::Type::kNumber ||
      version->number != 1.0) {
    return Status(StatusCode::kDataLoss, "unknown snapshot version");
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::kArray) {
    return Status(StatusCode::kDataLoss, "snapshot lacks metrics array");
  }
  const auto bad = [](const char* what) {
    return Status(StatusCode::kDataLoss,
                  StrFormat("bad snapshot metric: %s", what));
  };
  for (const JsonValue& metric : metrics->array) {
    if (metric.type != JsonValue::Type::kObject) return bad("not an object");
    const JsonValue* kind = metric.Find("kind");
    const JsonValue* name = metric.Find("name");
    const JsonValue* labels_value = metric.Find("labels");
    const JsonValue* help = metric.Find("help");
    if (kind == nullptr || kind->type != JsonValue::Type::kString ||
        name == nullptr || name->type != JsonValue::Type::kString ||
        labels_value == nullptr ||
        labels_value->type != JsonValue::Type::kArray) {
      return bad("missing kind/name/labels");
    }
    if (!IsValidMetricName(name->string)) return bad("metric name");
    MetricLabels labels;
    for (const JsonValue& label : labels_value->array) {
      if (label.type != JsonValue::Type::kArray ||
          label.array.size() != 2 ||
          label.array[0].type != JsonValue::Type::kString ||
          label.array[1].type != JsonValue::Type::kString) {
        return bad("label entry");
      }
      if (!IsValidLabelName(label.array[0].string)) return bad("label name");
      labels.emplace_back(label.array[0].string, label.array[1].string);
    }
    for (const auto& [label_name, label_value] : extra_labels) {
      (void)label_value;
      if (!IsValidLabelName(label_name)) return bad("extra label name");
    }
    labels = MergeConstLabels(labels, extra_labels);
    const std::string help_text =
        help != nullptr && help->type == JsonValue::Type::kString
            ? help->string
            : "";

    // Resolve by hand instead of through ResolveLocked: a remote kind or
    // bounds conflict must surface as a Status, not abort the process.
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string series_key =
        name->string + '\x01' + RenderLabels(labels);
    const Kind want = kind->string == "counter"  ? Kind::kCounter
                      : kind->string == "gauge"  ? Kind::kGauge
                      : kind->string == "histogram"
                          ? Kind::kHistogram
                          : Kind::kCounter;
    if (kind->string != "counter" && kind->string != "gauge" &&
        kind->string != "histogram") {
      return bad("kind");
    }
    auto it = metrics_.find(series_key);
    if (it != metrics_.end() && it->second.kind != want) {
      return Status(StatusCode::kDataLoss,
                    StrFormat("snapshot kind conflict on %s",
                              name->string.c_str()));
    }
    if (it == metrics_.end()) {
      Entry entry;
      entry.kind = want;
      entry.name = name->string;
      entry.labels = labels;
      entry.help = help_text;
      it = metrics_.emplace(series_key, std::move(entry)).first;
    }
    Entry& entry = it->second;
    switch (want) {
      case Kind::kCounter: {
        const JsonValue* value = metric.Find("value");
        if (value == nullptr || value->type != JsonValue::Type::kNumber ||
            value->number < 0) {
          return bad("counter value");
        }
        if (entry.counter == nullptr) {
          entry.counter = std::make_unique<Counter>();
        }
        entry.counter->Increment(static_cast<uint64_t>(value->number));
        break;
      }
      case Kind::kGauge: {
        const JsonValue* value = metric.Find("value");
        if (value == nullptr || value->type != JsonValue::Type::kNumber) {
          return bad("gauge value");
        }
        if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
        entry.gauge->Set(value->number);
        break;
      }
      case Kind::kHistogram: {
        const JsonValue* bounds_value = metric.Find("bounds");
        const JsonValue* buckets_value = metric.Find("buckets");
        const JsonValue* sum = metric.Find("sum");
        if (bounds_value == nullptr ||
            bounds_value->type != JsonValue::Type::kArray ||
            buckets_value == nullptr ||
            buckets_value->type != JsonValue::Type::kArray ||
            sum == nullptr || sum->type != JsonValue::Type::kNumber) {
          return bad("histogram fields");
        }
        std::vector<double> bounds;
        bounds.reserve(bounds_value->array.size());
        for (const JsonValue& bound : bounds_value->array) {
          if (bound.type != JsonValue::Type::kNumber) return bad("bound");
          if (!bounds.empty() && bound.number <= bounds.back()) {
            return bad("bounds not ascending");
          }
          bounds.push_back(bound.number);
        }
        if (buckets_value->array.size() != bounds.size() + 1) {
          return bad("bucket count");
        }
        std::vector<uint64_t> buckets;
        buckets.reserve(buckets_value->array.size());
        for (const JsonValue& bucket : buckets_value->array) {
          if (bucket.type != JsonValue::Type::kNumber ||
              bucket.number < 0) {
            return bad("bucket value");
          }
          buckets.push_back(static_cast<uint64_t>(bucket.number));
        }
        if (entry.histogram == nullptr) {
          entry.histogram = std::make_unique<Histogram>(bounds);
        } else if (entry.histogram->bounds() != bounds) {
          return Status(StatusCode::kDataLoss,
                        StrFormat("snapshot bounds conflict on %s",
                                  name->string.c_str()));
        }
        entry.histogram->MergeBucketized(buckets, sum->number);
        break;
      }
    }
  }
  return Status::OK();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : metrics_) {
    (void)key;
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

}  // namespace hmmm
