#include "observability/metrics_registry.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {
namespace {

/// Relaxed CAS add: std::atomic<double>::fetch_add is C++20 but not
/// uniformly available, and exact sums are not required for gauges /
/// histogram sums — lost precision, not lost updates, is the only risk.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    if (alpha) continue;
    if (i > 0 && c >= '0' && c <= '9') continue;
    return false;
  }
  return true;
}

/// Deterministic number rendering shared by both expositions: integers
/// print without a decimal point, everything else with 9 significant
/// digits (enough for millisecond sums, stable across platforms).
std::string FormatNumber(double value) {
  const auto integral = static_cast<int64_t>(value);
  if (static_cast<double>(integral) == value && value > -1e15 &&
      value < 1e15) {
    return StrFormat("%lld", static_cast<long long>(integral));
  }
  return StrFormat("%.9g", value);
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(value_, delta); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HMMM_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // upper_bound gives the first bound > value, i.e. values equal to a
  // bound land in that bound's bucket (Prometheus "le" semantics).
  const size_t index =
      bucket > 0 && bounds_[bucket - 1] == value ? bucket - 1 : bucket;
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> cumulative(buckets_.size(), 0);
  uint64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    cumulative[i] = running;
  }
  return cumulative;
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double>& buckets = *new std::vector<double>{
      0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000};
  return buckets;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  HMMM_CHECK(IsValidMetricName(name)) << "bad metric name: " << name;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry{Kind::kCounter, help, std::make_unique<Counter>(), nullptr,
                nullptr};
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  HMMM_CHECK(it->second.kind == Kind::kCounter)
      << name << " already registered under a different kind";
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  HMMM_CHECK(IsValidMetricName(name)) << "bad metric name: " << name;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry{Kind::kGauge, help, nullptr, std::make_unique<Gauge>(),
                nullptr};
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  HMMM_CHECK(it->second.kind == Kind::kGauge)
      << name << " already registered under a different kind";
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  HMMM_CHECK(IsValidMetricName(name)) << "bad metric name: " << name;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry{Kind::kHistogram, help, nullptr, nullptr,
                std::make_unique<Histogram>(std::move(bounds))};
    it = metrics_.emplace(name, std::move(entry)).first;
    return it->second.histogram.get();
  }
  HMMM_CHECK(it->second.kind == Kind::kHistogram)
      << name << " already registered under a different kind";
  HMMM_CHECK(it->second.histogram->bounds() == bounds)
      << name << " re-registered with different bucket bounds";
  return it->second.histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : metrics_) {
    if (!entry.help.empty()) {
      out += StrFormat("# HELP %s %s\n", name.c_str(), entry.help.c_str());
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += StrFormat("# TYPE %s counter\n", name.c_str());
        out += StrFormat("%s %llu\n", name.c_str(),
                         static_cast<unsigned long long>(
                             entry.counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("# TYPE %s gauge\n", name.c_str());
        out += StrFormat("%s %s\n", name.c_str(),
                         FormatNumber(entry.gauge->value()).c_str());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += StrFormat("# TYPE %s histogram\n", name.c_str());
        const std::vector<uint64_t> cumulative = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          out += StrFormat(
              "%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
              FormatNumber(h.bounds()[i]).c_str(),
              static_cast<unsigned long long>(cumulative[i]));
        }
        out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                         static_cast<unsigned long long>(cumulative.back()));
        out += StrFormat("%s_sum %s\n", name.c_str(),
                         FormatNumber(h.sum()).c_str());
        out += StrFormat("%s_count %llu\n", name.c_str(),
                         static_cast<unsigned long long>(h.count()));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ',';
        counters += StrFormat("\"%s\":%llu", name.c_str(),
                              static_cast<unsigned long long>(
                                  entry.counter->value()));
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ',';
        gauges += StrFormat("\"%s\":%s", name.c_str(),
                            FormatNumber(entry.gauge->value()).c_str());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        if (!histograms.empty()) histograms += ',';
        std::string buckets;
        const std::vector<uint64_t> cumulative = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (!buckets.empty()) buckets += ',';
          buckets += StrFormat(
              "{\"le\":%s,\"count\":%llu}",
              FormatNumber(h.bounds()[i]).c_str(),
              static_cast<unsigned long long>(cumulative[i]));
        }
        if (!buckets.empty()) buckets += ',';
        buckets += StrFormat("{\"le\":\"+Inf\",\"count\":%llu}",
                             static_cast<unsigned long long>(
                                 cumulative.back()));
        histograms += StrFormat(
            "\"%s\":{\"count\":%llu,\"sum\":%s,\"buckets\":[%s]}",
            name.c_str(), static_cast<unsigned long long>(h.count()),
            FormatNumber(h.sum()).c_str(), buckets.c_str());
        break;
      }
    }
  }
  return StrFormat(
      "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}",
      counters.c_str(), gauges.c_str(), histograms.c_str());
}

}  // namespace hmmm
