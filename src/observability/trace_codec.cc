#include "observability/trace_codec.h"

#include <algorithm>
#include <atomic>
#include <random>
#include <unordered_map>

#include "common/serialization.h"
#include "common/strings.h"

namespace hmmm {
namespace {

constexpr uint8_t kTraceBlobVersion = 1;
// Caps on untrusted blob contents; far above anything a real query
// produces, far below an allocation-bomb.
constexpr uint64_t kMaxSpans = 1 << 20;
constexpr uint64_t kMaxPairsPerSpan = 1 << 16;

uint64_t ProcessRandomHi() {
  static const uint64_t hi = [] {
    std::random_device rd;
    uint64_t v = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    // Reserve the zero hi-word so a minted id can never be all-zero even
    // if the counter wraps.
    return v != 0 ? v : uint64_t{1};
  }();
  return hi;
}

}  // namespace

TraceContext MintTraceContext() {
  static std::atomic<uint64_t> counter{1};
  TraceContext context;
  context.trace_id_hi = ProcessRandomHi();
  context.trace_id_lo = counter.fetch_add(1, std::memory_order_relaxed);
  return context;
}

std::string TraceIdHex(uint64_t hi, uint64_t lo) {
  return StrFormat("%016llx%016llx", static_cast<unsigned long long>(hi),
                   static_cast<unsigned long long>(lo));
}

std::string SerializeSpans(const std::vector<TraceSpan>& spans) {
  BinaryWriter writer;
  writer.WriteUint8(kTraceBlobVersion);
  writer.WriteVarint(spans.size());
  for (const TraceSpan& span : spans) {
    writer.WriteString(span.name);
    writer.WriteInt32(span.id);
    writer.WriteInt32(span.parent);
    writer.WriteInt64(span.sort_key);
    writer.WriteDouble(span.start_offset_ms);
    writer.WriteDouble(span.elapsed_ms);
    writer.WriteUint8(span.finished ? 1 : 0);
    writer.WriteVarint(span.counters.size());
    for (const auto& [name, value] : span.counters) {
      writer.WriteString(name);
      writer.WriteUint64(value);
    }
    writer.WriteVarint(span.attributes.size());
    for (const auto& [name, value] : span.attributes) {
      writer.WriteString(name);
      writer.WriteString(value);
    }
  }
  return std::move(writer).TakeBuffer();
}

StatusOr<std::vector<TraceSpan>> DeserializeSpans(std::string_view blob) {
  BinaryReader reader(blob);
  HMMM_ASSIGN_OR_RETURN(const uint8_t version, reader.ReadUint8());
  if (version != kTraceBlobVersion) {
    return Status(StatusCode::kDataLoss, "unknown trace blob version");
  }
  HMMM_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadVarint());
  if (count > kMaxSpans) {
    return Status(StatusCode::kDataLoss, "trace blob span count too large");
  }
  std::vector<TraceSpan> spans;
  spans.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    TraceSpan span;
    HMMM_ASSIGN_OR_RETURN(span.name, reader.ReadString());
    HMMM_ASSIGN_OR_RETURN(span.id, reader.ReadInt32());
    HMMM_ASSIGN_OR_RETURN(span.parent, reader.ReadInt32());
    HMMM_ASSIGN_OR_RETURN(span.sort_key, reader.ReadInt64());
    HMMM_ASSIGN_OR_RETURN(span.start_offset_ms, reader.ReadDouble());
    HMMM_ASSIGN_OR_RETURN(span.elapsed_ms, reader.ReadDouble());
    HMMM_ASSIGN_OR_RETURN(const uint8_t finished, reader.ReadUint8());
    span.finished = finished != 0;
    HMMM_ASSIGN_OR_RETURN(const uint64_t num_counters, reader.ReadVarint());
    if (num_counters > kMaxPairsPerSpan) {
      return Status(StatusCode::kDataLoss, "trace blob counter count");
    }
    span.counters.reserve(static_cast<size_t>(num_counters));
    for (uint64_t c = 0; c < num_counters; ++c) {
      std::pair<std::string, uint64_t> counter;
      HMMM_ASSIGN_OR_RETURN(counter.first, reader.ReadString());
      HMMM_ASSIGN_OR_RETURN(counter.second, reader.ReadUint64());
      span.counters.push_back(std::move(counter));
    }
    HMMM_ASSIGN_OR_RETURN(const uint64_t num_attributes, reader.ReadVarint());
    if (num_attributes > kMaxPairsPerSpan) {
      return Status(StatusCode::kDataLoss, "trace blob attribute count");
    }
    span.attributes.reserve(static_cast<size_t>(num_attributes));
    for (uint64_t a = 0; a < num_attributes; ++a) {
      std::pair<std::string, std::string> attribute;
      HMMM_ASSIGN_OR_RETURN(attribute.first, reader.ReadString());
      HMMM_ASSIGN_OR_RETURN(attribute.second, reader.ReadString());
      span.attributes.push_back(std::move(attribute));
    }
    spans.push_back(std::move(span));
  }
  if (!reader.AtEnd()) {
    return Status(StatusCode::kDataLoss, "trailing bytes after trace blob");
  }
  return spans;
}

void GraftSpans(std::vector<TraceSpan>* dest, int parent_id,
                std::vector<TraceSpan> sub, double base_offset_ms) {
  int next_id = parent_id + 1;
  for (const TraceSpan& span : *dest) {
    next_id = std::max(next_id, span.id + 1);
  }
  std::unordered_map<int, int> remap;
  remap.reserve(sub.size());
  for (const TraceSpan& span : sub) {
    remap.emplace(span.id, next_id++);
  }
  for (TraceSpan& span : sub) {
    span.id = remap.at(span.id);
    const auto it = remap.find(span.parent);
    span.parent = span.parent >= 0 && it != remap.end() ? it->second
                                                        : parent_id;
    span.start_offset_ms += base_offset_ms;
    dest->push_back(std::move(span));
  }
}

TraceSampler::TraceSampler(double rate)
    : rate_(rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate)) {}

bool TraceSampler::Decide() {
  if (rate_ <= 0.0) return false;
  if (rate_ >= 1.0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  accumulator_ += rate_;
  if (accumulator_ >= 1.0) {
    accumulator_ -= 1.0;
    return true;
  }
  return false;
}

}  // namespace hmmm
