#ifndef HMMM_OBSERVABILITY_SLIDING_WINDOW_H_
#define HMMM_OBSERVABILITY_SLIDING_WINDOW_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace hmmm {

/// Sliding-window latency histogram for SLO reporting (p50/p99/p999
/// gauges). Observations land in the current time slice; quantiles are
/// computed over the most recent `num_slices` slices, so a latency burst
/// ages out of the reported percentiles after num_slices * slice duration
/// instead of polluting a forever-cumulative histogram. Thread-safe.
class SlidingWindowHistogram {
 public:
  /// `bounds` are strictly-ascending bucket upper bounds (ms); values
  /// above the last bound land in an implicit overflow bucket.
  SlidingWindowHistogram(
      std::vector<double> bounds, size_t num_slices = 6,
      std::chrono::milliseconds slice_duration = std::chrono::seconds(10));

  void Observe(double value);

  /// Upper bound of the bucket containing quantile `q` (0 < q <= 1) over
  /// the window; the overflow bucket reports the window's max observation.
  /// Returns 0 when the window is empty.
  double Quantile(double q) const;

  uint64_t WindowCount() const;

  /// Forces one slice rotation regardless of wall time (tests).
  void RotateForTesting();

 private:
  struct Slice {
    std::vector<uint64_t> buckets;  // bounds.size() + 1 (overflow last)
    uint64_t count = 0;
    double max_value = 0.0;
  };

  /// Advances current_ past every slice boundary `now` has crossed,
  /// clearing reused slices. Caller holds mutex_.
  void RotateLocked(std::chrono::steady_clock::time_point now);
  void AdvanceOneLocked();

  const std::vector<double> bounds_;
  const std::chrono::milliseconds slice_duration_;
  mutable std::mutex mutex_;
  std::vector<Slice> slices_;
  size_t current_ = 0;
  std::chrono::steady_clock::time_point slice_start_;
};

}  // namespace hmmm

#endif  // HMMM_OBSERVABILITY_SLIDING_WINDOW_H_
