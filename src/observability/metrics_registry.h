#ifndef HMMM_OBSERVABILITY_METRICS_REGISTRY_H_
#define HMMM_OBSERVABILITY_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hmmm {

/// Label set of one metric series, in emission order. Label names must
/// match [a-zA-Z_][a-zA-Z0-9_]*; values are arbitrary bytes and get
/// escaped at exposition time (see MetricsRegistry::EscapeLabelValue).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing event count. Increments are a single
/// relaxed atomic add, so hot paths (per-query, per-task) never contend
/// on a lock; cross-thread increments still sum exactly.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time value that can move both ways (queue depth, model
/// version, cache occupancy). Doubles, like Prometheus gauges.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket latency/magnitude histogram. `bounds` are the inclusive
/// upper bounds of the finite buckets, strictly ascending; an implicit
/// +Inf bucket catches the rest. Observations touch only per-bucket
/// atomics — no lock on the observe path.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative counts per bucket, Prometheus style: entry i counts
  /// observations <= bounds[i]; the final entry (the +Inf bucket) equals
  /// count().
  std::vector<uint64_t> CumulativeCounts() const;

  /// Adds pre-bucketed observations: `bucket_counts` are per-bucket
  /// (non-cumulative) counts, one entry per finite bound plus the +Inf
  /// bucket; `sum` is their combined observation sum. Used by the
  /// snapshot loader to merge a remote histogram.
  void MergeBucketized(const std::vector<uint64_t>& bucket_counts,
                       double sum);

  /// Zeroes every bucket, the count and the sum.
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket bounds for query-latency histograms, in milliseconds.
const std::vector<double>& DefaultLatencyBucketsMs();

/// A named collection of counters, gauges and histograms with text
/// exposition. Registration (Get*) takes a mutex; the returned pointers
/// are stable for the registry's lifetime, so callers resolve a metric
/// once and then update it lock-free. Metric names must match
/// [a-zA-Z_:][a-zA-Z0-9_:]* (the Prometheus grammar). Re-registering a
/// name returns the existing metric; re-registering under a different
/// kind (or histogram bounds) is a programmer error and aborts.
///
/// A metric family may carry labeled series (the `labels` overloads):
/// each distinct label set is its own series, rendered Prometheus-style
/// as `name{key="value"} 42` with backslashes, double quotes and
/// newlines in label values escaped per the text exposition format.
/// Labeled and unlabeled series may coexist under one family name, but
/// the whole family must keep a single kind.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& help = "");

  /// Labeled-series variants. The same (name, labels) pair always
  /// returns the same instance; `labels` participates in the identity
  /// byte-for-byte (order and values included).
  Counter* GetCounter(const std::string& name, const MetricLabels& labels,
                      const std::string& help);
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels,
                  const std::string& help);
  Histogram* GetHistogram(const std::string& name, const MetricLabels& labels,
                          std::vector<double> bounds, const std::string& help);

  /// Escapes a label value for the Prometheus text exposition format:
  /// backslash -> \\, double quote -> \", newline -> \n. Exposed so
  /// tests (and external renderers) can assert the exact contract.
  static std::string EscapeLabelValue(std::string_view value);

  /// Prometheus text exposition format (metrics sorted by name). The
  /// snapshot is per-metric consistent, not cross-metric atomic.
  std::string RenderPrometheus() const;

  /// Same exposition with `const_labels` appended to every series'
  /// label set (e.g. {{"shard","2"}}); a const label whose name a series
  /// already carries is skipped for that series.
  std::string RenderPrometheus(const MetricLabels& const_labels) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name:{"count":..,"sum":..,"buckets":[{"le":..,"count":..}]}}}.
  std::string RenderJson() const;

  /// Machine-readable snapshot that round-trips through
  /// LoadSnapshotJson: {"v":1,"metrics":[{"kind":..,"name":..,
  /// "labels":[[k,v],..],"help":..,<kind-specific values>},..]}.
  /// Histograms carry per-bucket (non-cumulative) counts so loading is a
  /// plain merge. Carried over the wire as MetricsResponse.json_snapshot
  /// and aggregated fleet-wide by the coordinator.
  std::string SnapshotJson() const;

  /// Merges a SnapshotJson() payload into this registry, appending
  /// `extra_labels` (e.g. {{"shard","1"}}) to every series. Counters and
  /// histograms add onto existing series; gauges overwrite. Malformed
  /// input or a kind/bounds conflict with an existing series returns
  /// kDataLoss — entries applied before the error stick.
  Status LoadSnapshotJson(std::string_view json,
                          const MetricLabels& extra_labels = {});

  /// Zeroes every registered metric's value, keeping registration (and
  /// the pointers handed out) intact. For tests.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;    // family name, without labels
    MetricLabels labels; // empty for plain series
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Locates or creates the series for (name, labels), checking the kind
  /// invariant. Caller fills the metric pointer on creation.
  Entry* ResolveLocked(const std::string& name, const MetricLabels& labels,
                       const std::string& help, Kind kind);

  mutable std::mutex mutex_;
  /// Keyed by name + '\x01' + canonical label rendering: '\x01' sorts
  /// before every printable byte, so all series of one family stay
  /// contiguous (deterministic exposition with HELP/TYPE emitted once
  /// per family).
  std::map<std::string, Entry> metrics_;
};

}  // namespace hmmm

#endif  // HMMM_OBSERVABILITY_METRICS_REGISTRY_H_
