#include "retrieval/three_level.h"

#include <algorithm>

namespace hmmm {

ThreeLevelTraversal::ThreeLevelTraversal(const HierarchicalModel& model,
                                         const VideoCatalog& catalog,
                                         const CategoryLevel& categories,
                                         TraversalOptions options,
                                         ThreadPool* pool,
                                         const EventBitmapIndex* index)
    : model_(model),
      categories_(categories),
      trace_(options.trace),
      deadline_(options.deadline),
      cancellation_(options.cancellation),
      traversal_(model, catalog, options, pool, index) {}

std::vector<VideoId> ThreeLevelTraversal::PrunedVideoOrder(
    const TemporalPattern& pattern) const {
  size_t dropped = 0;
  return PrunedVideoOrderInternal(pattern, &dropped);
}

std::vector<VideoId> ThreeLevelTraversal::PrunedVideoOrderInternal(
    const TemporalPattern& pattern, size_t* dropped_videos) const {
  *dropped_videos = 0;
  std::vector<VideoId> order;
  if (pattern.empty() || categories_.num_clusters() == 0) return order;

  // Level-3 Step 2: which clusters contain a first-step event?
  const std::vector<EventId> first_events =
      pattern.steps.front().AllEvents();
  std::vector<int> containing;
  for (size_t c = 0; c < categories_.num_clusters(); ++c) {
    for (EventId e : first_events) {
      if (categories_.ClusterContainsEvent(static_cast<int>(c), e)) {
        containing.push_back(static_cast<int>(c));
        break;
      }
    }
  }
  if (containing.empty()) {
    // Degenerate archive: fall back to the 2-level order over all videos
    // (which polls the deadline itself and may return a prefix).
    std::vector<VideoId> fallback = traversal_.VideoOrder(pattern);
    *dropped_videos = model_.num_videos() - fallback.size();
    return fallback;
  }

  // Deadline/cancellation poll between cluster picks: a fired poll
  // truncates the order at a cluster boundary, and the underlying
  // fan-out degrades over the prefix that survived.
  const auto ordering_expired = [&] {
    if (cancellation_ != nullptr && cancellation_->cancelled()) return true;
    return DeadlineExpired(deadline_);
  };

  // Seed with the highest-Pi3 containing cluster, chain by A3 affinity.
  std::vector<bool> visited(categories_.num_clusters(), false);
  std::vector<int> cluster_order;
  int previous = -1;
  while (cluster_order.size() < containing.size()) {
    if (ordering_expired()) break;
    int best = -1;
    double best_score = -1.0;
    for (int c : containing) {
      if (visited[static_cast<size_t>(c)]) continue;
      const double score =
          previous < 0 ? categories_.pi3()[static_cast<size_t>(c)]
                       : categories_.a3().at(static_cast<size_t>(previous),
                                             static_cast<size_t>(c));
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    if (best < 0) break;
    visited[static_cast<size_t>(best)] = true;
    cluster_order.push_back(best);
    previous = best;
  }

  // Within each cluster, order member videos by the 2-level heuristic:
  // videos containing a first-step event first, then by Pi2. Containment
  // is one OR over the index's per-event video bitsets instead of a B2
  // row scan per sort comparison.
  const EventBitmapIndex& index = traversal_.event_index();
  DenseBitset containing_videos(model_.num_videos());
  for (EventId e : first_events) {
    containing_videos.OrWith(index.VideosWithEvent(e));
  }
  const auto members = categories_.VideosByCluster();
  for (int cluster : cluster_order) {
    if (ordering_expired()) break;
    std::vector<VideoId> videos = members[static_cast<size_t>(cluster)];
    std::stable_sort(videos.begin(), videos.end(), [&](VideoId a, VideoId b) {
      const bool ca = containing_videos.Test(static_cast<size_t>(a));
      const bool cb = containing_videos.Test(static_cast<size_t>(b));
      if (ca != cb) return ca;
      return model_.pi2()[static_cast<size_t>(a)] >
             model_.pi2()[static_cast<size_t>(b)];
    });
    order.insert(order.end(), videos.begin(), videos.end());
  }
  // Whatever an expired poll cut off (whole clusters or the tail of the
  // cluster chain) counts as skipped for the degradation contract; the
  // videos pruned *by design* (non-containing clusters) do not.
  size_t full_size = 0;
  for (int cluster : containing) {
    full_size += members[static_cast<size_t>(cluster)].size();
  }
  *dropped_videos = full_size - order.size();
  return order;
}

StatusOr<std::vector<RetrievedPattern>> ThreeLevelTraversal::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty temporal pattern");
  }
  std::vector<VideoId> order;
  size_t dropped = 0;
  {
    // The category layer's pruned scan is this engine's Step 2.
    ScopedSpan span(trace_, "step2_video_order");
    order = PrunedVideoOrderInternal(pattern, &dropped);
    span.Counter("videos_ordered", order.size());
    if (dropped > 0) span.Counter("videos_skipped", dropped);
  }
  if (dropped == 0) {
    return traversal_.RetrieveWithVideoOrder(pattern, order, stats);
  }
  // The ordering itself was cut short by the deadline/cancellation:
  // surface the same degradation contract as the 2-level Retrieve.
  RetrievalStats local;
  auto results = traversal_.RetrieveWithVideoOrder(pattern, order, &local);
  local.degraded = true;
  local.videos_skipped += dropped;
  if (stats != nullptr) AccumulateRetrievalStats(local, stats);
  return results;
}

}  // namespace hmmm
