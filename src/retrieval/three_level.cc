#include "retrieval/three_level.h"

#include <algorithm>

namespace hmmm {

ThreeLevelTraversal::ThreeLevelTraversal(const HierarchicalModel& model,
                                         const VideoCatalog& catalog,
                                         const CategoryLevel& categories,
                                         TraversalOptions options,
                                         ThreadPool* pool,
                                         const EventBitmapIndex* index)
    : model_(model),
      categories_(categories),
      trace_(options.trace),
      traversal_(model, catalog, options, pool, index) {}

std::vector<VideoId> ThreeLevelTraversal::PrunedVideoOrder(
    const TemporalPattern& pattern) const {
  std::vector<VideoId> order;
  if (pattern.empty() || categories_.num_clusters() == 0) return order;

  // Level-3 Step 2: which clusters contain a first-step event?
  const std::vector<EventId> first_events =
      pattern.steps.front().AllEvents();
  std::vector<int> containing;
  for (size_t c = 0; c < categories_.num_clusters(); ++c) {
    for (EventId e : first_events) {
      if (categories_.ClusterContainsEvent(static_cast<int>(c), e)) {
        containing.push_back(static_cast<int>(c));
        break;
      }
    }
  }
  if (containing.empty()) {
    // Degenerate archive: fall back to the 2-level order over all videos.
    return traversal_.VideoOrder(pattern);
  }

  // Seed with the highest-Pi3 containing cluster, chain by A3 affinity.
  std::vector<bool> visited(categories_.num_clusters(), false);
  std::vector<int> cluster_order;
  int previous = -1;
  while (cluster_order.size() < containing.size()) {
    int best = -1;
    double best_score = -1.0;
    for (int c : containing) {
      if (visited[static_cast<size_t>(c)]) continue;
      const double score =
          previous < 0 ? categories_.pi3()[static_cast<size_t>(c)]
                       : categories_.a3().at(static_cast<size_t>(previous),
                                             static_cast<size_t>(c));
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    if (best < 0) break;
    visited[static_cast<size_t>(best)] = true;
    cluster_order.push_back(best);
    previous = best;
  }

  // Within each cluster, order member videos by the 2-level heuristic:
  // videos containing a first-step event first, then by Pi2. Containment
  // is one OR over the index's per-event video bitsets instead of a B2
  // row scan per sort comparison.
  const EventBitmapIndex& index = traversal_.event_index();
  DenseBitset containing_videos(model_.num_videos());
  for (EventId e : first_events) {
    containing_videos.OrWith(index.VideosWithEvent(e));
  }
  const auto members = categories_.VideosByCluster();
  for (int cluster : cluster_order) {
    std::vector<VideoId> videos = members[static_cast<size_t>(cluster)];
    std::stable_sort(videos.begin(), videos.end(), [&](VideoId a, VideoId b) {
      const bool ca = containing_videos.Test(static_cast<size_t>(a));
      const bool cb = containing_videos.Test(static_cast<size_t>(b));
      if (ca != cb) return ca;
      return model_.pi2()[static_cast<size_t>(a)] >
             model_.pi2()[static_cast<size_t>(b)];
    });
    order.insert(order.end(), videos.begin(), videos.end());
  }
  return order;
}

StatusOr<std::vector<RetrievedPattern>> ThreeLevelTraversal::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty temporal pattern");
  }
  std::vector<VideoId> order;
  {
    // The category layer's pruned scan is this engine's Step 2.
    ScopedSpan span(trace_, "step2_video_order");
    order = PrunedVideoOrder(pattern);
    span.Counter("videos_ordered", order.size());
  }
  return traversal_.RetrieveWithVideoOrder(pattern, order, stats);
}

}  // namespace hmmm
