#include "retrieval/engine.h"

#include <chrono>
#include <mutex>

namespace hmmm {

struct RetrievalEngine::IndexCache {
  std::mutex mutex;
  std::shared_ptr<const EventBitmapIndex> index;
};

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StatusOr<RetrievalEngine> RetrievalEngine::Create(
    const VideoCatalog& catalog, ModelBuilderOptions builder_options,
    TraversalOptions traversal_options, size_t query_cache_entries) {
  ModelBuilder builder(catalog, builder_options);
  HMMM_ASSIGN_OR_RETURN(HierarchicalModel model, builder.Build());
  return RetrievalEngine(catalog, std::move(model), traversal_options,
                         query_cache_entries);
}

RetrievalEngine::RetrievalEngine(const VideoCatalog& catalog,
                                 HierarchicalModel model,
                                 TraversalOptions traversal_options,
                                 size_t query_cache_entries)
    : catalog_(&catalog),
      model_(std::make_unique<HierarchicalModel>(std::move(model))),
      traversal_options_(traversal_options),
      pool_(MakeThreadPool(traversal_options_.num_threads)),
      index_cache_(std::make_unique<IndexCache>()),
      metrics_(std::make_unique<MetricsRegistry>()) {
  queries_total_ = metrics_->GetCounter(
      "hmmm_queries_total", "retrievals answered, cache hits included");
  query_errors_total_ = metrics_->GetCounter(
      "hmmm_query_errors_total", "retrievals that returned a non-OK status");
  query_latency_ms_ =
      metrics_->GetHistogram("hmmm_query_latency_ms", DefaultLatencyBucketsMs(),
                             "end-to-end Retrieve() wall time");
  if (query_cache_entries > 0) {
    cache_ = std::make_unique<QueryCache>(query_cache_entries);
    cache_->AttachMetrics(metrics_.get(), "hmmm_query_cache_");
  }
}

RetrievalEngine::RetrievalEngine(RetrievalEngine&&) noexcept = default;
RetrievalEngine& RetrievalEngine::operator=(RetrievalEngine&&) noexcept =
    default;
RetrievalEngine::~RetrievalEngine() = default;

void RetrievalEngine::set_traversal_options(const TraversalOptions& options) {
  const int previous_threads = traversal_options_.num_threads;
  traversal_options_ = options;
  if (options.num_threads != previous_threads) {
    pool_ = MakeThreadPool(options.num_threads);
  }
  // Any option can change the ranking (beam, gap handling, max_results),
  // so cached results are no longer answers to the same question.
  if (cache_ != nullptr) cache_->Clear();
}

QueryCacheStats RetrievalEngine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : QueryCacheStats{};
}

std::shared_ptr<const EventBitmapIndex> RetrievalEngine::SharedEventIndex()
    const {
  std::lock_guard<std::mutex> lock(index_cache_->mutex);
  if (index_cache_->index == nullptr ||
      !index_cache_->index->FreshFor(*model_)) {
    index_cache_->index =
        std::make_shared<EventBitmapIndex>(*model_, *catalog_);
  }
  return index_cache_->index;
}

StatusOr<std::vector<RetrievedPattern>> RetrievalEngine::Query(
    const std::string& text, RetrievalStats* stats) const {
  HMMM_ASSIGN_OR_RETURN(TemporalPattern pattern,
                        CompileQuery(text, catalog_->vocabulary()));
  return Retrieve(pattern, stats);
}

StatusOr<std::vector<RetrievedPattern>> RetrievalEngine::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  queries_total_->Increment();
  if (cache_ != nullptr) {
    const std::string key = PatternSignature(pattern);
    std::vector<RetrievedPattern> cached;
    // A hit replays the recorded traversal stats into `stats`, so stats
    // consumers no longer force a bypass.
    if (cache_->Lookup(key, model_->version(), &cached, stats)) {
      query_latency_ms_->Observe(ElapsedMs(start));
      return cached;
    }
    const std::shared_ptr<const EventBitmapIndex> index = SharedEventIndex();
    HmmmTraversal traversal(*model_, *catalog_, traversal_options_,
                            pool_.get(), index.get());
    RetrievalStats computed;
    auto results = traversal.Retrieve(pattern, &computed);
    if (results.ok()) {
      cache_->Insert(key, model_->version(), results.value(), computed);
    } else {
      query_errors_total_->Increment();
    }
    if (stats != nullptr) AccumulateRetrievalStats(computed, stats);
    query_latency_ms_->Observe(ElapsedMs(start));
    return results;
  }
  const std::shared_ptr<const EventBitmapIndex> index = SharedEventIndex();
  HmmmTraversal traversal(*model_, *catalog_, traversal_options_, pool_.get(),
                          index.get());
  auto results = traversal.Retrieve(pattern, stats);
  if (!results.ok()) query_errors_total_->Increment();
  query_latency_ms_->Observe(ElapsedMs(start));
  return results;
}

void RetrievalEngine::RefreshResourceGauges() const {
  metrics_->GetGauge("hmmm_model_version", "model version counter; bumps on feedback training")
      ->Set(static_cast<double>(model_->version()));
  const ThreadPoolStats pool =
      pool_ != nullptr ? pool_->stats() : ThreadPoolStats{};
  metrics_->GetGauge("hmmm_pool_workers", "worker threads in the fan-out pool")
      ->Set(static_cast<double>(pool.workers));
  metrics_->GetGauge("hmmm_pool_queue_depth", "tasks currently queued")
      ->Set(static_cast<double>(pool.queue_depth));
  metrics_
      ->GetGauge("hmmm_pool_tasks_executed",
                 "tasks completed since pool construction")
      ->Set(static_cast<double>(pool.tasks_executed));
  metrics_
      ->GetGauge("hmmm_pool_busy_ms",
                 "summed wall time workers spent inside tasks")
      ->Set(pool.busy_ms);
}

std::string RetrievalEngine::DumpMetricsPrometheus() const {
  RefreshResourceGauges();
  return metrics_->RenderPrometheus();
}

std::string RetrievalEngine::DumpMetricsJson() const {
  RefreshResourceGauges();
  return metrics_->RenderJson();
}

}  // namespace hmmm
