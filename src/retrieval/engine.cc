#include "retrieval/engine.h"

namespace hmmm {

StatusOr<RetrievalEngine> RetrievalEngine::Create(
    const VideoCatalog& catalog, ModelBuilderOptions builder_options,
    TraversalOptions traversal_options) {
  ModelBuilder builder(catalog, builder_options);
  HMMM_ASSIGN_OR_RETURN(HierarchicalModel model, builder.Build());
  return RetrievalEngine(catalog, std::move(model), traversal_options);
}

RetrievalEngine::RetrievalEngine(const VideoCatalog& catalog,
                                 HierarchicalModel model,
                                 TraversalOptions traversal_options)
    : catalog_(&catalog),
      model_(std::make_unique<HierarchicalModel>(std::move(model))),
      traversal_options_(traversal_options) {}

StatusOr<std::vector<RetrievedPattern>> RetrievalEngine::Query(
    const std::string& text, RetrievalStats* stats) const {
  HMMM_ASSIGN_OR_RETURN(TemporalPattern pattern,
                        CompileQuery(text, catalog_->vocabulary()));
  return Retrieve(pattern, stats);
}

StatusOr<std::vector<RetrievedPattern>> RetrievalEngine::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  HmmmTraversal traversal(*model_, *catalog_, traversal_options_);
  return traversal.Retrieve(pattern, stats);
}

}  // namespace hmmm
