#include "retrieval/engine.h"

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/fault_injector.h"

namespace hmmm {

struct RetrievalEngine::IndexCache {
  std::mutex mutex;
  std::shared_ptr<const EventBitmapIndex> index;
};

struct RetrievalEngine::Admission {
  mutable std::mutex mutex;
  std::condition_variable slot_freed;
  AdmissionOptions options;
  int in_flight = 0;
  int queued = 0;
};

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StatusOr<RetrievalEngine> RetrievalEngine::Create(
    const VideoCatalog& catalog, ModelBuilderOptions builder_options,
    TraversalOptions traversal_options, size_t query_cache_entries) {
  ModelBuilder builder(catalog, builder_options);
  HMMM_ASSIGN_OR_RETURN(HierarchicalModel model, builder.Build());
  return RetrievalEngine(catalog, std::move(model), traversal_options,
                         query_cache_entries);
}

RetrievalEngine::RetrievalEngine(const VideoCatalog& catalog,
                                 HierarchicalModel model,
                                 TraversalOptions traversal_options,
                                 size_t query_cache_entries)
    : catalog_(&catalog),
      model_(std::make_unique<HierarchicalModel>(std::move(model))),
      traversal_options_(traversal_options),
      pool_(MakeThreadPool(traversal_options_.num_threads)),
      index_cache_(std::make_unique<IndexCache>()),
      admission_(std::make_unique<Admission>()),
      metrics_(std::make_unique<MetricsRegistry>()) {
  queries_total_ = metrics_->GetCounter(
      "hmmm_queries_total", "retrievals answered, cache hits included");
  query_errors_total_ = metrics_->GetCounter(
      "hmmm_query_errors_total", "retrievals that returned a non-OK status");
  queries_degraded_total_ = metrics_->GetCounter(
      "hmmm_queries_degraded_total",
      "retrievals that returned an anytime prefix result after a "
      "deadline or cancellation fired");
  admission_rejected_total_ = metrics_->GetCounter(
      "hmmm_admission_rejected_total",
      "retrievals shed by admission control (kResourceExhausted)");
  query_latency_ms_ =
      metrics_->GetHistogram("hmmm_query_latency_ms", DefaultLatencyBucketsMs(),
                             "end-to-end Retrieve() wall time");
  if (query_cache_entries > 0) {
    cache_ = std::make_unique<QueryCache>(query_cache_entries);
    cache_->AttachMetrics(metrics_.get(), "hmmm_query_cache_");
  }
}

RetrievalEngine::RetrievalEngine(RetrievalEngine&&) noexcept = default;
RetrievalEngine& RetrievalEngine::operator=(RetrievalEngine&&) noexcept =
    default;
RetrievalEngine::~RetrievalEngine() = default;

void RetrievalEngine::set_traversal_options(const TraversalOptions& options) {
  const int previous_threads = traversal_options_.num_threads;
  traversal_options_ = options;
  if (options.num_threads != previous_threads) {
    pool_ = MakeThreadPool(options.num_threads);
  }
  // Any option can change the ranking (beam, gap handling, max_results),
  // so cached results are no longer answers to the same question.
  if (cache_ != nullptr) cache_->Clear();
}

void RetrievalEngine::set_admission_options(const AdmissionOptions& options) {
  std::lock_guard<std::mutex> lock(admission_->mutex);
  admission_->options = options;
  // Parked waiters re-check against the new bounds.
  admission_->slot_freed.notify_all();
}

AdmissionOptions RetrievalEngine::admission_options() const {
  std::lock_guard<std::mutex> lock(admission_->mutex);
  return admission_->options;
}

Status RetrievalEngine::AcquireSlot() const {
  Admission& admission = *admission_;
  std::unique_lock<std::mutex> lock(admission.mutex);
  const auto admitted = [&admission] {
    return admission.options.max_concurrent <= 0 ||
           admission.in_flight < admission.options.max_concurrent;
  };
  if (!admitted()) {
    if (admission.queued >= admission.options.max_queued) {
      // Saturated and the bounded wait queue is full: shed immediately
      // rather than letting latency pile up behind a burst.
      admission_rejected_total_->Increment();
      return Status::ResourceExhausted(
          "retrieval admission queue full (load shed)");
    }
    ++admission.queued;
    const bool got_slot = admission.slot_freed.wait_for(
        lock, admission.options.max_queue_wait, admitted);
    --admission.queued;
    if (!got_slot) {
      admission_rejected_total_->Increment();
      return Status::ResourceExhausted(
          "timed out waiting for a retrieval slot");
    }
  }
  ++admission.in_flight;
  return Status::OK();
}

void RetrievalEngine::ReleaseSlot() const {
  std::lock_guard<std::mutex> lock(admission_->mutex);
  --admission_->in_flight;
  admission_->slot_freed.notify_one();
}

QueryCacheStats RetrievalEngine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : QueryCacheStats{};
}

std::shared_ptr<const EventBitmapIndex> RetrievalEngine::SharedEventIndex()
    const {
  std::lock_guard<std::mutex> lock(index_cache_->mutex);
  if (index_cache_->index == nullptr ||
      !index_cache_->index->FreshFor(*model_)) {
    index_cache_->index =
        std::make_shared<EventBitmapIndex>(*model_, *catalog_);
  }
  return index_cache_->index;
}

StatusOr<std::vector<RetrievedPattern>> RetrievalEngine::Query(
    const std::string& text, RetrievalStats* stats) const {
  HMMM_ASSIGN_OR_RETURN(TemporalPattern pattern,
                        CompileQuery(text, catalog_->vocabulary()));
  return Retrieve(pattern, stats);
}

StatusOr<std::vector<RetrievedPattern>> RetrievalEngine::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  // Admission before anything else: a shed query must be near-free. Only
  // admitted queries count toward hmmm_queries_total.
  HMMM_RETURN_IF_ERROR(AcquireSlot());
  // Local class so it inherits this function's access to ReleaseSlot;
  // pairs the slot with every exit path below.
  struct SlotGuard {
    const RetrievalEngine* engine;
    ~SlotGuard() { engine->ReleaseSlot(); }
  } slot_guard{this};
  queries_total_->Increment();

  const auto run_traversal = [&](RetrievalStats* computed) {
    const std::shared_ptr<const EventBitmapIndex> index = SharedEventIndex();
    HmmmTraversal traversal(*model_, *catalog_, traversal_options_,
                            pool_.get(), index.get());
    return traversal.Retrieve(pattern, computed);
  };

  if (cache_ != nullptr) {
    const std::string key = PatternSignature(pattern);
    std::vector<RetrievedPattern> cached;
    // A hit replays the recorded traversal stats into `stats`, so stats
    // consumers no longer force a bypass. A miss makes this call the
    // single-flight compute leader for `key`: identical concurrent
    // queries park inside LookupOrCompute instead of re-traversing.
    if (cache_->LookupOrCompute(key, model_->version(), &cached, stats) ==
        QueryCache::LookupOutcome::kHit) {
      query_latency_ms_->Observe(ElapsedMs(start));
      return cached;
    }
    // The leader obligation must end on every exit so waiters wake even
    // when the traversal fails or the result is uncacheable.
    struct ComputeGuard {
      QueryCache* cache;
      const std::string& key;
      ~ComputeGuard() { cache->FinishCompute(key); }
    } compute_guard{cache_.get(), key};
    RetrievalStats computed;
    auto results = run_traversal(&computed);
    if (!results.ok()) {
      query_errors_total_->Increment();
    } else if (computed.degraded) {
      // An anytime result answers *this* caller but is never cached:
      // the next uncontended asker deserves the full ranking.
      queries_degraded_total_->Increment();
    } else {
      cache_->Insert(key, model_->version(), results.value(), computed);
    }
    if (stats != nullptr) AccumulateRetrievalStats(computed, stats);
    query_latency_ms_->Observe(ElapsedMs(start));
    return results;
  }
  RetrievalStats computed;
  auto results = run_traversal(&computed);
  if (!results.ok()) query_errors_total_->Increment();
  if (results.ok() && computed.degraded) queries_degraded_total_->Increment();
  if (stats != nullptr) AccumulateRetrievalStats(computed, stats);
  query_latency_ms_->Observe(ElapsedMs(start));
  return results;
}

void RetrievalEngine::RefreshResourceGauges() const {
  metrics_->GetGauge("hmmm_model_version", "model version counter; bumps on feedback training")
      ->Set(static_cast<double>(model_->version()));
  const ThreadPoolStats pool =
      pool_ != nullptr ? pool_->stats() : ThreadPoolStats{};
  metrics_->GetGauge("hmmm_pool_workers", "worker threads in the fan-out pool")
      ->Set(static_cast<double>(pool.workers));
  metrics_->GetGauge("hmmm_pool_queue_depth", "tasks currently queued")
      ->Set(static_cast<double>(pool.queue_depth));
  metrics_
      ->GetGauge("hmmm_pool_tasks_executed",
                 "tasks completed since pool construction")
      ->Set(static_cast<double>(pool.tasks_executed));
  metrics_
      ->GetGauge("hmmm_pool_busy_ms",
                 "summed wall time workers spent inside tasks")
      ->Set(pool.busy_ms);
  metrics_
      ->GetGauge("hmmm_pool_task_exceptions",
                 "pool tasks that terminated with an uncaught exception")
      ->Set(static_cast<double>(pool.task_exceptions));
  {
    std::lock_guard<std::mutex> lock(admission_->mutex);
    metrics_
        ->GetGauge("hmmm_queries_in_flight",
                   "retrievals currently admitted and running")
        ->Set(static_cast<double>(admission_->in_flight));
  }
  // Armed fault points (empty outside fault-injection runs) surface as
  // gauges so a chaos run's metrics dump records what was injected.
  for (const FaultPointStats& point : FaultInjector::Instance().Snapshot()) {
    std::string name = point.point;
    for (char& c : name) {
      if (c == '.') c = '_';
    }
    metrics_
        ->GetGauge("hmmm_fault_" + name + "_hits",
                   "times this fault point was evaluated")
        ->Set(static_cast<double>(point.hits));
    metrics_
        ->GetGauge("hmmm_fault_" + name + "_fires",
                   "times this fault point injected a failure")
        ->Set(static_cast<double>(point.fires));
  }
}

std::string RetrievalEngine::DumpMetricsPrometheus() const {
  RefreshResourceGauges();
  return metrics_->RenderPrometheus();
}

std::string RetrievalEngine::DumpMetricsJson() const {
  RefreshResourceGauges();
  return metrics_->RenderJson();
}

}  // namespace hmmm
