#include "retrieval/engine.h"

namespace hmmm {

StatusOr<RetrievalEngine> RetrievalEngine::Create(
    const VideoCatalog& catalog, ModelBuilderOptions builder_options,
    TraversalOptions traversal_options, size_t query_cache_entries) {
  ModelBuilder builder(catalog, builder_options);
  HMMM_ASSIGN_OR_RETURN(HierarchicalModel model, builder.Build());
  return RetrievalEngine(catalog, std::move(model), traversal_options,
                         query_cache_entries);
}

RetrievalEngine::RetrievalEngine(const VideoCatalog& catalog,
                                 HierarchicalModel model,
                                 TraversalOptions traversal_options,
                                 size_t query_cache_entries)
    : catalog_(&catalog),
      model_(std::make_unique<HierarchicalModel>(std::move(model))),
      traversal_options_(traversal_options),
      pool_(MakeThreadPool(traversal_options_.num_threads)) {
  if (query_cache_entries > 0) {
    cache_ = std::make_unique<QueryCache>(query_cache_entries);
  }
}

void RetrievalEngine::set_traversal_options(const TraversalOptions& options) {
  const int previous_threads = traversal_options_.num_threads;
  traversal_options_ = options;
  if (options.num_threads != previous_threads) {
    pool_ = MakeThreadPool(options.num_threads);
  }
  // Any option can change the ranking (beam, gap handling, max_results),
  // so cached results are no longer answers to the same question.
  if (cache_ != nullptr) cache_->Clear();
}

QueryCacheStats RetrievalEngine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : QueryCacheStats{};
}

StatusOr<std::vector<RetrievedPattern>> RetrievalEngine::Query(
    const std::string& text, RetrievalStats* stats) const {
  HMMM_ASSIGN_OR_RETURN(TemporalPattern pattern,
                        CompileQuery(text, catalog_->vocabulary()));
  return Retrieve(pattern, stats);
}

StatusOr<std::vector<RetrievedPattern>> RetrievalEngine::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  // Callers asking for cost accounting need the traversal to actually
  // run, so the cache only serves stat-less retrievals.
  const bool use_cache = cache_ != nullptr && stats == nullptr;
  std::string key;
  if (use_cache) {
    key = PatternSignature(pattern);
    std::vector<RetrievedPattern> cached;
    if (cache_->Lookup(key, model_->version(), &cached)) return cached;
  }
  HmmmTraversal traversal(*model_, *catalog_, traversal_options_, pool_.get());
  auto results = traversal.Retrieve(pattern, stats);
  if (use_cache && results.ok()) {
    cache_->Insert(key, model_->version(), results.value());
  }
  return results;
}

}  // namespace hmmm
