#include "retrieval/result.h"

#include "common/strings.h"

namespace hmmm {

void AccumulateRetrievalStats(const RetrievalStats& from, RetrievalStats* to) {
  to->videos_considered += from.videos_considered;
  to->states_visited += from.states_visited;
  to->sim_evaluations += from.sim_evaluations;
  to->candidates_scored += from.candidates_scored;
  to->beam_pruned += from.beam_pruned;
  to->annotated_fallbacks += from.annotated_fallbacks;
  to->sim_memo_hits += from.sim_memo_hits;
  to->candidate_list_reuse += from.candidate_list_reuse;
  to->heap_pops += from.heap_pops;
  to->grid_cells_skipped += from.grid_cells_skipped;
  to->truncated = to->truncated || from.truncated;
  to->degraded = to->degraded || from.degraded;
  to->videos_skipped += from.videos_skipped;
}

std::string RetrievedPattern::ToString(const VideoCatalog& catalog) const {
  std::string shot_list;
  for (size_t i = 0; i < shots.size(); ++i) {
    if (i > 0) shot_list += " ";
    const ShotRecord& shot = catalog.shot(shots[i]);
    shot_list += StrFormat("%s/s%d", catalog.video(shot.video_id).name.c_str(),
                           shot.index_in_video);
    if (!shot.events.empty()) {
      shot_list += "(";
      for (size_t e = 0; e < shot.events.size(); ++e) {
        if (e > 0) shot_list += ",";
        shot_list += catalog.vocabulary().Name(shot.events[e]);
      }
      shot_list += ")";
    }
  }
  return StrFormat("[%s] score=%.6g%s", shot_list.c_str(), score,
                   crosses_videos ? " (cross-video)" : "");
}

}  // namespace hmmm
