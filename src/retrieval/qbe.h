#ifndef HMMM_RETRIEVAL_QBE_H_
#define HMMM_RETRIEVAL_QBE_H_

#include <vector>

#include "core/hierarchical_model.h"
#include "retrieval/eq14_kernel.h"
#include "retrieval/scorer.h"

namespace hmmm {

/// A query-by-example result: one shot with its similarity to the query
/// sample.
struct QbeResult {
  ShotId shot = -1;
  double similarity = 0.0;
};

/// Options for query-by-example retrieval.
struct QbeOptions {
  int max_results = 20;
  /// Restrict to these features (the paper's "K non-zero features of the
  /// query sample", 1 <= K <= 20); empty = all.
  std::vector<int> feature_subset;
  /// Weight features with this event's learned P12 row; -1 = uniform.
  EventId weight_event = -1;
  /// Guard for near-zero query feature values in the Eq.-14 denominator.
  double epsilon = 1e-3;
};

/// Query-by-example over the HMMM shot states: ranks annotated shots by
/// the Eq.-14 similarity between their B1 rows and a raw example feature
/// vector (normalized with the model's stored Eq.-3 parameters). This is
/// the content-based retrieval mode of the authors' earlier MMM work
/// ([15]) exposed through the same model — useful when the user has an
/// example shot instead of an event pattern.
class QbeMatcher {
 public:
  /// Model must outlive the matcher.
  explicit QbeMatcher(const HierarchicalModel& model, QbeOptions options = {});

  /// Ranks states against a *raw* (un-normalized) example feature vector.
  StatusOr<std::vector<QbeResult>> Retrieve(
      const std::vector<double>& raw_example) const;

  /// Ranks states against an existing state's features ("more like this
  /// shot"); the probe itself is excluded from the results.
  StatusOr<std::vector<QbeResult>> RetrieveSimilarTo(ShotId shot) const;

 private:
  std::vector<QbeResult> RankAgainst(const std::vector<double>& normalized,
                                     int exclude_state) const;

  const HierarchicalModel& model_;
  QbeOptions options_;
  std::vector<int> features_;
  // Per-feature Eq.-14 weights resolved once: the weight event's P12 row
  // or uniform 1/K. Full-width so both the dense row kernel and the
  // indexed subset kernel can index it by feature id.
  std::vector<double> weights_;
  Eq14Kernel kernel_ = Eq14Kernel::kScalar;  // resolved at construction
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_QBE_H_
