#include "retrieval/scorer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hmmm {

SimilarityScorer::SimilarityScorer(const HierarchicalModel& model,
                                   ScorerOptions options)
    : model_(model), options_(std::move(options)) {
  if (options_.feature_subset.empty()) {
    features_.resize(static_cast<size_t>(model_.num_features()));
    for (size_t i = 0; i < features_.size(); ++i) {
      features_[i] = static_cast<int>(i);
    }
    dense_ = true;
  } else {
    features_ = options_.feature_subset;
    for (int f : features_) {
      HMMM_CHECK(f >= 0 && f < model_.num_features());
    }
    dense_ = false;
  }
  kernel_ = options_.force_scalar_kernel ? Eq14Kernel::kScalar
                                         : DefaultEq14Kernel();
}

double SimilarityScorer::EventSimilarity(int global_state,
                                         EventId event) const {
  ++evaluations_;
  const auto state = static_cast<size_t>(global_state);
  const auto e = static_cast<size_t>(event);
  // Row pointers hoist the three per-row offset computations (and their
  // bounds logic) out of the kernel; the kernel's canonical association
  // order keeps the score independent of which implementation runs.
  const double* b1_row = model_.b1().RowPtr(state);
  const double* centroid_row = model_.b1_prime().RowPtr(e);
  const double* p12_row = model_.p12().RowPtr(e);
  if (dense_) {
    return Eq14Row(kernel_, b1_row, centroid_row, p12_row, features_.size(),
                   options_.centroid_epsilon);
  }
  return Eq14RowIndexed(b1_row, centroid_row, p12_row, features_.data(),
                        features_.size(), options_.centroid_epsilon);
}

double SimilarityScorer::StepSimilarity(int global_state,
                                        const PatternStep& step) const {
  double best = 0.0;
  bool first = true;
  for (const auto& alternative : step.alternatives) {
    if (alternative.empty()) continue;
    double sum = 0.0;
    for (EventId e : alternative) sum += EventSimilarity(global_state, e);
    const double mean = sum / static_cast<double>(alternative.size());
    if (first || mean > best) {
      best = mean;
      first = false;
    }
  }
  return first ? 0.0 : best;
}

}  // namespace hmmm
