#include "retrieval/scorer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hmmm {

SimilarityScorer::SimilarityScorer(const HierarchicalModel& model,
                                   ScorerOptions options)
    : model_(model), options_(std::move(options)) {
  if (options_.feature_subset.empty()) {
    features_.resize(static_cast<size_t>(model_.num_features()));
    for (size_t i = 0; i < features_.size(); ++i) {
      features_[i] = static_cast<int>(i);
    }
  } else {
    features_ = options_.feature_subset;
    for (int f : features_) {
      HMMM_CHECK(f >= 0 && f < model_.num_features());
    }
  }
}

double SimilarityScorer::EventSimilarity(int global_state,
                                         EventId event) const {
  ++evaluations_;
  const auto state = static_cast<size_t>(global_state);
  const auto e = static_cast<size_t>(event);
  // Row pointers hoist the three per-row offset computations (and their
  // bounds logic) out of the feature loop; the arithmetic itself is
  // unchanged, so scores stay bit-identical.
  const double* b1_row = model_.b1().RowPtr(state);
  const double* centroid_row = model_.b1_prime().RowPtr(e);
  const double* p12_row = model_.p12().RowPtr(e);
  double sim = 0.0;
  for (int f : features_) {
    const auto fy = static_cast<size_t>(f);
    const double centroid =
        std::max(centroid_row[fy], options_.centroid_epsilon);
    const double diff = std::abs(b1_row[fy] - centroid_row[fy]);
    sim += p12_row[fy] * (1.0 - diff) / centroid;
  }
  return sim;
}

double SimilarityScorer::StepSimilarity(int global_state,
                                        const PatternStep& step) const {
  double best = 0.0;
  bool first = true;
  for (const auto& alternative : step.alternatives) {
    if (alternative.empty()) continue;
    double sum = 0.0;
    for (EventId e : alternative) sum += EventSimilarity(global_state, e);
    const double mean = sum / static_cast<double>(alternative.size());
    if (first || mean > best) {
      best = mean;
      first = false;
    }
  }
  return first ? 0.0 : best;
}

}  // namespace hmmm
