#include "retrieval/scorer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hmmm {

SimilarityScorer::SimilarityScorer(const HierarchicalModel& model,
                                   ScorerOptions options)
    : model_(model), options_(std::move(options)) {
  if (options_.feature_subset.empty()) {
    features_.resize(static_cast<size_t>(model_.num_features()));
    for (size_t i = 0; i < features_.size(); ++i) {
      features_[i] = static_cast<int>(i);
    }
  } else {
    features_ = options_.feature_subset;
    for (int f : features_) {
      HMMM_CHECK(f >= 0 && f < model_.num_features());
    }
  }
}

double SimilarityScorer::EventSimilarity(int global_state,
                                         EventId event) const {
  ++evaluations_;
  const auto state = static_cast<size_t>(global_state);
  const auto e = static_cast<size_t>(event);
  double sim = 0.0;
  for (int f : features_) {
    const auto fy = static_cast<size_t>(f);
    const double centroid =
        std::max(model_.b1_prime().at(e, fy), options_.centroid_epsilon);
    const double diff =
        std::abs(model_.b1().at(state, fy) - model_.b1_prime().at(e, fy));
    sim += model_.p12().at(e, fy) * (1.0 - diff) / centroid;
  }
  return sim;
}

double SimilarityScorer::StepSimilarity(int global_state,
                                        const PatternStep& step) const {
  double best = 0.0;
  bool first = true;
  for (const auto& alternative : step.alternatives) {
    if (alternative.empty()) continue;
    double sum = 0.0;
    for (EventId e : alternative) sum += EventSimilarity(global_state, e);
    const double mean = sum / static_cast<double>(alternative.size());
    if (first || mean > best) {
      best = mean;
      first = false;
    }
  }
  return first ? 0.0 : best;
}

}  // namespace hmmm
