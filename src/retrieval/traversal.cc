#include "retrieval/traversal.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>
#include <utility>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/strings.h"
#include "retrieval/topk.h"

namespace hmmm {
namespace {

/// One candidate tagged with its video's position in the Step-2 visiting
/// order, the tie-break that makes the parallel merge reproduce the
/// serial stable sort exactly.
struct VideoCandidate {
  RetrievedPattern pattern;
  size_t order_index = 0;
};

/// Strict total order: higher SS first, then earlier visiting position.
/// Total because order_index is unique per candidate.
struct BetterCandidate {
  bool operator()(const VideoCandidate& a, const VideoCandidate& b) const {
    if (a.pattern.score != b.pattern.score) {
      return a.pattern.score > b.pattern.score;
    }
    return a.order_index < b.order_index;
  }
};

/// Bounded best-K accumulator for the per-shard Step 7-9 merge
/// (retrieval/topk.h for the heap mechanics).
using CandidateHeap = TopKHeap<VideoCandidate, BetterCandidate>;

/// Dynamic-scheduling chunk size for the per-video fan-out: one video per
/// claim balances well (per-video lattice cost varies with annotation
/// density) and the claim is a single relaxed fetch_add.
constexpr size_t kParallelGrain = 1;

/// Step-2 ordering polls the deadline/token once per this many picks —
/// the affinity-chaining loop is quadratic in the containing-video count,
/// so an unbounded ordering pass could otherwise blow the whole budget
/// before Step 7 even starts.
constexpr size_t kOrderPollInterval = 32;

void AccumulateStats(const RetrievalStats& shard, RetrievalStats* stats) {
  stats->videos_considered += shard.videos_considered;
  stats->states_visited += shard.states_visited;
  stats->candidates_scored += shard.candidates_scored;
  stats->beam_pruned += shard.beam_pruned;
  stats->annotated_fallbacks += shard.annotated_fallbacks;
  stats->sim_memo_hits += shard.sim_memo_hits;
  stats->candidate_list_reuse += shard.candidate_list_reuse;
  stats->heap_pops += shard.heap_pops;
  stats->grid_cells_skipped += shard.grid_cells_skipped;
  stats->truncated = stats->truncated || shard.truncated;
}

}  // namespace

/// Shared cancellation state for one retrieval. The Step-7 claim indices
/// are handed out by a monotonic fetch_add, so the set of fully walked
/// videos can be pinned to an *order prefix* with a single atomic: any
/// worker that observes expiry (at claim time or mid-walk on index i)
/// CAS-lowers `cutoff` to i and abandons the video, and workers skip any
/// claim at or beyond the current cutoff. Every index below the final
/// cutoff was claimed earlier than the cut point and completed (an
/// expired walk would have lowered the cutoff below itself), so merging
/// only candidates/stats with order_index < cutoff yields exactly the
/// retrieval restricted to order[0, cutoff) — deterministic for a fixed
/// cutoff regardless of thread count or claim interleaving.
struct HmmmTraversal::CancelScope {
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  const CancellationToken* token = nullptr;
  std::atomic<size_t> cutoff{std::numeric_limits<size_t>::max()};

  bool Expired() const {
    if (token != nullptr && token->cancelled()) return true;
    return DeadlineExpired(deadline);
  }

  /// Lowers the cutoff to `index` (never raises it).
  void CutAt(size_t index) {
    size_t current = cutoff.load(std::memory_order_relaxed);
    while (index < current &&
           !cutoff.compare_exchange_weak(current, index,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    }
  }
};

HmmmTraversal::HmmmTraversal(const HierarchicalModel& model,
                             const VideoCatalog& catalog,
                             TraversalOptions options, ThreadPool* pool,
                             const EventBitmapIndex* index)
    : model_(model),
      catalog_(catalog),
      options_(std::move(options)),
      pool_(pool),
      external_index_(index) {
  HMMM_CHECK(options_.beam_width >= 1);
  HMMM_CHECK(options_.max_results >= 1);
  if (pool_ == nullptr && options_.num_threads != 1) {
    owned_pool_ = MakeThreadPool(options_.num_threads);
    pool_ = owned_pool_.get();
  }
  if (external_index_ != nullptr) {
    HMMM_CHECK(external_index_->FreshFor(model_));
  }
}

const EventBitmapIndex& HmmmTraversal::CurrentIndex() const {
  if (external_index_ != nullptr) return *external_index_;
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (owned_index_ == nullptr || !owned_index_->FreshFor(model_)) {
    owned_index_ = std::make_unique<EventBitmapIndex>(model_, catalog_);
  }
  return *owned_index_;
}

void HmmmTraversal::CandidateStates(QueryPlan& plan, VideoId video, int first,
                                    int last, size_t step_index,
                                    RetrievalStats* stats,
                                    std::vector<int>* out) const {
  const LocalShotModel& local = model_.local(video);
  const int n = std::min(static_cast<int>(local.num_states()), last + 1);
  if (first >= n) return;
  if (options_.annotated_first) {
    // Step 3: prefer shots annotated as e_j; the plan's per-(video, step)
    // list is computed once per walk from the event bitsets and sliced
    // per beam path.
    const std::vector<int>& annotated = plan.AnnotatedStates(video, step_index);
    const auto begin =
        std::lower_bound(annotated.begin(), annotated.end(), first);
    const auto end = std::lower_bound(begin, annotated.end(), n);
    if (begin != end) {
      out->insert(out->end(), begin, end);
      return;
    }
    // Fall back to "similar" shots: every state in range.
    if (stats != nullptr) ++stats->annotated_fallbacks;
  }
  for (int t = first; t < n; ++t) out->push_back(t);
}

std::vector<VideoId> HmmmTraversal::VideoOrder(
    const TemporalPattern& pattern) const {
  const size_t m = model_.num_videos();
  std::vector<VideoId> order;
  if (m == 0 || pattern.empty()) return order;

  std::vector<bool> visited(m, false);
  std::vector<VideoId> containing;
  // Step 2: matrix B2 containment of an anticipated first-step event,
  // answered by the model-tier bitsets.
  const DenseBitset step_videos =
      CurrentIndex().VideosContainingStep(pattern.steps.front());
  step_videos.ForEachSetBit(
      [&](size_t v) { containing.push_back(static_cast<VideoId>(v)); });
  // Deadline/cancellation poll for the ordering pass. The chaining below
  // is quadratic in |containing|, so it checks once per
  // kOrderPollInterval picks; a fired poll truncates the order, which
  // stays a prefix of the full one because every pick is a deterministic
  // function of the picks before it.
  const bool poll_expiry = options_.deadline != kNoDeadline ||
                           options_.cancellation != nullptr ||
                           HMMM_FAULT_ARMED_PREFIX("traversal.");
  const auto ordering_expired = [&](size_t picked) {
    if (!poll_expiry) return false;
    if (HMMM_FAULT_FIRED_ARG("traversal.order_pick",
                             static_cast<int64_t>(picked))) {
      return true;
    }
    if (options_.cancellation != nullptr &&
        options_.cancellation->cancelled()) {
      return true;
    }
    return DeadlineExpired(options_.deadline);
  };
  // Seed with the highest-Pi2 containing video, then chain by A2 affinity
  // with the previously chosen video (Step 2: "close affinity relationship
  // with the previous video").
  VideoId previous = -1;
  for (size_t picked = 0; picked < containing.size(); ++picked) {
    if (picked % kOrderPollInterval == 0 && ordering_expired(picked)) {
      return order;
    }
    const double* a2_row =
        previous < 0 ? nullptr : model_.a2().RowPtr(static_cast<size_t>(previous));
    VideoId best = -1;
    double best_score = -1.0;
    for (VideoId v : containing) {
      if (visited[static_cast<size_t>(v)]) continue;
      const double score = a2_row == nullptr
                               ? model_.pi2()[static_cast<size_t>(v)]
                               : a2_row[static_cast<size_t>(v)];
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    if (best < 0) break;
    visited[static_cast<size_t>(best)] = true;
    order.push_back(best);
    previous = best;
  }
  // Step 7 walks all M videos; the ones without e_1 come last (they can
  // still host "similar" shots).
  if (ordering_expired(order.size())) return order;
  std::vector<VideoId> rest;
  for (size_t v = 0; v < m; ++v) {
    if (!visited[v]) rest.push_back(static_cast<VideoId>(v));
  }
  std::stable_sort(rest.begin(), rest.end(), [&](VideoId a, VideoId b) {
    return model_.pi2()[static_cast<size_t>(a)] >
           model_.pi2()[static_cast<size_t>(b)];
  });
  order.insert(order.end(), rest.begin(), rest.end());
  return order;
}

HmmmTraversal::PathRef HmmmTraversal::Extend(QueryPlan& plan,
                                             const PathRef& path, int state,
                                             double weight) {
  PathRef extended = path;
  extended.node = plan.AddPathNode(path.node, state, weight);
  extended.last_weight = weight;
  extended.score_sum = path.score_sum + weight;
  return extended;
}

namespace {

/// Frontier key of an unevaluated cell: the exact true weight when the
/// plan's priorities are exact, +infinity otherwise. The infinity case is
/// computed directly (never base * inf, which would produce NaN for a
/// zero base and wreck the heap order); it makes every cell pop, so the
/// search degrades to the reference's evaluate-everything behavior.
double CellPriority(const QueryPlan& plan, double base, int state,
                    size_t step_index) {
  if (!plan.exact_priorities()) {
    return std::numeric_limits<double>::infinity();
  }
  return base * plan.StepPriority(state, step_index);
}

}  // namespace

void HmmmTraversal::BuildWithinRow(QueryPlan& plan, const PathRef& path,
                                   size_t step_index, RetrievalStats* stats,
                                   int32_t row, WalkScratch& scratch) const {
  std::vector<GridCell>* out = &scratch.cells;
  const LocalShotModel& local = model_.local(path.current_video);
  const int n = static_cast<int>(local.num_states());
  if (n == 0) return;

  const int current_global = plan.node(path.node).state;
  // Local index of the current state within its video: the model's
  // precomputed table, replacing the former O(n) scan over local.states.
  const int current_local = model_.LocalStateIndexOf(current_global);

  const int first_next =
      options_.allow_same_shot ? current_local : current_local + 1;
  const PatternStep& pattern_step = plan.pattern().steps[step_index];
  // Temporal gap bound: the next shot must lie within max_gap annotated
  // shots of the current one.
  const int last_next =
      pattern_step.max_gap >= 0 ? current_local + pattern_step.max_gap : n - 1;
  std::vector<int>& candidates = scratch.candidates;
  candidates.clear();
  CandidateStates(plan, path.current_video, first_next, last_next, step_index,
                  stats, &candidates);
  const double* a1_row = local.a1.RowPtr(static_cast<size_t>(current_local));
  for (int t : candidates) {
    const double transition = a1_row[static_cast<size_t>(t)];
    if (transition <= 0.0) continue;
    const int next_global =
        model_.GlobalStateOf(local.states[static_cast<size_t>(t)]);
    // Eq.-13 prefix: w_j = (last_weight * A1) * sim, so the cell carries
    // base = last_weight * A1 and the sim factor joins only if the cell
    // pops. The grid cell itself still counts as a visited lattice node.
    const double base = path.last_weight * transition;
    if (stats != nullptr) ++stats->states_visited;
    out->push_back(GridCell{base,
                            CellPriority(plan, base, next_global, step_index),
                            next_global, static_cast<uint32_t>(out->size()),
                            row, path.current_video, false});
  }
}

void HmmmTraversal::BuildCrossCells(QueryPlan& plan, const PathRef& path,
                                    size_t step_index, RetrievalStats* stats,
                                    int32_t row, WalkScratch& scratch) const {
  std::vector<GridCell>* out = &scratch.cells;
  // Rank candidate next videos by A2 affinity from the current one,
  // preferring videos that contain the anticipated event (Fig. 3's
  // higher-level hand-over). Containment comes from the step's video
  // bitset (B2 positivity) instead of per-video B2 row scans.
  const PatternStep& pattern_step = plan.pattern().steps[step_index];
  std::vector<VideoId>& candidates = scratch.cross_videos;
  candidates.clear();
  const DenseBitset step_videos = plan.index().VideosContainingStep(pattern_step);
  step_videos.ForEachSetBit([&](size_t v) {
    const auto video = static_cast<VideoId>(v);
    if (video == path.current_video) return;
    if (model_.local(video).num_states() == 0) return;
    candidates.push_back(video);
  });
  const double* a2_row =
      model_.a2().RowPtr(static_cast<size_t>(path.current_video));
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](VideoId a, VideoId b) {
                     return a2_row[static_cast<size_t>(a)] >
                            a2_row[static_cast<size_t>(b)];
                   });
  if (candidates.size() > static_cast<size_t>(options_.beam_width)) {
    candidates.resize(static_cast<size_t>(options_.beam_width));
  }

  for (VideoId video : candidates) {
    const LocalShotModel& local = model_.local(video);
    const double hop = a2_row[static_cast<size_t>(video)];
    const double hop_weight = path.last_weight * hop;
    std::vector<int>& states = scratch.candidates;
    states.clear();
    CandidateStates(plan, video, 0, static_cast<int>(local.num_states()) - 1,
                    step_index, stats, &states);
    for (int ti : states) {
      const auto t = static_cast<size_t>(ti);
      const int next_global = model_.GlobalStateOf(local.states[t]);
      // Reference association order: ((last_weight * hop) * Pi1) * sim.
      const double base = hop_weight * local.pi1[t];
      if (stats != nullptr) ++stats->states_visited;
      out->push_back(
          GridCell{base, CellPriority(plan, base, next_global, step_index),
                   next_global, static_cast<uint32_t>(out->size()), row, video,
                   true});
    }
  }
}

void HmmmTraversal::SelectWinners(QueryPlan& plan, size_t step_index,
                                  size_t beam, bool final_step,
                                  const std::vector<PathRef>* parents,
                                  WalkScratch& scratch,
                                  RetrievalStats* stats) const {
  std::vector<GridCell>& cells = scratch.cells;
  const std::vector<RowSpan>& rows = scratch.rows;
  std::vector<ScoredCell>* winners = &scratch.winners;
  winners->clear();
  const size_t total = cells.size();
  if (total == 0) return;
  const bool exact = plan.exact_priorities();
  if (stats != nullptr && total > beam) stats->beam_pruned += total - beam;

  // (weight desc, gen asc): the reference's stable-sort winner order,
  // total because gen is unique per cell within a step.
  struct BetterScoredCell {
    bool operator()(const ScoredCell& a, const ScoredCell& b) const {
      if (a.weight != b.weight) return a.weight > b.weight;
      return a.cell.gen < b.cell.gen;
    }
  };
  // (priority desc, gen asc): the frontier's pop order. With exact
  // priorities it coincides with BetterScoredCell over the true weights.
  struct BetterCellFn {
    bool operator()(const GridCell& a, const GridCell& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.gen < b.gen;
    }
  };
  const BetterCellFn BetterCell;

  // Frontier over the row spans: at most one live cell per row, highest
  // (priority, then earliest gen) at the front. Because each row is
  // sorted by the same key and a cell enters only after its row
  // predecessor popped, cells pop in global (priority desc, gen asc)
  // order — with exact priorities that IS (true weight desc, gen asc),
  // the reference's stable-sort order. Only engaged when total > beam;
  // otherwise every cell is a winner and the heaps would be pure
  // overhead.
  const auto frontier_less = [&](const FrontierRef& a, const FrontierRef& b) {
    return BetterCell(cells[b.index], cells[a.index]);
  };
  std::vector<FrontierRef>& frontier = scratch.frontier;
  frontier.clear();
  const auto build_frontier = [&] {
    for (const RowSpan& row : rows) {
      if (row.begin == row.end) continue;
      std::sort(cells.begin() + row.begin, cells.begin() + row.end,
                BetterCell);
      frontier.push_back(FrontierRef{row.begin, row.end});
    }
    std::make_heap(frontier.begin(), frontier.end(), frontier_less);
  };

  if (final_step && exact) {
    // Lazy last level: no later step consumes a final-step weight — the
    // only downstream reader is Step 6's argmax over score_sum, and with
    // exact priorities (priority == true weight bit-for-bit) that argmax
    // can run on unevaluated cells. So determine the top-`beam` set by
    // priority, pick the cell the reference's Step-6 scan would pick
    // (max score_sum, earliest in (weight desc, gen asc) order on ties),
    // and only THAT cell — the one whose weight the materialized result
    // reports — pays the Eq.-14/15 evaluation.
    const GridCell* best = nullptr;
    double best_score = 0.0;
    const auto consider = [&](const GridCell& cell) {
      const double score =
          parents == nullptr
              ? cell.priority
              : (*parents)[static_cast<size_t>(cell.row)].score_sum +
                    cell.priority;
      if (best == nullptr || score > best_score ||
          (score == best_score && BetterCell(cell, *best))) {
        best = &cell;
        best_score = score;
      }
    };
    if (total <= beam) {
      for (const GridCell& cell : cells) consider(cell);
    } else {
      build_frontier();
      for (size_t popped = 0; popped < beam && !frontier.empty(); ++popped) {
        const FrontierRef top = frontier.front();
        std::pop_heap(frontier.begin(), frontier.end(), frontier_less);
        frontier.pop_back();
        consider(cells[top.index]);
        if (top.index + 1 < top.end) {
          frontier.push_back(FrontierRef{top.index + 1, top.end});
          std::push_heap(frontier.begin(), frontier.end(), frontier_less);
        }
      }
    }
    const double sim = plan.StepSimilarity(best->state, step_index);
    const double weight = best->base * sim;
    // The evaluated weight must equal the precomputed key bit-for-bit;
    // any drift means the index's sims or the kernel association order
    // desynchronized from the scorer.
    HMMM_CHECK(weight == best->priority);
    if (stats != nullptr) {
      stats->heap_pops += 1;
      stats->grid_cells_skipped += total - 1;
    }
    winners->push_back(ScoredCell{*best, weight});
    return;
  }

  if (exact) {
    // Intermediate step with exact priorities: pop order IS the true
    // (weight desc, gen asc) winner order, so the top-min(beam, total)
    // pops are the winners with weight = priority — no winner heap, no
    // stop rule, and no evaluation HERE. A winner pays its Eq.-14/15
    // evaluation at the moment the next step consumes its weight as an
    // Eq.-13 base prefix (TraverseVideo's deferred payment); a winner
    // whose path dead-ends is consumed by nothing and never pays.
    if (total <= beam) {
      std::sort(cells.begin(), cells.end(), BetterCell);
      winners->reserve(total);
      for (const GridCell& cell : cells) {
        winners->push_back(ScoredCell{cell, cell.priority});
      }
      return;
    }
    build_frontier();
    winners->reserve(beam);
    while (winners->size() < beam && !frontier.empty()) {
      const FrontierRef top = frontier.front();
      std::pop_heap(frontier.begin(), frontier.end(), frontier_less);
      frontier.pop_back();
      winners->push_back(
          ScoredCell{cells[top.index], cells[top.index].priority});
      if (top.index + 1 < top.end) {
        frontier.push_back(FrontierRef{top.index + 1, top.end});
        std::push_heap(frontier.begin(), frontier.end(), frontier_less);
      }
    }
    // The cells the frontier proved non-winning resolve to skipped right
    // away; the winners resolve to popped-or-skipped when (if) they are
    // consumed.
    if (stats != nullptr) stats->grid_cells_skipped += total - winners->size();
    return;
  }

  // Inexact fallback (+infinity priorities): the frontier cannot prove
  // anything, so every cell pops, pays an evaluation, and competes in a
  // true-weight top-K heap — the reference's evaluate-everything
  // behavior with the same winners and counters.
  if (total <= beam) {
    winners->reserve(total);
    for (const GridCell& cell : cells) {
      const double sim = plan.StepSimilarity(cell.state, step_index);
      winners->push_back(ScoredCell{cell, cell.base * sim});
    }
    if (stats != nullptr) stats->heap_pops += total;
    std::sort(winners->begin(), winners->end(), BetterScoredCell{});
    return;
  }

  build_frontier();
  TopKHeap<ScoredCell, BetterScoredCell> best(beam);
  size_t pops = 0;
  while (!frontier.empty()) {
    const FrontierRef top = frontier.front();
    const GridCell& cell = cells[top.index];
    std::pop_heap(frontier.begin(), frontier.end(), frontier_less);
    frontier.pop_back();
    ++pops;
    const double sim = plan.StepSimilarity(cell.state, step_index);
    best.Push(ScoredCell{cell, cell.base * sim});
    if (top.index + 1 < top.end) {
      frontier.push_back(FrontierRef{top.index + 1, top.end});
      std::push_heap(frontier.begin(), frontier.end(), frontier_less);
    }
  }

  if (stats != nullptr) {
    stats->heap_pops += pops;
    stats->grid_cells_skipped += total - pops;
  }
  *winners = std::move(best.entries());
  std::sort(winners->begin(), winners->end(), BetterScoredCell{});
}

namespace {

/// Structural pattern checks shared by both entry points. Run before any
/// index lookup: the bitsets are sized to the vocabulary, so an unknown
/// event must be rejected up front rather than read out of range.
Status ValidatePattern(const TemporalPattern& pattern,
                       const HierarchicalModel& model) {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty temporal pattern");
  }
  for (const PatternStep& step : pattern.steps) {
    if (step.alternatives.empty()) {
      return Status::InvalidArgument("pattern step without alternatives");
    }
    for (const auto& alternative : step.alternatives) {
      for (EventId e : alternative) {
        if (e < 0 || static_cast<size_t>(e) >= model.vocabulary().size()) {
          return Status::InvalidArgument("pattern references unknown event");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<RetrievedPattern>> HmmmTraversal::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  HMMM_RETURN_IF_ERROR(ValidatePattern(pattern, model_));
  std::vector<VideoId> order;
  {
    ScopedSpan span(options_.trace, "step2_video_order");
    order = VideoOrder(pattern);
    span.Counter("videos_ordered", order.size());
  }
  // A full ordering covers all M videos, so a shorter one means the
  // deadline/cancellation fired during Step 2: the videos that never got
  // ordered are degradation skips too, on top of whatever the fan-out
  // abandons.
  const size_t m = model_.num_videos();
  if (order.size() < m) {
    RetrievalStats local;
    auto result = RetrieveWithVideoOrder(pattern, order, &local);
    if (result.ok()) {
      local.degraded = true;
      local.videos_skipped += m - order.size();
    }
    if (stats != nullptr) AccumulateRetrievalStats(local, stats);
    return result;
  }
  return RetrieveWithVideoOrder(pattern, order, stats);
}

HmmmTraversal::WalkOutcome HmmmTraversal::TraverseVideo(
    VideoId video, const TemporalPattern& pattern, QueryPlan& plan,
    WalkScratch& scratch, RetrievalStats* stats, RetrievedPattern* out,
    int parent_span, int64_t order_index, CancelScope* cancel) const {
  const LocalShotModel& local = model_.local(video);
  if (local.num_states() == 0) return WalkOutcome::kNoCandidate;

  // All plan caches (Eq.-15 memo, candidate lists, path arena) are scoped
  // to this walk; see QueryPlan for why that keeps the stats counters
  // identical at every thread count.
  plan.BeginVideoWalk();

  // Per-video counters feed this video's trace span; they are merged into
  // the caller's stats at the end so parallel shards stay additive.
  RetrievalStats video_stats;
  ++video_stats.videos_considered;
  QueryTrace* trace = options_.trace;
  // The span name is only formatted when a trace will record it — the
  // untraced hot path shouldn't pay a heap-allocating format per video.
  ScopedSpan video_span(trace,
                        trace == nullptr
                            ? std::string()
                            : StrFormat("video:%d", static_cast<int>(video)),
                        parent_span, order_index);
  const size_t evaluations_before = plan.scorer().evaluations();
  const size_t memo_hits_before = plan.memo_hits();
  const size_t reuse_before = plan.candidate_reuse();

  const auto beam = static_cast<size_t>(options_.beam_width);
  std::vector<PathRef>& beam_paths = scratch.beam_paths;
  beam_paths.clear();
  {
    ScopedSpan walk_span(trace, "steps3_5_walk", video_span.id());
    // The scratch's flat cell buffer + row spans are reused across steps
    // and across this worker's videos (clear() keeps the capacity, so
    // steady state allocates nothing).
    std::vector<GridCell>& cells = scratch.cells;
    std::vector<RowSpan>& rows = scratch.rows;
    std::vector<ScoredCell>& winners = scratch.winners;
    cells.clear();
    rows.clear();
    // Step 4 (j = 1): w1 = Pi1(s1) * sim(s1, e1)  (Eq. 12). The seeds
    // form a one-row grid with base = Pi1; the frontier pops at most
    // beam winners, so only those pay the Eq.-15 evaluation.
    {
      std::vector<int>& seeds = scratch.candidates;
      seeds.clear();
      CandidateStates(plan, video, 0, static_cast<int>(local.num_states()) - 1,
                      0, &video_stats, &seeds);
      for (int ii : seeds) {
        const auto i = static_cast<size_t>(ii);
        const int global = model_.GlobalStateOf(local.states[i]);
        const double base = local.pi1[i];
        ++video_stats.states_visited;
        cells.push_back(GridCell{base, CellPriority(plan, base, global, 0),
                                 global, static_cast<uint32_t>(cells.size()),
                                 0, video, false});
      }
      rows.push_back(RowSpan{0, static_cast<uint32_t>(cells.size())});
    }
    SelectWinners(plan, 0, beam, /*final_step=*/pattern.size() == 1,
                  /*parents=*/nullptr, scratch, &video_stats);
    beam_paths.reserve(winners.size());
    for (const ScoredCell& w : winners) {
      PathRef path;
      path.node = plan.AddPathNode(-1, w.cell.state, w.weight);
      path.last_weight = w.weight;
      path.score_sum = w.weight;
      path.current_video = video;
      beam_paths.push_back(path);
    }

    // Steps 3-5: extend through the remaining events of the pattern.
    for (size_t j = 1; j < pattern.size() && !beam_paths.empty(); ++j) {
      // Bounded-interval poll: one deadline/cancellation check per
      // pattern step keeps a long walk from overrunning the budget while
      // adding nothing to the happy path (cancel is null there). An
      // expired walk pins the prefix cutoff at this video and aborts
      // without recording anything — the caller discards the partial
      // stats, so the surviving prefix stays byte-identical to a full
      // retrieval over it.
      if (cancel != nullptr &&
          (cancel->Expired() ||
           HMMM_FAULT_FIRED_ARG("traversal.walk_fault", order_index))) {
        cancel->CutAt(static_cast<size_t>(order_index));
        return WalkOutcome::kAborted;
      }
      // Build the step's score grid — one row span per surviving beam
      // path — without evaluating anything: cells carry bases and
      // precomputed priorities only. The flat emission order (rows in
      // beam order, candidates in list order) doubles as the gen
      // tie-break that makes winner ties resolve exactly like the old
      // stable sort over a flat expansion list.
      cells.clear();
      rows.clear();
      for (size_t r = 0; r < beam_paths.size(); ++r) {
        const PathRef& path = beam_paths[r];
        const auto begin = static_cast<uint32_t>(cells.size());
        BuildWithinRow(plan, path, j, &video_stats, static_cast<int32_t>(r),
                       scratch);
        // A finite gap bound implies same-video continuation: the gap is
        // measured in annotated-shot positions, which another video's
        // timeline cannot satisfy.
        if (cells.size() == begin && options_.cross_video &&
            pattern.steps[j].max_gap < 0) {
          BuildCrossCells(plan, path, j, &video_stats,
                          static_cast<int32_t>(r), scratch);
        }
        rows.push_back(RowSpan{begin, static_cast<uint32_t>(cells.size())});
        if (plan.exact_priorities()) {
          // Deferred payment for the parent's winning hop (see
          // SelectWinners): this row's Eq.-13 bases just consumed its
          // weight — or nothing did, if the path dead-ended, in which
          // case the hop resolves to skipped and its evaluation is never
          // paid at all.
          const int parent_state = plan.node(path.node).state;
          if (cells.size() > begin) {
            const double sim = plan.StepSimilarity(parent_state, j - 1);
            // The evaluated similarity must equal the plan's precomputed
            // priority bit-for-bit; drift means the index's sims or the
            // kernel association order desynchronized from the scorer.
            HMMM_CHECK(sim == plan.StepPriority(parent_state, j - 1));
            ++video_stats.heap_pops;
          } else {
            ++video_stats.grid_cells_skipped;
          }
        }
      }
      SelectWinners(plan, j, beam, /*final_step=*/j + 1 == pattern.size(),
                    &beam_paths, scratch, &video_stats);
      std::vector<PathRef>& next_paths = scratch.next_paths;
      next_paths.clear();
      next_paths.reserve(winners.size());
      for (const ScoredCell& w : winners) {
        PathRef extended =
            Extend(plan, beam_paths[static_cast<size_t>(w.cell.row)],
                   w.cell.state, w.weight);
        if (w.cell.crossed) extended.crossed_video = true;
        extended.current_video = w.cell.video;
        next_paths.push_back(extended);
      }
      std::swap(beam_paths, next_paths);
    }
  }

  bool found = false;
  if (!beam_paths.empty()) {
    // Step 6: SS(R, Q_k) = sum_j w_j (Eq. 15); keep the video's best
    // path. Only the survivor is materialized out of the arena.
    ScopedSpan score_span(trace, "step6_eq15_score", video_span.id());
    const PathRef* best = &beam_paths.front();
    for (const PathRef& p : beam_paths) {
      if (p.score_sum > best->score_sum) best = &p;
    }
    plan.MaterializePath(best->node, &out->shots, &out->edge_weights);
    out->score = best->score_sum;
    out->video = video;
    out->crosses_videos = best->crossed_video;
    ++video_stats.candidates_scored;
    found = true;
  }

  video_stats.sim_memo_hits += plan.memo_hits() - memo_hits_before;
  video_stats.candidate_list_reuse += plan.candidate_reuse() - reuse_before;
  video_span.Counter("states_visited", video_stats.states_visited);
  video_span.Counter("sim_evaluations",
                     plan.scorer().evaluations() - evaluations_before);
  video_span.Counter("sim_memo_hits", video_stats.sim_memo_hits);
  video_span.Counter("candidate_list_reuse", video_stats.candidate_list_reuse);
  video_span.Counter("beam_pruned", video_stats.beam_pruned);
  video_span.Counter("heap_pops", video_stats.heap_pops);
  video_span.Counter("grid_cells_skipped", video_stats.grid_cells_skipped);
  video_span.Counter("annotated_fallbacks", video_stats.annotated_fallbacks);
  video_span.Counter("candidates_scored", video_stats.candidates_scored);
  if (stats != nullptr) AccumulateStats(video_stats, stats);
  return found ? WalkOutcome::kCandidate : WalkOutcome::kNoCandidate;
}

StatusOr<std::vector<RetrievedPattern>> HmmmTraversal::RetrieveWithVideoOrder(
    const TemporalPattern& pattern, const std::vector<VideoId>& video_order,
    RetrievalStats* stats) const {
  HMMM_RETURN_IF_ERROR(ValidatePattern(pattern, model_));
  for (VideoId video : video_order) {
    if (video < 0 || static_cast<size_t>(video) >= model_.num_videos()) {
      return Status::OutOfRange("video order references unknown video");
    }
  }

  std::vector<VideoId> order = video_order;
  if (options_.max_videos >= 0 &&
      order.size() > static_cast<size_t>(options_.max_videos)) {
    order.resize(static_cast<size_t>(options_.max_videos));
  }

  // Step 7 fan-out: each video's lattice walk (Steps 3-6) is independent
  // given the visiting order, so videos are sharded across the pool.
  // Every worker owns a QueryPlan (scorer + memo + candidate cache +
  // path arena — the counters would race), a stats block and a top-K
  // heap; heaps are merged below under a total order, which makes the
  // ranking identical at any thread count.
  const auto top_k = static_cast<size_t>(options_.max_results);
  std::vector<VideoCandidate> survivors;
  RetrievalStats accumulated;
  size_t total_evaluations = 0;

  // Degradation machinery engages only when something could actually
  // fire: a deadline or token in the options, or an armed traversal
  // fault point. Otherwise the happy path below is the unchanged
  // bounded-heap fan-out — zero cost when robustness features are off.
  const bool cancellable = options_.deadline != kNoDeadline ||
                           options_.cancellation != nullptr ||
                           HMMM_FAULT_ARMED_PREFIX("traversal.");
  CancelScope scope;
  scope.deadline = options_.deadline;
  scope.token = options_.cancellation;

  struct Shard {
    Shard(const HierarchicalModel& model, const EventBitmapIndex& index,
          const TemporalPattern& pattern, const ScorerOptions& options,
          size_t capacity)
        : plan(model, index, pattern, options), top(capacity) {}
    QueryPlan plan;
    CandidateHeap top;
    RetrievalStats stats;
    // Reused across this worker's walks; capacities reach steady state
    // after the first couple of videos and the fan-out stops allocating.
    WalkScratch scratch;
    // Cancellable mode collects *everything* instead of using the heap:
    // the merge must drop any candidate at or beyond the final cutoff,
    // and a bounded heap could already have evicted a low-scoring
    // candidate that belongs in the anytime top-K of the surviving
    // prefix. Per-walk stats ride along so the reported counters cover
    // exactly the walks that survive the cut.
    std::vector<VideoCandidate> all;
    std::vector<std::pair<size_t, RetrievalStats>> walks;
  };
  const bool parallel =
      pool_ != nullptr && pool_->size() > 1 && order.size() > 1;
  std::vector<std::unique_ptr<Shard>> shards;
  {
    ScopedSpan plan_span(options_.trace, "query_plan_build");
    const EventBitmapIndex& index = CurrentIndex();
    const size_t num_shards =
        parallel ? static_cast<size_t>(pool_->size()) : 1;
    shards.reserve(num_shards);
    for (size_t w = 0; w < num_shards; ++w) {
      shards.push_back(std::make_unique<Shard>(model_, index, pattern,
                                               options_.scorer, top_k));
    }
  }

  ScopedSpan fanout_span(options_.trace, "step7_video_fanout");
  fanout_span.Counter("videos", order.size());

  const auto visit = [&](Shard& shard, size_t i) {
    if (!cancellable) {
      RetrievedPattern candidate;
      if (TraverseVideo(order[i], pattern, shard.plan, shard.scratch,
                        &shard.stats, &candidate, fanout_span.id(),
                        static_cast<int64_t>(i)) == WalkOutcome::kCandidate) {
        shard.top.Push({std::move(candidate), i});
      }
      return;
    }
    // Cancellable claim protocol (see CancelScope): skip claims at or
    // beyond the cutoff; an expiry observed at claim time pins the
    // cutoff here and skips the walk.
    if (i >= scope.cutoff.load(std::memory_order_acquire)) return;
    if (scope.Expired() ||
        HMMM_FAULT_FIRED_ARG("traversal.deadline_at_video",
                             static_cast<int64_t>(i))) {
      scope.CutAt(i);
      return;
    }
    RetrievedPattern candidate;
    std::pair<size_t, RetrievalStats> walk{i, RetrievalStats{}};
    const size_t evaluations_before = shard.plan.scorer().evaluations();
    const WalkOutcome outcome =
        TraverseVideo(order[i], pattern, shard.plan, shard.scratch,
                      &walk.second, &candidate, fanout_span.id(),
                      static_cast<int64_t>(i), &scope);
    if (outcome == WalkOutcome::kAborted) return;
    walk.second.sim_evaluations =
        shard.plan.scorer().evaluations() - evaluations_before;
    shard.walks.push_back(std::move(walk));
    if (outcome == WalkOutcome::kCandidate) {
      shard.all.push_back({std::move(candidate), i});
    }
  };

  if (parallel) {
    // ParallelFor rethrows the first worker exception (after every
    // worker has drained); a poisoned retrieval surfaces as a Status
    // instead of tearing down the process.
    try {
      pool_->ParallelFor(order.size(), kParallelGrain,
                         [&](int worker, size_t begin, size_t end) {
                           Shard& shard = *shards[static_cast<size_t>(worker)];
                           for (size_t i = begin; i < end; ++i) {
                             visit(shard, i);
                           }
                         });
    } catch (const std::exception& e) {
      return Status::Internal(
          StrFormat("retrieval worker failed: %s", e.what()));
    }
  } else {
    Shard& shard = *shards.front();
    for (size_t i = 0; i < order.size(); ++i) visit(shard, i);
  }

  // The final cutoff (if any fired) bounds the surviving order prefix;
  // everything claimed at or beyond it is discarded so the anytime
  // result equals a full retrieval over order[0, cutoff).
  size_t cutoff = order.size();
  bool fired = false;
  if (cancellable) {
    const size_t cut = scope.cutoff.load(std::memory_order_acquire);
    if (cut < order.size()) {
      cutoff = cut;
      fired = true;
    }
  }
  for (const std::unique_ptr<Shard>& shard : shards) {
    if (cancellable) {
      for (auto& walk : shard->walks) {
        if (walk.first < cutoff) {
          AccumulateRetrievalStats(walk.second, &accumulated);
        }
      }
      for (VideoCandidate& candidate : shard->all) {
        if (candidate.order_index < cutoff) {
          survivors.push_back(std::move(candidate));
        }
      }
    } else {
      for (VideoCandidate& candidate : shard->top.entries()) {
        survivors.push_back(std::move(candidate));
      }
      AccumulateStats(shard->stats, &accumulated);
      total_evaluations += shard->plan.scorer().evaluations();
    }
  }
  if (fired) {
    accumulated.degraded = true;
    accumulated.videos_skipped += order.size() - cutoff;
    fanout_span.Counter("deadline_fired", 1);
    fanout_span.Counter("videos_skipped", order.size() - cutoff);
  }
  fanout_span.Counter("candidates", survivors.size());
  fanout_span.End();

  // Steps 8-9: rank by similarity score. Each shard retained its own best
  // max_results candidates, so the union is a superset of the global top
  // K; the (score, order) total order reproduces the serial ranking.
  ScopedSpan merge_span(options_.trace, "step8_9_merge_rank");
  std::sort(survivors.begin(), survivors.end(), BetterCandidate{});
  if (survivors.size() > top_k) survivors.resize(top_k);
  std::vector<RetrievedPattern> results;
  results.reserve(survivors.size());
  for (VideoCandidate& candidate : survivors) {
    results.push_back(std::move(candidate.pattern));
  }
  merge_span.Counter("results", results.size());
  if (stats != nullptr) {
    // The full accumulator (result.cc) carries sim_evaluations and the
    // degradation fields; in heap mode per-walk sim_evaluations were
    // never split out, so the shard-plan totals are added on top.
    AccumulateRetrievalStats(accumulated, stats);
    stats->sim_evaluations += total_evaluations;
  }
  return results;
}

}  // namespace hmmm
