#include "retrieval/traversal.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {
namespace {

/// One candidate tagged with its video's position in the Step-2 visiting
/// order, the tie-break that makes the parallel merge reproduce the
/// serial stable sort exactly.
struct VideoCandidate {
  RetrievedPattern pattern;
  size_t order_index = 0;
};

/// Strict total order: higher SS first, then earlier visiting position.
/// Total because order_index is unique per candidate.
bool BetterCandidate(const VideoCandidate& a, const VideoCandidate& b) {
  if (a.pattern.score != b.pattern.score) {
    return a.pattern.score > b.pattern.score;
  }
  return a.order_index < b.order_index;
}

/// Bounded best-K accumulator: a heap with the *worst* retained
/// candidate at the front so an insertion beyond capacity evicts it.
class TopKHeap {
 public:
  explicit TopKHeap(size_t capacity) : capacity_(capacity) {}

  void Push(VideoCandidate candidate) {
    entries_.push_back(std::move(candidate));
    std::push_heap(entries_.begin(), entries_.end(), BetterCandidate);
    if (entries_.size() > capacity_) {
      std::pop_heap(entries_.begin(), entries_.end(), BetterCandidate);
      entries_.pop_back();
    }
  }

  std::vector<VideoCandidate>& entries() { return entries_; }

 private:
  size_t capacity_;
  std::vector<VideoCandidate> entries_;
};

/// Dynamic-scheduling chunk size for the per-video fan-out: one video per
/// claim balances well (per-video lattice cost varies with annotation
/// density) and the claim is a single relaxed fetch_add.
constexpr size_t kParallelGrain = 1;

void AccumulateStats(const RetrievalStats& shard, RetrievalStats* stats) {
  stats->videos_considered += shard.videos_considered;
  stats->states_visited += shard.states_visited;
  stats->candidates_scored += shard.candidates_scored;
  stats->beam_pruned += shard.beam_pruned;
  stats->annotated_fallbacks += shard.annotated_fallbacks;
  stats->truncated = stats->truncated || shard.truncated;
}

}  // namespace

HmmmTraversal::HmmmTraversal(const HierarchicalModel& model,
                             const VideoCatalog& catalog,
                             TraversalOptions options, ThreadPool* pool)
    : model_(model),
      catalog_(catalog),
      options_(std::move(options)),
      pool_(pool) {
  HMMM_CHECK(options_.beam_width >= 1);
  HMMM_CHECK(options_.max_results >= 1);
  if (pool_ == nullptr && options_.num_threads != 1) {
    owned_pool_ = MakeThreadPool(options_.num_threads);
    pool_ = owned_pool_.get();
  }
}

bool HmmmTraversal::VideoContainsStep(VideoId v, const PatternStep& step) const {
  // Step 2: check matrix B2 for a video containing the anticipated event.
  // A step with alternatives is containable if any conjunctive alternative
  // is fully present.
  for (const auto& alternative : step.alternatives) {
    bool all_present = true;
    for (EventId e : alternative) {
      if (model_.b2().at(static_cast<size_t>(v), static_cast<size_t>(e)) <=
          0.0) {
        all_present = false;
        break;
      }
    }
    if (all_present) return true;
  }
  return false;
}

bool HmmmTraversal::ShotAnnotatedForStep(ShotId shot,
                                         const PatternStep& step) const {
  const ShotRecord& record = catalog_.shot(shot);
  for (const auto& alternative : step.alternatives) {
    bool all = true;
    for (EventId e : alternative) {
      if (!record.HasEvent(e)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

std::vector<int> HmmmTraversal::CandidateStates(const LocalShotModel& local,
                                                int first, int last,
                                                const PatternStep& step,
                                                RetrievalStats* stats) const {
  const int n = std::min(static_cast<int>(local.num_states()), last + 1);
  std::vector<int> all;
  std::vector<int> annotated;
  for (int t = first; t < n; ++t) {
    all.push_back(t);
    if (options_.annotated_first &&
        ShotAnnotatedForStep(local.states[static_cast<size_t>(t)], step)) {
      annotated.push_back(t);
    }
  }
  // Step 3: prefer shots annotated as e_j; fall back to "similar" shots.
  if (!annotated.empty()) return annotated;
  if (stats != nullptr && options_.annotated_first && !all.empty()) {
    ++stats->annotated_fallbacks;
  }
  return all;
}

std::vector<VideoId> HmmmTraversal::VideoOrder(
    const TemporalPattern& pattern) const {
  const size_t m = model_.num_videos();
  std::vector<VideoId> order;
  if (m == 0 || pattern.empty()) return order;

  std::vector<bool> visited(m, false);
  std::vector<VideoId> containing;
  for (size_t v = 0; v < m; ++v) {
    if (VideoContainsStep(static_cast<VideoId>(v), pattern.steps.front())) {
      containing.push_back(static_cast<VideoId>(v));
    }
  }
  // Seed with the highest-Pi2 containing video, then chain by A2 affinity
  // with the previously chosen video (Step 2: "close affinity relationship
  // with the previous video").
  VideoId previous = -1;
  for (size_t picked = 0; picked < containing.size(); ++picked) {
    VideoId best = -1;
    double best_score = -1.0;
    for (VideoId v : containing) {
      if (visited[static_cast<size_t>(v)]) continue;
      const double score =
          previous < 0
              ? model_.pi2()[static_cast<size_t>(v)]
              : model_.a2().at(static_cast<size_t>(previous),
                               static_cast<size_t>(v));
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    if (best < 0) break;
    visited[static_cast<size_t>(best)] = true;
    order.push_back(best);
    previous = best;
  }
  // Step 7 walks all M videos; the ones without e_1 come last (they can
  // still host "similar" shots).
  std::vector<VideoId> rest;
  for (size_t v = 0; v < m; ++v) {
    if (!visited[v]) rest.push_back(static_cast<VideoId>(v));
  }
  std::stable_sort(rest.begin(), rest.end(), [&](VideoId a, VideoId b) {
    return model_.pi2()[static_cast<size_t>(a)] >
           model_.pi2()[static_cast<size_t>(b)];
  });
  order.insert(order.end(), rest.begin(), rest.end());
  return order;
}

std::vector<HmmmTraversal::Path> HmmmTraversal::ExpandWithinVideo(
    const Path& path, const PatternStep& step, const SimilarityScorer& scorer,
    RetrievalStats* stats) const {
  std::vector<Path> expansions;
  const LocalShotModel& local = model_.local(path.current_video);
  const int n = static_cast<int>(local.num_states());
  if (n == 0) return expansions;

  const int current_global = path.states.back();
  const ShotId current_shot = model_.ShotOfGlobalState(current_global);
  // Local index of the current state within its video.
  int current_local = -1;
  for (int i = 0; i < n; ++i) {
    if (local.states[static_cast<size_t>(i)] == current_shot) {
      current_local = i;
      break;
    }
  }
  HMMM_CHECK(current_local >= 0);

  const int first_next = options_.allow_same_shot ? current_local
                                                  : current_local + 1;
  // Temporal gap bound: the next shot must lie within max_gap annotated
  // shots of the current one.
  const int last_next =
      step.max_gap >= 0 ? current_local + step.max_gap : n - 1;
  for (int t : CandidateStates(local, first_next, last_next, step, stats)) {
    const double transition =
        local.a1.at(static_cast<size_t>(current_local), static_cast<size_t>(t));
    if (transition <= 0.0) continue;
    const int next_global =
        model_.GlobalStateOf(local.states[static_cast<size_t>(t)]);
    const double sim = scorer.StepSimilarity(next_global, step);
    const double weight = path.last_weight * transition * sim;  // Eq. 13
    if (stats != nullptr) ++stats->states_visited;

    Path extended = path;
    extended.states.push_back(next_global);
    extended.edge_weights.push_back(weight);
    extended.last_weight = weight;
    extended.score_sum += weight;
    expansions.push_back(std::move(extended));
  }
  return expansions;
}

std::vector<HmmmTraversal::Path> HmmmTraversal::ExpandCrossVideo(
    const Path& path, const PatternStep& step, const SimilarityScorer& scorer,
    RetrievalStats* stats) const {
  std::vector<Path> expansions;
  const size_t m = model_.num_videos();
  // Rank candidate next videos by A2 affinity from the current one,
  // preferring videos that contain the anticipated event (Fig. 3's
  // higher-level hand-over).
  std::vector<VideoId> candidates;
  for (size_t v = 0; v < m; ++v) {
    const auto video = static_cast<VideoId>(v);
    if (video == path.current_video) continue;
    if (model_.local(video).num_states() == 0) continue;
    if (!VideoContainsStep(video, step)) continue;
    candidates.push_back(video);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](VideoId a, VideoId b) {
                     const auto from = static_cast<size_t>(path.current_video);
                     return model_.a2().at(from, static_cast<size_t>(a)) >
                            model_.a2().at(from, static_cast<size_t>(b));
                   });
  if (candidates.size() > static_cast<size_t>(options_.beam_width)) {
    candidates.resize(static_cast<size_t>(options_.beam_width));
  }

  for (VideoId video : candidates) {
    const LocalShotModel& local = model_.local(video);
    const double hop = model_.a2().at(static_cast<size_t>(path.current_video),
                                      static_cast<size_t>(video));
    for (int ti : CandidateStates(local, 0,
                                  static_cast<int>(local.num_states()) - 1,
                                  step, stats)) {
      const auto t = static_cast<size_t>(ti);
      const int next_global = model_.GlobalStateOf(local.states[t]);
      const double sim = scorer.StepSimilarity(next_global, step);
      const double weight = path.last_weight * hop * local.pi1[t] * sim;
      if (stats != nullptr) ++stats->states_visited;

      Path extended = path;
      extended.states.push_back(next_global);
      extended.edge_weights.push_back(weight);
      extended.last_weight = weight;
      extended.score_sum += weight;
      extended.crossed_video = true;
      extended.current_video = video;
      expansions.push_back(std::move(extended));
    }
  }
  return expansions;
}

StatusOr<std::vector<RetrievedPattern>> HmmmTraversal::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty temporal pattern");
  }
  std::vector<VideoId> order;
  {
    ScopedSpan span(options_.trace, "step2_video_order");
    order = VideoOrder(pattern);
    span.Counter("videos_ordered", order.size());
  }
  return RetrieveWithVideoOrder(pattern, order, stats);
}

bool HmmmTraversal::TraverseVideo(VideoId video, const TemporalPattern& pattern,
                                  const SimilarityScorer& scorer,
                                  RetrievalStats* stats, RetrievedPattern* out,
                                  int parent_span, int64_t order_index) const {
  const LocalShotModel& local = model_.local(video);
  if (local.num_states() == 0) return false;

  // Per-video counters feed this video's trace span; they are merged into
  // the caller's stats at the end so parallel shards stay additive.
  RetrievalStats video_stats;
  ++video_stats.videos_considered;
  QueryTrace* trace = options_.trace;
  ScopedSpan video_span(trace,
                        StrFormat("video:%d", static_cast<int>(video)),
                        parent_span, order_index);
  const size_t evaluations_before = scorer.evaluations();

  const auto beam = static_cast<size_t>(options_.beam_width);
  std::vector<Path> beam_paths;
  {
    ScopedSpan walk_span(trace, "steps3_5_walk", video_span.id());
    // Step 4 (j = 1): w1 = Pi1(s1) * sim(s1, e1)  (Eq. 12).
    for (int ii : CandidateStates(local, 0,
                                  static_cast<int>(local.num_states()) - 1,
                                  pattern.steps.front(), &video_stats)) {
      const auto i = static_cast<size_t>(ii);
      const int global = model_.GlobalStateOf(local.states[i]);
      const double weight =
          local.pi1[i] * scorer.StepSimilarity(global, pattern.steps.front());
      ++video_stats.states_visited;
      Path path;
      path.states = {global};
      path.edge_weights = {weight};
      path.last_weight = weight;
      path.score_sum = weight;
      path.current_video = video;
      beam_paths.push_back(std::move(path));
    }
    std::stable_sort(beam_paths.begin(), beam_paths.end(),
                     [](const Path& a, const Path& b) {
                       return a.last_weight > b.last_weight;
                     });
    if (beam_paths.size() > beam) {
      video_stats.beam_pruned += beam_paths.size() - beam;
      beam_paths.resize(beam);
    }

    // Steps 3-5: extend through the remaining events of the pattern.
    for (size_t j = 1; j < pattern.size() && !beam_paths.empty(); ++j) {
      std::vector<Path> expansions;
      for (const Path& path : beam_paths) {
        std::vector<Path> within =
            ExpandWithinVideo(path, pattern.steps[j], scorer, &video_stats);
        // A finite gap bound implies same-video continuation: the gap is
        // measured in annotated-shot positions, which another video's
        // timeline cannot satisfy.
        if (within.empty() && options_.cross_video &&
            pattern.steps[j].max_gap < 0) {
          within =
              ExpandCrossVideo(path, pattern.steps[j], scorer, &video_stats);
        }
        for (Path& p : within) expansions.push_back(std::move(p));
      }
      std::stable_sort(expansions.begin(), expansions.end(),
                       [](const Path& a, const Path& b) {
                         return a.last_weight > b.last_weight;
                       });
      if (expansions.size() > beam) {
        video_stats.beam_pruned += expansions.size() - beam;
        expansions.resize(beam);
      }
      beam_paths = std::move(expansions);
    }
  }

  bool found = false;
  if (!beam_paths.empty()) {
    // Step 6: SS(R, Q_k) = sum_j w_j (Eq. 15); keep the video's best path.
    ScopedSpan score_span(trace, "step6_eq15_score", video_span.id());
    const Path* best = &beam_paths.front();
    for (const Path& p : beam_paths) {
      if (p.score_sum > best->score_sum) best = &p;
    }
    out->shots.clear();
    out->shots.reserve(best->states.size());
    for (int state : best->states) {
      out->shots.push_back(model_.ShotOfGlobalState(state));
    }
    out->edge_weights = best->edge_weights;
    out->score = best->score_sum;
    out->video = video;
    out->crosses_videos = best->crossed_video;
    ++video_stats.candidates_scored;
    found = true;
  }

  video_span.Counter("states_visited", video_stats.states_visited);
  video_span.Counter("sim_evaluations",
                     scorer.evaluations() - evaluations_before);
  video_span.Counter("beam_pruned", video_stats.beam_pruned);
  video_span.Counter("annotated_fallbacks", video_stats.annotated_fallbacks);
  video_span.Counter("candidates_scored", video_stats.candidates_scored);
  if (stats != nullptr) AccumulateStats(video_stats, stats);
  return found;
}

StatusOr<std::vector<RetrievedPattern>> HmmmTraversal::RetrieveWithVideoOrder(
    const TemporalPattern& pattern, const std::vector<VideoId>& video_order,
    RetrievalStats* stats) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty temporal pattern");
  }
  for (const PatternStep& step : pattern.steps) {
    if (step.alternatives.empty()) {
      return Status::InvalidArgument("pattern step without alternatives");
    }
    for (const auto& alternative : step.alternatives) {
      for (EventId e : alternative) {
        if (e < 0 || static_cast<size_t>(e) >= model_.vocabulary().size()) {
          return Status::InvalidArgument("pattern references unknown event");
        }
      }
    }
  }
  for (VideoId video : video_order) {
    if (video < 0 || static_cast<size_t>(video) >= model_.num_videos()) {
      return Status::OutOfRange("video order references unknown video");
    }
  }

  std::vector<VideoId> order = video_order;
  if (options_.max_videos >= 0 &&
      order.size() > static_cast<size_t>(options_.max_videos)) {
    order.resize(static_cast<size_t>(options_.max_videos));
  }

  // Step 7 fan-out: each video's lattice walk (Steps 3-6) is independent
  // given the visiting order, so videos are sharded across the pool.
  // Every worker owns a scorer (its evaluation counter would race), a
  // stats block, and a top-K heap; heaps are merged below under a total
  // order, which makes the ranking identical at any thread count.
  const auto top_k = static_cast<size_t>(options_.max_results);
  std::vector<VideoCandidate> survivors;
  RetrievalStats accumulated;
  size_t total_evaluations = 0;

  ScopedSpan fanout_span(options_.trace, "step7_video_fanout");
  fanout_span.Counter("videos", order.size());

  if (pool_ != nullptr && pool_->size() > 1 && order.size() > 1) {
    struct Shard {
      Shard(const HierarchicalModel& model, const ScorerOptions& options,
            size_t capacity)
          : scorer(model, options), top(capacity) {}
      SimilarityScorer scorer;
      TopKHeap top;
      RetrievalStats stats;
    };
    std::vector<Shard> shards;
    shards.reserve(static_cast<size_t>(pool_->size()));
    for (int w = 0; w < pool_->size(); ++w) {
      shards.emplace_back(model_, options_.scorer, top_k);
    }
    pool_->ParallelFor(
        order.size(), kParallelGrain,
        [&](int worker, size_t begin, size_t end) {
          Shard& shard = shards[static_cast<size_t>(worker)];
          for (size_t i = begin; i < end; ++i) {
            RetrievedPattern candidate;
            if (TraverseVideo(order[i], pattern, shard.scorer, &shard.stats,
                              &candidate, fanout_span.id(),
                              static_cast<int64_t>(i))) {
              shard.top.Push({std::move(candidate), i});
            }
          }
        });
    for (Shard& shard : shards) {
      for (VideoCandidate& candidate : shard.top.entries()) {
        survivors.push_back(std::move(candidate));
      }
      AccumulateStats(shard.stats, &accumulated);
      total_evaluations += shard.scorer.evaluations();
    }
  } else {
    SimilarityScorer scorer(model_, options_.scorer);
    TopKHeap top(top_k);
    for (size_t i = 0; i < order.size(); ++i) {
      RetrievedPattern candidate;
      if (TraverseVideo(order[i], pattern, scorer, &accumulated, &candidate,
                        fanout_span.id(), static_cast<int64_t>(i))) {
        top.Push({std::move(candidate), i});
      }
    }
    survivors = std::move(top.entries());
    total_evaluations = scorer.evaluations();
  }
  fanout_span.Counter("candidates", survivors.size());
  fanout_span.End();

  // Steps 8-9: rank by similarity score. Each shard retained its own best
  // max_results candidates, so the union is a superset of the global top
  // K; the (score, order) total order reproduces the serial ranking.
  ScopedSpan merge_span(options_.trace, "step8_9_merge_rank");
  std::sort(survivors.begin(), survivors.end(), BetterCandidate);
  if (survivors.size() > top_k) survivors.resize(top_k);
  std::vector<RetrievedPattern> results;
  results.reserve(survivors.size());
  for (VideoCandidate& candidate : survivors) {
    results.push_back(std::move(candidate.pattern));
  }
  merge_span.Counter("results", results.size());
  if (stats != nullptr) {
    AccumulateStats(accumulated, stats);
    stats->sim_evaluations += total_evaluations;
  }
  return results;
}

}  // namespace hmmm
