#include "retrieval/baseline_exhaustive.h"

#include <algorithm>

namespace hmmm {

namespace {

/// DFS context for one video's enumeration.
struct VideoEnumeration {
  const HierarchicalModel* model;
  const LocalShotModel* local;
  const TemporalPattern* pattern;
  const SimilarityScorer* scorer;
  const ExhaustiveOptions* options;
  RetrievalStats* stats;
  size_t* tuples_budget;

  std::vector<int> current_locals;
  std::vector<double> current_weights;
  std::vector<RetrievedPattern>* results;

  void Emit(double score_sum) {
    RetrievedPattern result;
    result.shots.reserve(current_locals.size());
    for (int i : current_locals) {
      result.shots.push_back(local->states[static_cast<size_t>(i)]);
    }
    result.edge_weights = current_weights;
    result.score = score_sum;
    result.video = local->video_id;
    results->push_back(std::move(result));
    if (stats != nullptr) ++stats->candidates_scored;
  }

  // Extends the partial assignment at pattern position `j` with weight
  // state (`last_weight`, `score_sum`). Returns false when the tuple
  // budget is exhausted.
  bool Extend(size_t j, double last_weight, double score_sum) {
    if (j == pattern->size()) {
      Emit(score_sum);
      return true;
    }
    int n = static_cast<int>(local->num_states());
    int first = 0;
    if (j > 0) {
      first = options->allow_same_shot ? current_locals.back()
                                       : current_locals.back() + 1;
      // Temporal gap bound relative to the previous step's shot.
      const int max_gap = pattern->steps[j].max_gap;
      if (max_gap >= 0) {
        n = std::min(n, current_locals.back() + max_gap + 1);
      }
    }
    for (int t = first; t < n; ++t) {
      if (*tuples_budget == 0) {
        if (stats != nullptr) stats->truncated = true;
        return false;
      }
      --*tuples_budget;
      if (stats != nullptr) ++stats->states_visited;

      const int global =
          model->GlobalStateOf(local->states[static_cast<size_t>(t)]);
      const double sim = scorer->StepSimilarity(global, pattern->steps[j]);
      double weight;
      if (j == 0) {
        weight = local->pi1[static_cast<size_t>(t)] * sim;  // Eq. 12
      } else {
        const double transition =
            local->a1.at(static_cast<size_t>(current_locals.back()),
                         static_cast<size_t>(t));
        if (transition <= 0.0) continue;
        weight = last_weight * transition * sim;  // Eq. 13
      }
      current_locals.push_back(t);
      current_weights.push_back(weight);
      const bool keep_going = Extend(j + 1, weight, score_sum + weight);
      current_locals.pop_back();
      current_weights.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }
};

}  // namespace

ExhaustiveMatcher::ExhaustiveMatcher(const HierarchicalModel& model,
                                     const VideoCatalog& catalog,
                                     ExhaustiveOptions options)
    : model_(model), catalog_(catalog), options_(std::move(options)) {}

StatusOr<std::vector<RetrievedPattern>> ExhaustiveMatcher::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty temporal pattern");
  }
  SimilarityScorer scorer(model_, options_.scorer);
  std::vector<RetrievedPattern> results;
  size_t budget = options_.max_tuples;

  for (const LocalShotModel& local : model_.locals()) {
    if (local.num_states() < pattern.size() && !options_.allow_same_shot) {
      continue;
    }
    if (local.num_states() == 0) continue;
    if (stats != nullptr) ++stats->videos_considered;

    VideoEnumeration enumeration{
        &model_, &local,   &pattern, &scorer, &options_,
        stats,   &budget, {},       {},      &results};
    if (!enumeration.Extend(0, 0.0, 0.0)) break;  // budget exhausted
  }

  std::stable_sort(results.begin(), results.end(),
                   [](const RetrievedPattern& a, const RetrievedPattern& b) {
                     return a.score > b.score;
                   });
  if (results.size() > static_cast<size_t>(options_.max_results)) {
    results.resize(static_cast<size_t>(options_.max_results));
  }
  if (stats != nullptr) stats->sim_evaluations = scorer.evaluations();
  return results;
}

}  // namespace hmmm
