#ifndef HMMM_RETRIEVAL_METRICS_H_
#define HMMM_RETRIEVAL_METRICS_H_

#include <vector>

#include "query/translator.h"
#include "retrieval/result.h"
#include "storage/catalog.h"

namespace hmmm {

/// True if each retrieved shot literally carries the annotations its
/// pattern step demands (binary relevance judgment against ground truth).
bool PatternMatchesAnnotations(const VideoCatalog& catalog,
                               const std::vector<ShotId>& shots,
                               const TemporalPattern& pattern);

/// Enumerates the true occurrences of a pattern: temporally increasing
/// in-video tuples of annotated shots whose annotations satisfy each step.
/// Enumeration stops at `max_count` tuples (returned vector size caps
/// there; callers treat the count as a lower bound in that case).
std::vector<std::vector<ShotId>> EnumerateTrueOccurrences(
    const VideoCatalog& catalog, const TemporalPattern& pattern,
    size_t max_count = 100000);

/// Standard ranking quality metrics for one query under binary relevance.
struct RankingMetrics {
  size_t retrieved = 0;
  size_t relevant_retrieved = 0;
  size_t total_relevant = 0;   // from EnumerateTrueOccurrences (may be capped)
  double precision_at_k = 0.0; // k = min(k, retrieved)
  double recall = 0.0;         // distinct relevant tuples found / total
  double average_precision = 0.0;
  double ndcg = 0.0;           // binary gains, log2 discount
};

/// Evaluates a ranked result list against annotation ground truth.
/// `k` bounds precision@k (and the nDCG cutoff); recall counts distinct
/// true occurrences among all returned results.
RankingMetrics EvaluateRanking(const VideoCatalog& catalog,
                               const TemporalPattern& pattern,
                               const std::vector<RetrievedPattern>& results,
                               size_t k);

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_METRICS_H_
