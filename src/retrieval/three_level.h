#ifndef HMMM_RETRIEVAL_THREE_LEVEL_H_
#define HMMM_RETRIEVAL_THREE_LEVEL_H_

#include <vector>

#include "core/category_level.h"
#include "retrieval/traversal.h"

namespace hmmm {

/// Temporal pattern retrieval over a d=3 HMMM: the category level (S3)
/// prunes the Step-2 video scan. Only the videos of clusters whose B3
/// signature contains a first-step event are traversed — the multi-level
/// generalization Definition 1 allows, applied as ClassView-style ([10])
/// hierarchical pruning on top of the 2-level engine.
///
/// The per-video lattice walk is delegated to HmmmTraversal, so the
/// cube-pruned best-first beam selection and its heap_pops /
/// grid_cells_skipped accounting (traversal.h) apply here unchanged —
/// the category layer only decides WHICH videos are walked, never how.
class ThreeLevelTraversal {
 public:
  /// All references must outlive the traversal. `pool` and `index`
  /// (both optional) are forwarded to the underlying 2-level traversal:
  /// the pool for its per-video fan-out, the index as the shared
  /// model-tier EventBitmapIndex (self-built when omitted).
  ThreeLevelTraversal(const HierarchicalModel& model,
                      const VideoCatalog& catalog,
                      const CategoryLevel& categories,
                      TraversalOptions options = {},
                      ThreadPool* pool = nullptr,
                      const EventBitmapIndex* index = nullptr);

  /// Runs the pruned retrieval; results sorted by descending SS.
  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, RetrievalStats* stats = nullptr) const;

  /// The pruned video visiting order: clusters containing a first-step
  /// event (ordered by Pi3 then A3 chaining), their member videos
  /// in-cluster; videos of non-containing clusters are skipped entirely.
  /// Falls back to all videos when no cluster contains the event. Polls
  /// the options' deadline/cancellation between cluster picks and
  /// truncates at a cluster boundary when either fires (the underlying
  /// fan-out then degrades over the truncated order).
  std::vector<VideoId> PrunedVideoOrder(const TemporalPattern& pattern) const;

 private:
  /// PrunedVideoOrder plus degradation accounting: `*dropped_videos` is
  /// how many videos an expired deadline/cancellation truncated away
  /// (0 for a full order), so Retrieve can mark the result degraded with
  /// the same contract as the 2-level engine.
  std::vector<VideoId> PrunedVideoOrderInternal(const TemporalPattern& pattern,
                                                size_t* dropped_videos) const;

  const HierarchicalModel& model_;
  const CategoryLevel& categories_;
  QueryTrace* trace_;  // = options.trace; may be null
  std::chrono::steady_clock::time_point deadline_;  // = options.deadline
  const CancellationToken* cancellation_;  // = options.cancellation
  HmmmTraversal traversal_;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_THREE_LEVEL_H_
