#ifndef HMMM_RETRIEVAL_TRAVERSAL_H_
#define HMMM_RETRIEVAL_TRAVERSAL_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "observability/query_trace.h"
#include "retrieval/result.h"
#include "retrieval/scorer.h"

namespace hmmm {

/// Options for the HMMM lattice traversal.
struct TraversalOptions {
  /// Number of alternative paths kept per hop. 1 reproduces the paper's
  /// greedy "always traverse the most optimal path"; larger beams trade
  /// cost for recall (ablated in bench_fig3_lattice).
  int beam_width = 1;
  /// Maximum ranked results returned (Step 8/9).
  int max_results = 20;
  /// Allow one shot to serve two consecutive steps (the paper permits
  /// T_m <= T_n; default requires strictly later shots).
  bool allow_same_shot = false;
  /// Continue a pattern into an affine next video when the current video
  /// runs out of shots (Fig. 3's video hand-over), instead of failing the
  /// candidate.
  bool cross_video = false;
  /// Consider at most this many videos (Step 7 loops all M; -1 = all).
  int max_videos = -1;
  /// Step 3 of the flowchart looks for "the specified video shot which is
  /// annotated as event e_j or similar to event e_j": when true (default),
  /// each hop restricts its candidates to shots literally annotated with
  /// the step's events whenever any exist, falling back to pure Eq.-14
  /// similarity over all shots otherwise. false = similarity only.
  bool annotated_first = true;
  /// Candidate videos are fanned out across this many worker threads;
  /// each video's shot-level lattice walk is independent given the
  /// Step-2 video order, and per-worker top-K heaps are merged with a
  /// deterministic (score, video-order) tie-break, so the ranked output
  /// is byte-identical to the serial walk at any thread count. 1 = run
  /// serially on the calling thread (the default); 0 = one worker per
  /// hardware thread.
  int num_threads = 1;
  /// When set, the traversal records one span per phase (Step-2 video
  /// ordering, per-video Steps 3-5 lattice walk, Eq.-15 scoring, Step 7-9
  /// merge/rank) into this trace, with wall times and RetrievalStats-style
  /// counters. Not owned; must outlive the traversal. Recording never
  /// changes what is computed, so the ranked output stays byte-identical
  /// with tracing on or off, at any thread count.
  QueryTrace* trace = nullptr;
  ScorerOptions scorer;
};

/// The temporal pattern retrieval process of Section 5 (Steps 1-9),
/// generalized from greedy to beam search:
///   Step 2 walks videos ordered by B2 containment of e_1 and A2 affinity
///   to the previously visited video; Steps 3-5 walk each video's lattice
///   (Fig. 3) scoring hops with Eqs. 12-14; Step 6 computes SS (Eq. 15);
///   Steps 7-9 rank the per-video candidates.
class HmmmTraversal {
 public:
  /// Model and catalog must outlive the traversal. When `pool` is given
  /// it is used for the per-video fan-out (and must outlive the
  /// traversal); otherwise a pool is created iff options.num_threads
  /// resolves to more than one worker.
  HmmmTraversal(const HierarchicalModel& model, const VideoCatalog& catalog,
                TraversalOptions options = {}, ThreadPool* pool = nullptr);

  /// Runs the retrieval; results are sorted by descending SS.
  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, RetrievalStats* stats = nullptr) const;

  /// Same, but visits exactly the given videos in the given order (used
  /// by the three-level engine to prune via the category layer).
  StatusOr<std::vector<RetrievedPattern>> RetrieveWithVideoOrder(
      const TemporalPattern& pattern, const std::vector<VideoId>& order,
      RetrievalStats* stats = nullptr) const;

  /// The Step-2 video visiting order for a pattern's first step: videos
  /// containing a first-step event (per B2) first — seeded by Pi2 and
  /// chained by A2 affinity — then the rest. Exposed for tests.
  std::vector<VideoId> VideoOrder(const TemporalPattern& pattern) const;

 private:
  struct Path {
    std::vector<int> states;          // global state indices
    std::vector<double> edge_weights; // w_1 .. w_j
    double last_weight = 0.0;
    double score_sum = 0.0;
    bool crossed_video = false;
    VideoId current_video = -1;
  };

  /// True if video `v` contains at least one event usable by `step`.
  bool VideoContainsStep(VideoId v, const PatternStep& step) const;

  /// True if the shot's annotations satisfy some alternative of `step`.
  bool ShotAnnotatedForStep(ShotId shot, const PatternStep& step) const;

  /// Candidate local states in [first, last] of `local` for `step`:
  /// annotation matches if any exist (and annotated_first is set), else
  /// all states in the range (counted as an annotated fallback in
  /// `stats`).
  std::vector<int> CandidateStates(const LocalShotModel& local, int first,
                                   int last, const PatternStep& step,
                                   RetrievalStats* stats) const;

  std::vector<Path> ExpandWithinVideo(const Path& path,
                                      const PatternStep& step,
                                      const SimilarityScorer& scorer,
                                      RetrievalStats* stats) const;
  std::vector<Path> ExpandCrossVideo(const Path& path, const PatternStep& step,
                                     const SimilarityScorer& scorer,
                                     RetrievalStats* stats) const;

  /// Steps 3-6 for one candidate video: the shot-level lattice walk.
  /// Fills `out` with the video's best path and returns true when the
  /// video yields a candidate. Thread-safe across distinct (scorer,
  /// stats) pairs — the model and catalog are only read. When tracing is
  /// enabled `parent_span`/`order_index` place the video's span (and its
  /// walk/scoring children) deterministically in the trace tree.
  bool TraverseVideo(VideoId video, const TemporalPattern& pattern,
                     const SimilarityScorer& scorer, RetrievalStats* stats,
                     RetrievedPattern* out, int parent_span = -1,
                     int64_t order_index = -1) const;

  const HierarchicalModel& model_;
  const VideoCatalog& catalog_;
  TraversalOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  // external or owned_pool_.get(); may be null
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_TRAVERSAL_H_
