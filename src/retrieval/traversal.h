#ifndef HMMM_RETRIEVAL_TRAVERSAL_H_
#define HMMM_RETRIEVAL_TRAVERSAL_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "observability/query_trace.h"
#include "retrieval/query_plan.h"
#include "retrieval/result.h"
#include "retrieval/scorer.h"

namespace hmmm {

/// Options for the HMMM lattice traversal.
struct TraversalOptions {
  /// Number of alternative paths kept per hop. 1 reproduces the paper's
  /// greedy "always traverse the most optimal path"; larger beams trade
  /// cost for recall (ablated in bench_fig3_lattice).
  int beam_width = 1;
  /// Maximum ranked results returned (Step 8/9).
  int max_results = 20;
  /// Allow one shot to serve two consecutive steps (the paper permits
  /// T_m <= T_n; default requires strictly later shots).
  bool allow_same_shot = false;
  /// Continue a pattern into an affine next video when the current video
  /// runs out of shots (Fig. 3's video hand-over), instead of failing the
  /// candidate.
  bool cross_video = false;
  /// Consider at most this many videos (Step 7 loops all M; -1 = all).
  int max_videos = -1;
  /// Step 3 of the flowchart looks for "the specified video shot which is
  /// annotated as event e_j or similar to event e_j": when true (default),
  /// each hop restricts its candidates to shots literally annotated with
  /// the step's events whenever any exist, falling back to pure Eq.-14
  /// similarity over all shots otherwise. false = similarity only.
  bool annotated_first = true;
  /// Candidate videos are fanned out across this many worker threads;
  /// each video's shot-level lattice walk is independent given the
  /// Step-2 video order, and per-worker top-K heaps are merged with a
  /// deterministic (score, video-order) tie-break, so the ranked output
  /// is byte-identical to the serial walk at any thread count. 1 = run
  /// serially on the calling thread (the default); 0 = one worker per
  /// hardware thread.
  int num_threads = 1;
  /// When set, the traversal records one span per phase (Step-2 video
  /// ordering, query-plan build, per-video Steps 3-5 lattice walk, Eq.-15
  /// scoring, Step 7-9 merge/rank) into this trace, with wall times and
  /// RetrievalStats-style counters. Not owned; must outlive the
  /// traversal. Recording never changes what is computed, so the ranked
  /// output stays byte-identical with tracing on or off, at any thread
  /// count.
  QueryTrace* trace = nullptr;
  /// Absolute wall-clock budget on the steady clock. When the deadline
  /// fires mid-retrieval the traversal degrades gracefully instead of
  /// failing: it returns the best *anytime* ranking over the prefix of
  /// Step-2 videos whose lattice walks completed, sets stats->degraded
  /// and counts the abandoned videos in stats->videos_skipped. For a
  /// fixed set of completed videos the anytime ranking is byte-identical
  /// to a full retrieval restricted to that video prefix, at any thread
  /// count. Default: no deadline.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  /// Optional cooperative cancellation, polled at the same bounded
  /// intervals as the deadline (between Step-2 ordering picks, between
  /// per-video claims of the Step-7 fan-out, and between pattern steps
  /// of each Steps-3-5 beam walk). Not owned; must outlive every
  /// Retrieve call. Firing it degrades exactly like a deadline.
  const CancellationToken* cancellation = nullptr;
  ScorerOptions scorer;
};

/// The temporal pattern retrieval process of Section 5 (Steps 1-9),
/// generalized from greedy to beam search:
///   Step 2 walks videos ordered by B2 containment of e_1 and A2 affinity
///   to the previously visited video; Steps 3-5 walk each video's lattice
///   (Fig. 3) scoring hops with Eqs. 12-14; Step 6 computes SS (Eq. 15);
///   Steps 7-9 rank the per-video candidates.
///
/// The walk runs on the two-tier query-plan layer (query_plan.h): a
/// model-tier EventBitmapIndex answers "which videos / local shots carry
/// this event" with bitsets, and a per-worker QueryPlan memoizes Eq.-15
/// scores, caches per-(video, step) candidate lists and arena-allocates
/// beam paths.
///
/// Each step's beam selection is a cube-pruned best-first search rather
/// than a breadth-first expand-all: the (prev-path x candidate-state)
/// score grid is enumerated as unevaluated cells carrying an exact
/// priority from the index's precomputed per-(state, event) similarities,
/// a frontier heap seeded with each row's best cell pops at most
/// beam-width winners, and only winning cells pay a query-time Eq.-14/15
/// evaluation (heap_pops); the rest are skipped (grid_cells_skipped).
/// Payment is deferred to the point of consumption: an intermediate
/// winner pays when the next step reads its weight as an Eq.-13 base
/// prefix (a dead-ended path never pays), and on the final step — whose
/// weights feed nothing but Step 6's argmax, which runs on the exact
/// priorities — only the one winning cell per video pays (see
/// SelectWinners).
/// Neither the plan tiers nor the pruned search change any computed
/// value — rankings, edge weights, states_visited, beam_pruned and the
/// other structural counters are byte-identical to the naive per-path
/// walk at every beam width, thread count and kernel choice (asserted by
/// reference_traversal_test); only the evaluation-effort counters
/// (sim_evaluations, sim_memo_hits) shrink. See DESIGN.md §5.1.
class HmmmTraversal {
 public:
  /// Model and catalog must outlive the traversal. When `pool` is given
  /// it is used for the per-video fan-out (and must outlive the
  /// traversal); otherwise a pool is created iff options.num_threads
  /// resolves to more than one worker. When `index` is given it must be
  /// fresh for `model` and outlive the traversal (the engine shares one
  /// per model version); otherwise the traversal builds its own.
  HmmmTraversal(const HierarchicalModel& model, const VideoCatalog& catalog,
                TraversalOptions options = {}, ThreadPool* pool = nullptr,
                const EventBitmapIndex* index = nullptr);

  /// Runs the retrieval; results are sorted by descending SS. With a
  /// deadline/cancellation armed in the options, a fired retrieval still
  /// returns OK with the anytime prefix ranking (see
  /// TraversalOptions::deadline); it never fails just for running out of
  /// time.
  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, RetrievalStats* stats = nullptr) const;

  /// Same, but visits exactly the given videos in the given order (used
  /// by the three-level engine to prune via the category layer).
  StatusOr<std::vector<RetrievedPattern>> RetrieveWithVideoOrder(
      const TemporalPattern& pattern, const std::vector<VideoId>& order,
      RetrievalStats* stats = nullptr) const;

  /// The Step-2 video visiting order for a pattern's first step: videos
  /// containing a first-step event (per B2) first — seeded by Pi2 and
  /// chained by A2 affinity — then the rest. Exposed for tests. Polls
  /// the options' deadline/cancellation between picks and truncates the
  /// order (a prefix of the full one, since the affinity chaining is
  /// deterministic) when either fires.
  std::vector<VideoId> VideoOrder(const TemporalPattern& pattern) const;

  /// The model-tier index this traversal runs on. A self-built index is
  /// (re)built lazily whenever the model's version counter has moved, so
  /// mutating the model through a learner between queries stays valid; an
  /// externally supplied index is trusted (the engine rebuilds it).
  const EventBitmapIndex& event_index() const { return CurrentIndex(); }

 private:
  /// Shared per-retrieval cancellation state: the deadline/token pair
  /// plus the atomic video-order cutoff that makes degraded results a
  /// deterministic order-prefix (defined in traversal.cc).
  struct CancelScope;

  /// How one video's lattice walk ended.
  enum class WalkOutcome {
    kNoCandidate,  // walked fully, no complete candidate in this video
    kCandidate,    // walked fully, *out holds the video's best path
    kAborted,      // deadline/cancellation fired mid-walk; nothing usable
  };

  /// One beam entry: an arena-backed path (see QueryPlan::PathNode) plus
  /// the running Eq.-13/-15 accumulators the walk sorts and prunes on.
  /// Copying a PathRef is O(1) regardless of path length.
  struct PathRef {
    int32_t node = -1;                // arena id of the last hop
    double last_weight = 0.0;         // w_j of that hop
    double score_sum = 0.0;           // Eq. 15 partial sum
    VideoId current_video = -1;
    bool crossed_video = false;
  };

  /// One unevaluated cell of a step's (prev-path x candidate-state) score
  /// grid. `base` is the Eq.-13 weight prefix — everything except the
  /// final sim factor, accumulated in the reference association order —
  /// and `priority` is the cell's frontier key: base * the index's exact
  /// precomputed step similarity (bit-for-bit the true weight) when the
  /// plan's priorities are exact, +infinity otherwise. `gen` is the
  /// cell's position in the reference emission order (rows in beam
  /// order, candidates in list order — its append index in the step's
  /// flat cell buffer), the tie-break that keeps winner selection
  /// byte-identical to the reference stable sort.
  struct GridCell {
    double base = 0.0;
    double priority = 0.0;
    int state = -1;        // global state of the hop
    uint32_t gen = 0;
    int32_t row = -1;      // index of the beam path this cell extends
    VideoId video = -1;    // path's video after this hop
    bool crossed = false;  // hop jumps to another video (Fig. 3 hand-over)
  };

  /// Half-open [begin, end) range of one beam path's cells within the
  /// step's flat cell buffer. A flat buffer plus spans is reused across
  /// steps (capacity survives clear()), where a vector-of-rows would
  /// reallocate every inner vector each step.
  struct RowSpan {
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  /// A popped cell with its evaluated true weight w_j = base * sim.
  struct ScoredCell {
    GridCell cell;
    double weight = 0.0;
  };

  /// One live frontier entry: a row's current best unpopped cell position
  /// in the flat cell buffer, plus the row's end. The row successor
  /// (index + 1) enters the heap only after this cell pops.
  struct FrontierRef {
    uint32_t index = 0;
    uint32_t end = 0;
  };

  /// Per-worker scratch buffers threaded through the walk so the
  /// steady-state traversal allocates nothing: each vector's capacity
  /// survives clear() across rows, steps and videos. One instance per
  /// fan-out shard — never shared across threads.
  struct WalkScratch {
    std::vector<GridCell> cells;       // one step's flat score grid
    std::vector<RowSpan> rows;         // one span per beam path
    std::vector<ScoredCell> winners;   // SelectWinners output
    std::vector<FrontierRef> frontier; // cube-pruning heap storage
    std::vector<int> candidates;       // CandidateStates output
    std::vector<VideoId> cross_videos; // BuildCrossCells video ranking
    std::vector<PathRef> beam_paths;   // surviving beam, current step
    std::vector<PathRef> next_paths;   // beam under construction
  };

  /// Appends the within-video grid row for `path` at `step_index` to
  /// `scratch.cells`: candidate states sliced to the gap window,
  /// transition-filtered, with base = last_weight * A1 — the reference
  /// expansion minus its Eq.-15 evaluation. Each cell counts toward
  /// states_visited; its gen is its append position in the buffer.
  void BuildWithinRow(QueryPlan& plan, const PathRef& path, size_t step_index,
                      RetrievalStats* stats, int32_t row,
                      WalkScratch& scratch) const;
  /// Appends the cross-video fallback cells for `path` (called only when
  /// its within-video row came up empty, mirroring the reference) to
  /// `scratch.cells`: top-beam affine videos, base = (last_weight * A2
  /// hop) * Pi1.
  void BuildCrossCells(QueryPlan& plan, const PathRef& path, size_t step_index,
                       RetrievalStats* stats, int32_t row,
                       WalkScratch& scratch) const;
  /// The cube-pruned selection over a step's flat cell buffer (`rows`
  /// spans one range per beam path): sorts each row range by (priority
  /// desc, gen asc), seeds a frontier heap with every row's best cell,
  /// and pops the top-`beam` winners. Fills `winners` sorted by (weight
  /// desc, gen asc), exactly the reference's stable-sorted,
  /// beam-truncated expansion list. Counts beam_pruned and the pay/skip
  /// split of heap_pops / grid_cells_skipped.
  ///
  /// Who pays the query-time Eq.-14/15 evaluation depends on the mode:
  ///  - Exact priorities, intermediate step: nobody here. Priority ==
  ///    true weight bit-for-bit, so pop order is winner order and the
  ///    winners carry their priorities as weights; each pays later, at
  ///    the moment the next step consumes its weight (TraverseVideo's
  ///    deferred payment) — or never, if its path dead-ends.
  ///  - Exact priorities, `final_step`: the "lazy last level". No later
  ///    step consumes a final-step weight, and Step 6's argmax over
  ///    score_sum runs on the exact priorities, so only the single
  ///    argmax cell — the one whose weight the materialized result
  ///    actually reports — pays. `parents` supplies the score_sum
  ///    prefixes (null for the seed step, where the prefix is 0).
  ///  - Inexact (+infinity) priorities: the frontier can prove nothing,
  ///    so every cell pops and pays — the reference's
  ///    evaluate-everything behavior, same winners, same counters.
  /// Reads `scratch.cells` / `scratch.rows`, fills `scratch.winners`.
  void SelectWinners(QueryPlan& plan, size_t step_index, size_t beam,
                     bool final_step, const std::vector<PathRef>* parents,
                     WalkScratch& scratch, RetrievalStats* stats) const;

  /// Appends `state` to `path` with edge weight `weight`.
  static PathRef Extend(QueryPlan& plan, const PathRef& path, int state,
                        double weight);

  /// Candidate local states in [first, last] for step `step_index` of the
  /// plan's pattern: the plan's annotated list sliced to the range if any
  /// fall inside (and annotated_first is set), else all states in the
  /// range (counted as an annotated fallback in `stats`). Appends the
  /// chosen states to `out`.
  void CandidateStates(QueryPlan& plan, VideoId video, int first, int last,
                       size_t step_index, RetrievalStats* stats,
                       std::vector<int>* out) const;

  /// Steps 3-6 for one candidate video: the shot-level lattice walk.
  /// Fills `out` with the video's best path when the video yields a
  /// candidate. Thread-safe across distinct (plan, stats) pairs — the
  /// model, catalog and index are only read. When tracing is enabled
  /// `parent_span`/`order_index` place the video's span (and its
  /// walk/scoring children) deterministically in the trace tree. When
  /// `cancel` is set the walk polls it between pattern steps; a fired
  /// deadline/cancellation CAS-lowers the scope's cutoff to this walk's
  /// order index and returns kAborted without touching `stats`.
  WalkOutcome TraverseVideo(VideoId video, const TemporalPattern& pattern,
                            QueryPlan& plan, WalkScratch& scratch,
                            RetrievalStats* stats, RetrievedPattern* out,
                            int parent_span = -1, int64_t order_index = -1,
                            CancelScope* cancel = nullptr) const;

  /// Self-built index, rebuilt under the lock when stale; unused when an
  /// external index was supplied.
  const EventBitmapIndex& CurrentIndex() const;

  const HierarchicalModel& model_;
  const VideoCatalog& catalog_;
  TraversalOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  // external or owned_pool_.get(); may be null
  mutable std::mutex index_mutex_;
  mutable std::unique_ptr<EventBitmapIndex> owned_index_;
  const EventBitmapIndex* external_index_ = nullptr;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_TRAVERSAL_H_
