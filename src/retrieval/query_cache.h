#ifndef HMMM_RETRIEVAL_QUERY_CACHE_H_
#define HMMM_RETRIEVAL_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/translator.h"
#include "retrieval/result.h"

namespace hmmm {

/// Canonical cache key of a compiled pattern. Alternatives, conjunctive
/// event sets and gap bounds all participate, so two patterns share a
/// signature iff the traversal treats them identically.
std::string PatternSignature(const TemporalPattern& pattern);

/// Counters snapshot for introspection / tests.
struct QueryCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// A thread-safe LRU cache of ranked retrieval results, keyed by pattern
/// signature and guarded by the model's version counter: the first
/// operation observing a new version flushes every entry, since feedback
/// training rewrites A1/Pi1/A2/Pi2 and invalidates all previous rankings.
class QueryCache {
 public:
  explicit QueryCache(size_t capacity);

  /// On hit, copies the cached ranking into `results`, refreshes the
  /// entry's recency and returns true.
  bool Lookup(const std::string& key, uint64_t version,
              std::vector<RetrievedPattern>* results);

  /// Inserts (or refreshes) one ranking, evicting the least recently
  /// used entry beyond capacity.
  void Insert(const std::string& key, uint64_t version,
              std::vector<RetrievedPattern> results);

  void Clear();

  QueryCacheStats stats() const;

 private:
  /// Drops every entry when `version` differs from the one the current
  /// contents were computed under. Caller holds mutex_.
  void FlushIfStaleLocked(uint64_t version);

  using Entry = std::pair<std::string, std::vector<RetrievedPattern>>;

  const size_t capacity_;
  mutable std::mutex mutex_;
  uint64_t version_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_QUERY_CACHE_H_
