#ifndef HMMM_RETRIEVAL_QUERY_CACHE_H_
#define HMMM_RETRIEVAL_QUERY_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "observability/metrics_registry.h"
#include "query/translator.h"
#include "retrieval/result.h"

namespace hmmm {

/// Canonical cache key of a compiled pattern. Alternatives, conjunctive
/// event sets and gap bounds all participate, so two patterns share a
/// signature iff the traversal treats them identically.
std::string PatternSignature(const TemporalPattern& pattern);

/// Counters snapshot for introspection / tests.
struct QueryCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;      // entries dropped by the LRU capacity bound
  size_t invalidations = 0;  // full flushes (model-version bump or Clear)
  size_t coalesced = 0;      // LookupOrCompute callers that waited behind
                             // another caller's in-flight compute instead
                             // of recomputing (stampede protection)
  size_t entries = 0;
  size_t capacity = 0;
};

/// A thread-safe LRU cache of ranked retrieval results, keyed by pattern
/// signature and guarded by the model's version counter: the first
/// operation observing a new version flushes every entry, since feedback
/// training rewrites A1/Pi1/A2/Pi2 and invalidates all previous rankings.
///
/// Each entry also stores the RetrievalStats of the traversal that
/// produced it, so a hit can replay the original cost accounting into the
/// caller's stats block — stats-requesting queries need not bypass the
/// cache.
class QueryCache {
 public:
  explicit QueryCache(size_t capacity);

  /// Registers hit/miss/eviction/invalidation counters and an occupancy
  /// gauge named `<prefix>hits_total` etc. in `registry` and bumps them
  /// alongside the internal counters. Call once during setup, before
  /// concurrent use; the registry must outlive the cache.
  void AttachMetrics(MetricsRegistry* registry, const std::string& prefix);

  /// On hit, copies the cached ranking into `results`, accumulates the
  /// entry's recorded traversal stats into `stats` (when non-null),
  /// refreshes the entry's recency and returns true.
  bool Lookup(const std::string& key, uint64_t version,
              std::vector<RetrievedPattern>* results,
              RetrievalStats* stats = nullptr);

  /// What LookupOrCompute resolved to.
  enum class LookupOutcome {
    kHit,      // `results`/`stats` filled from the cache
    kCompute,  // caller is the compute leader for `key` and MUST call
               // FinishCompute(key) after Insert-ing or failing
  };

  /// Single-flight lookup (stampede protection): a miss with nobody
  /// computing `key` makes the caller the leader (kCompute). A miss with
  /// a compute already in flight blocks until that compute finishes,
  /// then re-checks — served from the cache if the leader inserted
  /// (kHit, counted as coalesced), otherwise the waiter is promoted to
  /// the new leader (kCompute), so a failed or uncacheable compute never
  /// strands waiters.
  LookupOutcome LookupOrCompute(const std::string& key, uint64_t version,
                                std::vector<RetrievedPattern>* results,
                                RetrievalStats* stats = nullptr);

  /// Ends a kCompute obligation (whether the compute succeeded, failed,
  /// or produced an uncacheable result) and wakes waiters. Idempotent
  /// for keys not in flight.
  void FinishCompute(const std::string& key);

  /// Inserts (or refreshes) one ranking with the stats of the traversal
  /// that computed it, evicting the least recently used entry beyond
  /// capacity.
  void Insert(const std::string& key, uint64_t version,
              std::vector<RetrievedPattern> results,
              RetrievalStats stats = {});

  void Clear();

  QueryCacheStats stats() const;

 private:
  /// Drops every entry when `version` differs from the one the current
  /// contents were computed under. Caller holds mutex_.
  void FlushIfStaleLocked(uint64_t version);

  struct Entry {
    std::string key;
    std::vector<RetrievedPattern> results;
    RetrievalStats stats;
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable in_flight_cv_;
  /// Keys with a compute leader between LookupOrCompute → FinishCompute.
  std::unordered_set<std::string> in_flight_;
  uint64_t version_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
  size_t invalidations_ = 0;
  size_t coalesced_ = 0;
  // Optional registry mirrors; null until AttachMetrics.
  Counter* hits_metric_ = nullptr;
  Counter* misses_metric_ = nullptr;
  Counter* evictions_metric_ = nullptr;
  Counter* invalidations_metric_ = nullptr;
  Counter* coalesced_metric_ = nullptr;
  Gauge* entries_metric_ = nullptr;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_QUERY_CACHE_H_
