#include "retrieval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace hmmm {

namespace {

/// Position of each annotated shot within its video's annotated-shot
/// sequence (the unit temporal gap bounds are measured in).
std::map<ShotId, int> AnnotatedPositions(const VideoCatalog& catalog,
                                         VideoId video) {
  std::map<ShotId, int> positions;
  int position = 0;
  for (ShotId sid : catalog.AnnotatedShots(video)) {
    positions[sid] = position++;
  }
  return positions;
}

bool ShotSatisfiesStep(const ShotRecord& shot, const PatternStep& step) {
  for (const auto& alternative : step.alternatives) {
    bool all = true;
    for (EventId e : alternative) {
      if (!shot.HasEvent(e)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

}  // namespace

bool PatternMatchesAnnotations(const VideoCatalog& catalog,
                               const std::vector<ShotId>& shots,
                               const TemporalPattern& pattern) {
  if (shots.size() != pattern.size()) return false;
  for (size_t j = 0; j < shots.size(); ++j) {
    if (shots[j] < 0 ||
        static_cast<size_t>(shots[j]) >= catalog.num_shots()) {
      return false;
    }
    if (!ShotSatisfiesStep(catalog.shot(shots[j]), pattern.steps[j])) {
      return false;
    }
    // Temporal gap bound against the previous step's shot.
    const int max_gap = pattern.steps[j].max_gap;
    if (j > 0 && max_gap >= 0) {
      const ShotRecord& prev = catalog.shot(shots[j - 1]);
      const ShotRecord& curr = catalog.shot(shots[j]);
      if (prev.video_id != curr.video_id) return false;
      const auto positions = AnnotatedPositions(catalog, curr.video_id);
      const auto p = positions.find(prev.id);
      const auto c = positions.find(curr.id);
      if (p == positions.end() || c == positions.end()) return false;
      if (c->second - p->second > max_gap) return false;
    }
  }
  return true;
}

std::vector<std::vector<ShotId>> EnumerateTrueOccurrences(
    const VideoCatalog& catalog, const TemporalPattern& pattern,
    size_t max_count) {
  std::vector<std::vector<ShotId>> occurrences;
  if (pattern.empty()) return occurrences;

  for (const VideoRecord& video : catalog.videos()) {
    const std::vector<ShotId> annotated = catalog.AnnotatedShots(video.id);
    // Per-step matching shots within this video.
    std::vector<std::vector<ShotId>> step_matches(pattern.size());
    bool feasible = true;
    for (size_t j = 0; j < pattern.size(); ++j) {
      for (ShotId sid : annotated) {
        if (ShotSatisfiesStep(catalog.shot(sid), pattern.steps[j])) {
          step_matches[j].push_back(sid);
        }
      }
      if (step_matches[j].empty()) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    const auto positions = AnnotatedPositions(catalog, video.id);
    std::vector<ShotId> chosen;
    auto dfs = [&](auto&& self, size_t j) -> bool {
      if (occurrences.size() >= max_count) return false;
      if (j == pattern.size()) {
        occurrences.push_back(chosen);
        return occurrences.size() < max_count;
      }
      for (ShotId sid : step_matches[j]) {
        if (j > 0 && sid <= chosen.back()) continue;  // temporal order
        const int max_gap = pattern.steps[j].max_gap;
        if (j > 0 && max_gap >= 0 &&
            positions.at(sid) - positions.at(chosen.back()) > max_gap) {
          continue;
        }
        chosen.push_back(sid);
        const bool keep_going = self(self, j + 1);
        chosen.pop_back();
        if (!keep_going) return false;
      }
      return true;
    };
    if (!dfs(dfs, 0)) break;
  }
  return occurrences;
}

RankingMetrics EvaluateRanking(const VideoCatalog& catalog,
                               const TemporalPattern& pattern,
                               const std::vector<RetrievedPattern>& results,
                               size_t k) {
  RankingMetrics metrics;
  metrics.retrieved = results.size();
  const auto truth = EnumerateTrueOccurrences(catalog, pattern);
  metrics.total_relevant = truth.size();
  std::set<std::vector<ShotId>> truth_set(truth.begin(), truth.end());

  const size_t cutoff = std::min(k, results.size());
  size_t relevant_in_cutoff = 0;
  size_t relevant_so_far = 0;
  double ap_sum = 0.0;
  double dcg = 0.0;
  std::set<std::vector<ShotId>> distinct_relevant;
  for (size_t i = 0; i < results.size(); ++i) {
    const bool relevant =
        PatternMatchesAnnotations(catalog, results[i].shots, pattern);
    if (relevant) {
      ++relevant_so_far;
      ap_sum += static_cast<double>(relevant_so_far) /
                static_cast<double>(i + 1);
      if (truth_set.count(results[i].shots) > 0) {
        distinct_relevant.insert(results[i].shots);
      }
      if (i < cutoff) {
        ++relevant_in_cutoff;
        dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
      }
    }
  }
  metrics.relevant_retrieved = relevant_so_far;
  metrics.precision_at_k =
      cutoff > 0 ? static_cast<double>(relevant_in_cutoff) /
                       static_cast<double>(cutoff)
                 : 0.0;
  metrics.recall =
      metrics.total_relevant > 0
          ? static_cast<double>(distinct_relevant.size()) /
                static_cast<double>(metrics.total_relevant)
          : 0.0;
  metrics.average_precision =
      metrics.total_relevant > 0
          ? ap_sum / static_cast<double>(
                         std::min(metrics.total_relevant, results.size()))
          : 0.0;
  double ideal_dcg = 0.0;
  const size_t ideal_hits = std::min(cutoff, metrics.total_relevant);
  for (size_t i = 0; i < ideal_hits; ++i) {
    ideal_dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  metrics.ndcg = ideal_dcg > 0.0 ? dcg / ideal_dcg : 0.0;
  return metrics;
}

}  // namespace hmmm
