#include "retrieval/baseline_index.h"

#include <algorithm>

namespace hmmm {

namespace {

/// True if the shot's annotations satisfy some alternative of the step.
bool ShotMatchesStep(const ShotRecord& shot, const PatternStep& step) {
  for (const auto& alternative : step.alternatives) {
    bool all = true;
    for (EventId e : alternative) {
      if (!shot.HasEvent(e)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

}  // namespace

IndexJoinMatcher::IndexJoinMatcher(const HierarchicalModel& model,
                                   const VideoCatalog& catalog,
                                   const EventIndex& index,
                                   IndexJoinOptions options)
    : model_(model),
      catalog_(catalog),
      index_(index),
      options_(std::move(options)) {}

StatusOr<std::vector<RetrievedPattern>> IndexJoinMatcher::Retrieve(
    const TemporalPattern& pattern, RetrievalStats* stats) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty temporal pattern");
  }
  SimilarityScorer scorer(model_, options_.scorer);
  std::vector<RetrievedPattern> results;
  size_t budget = options_.max_tuples;

  // Collect per-video posting lists for the first step via the index; the
  // union of alternatives' first events prunes the video set.
  std::vector<bool> video_touched(catalog_.num_videos(), false);
  for (const auto& alternative : pattern.steps.front().alternatives) {
    if (alternative.empty()) continue;
    for (ShotId sid : index_.Lookup(alternative.front())) {
      video_touched[static_cast<size_t>(catalog_.shot(sid).video_id)] = true;
    }
  }

  for (size_t v = 0; v < catalog_.num_videos(); ++v) {
    if (!video_touched[v]) continue;
    const auto video = static_cast<VideoId>(v);
    const LocalShotModel& local = model_.local(video);
    const int n = static_cast<int>(local.num_states());
    if (n == 0) continue;
    if (stats != nullptr) ++stats->videos_considered;

    // Per-step matching local states (exact annotation joins).
    std::vector<std::vector<int>> step_candidates(pattern.size());
    for (size_t j = 0; j < pattern.size(); ++j) {
      for (int i = 0; i < n; ++i) {
        const ShotRecord& shot =
            catalog_.shot(local.states[static_cast<size_t>(i)]);
        if (ShotMatchesStep(shot, pattern.steps[j])) {
          step_candidates[j].push_back(i);
        }
      }
      if (step_candidates[j].empty()) break;
    }
    if (std::any_of(step_candidates.begin(), step_candidates.end(),
                    [](const std::vector<int>& c) { return c.empty(); })) {
      continue;
    }

    // Temporally ordered join (DFS over posting lists).
    std::vector<int> chosen;
    std::vector<double> weights;
    bool budget_ok = true;
    auto dfs = [&](auto&& self, size_t j, double last_weight,
                   double score_sum) -> void {
      if (!budget_ok) return;
      if (j == pattern.size()) {
        RetrievedPattern result;
        for (int i : chosen) {
          result.shots.push_back(local.states[static_cast<size_t>(i)]);
        }
        result.edge_weights = weights;
        result.score = score_sum;
        result.video = video;
        results.push_back(std::move(result));
        if (stats != nullptr) ++stats->candidates_scored;
        return;
      }
      for (int t : step_candidates[j]) {
        if (j > 0) {
          const int prev = chosen.back();
          if (options_.allow_same_shot ? t < prev : t <= prev) continue;
          const int max_gap = pattern.steps[j].max_gap;
          if (max_gap >= 0 && t - prev > max_gap) break;  // sorted ascending
        }
        if (budget == 0) {
          budget_ok = false;
          if (stats != nullptr) stats->truncated = true;
          return;
        }
        --budget;
        if (stats != nullptr) ++stats->states_visited;
        const int global =
            model_.GlobalStateOf(local.states[static_cast<size_t>(t)]);
        const double sim = scorer.StepSimilarity(global, pattern.steps[j]);
        double weight;
        if (j == 0) {
          weight = local.pi1[static_cast<size_t>(t)] * sim;
        } else {
          const double transition = local.a1.at(
              static_cast<size_t>(chosen.back()), static_cast<size_t>(t));
          if (transition <= 0.0) continue;
          weight = last_weight * transition * sim;
        }
        chosen.push_back(t);
        weights.push_back(weight);
        self(self, j + 1, weight, score_sum + weight);
        chosen.pop_back();
        weights.pop_back();
        if (!budget_ok) return;
      }
    };
    dfs(dfs, 0, 0.0, 0.0);
    if (!budget_ok) break;
  }

  std::stable_sort(results.begin(), results.end(),
                   [](const RetrievedPattern& a, const RetrievedPattern& b) {
                     return a.score > b.score;
                   });
  if (results.size() > static_cast<size_t>(options_.max_results)) {
    results.resize(static_cast<size_t>(options_.max_results));
  }
  if (stats != nullptr) stats->sim_evaluations = scorer.evaluations();
  return results;
}

}  // namespace hmmm
