#ifndef HMMM_RETRIEVAL_ENGINE_H_
#define HMMM_RETRIEVAL_ENGINE_H_

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/model_builder.h"
#include "observability/metrics_registry.h"
#include "retrieval/admission.h"
#include "retrieval/query_cache.h"
#include "retrieval/traversal.h"

namespace hmmm {

/// High-level facade over catalog + model + traversal: the public entry
/// point a downstream application uses ("build the HMMM over my archive,
/// then answer temporal pattern queries").
///
/// Serving infrastructure lives here rather than in the traversal:
///  - a thread pool sized from TraversalOptions::num_threads, reused by
///    every query's per-video fan-out,
///  - an LRU cache of ranked results keyed by the compiled pattern's
///    signature and the model's version counter, so feedback training
///    (which bumps the version) invalidates all cached rankings at once,
///  - a MetricsRegistry holding query counters, an end-to-end latency
///    histogram, the cache's hit/miss/eviction mirrors and pool/model
///    resource gauges.
class RetrievalEngine {
 public:
  /// Default capacity of the query-result cache (entries, not bytes).
  static constexpr size_t kDefaultQueryCacheEntries = 64;

  /// Builds the engine's HMMM from the catalog. The catalog must outlive
  /// the engine. `query_cache_entries` = 0 disables result caching.
  static StatusOr<RetrievalEngine> Create(
      const VideoCatalog& catalog, ModelBuilderOptions builder_options = {},
      TraversalOptions traversal_options = {},
      size_t query_cache_entries = kDefaultQueryCacheEntries);

  /// Wraps a pre-built (e.g. deserialized or trained) model.
  RetrievalEngine(const VideoCatalog& catalog, HierarchicalModel model,
                  TraversalOptions traversal_options = {},
                  size_t query_cache_entries = kDefaultQueryCacheEntries);

  // Defined in engine.cc where IndexCache is complete.
  RetrievalEngine(RetrievalEngine&&) noexcept;
  RetrievalEngine& operator=(RetrievalEngine&&) noexcept;
  ~RetrievalEngine();

  /// Compiles and runs a textual temporal-pattern query.
  StatusOr<std::vector<RetrievedPattern>> Query(
      const std::string& text, RetrievalStats* stats = nullptr) const;

  /// Runs an already-translated pattern. Results are served from the LRU
  /// cache when an identical pattern was answered under the current model
  /// version; hits replay the recorded RetrievalStats of the traversal
  /// that produced the entry into `stats`, so cost accounting works on
  /// both paths. Concurrent identical misses are coalesced: one caller
  /// computes while the rest wait for its entry (single-flight), so a
  /// stampede of the same query costs one traversal. Degraded (anytime)
  /// results are returned but never cached — a later uncontended query
  /// deserves the full ranking. May fail with kResourceExhausted when
  /// admission control is configured and the engine is saturated.
  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, RetrievalStats* stats = nullptr) const;

  const VideoCatalog& catalog() const { return *catalog_; }
  const HierarchicalModel& model() const { return *model_; }
  /// Mutable model access for the feedback trainer. Training through
  /// OfflineLearner bumps the model version, which invalidates cached
  /// query results; direct matrix edits must call BumpVersion().
  HierarchicalModel& mutable_model() { return *model_; }

  const TraversalOptions& traversal_options() const {
    return traversal_options_;
  }
  /// Replaces the options; resizes the worker pool if num_threads changed
  /// and drops every cached result (options change the ranking).
  void set_traversal_options(const TraversalOptions& options);

  /// Replaces the admission policy. Takes effect for subsequent
  /// Retrieve/Query calls; already-parked waiters re-evaluate against
  /// the new bounds.
  void set_admission_options(const AdmissionOptions& options);
  AdmissionOptions admission_options() const;

  /// Hit/miss/occupancy counters of the query-result cache; all-zero
  /// capacity when caching is disabled.
  QueryCacheStats cache_stats() const;

  /// The shared model-tier EventBitmapIndex for the current model
  /// version. Built lazily on first use and rebuilt when the version
  /// counter moves (the same staleness rule as the query-result cache);
  /// every traversal of the engine runs on this one instance. Returned as
  /// a shared_ptr so an in-flight query keeps its index alive across a
  /// concurrent rebuild.
  std::shared_ptr<const EventBitmapIndex> SharedEventIndex() const;

  /// The engine-owned registry. Stable for the engine's lifetime (also
  /// across moves); external subsystems (e.g. the feedback trainer) may
  /// register their own metrics here to get one unified dump.
  MetricsRegistry& metrics_registry() const { return *metrics_; }

  /// Prometheus text exposition of every registered metric, after
  /// refreshing the pool/model resource gauges.
  std::string DumpMetricsPrometheus() const;
  /// JSON snapshot of the same.
  std::string DumpMetricsJson() const;

 private:
  /// Copies the thread pool's usage atomics, the model version and any
  /// armed fault-point counters into registry gauges. Called by the Dump
  /// methods; gauges are snapshots, not live views.
  void RefreshResourceGauges() const;

  /// Blocks (bounded) for an admission slot per admission_options().
  /// Increments hmmm_admission_rejected_total and returns
  /// kResourceExhausted on shed load. Every OK must be paired with
  /// ReleaseSlot(). Note one deliberate interaction with single-flight:
  /// a cache waiter parks while *holding* its slot, which is safe (the
  /// compute leader always holds a slot too, so progress is guaranteed)
  /// and intended — a coalesced caller is still occupying the engine.
  Status AcquireSlot() const;
  void ReleaseSlot() const;

  const VideoCatalog* catalog_;
  /// unique_ptr so the engine stays movable while traversals hold stable
  /// references.
  std::unique_ptr<HierarchicalModel> model_;
  TraversalOptions traversal_options_;
  std::unique_ptr<ThreadPool> pool_;   // null when num_threads resolves to 1
  std::unique_ptr<QueryCache> cache_;  // null when caching is disabled
  /// Mutex + current index behind a pointer so the engine stays movable.
  struct IndexCache;
  std::unique_ptr<IndexCache> index_cache_;
  /// Mutex + cv + in-flight counters behind a pointer, same movability
  /// trick as IndexCache.
  struct Admission;
  std::unique_ptr<Admission> admission_;
  std::unique_ptr<MetricsRegistry> metrics_;
  // Hot-path handles into metrics_; stable because the registry never
  // relocates entries.
  Counter* queries_total_ = nullptr;
  Counter* query_errors_total_ = nullptr;
  Counter* queries_degraded_total_ = nullptr;
  Counter* admission_rejected_total_ = nullptr;
  Histogram* query_latency_ms_ = nullptr;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_ENGINE_H_
