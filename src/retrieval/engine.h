#ifndef HMMM_RETRIEVAL_ENGINE_H_
#define HMMM_RETRIEVAL_ENGINE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/model_builder.h"
#include "retrieval/query_cache.h"
#include "retrieval/traversal.h"

namespace hmmm {

/// High-level facade over catalog + model + traversal: the public entry
/// point a downstream application uses ("build the HMMM over my archive,
/// then answer temporal pattern queries").
///
/// Serving infrastructure lives here rather than in the traversal:
///  - a thread pool sized from TraversalOptions::num_threads, reused by
///    every query's per-video fan-out, and
///  - an LRU cache of ranked results keyed by the compiled pattern's
///    signature and the model's version counter, so feedback training
///    (which bumps the version) invalidates all cached rankings at once.
class RetrievalEngine {
 public:
  /// Default capacity of the query-result cache (entries, not bytes).
  static constexpr size_t kDefaultQueryCacheEntries = 64;

  /// Builds the engine's HMMM from the catalog. The catalog must outlive
  /// the engine. `query_cache_entries` = 0 disables result caching.
  static StatusOr<RetrievalEngine> Create(
      const VideoCatalog& catalog, ModelBuilderOptions builder_options = {},
      TraversalOptions traversal_options = {},
      size_t query_cache_entries = kDefaultQueryCacheEntries);

  /// Wraps a pre-built (e.g. deserialized or trained) model.
  RetrievalEngine(const VideoCatalog& catalog, HierarchicalModel model,
                  TraversalOptions traversal_options = {},
                  size_t query_cache_entries = kDefaultQueryCacheEntries);

  RetrievalEngine(RetrievalEngine&&) = default;
  RetrievalEngine& operator=(RetrievalEngine&&) = default;

  /// Compiles and runs a textual temporal-pattern query.
  StatusOr<std::vector<RetrievedPattern>> Query(
      const std::string& text, RetrievalStats* stats = nullptr) const;

  /// Runs an already-translated pattern. Results are served from the LRU
  /// cache when an identical pattern was answered under the current model
  /// version; passing a `stats` pointer bypasses the cache, since cached
  /// answers carry no cost accounting.
  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, RetrievalStats* stats = nullptr) const;

  const VideoCatalog& catalog() const { return *catalog_; }
  const HierarchicalModel& model() const { return *model_; }
  /// Mutable model access for the feedback trainer. Training through
  /// OfflineLearner bumps the model version, which invalidates cached
  /// query results; direct matrix edits must call BumpVersion().
  HierarchicalModel& mutable_model() { return *model_; }

  const TraversalOptions& traversal_options() const {
    return traversal_options_;
  }
  /// Replaces the options; resizes the worker pool if num_threads changed
  /// and drops every cached result (options change the ranking).
  void set_traversal_options(const TraversalOptions& options);

  /// Hit/miss/occupancy counters of the query-result cache; all-zero
  /// capacity when caching is disabled.
  QueryCacheStats cache_stats() const;

 private:
  const VideoCatalog* catalog_;
  /// unique_ptr so the engine stays movable while traversals hold stable
  /// references.
  std::unique_ptr<HierarchicalModel> model_;
  TraversalOptions traversal_options_;
  std::unique_ptr<ThreadPool> pool_;   // null when num_threads resolves to 1
  std::unique_ptr<QueryCache> cache_;  // null when caching is disabled
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_ENGINE_H_
