#ifndef HMMM_RETRIEVAL_ENGINE_H_
#define HMMM_RETRIEVAL_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model_builder.h"
#include "retrieval/traversal.h"

namespace hmmm {

/// High-level facade over catalog + model + traversal: the public entry
/// point a downstream application uses ("build the HMMM over my archive,
/// then answer temporal pattern queries").
class RetrievalEngine {
 public:
  /// Builds the engine's HMMM from the catalog. The catalog must outlive
  /// the engine.
  static StatusOr<RetrievalEngine> Create(const VideoCatalog& catalog,
                                          ModelBuilderOptions builder_options = {},
                                          TraversalOptions traversal_options = {});

  /// Wraps a pre-built (e.g. deserialized or trained) model.
  RetrievalEngine(const VideoCatalog& catalog, HierarchicalModel model,
                  TraversalOptions traversal_options = {});

  RetrievalEngine(RetrievalEngine&&) = default;
  RetrievalEngine& operator=(RetrievalEngine&&) = default;

  /// Compiles and runs a textual temporal-pattern query.
  StatusOr<std::vector<RetrievedPattern>> Query(
      const std::string& text, RetrievalStats* stats = nullptr) const;

  /// Runs an already-translated pattern.
  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, RetrievalStats* stats = nullptr) const;

  const VideoCatalog& catalog() const { return *catalog_; }
  const HierarchicalModel& model() const { return *model_; }
  /// Mutable model access for the feedback trainer.
  HierarchicalModel& mutable_model() { return *model_; }

  const TraversalOptions& traversal_options() const {
    return traversal_options_;
  }
  void set_traversal_options(const TraversalOptions& options) {
    traversal_options_ = options;
  }

 private:
  const VideoCatalog* catalog_;
  /// unique_ptr so the engine stays movable while traversals hold stable
  /// references.
  std::unique_ptr<HierarchicalModel> model_;
  TraversalOptions traversal_options_;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_ENGINE_H_
