#ifndef HMMM_RETRIEVAL_BASELINE_INDEX_H_
#define HMMM_RETRIEVAL_BASELINE_INDEX_H_

#include <vector>

#include "retrieval/result.h"
#include "retrieval/scorer.h"
#include "storage/event_index.h"

namespace hmmm {

/// Options for the index-join baseline.
struct IndexJoinOptions {
  int max_results = 20;
  size_t max_tuples = 5000000;
  bool allow_same_shot = false;
  ScorerOptions scorer;
};

/// ClassView-style baseline ([10] in the paper): an inverted event index
/// provides, per video, the shots *literally annotated* with each query
/// event; candidates are temporally ordered joins of those posting lists,
/// scored with the same Eq. 12-15 weights for comparability. Fast on
/// exactly-annotated archives, but blind to "similar" shots that lack the
/// annotation — the capability HMMM's feature-space similarity adds.
class IndexJoinMatcher {
 public:
  IndexJoinMatcher(const HierarchicalModel& model, const VideoCatalog& catalog,
                   const EventIndex& index, IndexJoinOptions options = {});

  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, RetrievalStats* stats = nullptr) const;

 private:
  const HierarchicalModel& model_;
  const VideoCatalog& catalog_;
  const EventIndex& index_;
  IndexJoinOptions options_;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_BASELINE_INDEX_H_
