#ifndef HMMM_RETRIEVAL_SCORER_H_
#define HMMM_RETRIEVAL_SCORER_H_

#include <vector>

#include "core/hierarchical_model.h"
#include "query/translator.h"
#include "retrieval/eq14_kernel.h"

namespace hmmm {

/// Options for the Eq.-14 similarity function.
struct ScorerOptions {
  /// Guard for the division by B1'(e_j, f_y): centroids below this are
  /// clamped (Eq. 14 is undefined at zero centroids; DESIGN.md §5).
  double centroid_epsilon = 1e-3;
  /// Restrict the evaluation to these feature indices (the paper's
  /// "non-zero features of the query sample", 1 <= K <= 20). Empty = all.
  std::vector<int> feature_subset;
  /// Force the scalar Eq.-14 kernel for this scorer regardless of CPU
  /// support (programmatic twin of the HMMM_FORCE_SCALAR env var; used
  /// by the kernel A/B tests and benches). Scores are bit-identical
  /// either way — this only changes which instructions compute them.
  bool force_scalar_kernel = false;
};

/// Implements the similarity of Eq. 14:
///   sim(s, e) = sum_y P12(e, f_y) * (1 - |B1(s,f_y) - B1'(e,f_y)|) / B1'(e,f_y)
/// plus the step-level extension for compound query steps: a conjunctive
/// arc scores the mean of its events' similarities, and a step scores its
/// best alternative arc.
///
/// The per-feature loop is delegated to the Eq.-14 kernel family
/// (eq14_kernel.h): the dense path dispatches to the runtime-selected
/// scalar/AVX2 row kernel, the feature_subset path to the indexed scalar
/// kernel. All kernels share one association order, so the similarity a
/// scorer reports never depends on the kernel that ran.
class SimilarityScorer {
 public:
  /// The model must outlive the scorer.
  explicit SimilarityScorer(const HierarchicalModel& model,
                            ScorerOptions options = {});

  /// Eq. 14 for one global state and one event.
  double EventSimilarity(int global_state, EventId event) const;

  /// Similarity of a state to a compound pattern step.
  double StepSimilarity(int global_state, const PatternStep& step) const;

  /// Number of sim() evaluations performed so far (cost accounting for
  /// the benchmarks).
  size_t evaluations() const { return evaluations_; }
  void ResetEvaluationCount() { evaluations_ = 0; }

  /// The kernel this scorer resolved at construction.
  Eq14Kernel kernel() const { return kernel_; }
  const char* kernel_name() const { return Eq14KernelName(kernel_); }

 private:
  const HierarchicalModel& model_;
  ScorerOptions options_;
  std::vector<int> features_;  // resolved feature index list
  bool dense_ = false;         // features_ is the full identity range
  Eq14Kernel kernel_ = Eq14Kernel::kScalar;
  mutable size_t evaluations_ = 0;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_SCORER_H_
