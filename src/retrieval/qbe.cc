#include "retrieval/qbe.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hmmm {

QbeMatcher::QbeMatcher(const HierarchicalModel& model, QbeOptions options)
    : model_(model),
      options_(std::move(options)),
      kernel_(DefaultEq14Kernel()) {
  if (options_.feature_subset.empty()) {
    features_.resize(static_cast<size_t>(model_.num_features()));
    for (size_t i = 0; i < features_.size(); ++i) {
      features_[i] = static_cast<int>(i);
    }
  } else {
    features_ = options_.feature_subset;
    for (int f : features_) {
      HMMM_CHECK(f >= 0 && f < model_.num_features());
    }
  }
  // Resolve the per-feature weights once: the weight event's learned P12
  // row, or uniform 1/K over the selected features.
  const bool weighted =
      options_.weight_event >= 0 &&
      static_cast<size_t>(options_.weight_event) < model_.p12().rows();
  weights_.resize(static_cast<size_t>(model_.num_features()));
  const double uniform_weight =
      features_.empty() ? 0.0 : 1.0 / static_cast<double>(features_.size());
  for (size_t f = 0; f < weights_.size(); ++f) {
    weights_[f] =
        weighted
            ? model_.p12().at(static_cast<size_t>(options_.weight_event), f)
            : uniform_weight;
  }
}

std::vector<QbeResult> QbeMatcher::RankAgainst(
    const std::vector<double>& normalized, int exclude_state) const {
  const Matrix& b1 = model_.b1();
  // Eq. 14 with the query sample playing the role of the event centroid
  // B1', scored through the shared kernel family (eq14_kernel.h): the
  // vector kernel for full-width queries, the indexed scalar sequence for
  // the paper's K-feature subsets.
  const bool dense = options_.feature_subset.empty();
  std::vector<QbeResult> results;
  results.reserve(model_.num_global_states());
  for (size_t state = 0; state < model_.num_global_states(); ++state) {
    if (static_cast<int>(state) == exclude_state) continue;
    const double* row = b1.RowPtr(state);
    const double sim =
        dense ? Eq14Row(kernel_, row, normalized.data(), weights_.data(),
                        weights_.size(), options_.epsilon)
              : Eq14RowIndexed(row, normalized.data(), weights_.data(),
                               features_.data(), features_.size(),
                               options_.epsilon);
    results.push_back(
        QbeResult{model_.ShotOfGlobalState(static_cast<int>(state)), sim});
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const QbeResult& a, const QbeResult& b) {
                     return a.similarity > b.similarity;
                   });
  if (results.size() > static_cast<size_t>(options_.max_results)) {
    results.resize(static_cast<size_t>(options_.max_results));
  }
  return results;
}

StatusOr<std::vector<QbeResult>> QbeMatcher::Retrieve(
    const std::vector<double>& raw_example) const {
  HMMM_ASSIGN_OR_RETURN(auto normalized,
                        model_.NormalizeFeatures(raw_example));
  return RankAgainst(normalized, /*exclude_state=*/-1);
}

StatusOr<std::vector<QbeResult>> QbeMatcher::RetrieveSimilarTo(
    ShotId shot) const {
  const int state = model_.GlobalStateOf(shot);
  if (state < 0) {
    return Status::NotFound("shot is not an HMMM state");
  }
  return RankAgainst(model_.b1().Row(static_cast<size_t>(state)), state);
}

}  // namespace hmmm
