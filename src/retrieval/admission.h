#ifndef HMMM_RETRIEVAL_ADMISSION_H_
#define HMMM_RETRIEVAL_ADMISSION_H_

#include <chrono>

namespace hmmm {

/// Admission control for a serving facade's Retrieve/Query entry points
/// (RetrievalEngine, VideoDatabase): bounds the number of in-flight
/// retrievals so an overloaded instance sheds load with a fast
/// kResourceExhausted instead of queueing unboundedly and missing every
/// deadline.
struct AdmissionOptions {
  /// Retrievals allowed to run concurrently. 0 = unlimited (default:
  /// admission control off, zero overhead beyond one mutex hop).
  int max_concurrent = 0;
  /// Callers allowed to park waiting for a slot once max_concurrent is
  /// reached; anyone beyond this fast-fails. 0 = no waiting at all.
  int max_queued = 0;
  /// How long a parked caller waits for a slot before giving up with
  /// kResourceExhausted.
  std::chrono::milliseconds max_queue_wait{50};
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_ADMISSION_H_
