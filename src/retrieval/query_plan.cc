#include "retrieval/query_plan.h"

#include <algorithm>
#include <limits>

#include "common/aligned.h"
#include "common/logging.h"
#include "retrieval/eq14_kernel.h"
#include "storage/event_index.h"

namespace hmmm {

size_t DenseBitset::Count() const {
  size_t n = 0;
  for (uint64_t word : words_) {
    n += static_cast<size_t>(__builtin_popcountll(word));
  }
  return n;
}

bool DenseBitset::Any() const {
  for (uint64_t word : words_) {
    if (word != 0) return true;
  }
  return false;
}

void DenseBitset::AndWith(const DenseBitset& other) {
  HMMM_CHECK(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
}

void DenseBitset::OrWith(const DenseBitset& other) {
  HMMM_CHECK(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

void DenseBitset::SetAll() {
  if (words_.empty()) return;
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  // Clear the tail bits beyond size_ so Count/Any stay exact.
  const size_t tail = size_ & 63;
  if (tail != 0) words_.back() &= (uint64_t{1} << tail) - 1;
}

void DenseBitset::Reset() { std::fill(words_.begin(), words_.end(), 0); }

void EventBitmapIndex::BuildBitsets(const HierarchicalModel& model,
                                    const VideoCatalog& catalog) {
  video_events_.assign(num_events_, DenseBitset(num_videos_));
  for (size_t e = 0; e < num_events_; ++e) {
    for (size_t v = 0; v < num_videos_; ++v) {
      if (model.b2().at(v, e) > 0.0) video_events_[e].Set(v);
    }
  }

  nonempty_videos_ = DenseBitset(num_videos_);
  shot_events_.reserve(num_videos_ * num_events_);
  for (size_t v = 0; v < num_videos_; ++v) {
    const size_t n = model.local(static_cast<VideoId>(v)).num_states();
    if (n > 0) nonempty_videos_.Set(v);
    for (size_t e = 0; e < num_events_; ++e) {
      shot_events_.emplace_back(n);
    }
  }

  // The per-(video, event) state bitsets come from the inverted event
  // index: each posting (event -> shot) sets one bit at the shot's local
  // position. Shots outside the model's state set (possible when the
  // catalog grew after the model was built) are skipped.
  const EventIndex inverted(catalog);
  const size_t indexed_events =
      std::min(num_events_, inverted.num_events());
  for (size_t e = 0; e < indexed_events; ++e) {
    for (ShotId shot : inverted.Lookup(static_cast<EventId>(e))) {
      const int state = model.GlobalStateOf(shot);
      if (state < 0) continue;
      const auto video =
          static_cast<size_t>(model.VideoOfGlobalState(state));
      shot_events_[video * num_events_ + e].Set(
          static_cast<size_t>(model.LocalStateIndexOf(state)));
    }
  }
}

EventBitmapIndex::EventBitmapIndex(const HierarchicalModel& model,
                                   const VideoCatalog& catalog,
                                   Eq14Kernel kernel)
    : model_version_(model.version()),
      num_videos_(model.num_videos()),
      num_events_(model.vocabulary().size()) {
  BuildBitsets(model, catalog);

  // Exact per-(state, event) Eq.-14 similarities under the DEFAULT scorer
  // options, one batch kernel call per event over a feature-major SoA
  // transpose of B1 (32-byte-aligned base, lane-padded stride). The batch
  // kernel shares the row kernel's association order, so these are the
  // same bits a query-time scorer produces — which is what lets the
  // cube-pruned traversal use them as its frontier priorities.
  centroid_epsilon_ = ScorerOptions{}.centroid_epsilon;
  const auto num_states = static_cast<size_t>(model.num_global_states());
  const auto num_features = static_cast<size_t>(model.num_features());
  event_sims_ = Matrix(num_events_, num_states);
  if (num_states > 0 && num_events_ > 0) {
    const size_t stride = Eq14SoaStride(num_states);
    AlignedVector<double> b1_soa(num_features * stride, 0.0);
    for (size_t s = 0; s < num_states; ++s) {
      const double* row = model.b1().RowPtr(s);
      for (size_t f = 0; f < num_features; ++f) {
        b1_soa[f * stride + s] = row[f];
      }
    }
    for (size_t e = 0; e < num_events_; ++e) {
      Eq14Batch(kernel, b1_soa.data(), stride, num_states,
                model.b1_prime().RowPtr(e), model.p12().RowPtr(e),
                num_features, centroid_epsilon_, event_sims_.MutableRowPtr(e));
    }
  }
}

EventBitmapIndex::EventBitmapIndex(const HierarchicalModel& model,
                                   const VideoCatalog& catalog,
                                   Matrix event_sims, double centroid_epsilon)
    : model_version_(model.version()),
      num_videos_(model.num_videos()),
      num_events_(model.vocabulary().size()),
      centroid_epsilon_(centroid_epsilon),
      event_sims_(std::move(event_sims)) {
  HMMM_CHECK(event_sims_.rows() == num_events_);
  HMMM_CHECK(event_sims_.cols() == model.num_global_states());
  BuildBitsets(model, catalog);
}

bool EventBitmapIndex::VideoContainsStep(VideoId video,
                                         const PatternStep& step) const {
  const auto v = static_cast<size_t>(video);
  for (const auto& alternative : step.alternatives) {
    bool all_present = true;
    for (EventId e : alternative) {
      if (!video_events_[static_cast<size_t>(e)].Test(v)) {
        all_present = false;
        break;
      }
    }
    if (all_present) return true;
  }
  return false;
}

DenseBitset EventBitmapIndex::VideosContainingStep(
    const PatternStep& step) const {
  DenseBitset result(num_videos_);
  DenseBitset scratch(num_videos_);
  for (const auto& alternative : step.alternatives) {
    // AND over zero events is all-ones, matching the scalar containment
    // check which treats an empty conjunction as trivially satisfied.
    scratch.SetAll();
    for (EventId e : alternative) {
      scratch.AndWith(video_events_[static_cast<size_t>(e)]);
    }
    result.OrWith(scratch);
  }
  return result;
}

void EventBitmapIndex::StatesAnnotatedForStep(VideoId video,
                                              const PatternStep& step,
                                              DenseBitset* out) const {
  const auto base = static_cast<size_t>(video) * num_events_;
  DenseBitset scratch(out->size());
  out->Reset();
  for (const auto& alternative : step.alternatives) {
    scratch.SetAll();
    for (EventId e : alternative) {
      scratch.AndWith(shot_events_[base + static_cast<size_t>(e)]);
    }
    out->OrWith(scratch);
  }
}

QueryPlan::QueryPlan(const HierarchicalModel& model,
                     const EventBitmapIndex& index,
                     const TemporalPattern& pattern,
                     const ScorerOptions& scorer_options)
    : model_(model),
      index_(index),
      pattern_(pattern),
      scorer_(model, scorer_options),
      num_steps_(pattern.size()),
      exact_priorities_(index.HasExactSims(scorer_options)) {
  HMMM_CHECK(index_.FreshFor(model));
  memo_epoch_.assign(model.num_global_states() * num_steps_, 0);
  memo_value_.assign(memo_epoch_.size(), 0.0);
  candidates_.resize(model.num_videos() * num_steps_);
  if (exact_priorities_) {
    // Combine the index's per-(state, event) sims into a flat
    // (state x step) priority table once per plan: priorities are
    // query-scoped (no walk state feeds them), and a table lookup keeps
    // the per-cell cost of the cube-pruned frontier to one multiply.
    // The combination mirrors SimilarityScorer::StepSimilarity
    // bit-for-bit: events of an alternative sum in declaration order,
    // the mean divides once, and the best alternative wins by
    // (first || mean > best). Any drift here would desynchronize the
    // frontier's priorities from the true weights and break the ranking
    // guarantee, so keep the arithmetic in lockstep.
    priorities_.resize(memo_epoch_.size());
    const auto num_states = static_cast<size_t>(model.num_global_states());
    for (size_t state = 0; state < num_states; ++state) {
      for (size_t step = 0; step < num_steps_; ++step) {
        double best = 0.0;
        bool first = true;
        for (const auto& alternative : pattern_.steps[step].alternatives) {
          if (alternative.empty()) continue;
          double sum = 0.0;
          for (EventId e : alternative) {
            sum += index_.EventSimilarity(static_cast<int>(state), e);
          }
          const double mean = sum / static_cast<double>(alternative.size());
          if (first || mean > best) {
            best = mean;
            first = false;
          }
        }
        priorities_[state * num_steps_ + step] = first ? 0.0 : best;
      }
    }
  }
}

void QueryPlan::BeginVideoWalk() {
  ++epoch_;
  arena_.clear();
}

double QueryPlan::StepSimilarity(int state, size_t step_index) {
  const size_t slot = static_cast<size_t>(state) * num_steps_ + step_index;
  if (memo_epoch_[slot] == epoch_) {
    ++memo_hits_;
    return memo_value_[slot];
  }
  const double value =
      scorer_.StepSimilarity(state, pattern_.steps[step_index]);
  memo_epoch_[slot] = epoch_;
  memo_value_[slot] = value;
  return value;
}

const std::vector<int>& QueryPlan::AnnotatedStates(VideoId video,
                                                   size_t step_index) {
  CandidateEntry& entry =
      candidates_[static_cast<size_t>(video) * num_steps_ + step_index];
  if (entry.epoch == epoch_) {
    ++candidate_reuse_;
    return entry.states;
  }
  entry.epoch = epoch_;
  entry.states.clear();
  const size_t n = model_.local(video).num_states();
  if (step_scratch_.size() != n) step_scratch_ = DenseBitset(n);
  index_.StatesAnnotatedForStep(video, pattern_.steps[step_index],
                                &step_scratch_);
  step_scratch_.ForEachSetBit(
      [&](size_t t) { entry.states.push_back(static_cast<int>(t)); });
  return entry.states;
}

void QueryPlan::MaterializePath(int id, std::vector<ShotId>* shots,
                                std::vector<double>* weights) const {
  size_t length = 0;
  for (int at = id; at >= 0; at = arena_[static_cast<size_t>(at)].parent) {
    ++length;
  }
  shots->assign(length, -1);
  weights->assign(length, 0.0);
  size_t slot = length;
  for (int at = id; at >= 0; at = arena_[static_cast<size_t>(at)].parent) {
    const PathNode& n = arena_[static_cast<size_t>(at)];
    --slot;
    (*shots)[slot] = model_.ShotOfGlobalState(n.state);
    (*weights)[slot] = n.weight;
  }
}

}  // namespace hmmm
