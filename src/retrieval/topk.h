#ifndef HMMM_RETRIEVAL_TOPK_H_
#define HMMM_RETRIEVAL_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace hmmm {

/// Bounded best-K accumulator over any "better than" order: a binary
/// heap with the *worst* retained element at the front so an insertion
/// beyond capacity evicts it. `Better` must be a strict TOTAL order for
/// deterministic contents (the traversal's orders break score ties by a
/// unique generation / video-order index, which is what makes parallel
/// merges byte-identical to the serial ranking).
///
/// Push on a full heap first compares against the current worst: a loser
/// is rejected with that single comparison, and a winner overwrites the
/// front and sifts down in one pass (~log K comparisons) instead of the
/// former pop_heap + push_heap round trip (~2 log K, which re-compared
/// the new element against the evictee it had already beaten).
template <typename T, typename Better>
class TopKHeap {
 public:
  explicit TopKHeap(size_t capacity, Better better = Better())
      : capacity_(capacity), better_(std::move(better)) {}

  void Push(T item) {
    if (entries_.size() == capacity_) {
      // Full: the front holds the worst retained element, so anything
      // not beating it would be pushed and immediately popped — reject
      // on this one comparison alone.
      if (!better_(item, entries_.front())) return;
      ReplaceTop(std::move(item));
      return;
    }
    entries_.push_back(std::move(item));
    std::push_heap(entries_.begin(), entries_.end(), better_);
  }

  bool full() const { return entries_.size() == capacity_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// The worst retained element; only meaningful when non-empty.
  const T& worst() const { return entries_.front(); }

  std::vector<T>& entries() { return entries_; }
  const std::vector<T>& entries() const { return entries_; }

 private:
  /// Overwrites the front (the worst element) with `item` and restores
  /// the heap property with a single root-to-leaf sift-down.
  void ReplaceTop(T item) {
    const size_t n = entries_.size();
    size_t hole = 0;
    while (true) {
      size_t child = 2 * hole + 1;
      if (child >= n) break;
      const size_t right = child + 1;
      // Descend toward the WORSE child: the root slot must end up
      // holding the worst element of every triple on the path.
      if (right < n && better_(entries_[child], entries_[right])) {
        child = right;
      }
      if (!better_(item, entries_[child])) break;
      entries_[hole] = std::move(entries_[child]);
      hole = child;
    }
    entries_[hole] = std::move(item);
  }

  size_t capacity_;
  Better better_;
  std::vector<T> entries_;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_TOPK_H_
