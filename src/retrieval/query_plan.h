#ifndef HMMM_RETRIEVAL_QUERY_PLAN_H_
#define HMMM_RETRIEVAL_QUERY_PLAN_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/hierarchical_model.h"
#include "query/translator.h"
#include "retrieval/eq14_kernel.h"
#include "retrieval/result.h"
#include "retrieval/scorer.h"
#include "storage/catalog.h"

namespace hmmm {

/// Fixed-size dense bitset over [0, size). Sized once; the traversal's
/// hot loops only Test/ForEachSetBit, so a plain word array beats
/// std::vector<bool> (word-at-a-time AND/OR) and avoids per-bit bounds
/// logic.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  /// Number of set bits.
  size_t Count() const;
  bool Any() const;

  /// this &= other / this |= other; both operands must be equally sized.
  void AndWith(const DenseBitset& other);
  void OrWith(const DenseBitset& other);
  /// Sets every bit in [0, size).
  void SetAll();
  void Reset();

  /// Calls fn(i) for every set bit in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn((w << 6) | static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Model-tier index of the query-plan layer: inverted event bitsets
/// derived from one (model, catalog) pair. Built once per model version
/// and shared read-only by every traversal (RetrievalEngine caches one
/// instance keyed by HierarchicalModel::version(), the same counter the
/// query-result cache uses for invalidation).
///
///  - VideosWithEvent(e): bitset over VideoId with B2(v, e) > 0,
///    replacing the per-call B2 row scans of Step 2 / Fig. 3 hand-over.
///  - AnnotatedStates(v, e): bitset over video v's *local* state indices
///    whose shot is annotated with e, replacing the per-expansion
///    ShotRecord::HasEvent loops of Step 3. Built by walking the
///    catalog's EventIndex postings (event -> shots), so construction is
///    O(annotations), not O(states x events).
///  - EventSimilarity(s, e): the EXACT Eq.-14 similarity of every
///    (global state, event) pair under default scorer options,
///    precomputed with one SoA batch-kernel call per event over a
///    32-byte-aligned feature-major transpose of B1. The cube-pruned
///    traversal orders its frontier by these, so only near-winning hops
///    pay a query-time Eq.-14/15 evaluation (DESIGN.md §5.1).
class EventBitmapIndex {
 public:
  /// Both references are only read during construction. The built index
  /// snapshots model.version(); FreshFor() tells a caching layer when a
  /// rebuild is due. `kernel` selects the Eq.-14 batch kernel for the
  /// sim precomputation (default: runtime CPU pick); every kernel
  /// produces identical bits, so the choice only affects build time —
  /// exposed for the scalar-vs-SIMD A/B benches.
  EventBitmapIndex(const HierarchicalModel& model, const VideoCatalog& catalog,
                   Eq14Kernel kernel = DefaultEq14Kernel());

  /// Adopts precomputed exact Eq.-14 sims instead of running the batch
  /// kernel — the snapshot fast path: SnapshotReader hands in the frozen
  /// `event_sims` section as a borrowed matrix (zero copies) plus the
  /// centroid epsilon it was computed with, and only the cheap bitsets
  /// (O(annotations)) are rebuilt here. The caller vouches that
  /// `event_sims` is events x global-states for exactly this (model,
  /// catalog) pair; the writer froze what the kernel constructor would
  /// have produced, so query results stay bit-identical.
  EventBitmapIndex(const HierarchicalModel& model, const VideoCatalog& catalog,
                   Matrix event_sims, double centroid_epsilon);

  uint64_t model_version() const { return model_version_; }
  bool FreshFor(const HierarchicalModel& model) const {
    return model_version_ == model.version();
  }

  size_t num_videos() const { return num_videos_; }
  size_t num_events() const { return num_events_; }

  /// True iff B2(video, event) > 0 — the video carries the event.
  bool VideoHasEvent(VideoId video, EventId event) const {
    return video_events_[static_cast<size_t>(event)].Test(
        static_cast<size_t>(video));
  }
  const DenseBitset& VideosWithEvent(EventId event) const {
    return video_events_[static_cast<size_t>(event)];
  }
  /// Videos with at least one local state (empty locals cannot host a
  /// candidate path).
  const DenseBitset& NonEmptyVideos() const { return nonempty_videos_; }

  /// Local states of `video` annotated with `event`.
  const DenseBitset& AnnotatedStates(VideoId video, EventId event) const {
    return shot_events_[static_cast<size_t>(video) * num_events_ +
                        static_cast<size_t>(event)];
  }

  /// Step-level containment (Step 2): some alternative of `step` has all
  /// its events present in the video per B2.
  bool VideoContainsStep(VideoId video, const PatternStep& step) const;

  /// Bitset of all videos containing `step` (OR over alternatives of AND
  /// over the alternative's event bitsets).
  DenseBitset VideosContainingStep(const PatternStep& step) const;

  /// Fills `out` (sized to the video's local state count) with the local
  /// states annotated for `step`: OR over alternatives of AND over
  /// per-event bitsets.
  void StatesAnnotatedForStep(VideoId video, const PatternStep& step,
                              DenseBitset* out) const;

  /// Precomputed Eq.-14 similarity of `global_state` to `event`. Bit-for-
  /// bit equal to what a SimilarityScorer computes at query time — the
  /// batch and row kernels share one association order — but ONLY under
  /// the options HasExactSims() accepts.
  double EventSimilarity(int global_state, EventId event) const {
    return event_sims_.at(static_cast<size_t>(event),
                          static_cast<size_t>(global_state));
  }

  /// True when the precomputed sims are valid for `options`: the default
  /// centroid epsilon and no feature subset. Kernel choice is irrelevant
  /// (all kernels produce identical bits). When this is false, QueryPlan
  /// falls back to +infinity priorities, which degrades the cube-pruned
  /// search to evaluating every cell — same results, no saving.
  bool HasExactSims(const ScorerOptions& options) const {
    return options.feature_subset.empty() &&
           options.centroid_epsilon == centroid_epsilon_;
  }

  /// The precomputed sims table and the epsilon it was built with —
  /// what SnapshotWriter freezes so no index rebuild is needed at open.
  const Matrix& event_sims() const { return event_sims_; }
  double sims_centroid_epsilon() const { return centroid_epsilon_; }

 private:
  /// Shared bitset construction of both constructors: B2 containment
  /// bitsets, non-empty videos, per-(video, event) local-state bitsets
  /// from the inverted event index.
  void BuildBitsets(const HierarchicalModel& model,
                    const VideoCatalog& catalog);
  uint64_t model_version_ = 0;
  size_t num_videos_ = 0;
  size_t num_events_ = 0;
  std::vector<DenseBitset> video_events_;  // [event] -> videos
  DenseBitset nonempty_videos_;
  std::vector<DenseBitset> shot_events_;   // [video*E + event] -> local states
  double centroid_epsilon_ = 0.0;  // epsilon event_sims_ was built with
  Matrix event_sims_;              // [event][global state] exact Eq.-14 sims
};

/// Query-tier scratch of the query-plan layer: one instance per worker
/// thread per Retrieve() call. Owns the worker's SimilarityScorer and
/// three caches that make the per-video lattice walk (Steps 3-6)
/// beam-size-independent in its redundant work:
///
///  - a flat (global state x pattern step) memo of Eq.-15 StepSimilarity
///    values, so each pair is scored at most once per video walk,
///  - per-(video, step) candidate-state lists (the Step-3 "annotated as
///    e_j" set), computed from the model-tier bitsets once and sliced per
///    beam path instead of rescanned,
///  - a parent-pointer path arena replacing O(length) Path copies per
///    expansion; survivors are materialized only at Step 6.
///
/// All caches are scoped to one video walk (BeginVideoWalk bumps an
/// epoch): each video is walked exactly once per query, and the per-walk
/// scope keeps every RetrievalStats counter — including sim_evaluations
/// and the new sim_memo_hits / candidate_list_reuse — byte-identical at
/// any thread count, because a walk never observes another walk's cache.
class QueryPlan {
 public:
  /// One arena node: the path edge into `state` with Eq.-13 weight
  /// `weight`, linked to the previous hop through `parent` (-1 = path
  /// head).
  struct PathNode {
    double weight = 0.0;
    int32_t parent = -1;
    int32_t state = -1;
  };

  /// All references must outlive the plan; `index` must be fresh for
  /// `model`.
  QueryPlan(const HierarchicalModel& model, const EventBitmapIndex& index,
            const TemporalPattern& pattern, const ScorerOptions& scorer_options);

  const EventBitmapIndex& index() const { return index_; }
  const TemporalPattern& pattern() const { return pattern_; }
  SimilarityScorer& scorer() { return scorer_; }
  const SimilarityScorer& scorer() const { return scorer_; }

  /// Starts a new per-video walk: invalidates the memo and candidate
  /// caches (O(1) epoch bump) and resets the path arena.
  void BeginVideoWalk();

  /// Memoized Eq.-15 similarity of `state` to pattern step `step_index`.
  /// First call per walk evaluates through the scorer; repeats are served
  /// from the memo and counted in memo_hits().
  double StepSimilarity(int state, size_t step_index);

  /// The priority oracle of the cube-pruned frontier: when
  /// exact_priorities() is true this returns EXACTLY the value
  /// StepSimilarity would (the index's precomputed per-event sims,
  /// combined at plan build with the same sum-in-order / divide / max-by
  /// arithmetic into a flat (state x step) table), without touching the
  /// scorer or its evaluation counter. Otherwise it returns +infinity —
  /// an admissible bound that makes every frontier cell pop, reproducing
  /// the unpruned search.
  double StepPriority(int state, size_t step_index) const {
    if (!exact_priorities_) {
      return std::numeric_limits<double>::infinity();
    }
    return priorities_[static_cast<size_t>(state) * num_steps_ + step_index];
  }

  /// True when the index's precomputed sims match this plan's scorer
  /// options, i.e. StepPriority is exact rather than +infinity.
  bool exact_priorities() const { return exact_priorities_; }

  /// Sorted local states of `video` annotated for step `step_index`
  /// (Step 3's candidate set before range slicing). Computed once per
  /// walk per (video, step); repeats are counted in candidate_reuse().
  const std::vector<int>& AnnotatedStates(VideoId video, size_t step_index);

  // -- Path arena -------------------------------------------------------
  /// Appends a node and returns its arena id.
  int AddPathNode(int parent, int state, double weight) {
    arena_.push_back(PathNode{weight, parent, state});
    return static_cast<int>(arena_.size()) - 1;
  }
  const PathNode& node(int id) const {
    return arena_[static_cast<size_t>(id)];
  }
  /// Writes the path ending at `id` into `states`/`weights` in temporal
  /// (head-first) order.
  void MaterializePath(int id, std::vector<ShotId>* shots,
                       std::vector<double>* weights) const;

  /// Served-from-memo StepSimilarity calls since construction.
  size_t memo_hits() const { return memo_hits_; }
  /// AnnotatedStates calls served from the per-walk cache.
  size_t candidate_reuse() const { return candidate_reuse_; }

 private:
  const HierarchicalModel& model_;
  const EventBitmapIndex& index_;
  const TemporalPattern& pattern_;
  SimilarityScorer scorer_;

  // Starts above the stamp vectors' zero-fill so a plan is consistent
  // even before the first BeginVideoWalk().
  uint32_t epoch_ = 1;
  size_t num_steps_ = 0;
  bool exact_priorities_ = false;
  // (state x step) exact step priorities, filled at construction when
  // exact_priorities_ (query-scoped: they do not depend on the walk).
  std::vector<double> priorities_;

  // (state x step) Eq.-15 memo; a slot is valid iff its stamp == epoch_.
  std::vector<uint32_t> memo_epoch_;
  std::vector<double> memo_value_;
  size_t memo_hits_ = 0;

  struct CandidateEntry {
    uint32_t epoch = 0;
    std::vector<int> states;  // sorted ascending
  };
  // (video x step) annotated candidate lists, epoch-scoped like the memo.
  std::vector<CandidateEntry> candidates_;
  size_t candidate_reuse_ = 0;
  DenseBitset step_scratch_;  // reused AND/OR scratch for candidate builds

  std::vector<PathNode> arena_;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_QUERY_PLAN_H_
