#ifndef HMMM_RETRIEVAL_BASELINE_EXHAUSTIVE_H_
#define HMMM_RETRIEVAL_BASELINE_EXHAUSTIVE_H_

#include <vector>

#include "retrieval/result.h"
#include "retrieval/scorer.h"

namespace hmmm {

/// Options for the exhaustive baseline.
struct ExhaustiveOptions {
  int max_results = 20;
  /// Safety cap on enumerated candidate tuples across the whole archive;
  /// hitting it sets RetrievalStats::truncated.
  size_t max_tuples = 5000000;
  bool allow_same_shot = false;
  ScorerOptions scorer;
};

/// Brute-force baseline: enumerates *every* temporally increasing
/// C-tuple of annotated shots within each video, scores each with the
/// exact same Eq. 12-15 weights as the HMMM traversal, and ranks globally.
/// It is the quality gold standard (it cannot miss the best-scoring
/// sequence) and the cost anti-baseline (its work grows as O(N^C) per
/// video), which is the comparison behind the paper's "retrieve accurate
/// patterns quickly with lower computational costs" claim.
class ExhaustiveMatcher {
 public:
  ExhaustiveMatcher(const HierarchicalModel& model,
                    const VideoCatalog& catalog,
                    ExhaustiveOptions options = {});

  StatusOr<std::vector<RetrievedPattern>> Retrieve(
      const TemporalPattern& pattern, RetrievalStats* stats = nullptr) const;

 private:
  const HierarchicalModel& model_;
  const VideoCatalog& catalog_;
  ExhaustiveOptions options_;
};

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_BASELINE_EXHAUSTIVE_H_
