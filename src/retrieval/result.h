#ifndef HMMM_RETRIEVAL_RESULT_H_
#define HMMM_RETRIEVAL_RESULT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "storage/catalog.h"

namespace hmmm {

/// One retrieved candidate shot sequence Q_k = {s_1, ..., s_C} with its
/// edge weights and final similarity score SS(R, Q_k) (Eqs. 12-15).
struct RetrievedPattern {
  std::vector<ShotId> shots;
  std::vector<double> edge_weights;  // w_j per step
  double score = 0.0;                // SS = sum_j w_j
  VideoId video = -1;                // video of the first shot
  bool crosses_videos = false;

  /// "v3[s12 s15] score=0.0123" style rendering for result tables.
  std::string ToString(const VideoCatalog& catalog) const;
};

/// Cost accounting reported by all matchers, the basis of the paper's
/// "lower computational costs" comparison.
struct RetrievalStats {
  size_t videos_considered = 0;
  size_t states_visited = 0;       // lattice node expansions / tuples seen
  size_t sim_evaluations = 0;      // Eq.-14 evaluations
  size_t candidates_scored = 0;    // complete candidate sequences
  size_t beam_pruned = 0;          // expansions dropped by the beam cap
  size_t annotated_fallbacks = 0;  // Step-3 hops with no annotated shot,
                                   // served by pure Eq.-14 similarity
  size_t sim_memo_hits = 0;        // StepSimilarity calls served from the
                                   // query plan's per-walk memo
  size_t candidate_list_reuse = 0; // candidate-state lists served from the
                                   // query plan's per-walk cache
  size_t heap_pops = 0;            // grid cells that paid a query-time
                                   // Eq.-14/15 step evaluation: winners
                                   // whose weight a later step consumed,
                                   // plus each video's Step-6 argmax cell
  size_t grid_cells_skipped = 0;   // grid cells that never paid: proved
                                   // non-winning by their precomputed
                                   // priority, or winners that dead-ended;
                                   // always states_visited - heap_pops
  bool truncated = false;          // an enumeration cap was hit
  /// The retrieval hit its deadline (or was cancelled) and returned the
  /// best *anytime* result over the prefix of Step-2 videos whose lattice
  /// walks completed, instead of the full ranking.
  bool degraded = false;
  /// Videos left unvisited (or whose walks were abandoned mid-flight)
  /// when a deadline/cancellation fired. 0 for a complete retrieval.
  size_t videos_skipped = 0;
};

/// Adds every counter of `from` into `*to` (truncated/degraded are
/// OR-ed). Used by the parallel shard merge and by cache hits replaying
/// recorded stats.
void AccumulateRetrievalStats(const RetrievalStats& from, RetrievalStats* to);

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_RESULT_H_
