#include "retrieval/eq14_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/cpuid.h"

#if defined(__x86_64__) || defined(__i386__)
#define HMMM_EQ14_HAVE_AVX2 1
#include <immintrin.h>
#else
#define HMMM_EQ14_HAVE_AVX2 0
#endif

namespace hmmm {
namespace {

/// One canonical term: t_k = (1 - |x - r|) / max(r, eps). The division is
/// applied to the (1 - diff) numerator BEFORE the weight multiplies in —
/// the weight then joins through a single-rounding fma in the caller, so
/// scalar and vector land on identical bits.
inline double Eq14Term(double x, double r, double eps) {
  const double c = std::max(r, eps);
  const double d = std::abs(x - r);
  return (1.0 - d) / c;
}

double Eq14RowScalar(const double* x, const double* r, const double* w,
                     size_t n, double eps) {
  const size_t main = n & ~size_t{3};
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (size_t k = 0; k < main; k += 4) {
    s0 = std::fma(w[k + 0], Eq14Term(x[k + 0], r[k + 0], eps), s0);
    s1 = std::fma(w[k + 1], Eq14Term(x[k + 1], r[k + 1], eps), s1);
    s2 = std::fma(w[k + 2], Eq14Term(x[k + 2], r[k + 2], eps), s2);
    s3 = std::fma(w[k + 3], Eq14Term(x[k + 3], r[k + 3], eps), s3);
  }
  double sim = (s0 + s2) + (s1 + s3);
  for (size_t k = main; k < n; ++k) {
    sim = std::fma(w[k], Eq14Term(x[k], r[k], eps), sim);
  }
  return sim;
}

/// Strided variant backing the scalar batch path: term k of candidate c
/// reads x_soa[k * stride + c].
double Eq14ColumnScalar(const double* x_soa, size_t stride, const double* r,
                        const double* w, size_t n, double eps) {
  const size_t main = n & ~size_t{3};
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (size_t k = 0; k < main; k += 4) {
    s0 = std::fma(w[k + 0], Eq14Term(x_soa[(k + 0) * stride], r[k + 0], eps), s0);
    s1 = std::fma(w[k + 1], Eq14Term(x_soa[(k + 1) * stride], r[k + 1], eps), s1);
    s2 = std::fma(w[k + 2], Eq14Term(x_soa[(k + 2) * stride], r[k + 2], eps), s2);
    s3 = std::fma(w[k + 3], Eq14Term(x_soa[(k + 3) * stride], r[k + 3], eps), s3);
  }
  double sim = (s0 + s2) + (s1 + s3);
  for (size_t k = main; k < n; ++k) {
    sim = std::fma(w[k], Eq14Term(x_soa[k * stride], r[k], eps), sim);
  }
  return sim;
}

#if HMMM_EQ14_HAVE_AVX2

__attribute__((target("avx2,fma"))) inline __m256d
Eq14TermV(__m256d x, __m256d r, __m256d eps, __m256d ones, __m256d sign_mask) {
  const __m256d c = _mm256_max_pd(r, eps);
  const __m256d d = _mm256_andnot_pd(sign_mask, _mm256_sub_pd(x, r));
  return _mm256_div_pd(_mm256_sub_pd(ones, d), c);
}

/// Features-in-lanes: lane j of the accumulator holds the canonical
/// partial s_j (term k lands in lane k mod 4), the 128-bit-halves
/// reduction IS the canonical (s0 + s2) + (s1 + s3), and the tail folds
/// in scalar with fma — the exact op sequence of Eq14RowScalar.
__attribute__((target("avx2,fma"))) double Eq14RowAvx2(
    const double* x, const double* r, const double* w, size_t n, double eps) {
  const size_t main = n & ~size_t{3};
  const __m256d epsv = _mm256_set1_pd(eps);
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc = _mm256_setzero_pd();
  for (size_t k = 0; k < main; k += 4) {
    const __m256d t = Eq14TermV(_mm256_loadu_pd(x + k), _mm256_loadu_pd(r + k),
                                epsv, ones, sign_mask);
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(w + k), t, acc);
  }
  const __m128d halves =
      _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double sim = _mm_cvtsd_f64(halves) +
               _mm_cvtsd_f64(_mm_unpackhi_pd(halves, halves));
  for (size_t k = main; k < n; ++k) {
    sim = std::fma(w[k], Eq14Term(x[k], r[k], eps), sim);
  }
  return sim;
}

/// Candidates-in-lanes over the SoA block: four accumulator registers
/// carry the four canonical lane partials for four candidates at once
/// (register q's lane c accumulates candidate c's terms k ≡ q mod 4), so
/// each candidate's sum rounds exactly like Eq14RowScalar would.
__attribute__((target("avx2,fma"))) void Eq14BatchAvx2(
    const double* x_soa, size_t stride, size_t count, const double* r,
    const double* w, size_t n, double eps, double* out) {
  const size_t main = n & ~size_t{3};
  const __m256d epsv = _mm256_set1_pd(eps);
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const size_t cmain = count & ~size_t{3};
  for (size_t c = 0; c < cmain; c += 4) {
    __m256d s0 = _mm256_setzero_pd();
    __m256d s1 = _mm256_setzero_pd();
    __m256d s2 = _mm256_setzero_pd();
    __m256d s3 = _mm256_setzero_pd();
    for (size_t k = 0; k < main; k += 4) {
      s0 = _mm256_fmadd_pd(
          _mm256_set1_pd(w[k + 0]),
          Eq14TermV(_mm256_loadu_pd(x_soa + (k + 0) * stride + c),
                    _mm256_set1_pd(r[k + 0]), epsv, ones, sign_mask),
          s0);
      s1 = _mm256_fmadd_pd(
          _mm256_set1_pd(w[k + 1]),
          Eq14TermV(_mm256_loadu_pd(x_soa + (k + 1) * stride + c),
                    _mm256_set1_pd(r[k + 1]), epsv, ones, sign_mask),
          s1);
      s2 = _mm256_fmadd_pd(
          _mm256_set1_pd(w[k + 2]),
          Eq14TermV(_mm256_loadu_pd(x_soa + (k + 2) * stride + c),
                    _mm256_set1_pd(r[k + 2]), epsv, ones, sign_mask),
          s2);
      s3 = _mm256_fmadd_pd(
          _mm256_set1_pd(w[k + 3]),
          Eq14TermV(_mm256_loadu_pd(x_soa + (k + 3) * stride + c),
                    _mm256_set1_pd(r[k + 3]), epsv, ones, sign_mask),
          s3);
    }
    __m256d sim = _mm256_add_pd(_mm256_add_pd(s0, s2), _mm256_add_pd(s1, s3));
    for (size_t k = main; k < n; ++k) {
      sim = _mm256_fmadd_pd(
          _mm256_set1_pd(w[k]),
          Eq14TermV(_mm256_loadu_pd(x_soa + k * stride + c),
                    _mm256_set1_pd(r[k]), epsv, ones, sign_mask),
          sim);
    }
    _mm256_storeu_pd(out + c, sim);
  }
  for (size_t c = cmain; c < count; ++c) {
    out[c] = Eq14ColumnScalar(x_soa + c, stride, r, w, n, eps);
  }
}

#endif  // HMMM_EQ14_HAVE_AVX2

bool ForceScalarFromEnv() {
  const char* value = std::getenv("HMMM_FORCE_SCALAR");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

}  // namespace

bool Avx2KernelAvailable() {
#if HMMM_EQ14_HAVE_AVX2
  static const bool available = CpuSupportsAvx2Fma();
  return available;
#else
  return false;
#endif
}

Eq14Kernel DefaultEq14Kernel() {
  static const Eq14Kernel kernel = [] {
    if (ForceScalarFromEnv()) return Eq14Kernel::kScalar;
    return Avx2KernelAvailable() ? Eq14Kernel::kAvx2 : Eq14Kernel::kScalar;
  }();
  return kernel;
}

const char* Eq14KernelName(Eq14Kernel kernel) {
  return kernel == Eq14Kernel::kAvx2 ? "avx2" : "scalar";
}

double Eq14Row(Eq14Kernel kernel, const double* x, const double* r,
               const double* w, size_t n, double eps) {
#if HMMM_EQ14_HAVE_AVX2
  if (kernel == Eq14Kernel::kAvx2) return Eq14RowAvx2(x, r, w, n, eps);
#else
  (void)kernel;
#endif
  return Eq14RowScalar(x, r, w, n, eps);
}

double Eq14RowIndexed(const double* x, const double* r, const double* w,
                      const int* idx, size_t n, double eps) {
  const size_t main = n & ~size_t{3};
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (size_t k = 0; k < main; k += 4) {
    const size_t f0 = static_cast<size_t>(idx[k + 0]);
    const size_t f1 = static_cast<size_t>(idx[k + 1]);
    const size_t f2 = static_cast<size_t>(idx[k + 2]);
    const size_t f3 = static_cast<size_t>(idx[k + 3]);
    s0 = std::fma(w[f0], Eq14Term(x[f0], r[f0], eps), s0);
    s1 = std::fma(w[f1], Eq14Term(x[f1], r[f1], eps), s1);
    s2 = std::fma(w[f2], Eq14Term(x[f2], r[f2], eps), s2);
    s3 = std::fma(w[f3], Eq14Term(x[f3], r[f3], eps), s3);
  }
  double sim = (s0 + s2) + (s1 + s3);
  for (size_t k = main; k < n; ++k) {
    const size_t f = static_cast<size_t>(idx[k]);
    sim = std::fma(w[f], Eq14Term(x[f], r[f], eps), sim);
  }
  return sim;
}

void Eq14Batch(Eq14Kernel kernel, const double* x_soa, size_t stride,
               size_t count, const double* r, const double* w, size_t n,
               double eps, double* out) {
#if HMMM_EQ14_HAVE_AVX2
  if (kernel == Eq14Kernel::kAvx2) {
    Eq14BatchAvx2(x_soa, stride, count, r, w, n, eps, out);
    return;
  }
#else
  (void)kernel;
#endif
  for (size_t c = 0; c < count; ++c) {
    out[c] = Eq14ColumnScalar(x_soa + c, stride, r, w, n, eps);
  }
}

}  // namespace hmmm
