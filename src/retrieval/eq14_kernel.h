#ifndef HMMM_RETRIEVAL_EQ14_KERNEL_H_
#define HMMM_RETRIEVAL_EQ14_KERNEL_H_

#include <cstddef>

namespace hmmm {

/// The Eq.-14 weighted-distance kernel family. Every entry point computes
///
///   sim = sum_k w[k] * ((1 - |x[k] - r[k]|) / max(r[k], eps))
///
/// in ONE canonical association order shared bit-for-bit by the scalar
/// and the AVX2 implementations:
///
///   * the first 4*floor(n/4) terms accumulate into four lane partials
///     s0..s3 by position (term k goes to s_{k mod 4}), each step a
///     single-rounding fused multiply-add `s = fma(w, t, s)`;
///   * the partials combine as (s0 + s2) + (s1 + s3) — exactly how a
///     256-bit register reduces via its 128-bit halves;
///   * the tail terms (n mod 4) fold into the combined sum sequentially,
///     again with fma.
///
/// Because the order is fixed, kernel choice can never change a computed
/// similarity: the traversal's rankings — and the exact per-(state,
/// event) priorities the cube-pruned search trusts (query_plan.h) — stay
/// byte-identical whether the CPU has AVX2 or the scalar fallback runs.
/// That is a hard contract, asserted by eq14_kernel_test; any new
/// implementation must reproduce the same floating-point op sequence.
enum class Eq14Kernel {
  kScalar,  // portable canonical-order implementation
  kAvx2,    // 256-bit lanes + FMA; requires CpuSupportsAvx2Fma()
};

/// The kernel the process resolved at startup: kAvx2 when the build has
/// an AVX2 code path, the CPU supports AVX2+FMA, and the
/// HMMM_FORCE_SCALAR environment escape hatch is unset/0; kScalar
/// otherwise. Cached after the first call.
Eq14Kernel DefaultEq14Kernel();

/// True when this build carries the AVX2 code path and the CPU can run
/// it (ignores HMMM_FORCE_SCALAR — used by tests to decide whether an
/// A/B sweep is meaningful).
bool Avx2KernelAvailable();

const char* Eq14KernelName(Eq14Kernel kernel);

/// Scores one dense row: x, r and w are n contiguous doubles.
double Eq14Row(Eq14Kernel kernel, const double* x, const double* r,
               const double* w, size_t n, double eps);

/// Scores one row through an index list: term k reads x[idx[k]],
/// r[idx[k]], w[idx[k]] (the scorer's feature_subset path). Gathered
/// loads defeat vectorization, so this is always the canonical scalar
/// sequence — still position-ordered, so a subset of size n costs and
/// rounds exactly like a dense row of size n.
double Eq14RowIndexed(const double* x, const double* r, const double* w,
                      const int* idx, size_t n, double eps);

/// Scores a whole candidate list in one call. `x_soa` is the
/// structure-of-arrays (feature-major) candidate block: candidate c's
/// value for term k lives at x_soa[k * stride + c], with the base pointer
/// and stride 32-byte-aligned so every lane load is aligned. r and w are
/// the shared per-term centroid/weight rows. out[c] receives candidate
/// c's similarity, bit-identical to Eq14Row over candidate c's features.
void Eq14Batch(Eq14Kernel kernel, const double* x_soa, size_t stride,
               size_t count, const double* r, const double* w, size_t n,
               double eps, double* out);

/// Rounds a candidate count up to a 32-byte-aligned SoA stride (a
/// multiple of four doubles).
inline size_t Eq14SoaStride(size_t count) { return (count + 3) & ~size_t{3}; }

}  // namespace hmmm

#endif  // HMMM_RETRIEVAL_EQ14_KERNEL_H_
