#include "retrieval/query_cache.h"

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {

std::string PatternSignature(const TemporalPattern& pattern) {
  std::string signature;
  for (size_t j = 0; j < pattern.steps.size(); ++j) {
    const PatternStep& step = pattern.steps[j];
    if (j > 0) signature += ';';
    signature += StrFormat("g%d:", step.max_gap);
    for (size_t a = 0; a < step.alternatives.size(); ++a) {
      if (a > 0) signature += '|';
      const auto& alternative = step.alternatives[a];
      for (size_t e = 0; e < alternative.size(); ++e) {
        if (e > 0) signature += '&';
        signature += StrFormat("%d", alternative[e]);
      }
    }
  }
  return signature;
}

QueryCache::QueryCache(size_t capacity) : capacity_(capacity) {
  HMMM_CHECK(capacity_ > 0);
}

void QueryCache::AttachMetrics(MetricsRegistry* registry,
                               const std::string& prefix) {
  HMMM_CHECK(registry != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  hits_metric_ = registry->GetCounter(prefix + "hits_total",
                                      "query-cache lookups served");
  misses_metric_ = registry->GetCounter(prefix + "misses_total",
                                        "query-cache lookups missed");
  evictions_metric_ = registry->GetCounter(
      prefix + "evictions_total", "entries dropped by the LRU bound");
  invalidations_metric_ = registry->GetCounter(
      prefix + "invalidations_total",
      "full flushes from model-version bumps or Clear()");
  coalesced_metric_ = registry->GetCounter(
      prefix + "coalesced_total",
      "lookups that waited behind an identical in-flight compute");
  entries_metric_ =
      registry->GetGauge(prefix + "entries", "cached rankings currently held");
}

void QueryCache::FlushIfStaleLocked(uint64_t version) {
  if (version == version_) return;
  lru_.clear();
  index_.clear();
  version_ = version;
  ++invalidations_;
  if (invalidations_metric_ != nullptr) invalidations_metric_->Increment();
  if (entries_metric_ != nullptr) entries_metric_->Set(0.0);
}

bool QueryCache::Lookup(const std::string& key, uint64_t version,
                        std::vector<RetrievedPattern>* results,
                        RetrievalStats* stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  FlushIfStaleLocked(version);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (misses_metric_ != nullptr) misses_metric_->Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  if (hits_metric_ != nullptr) hits_metric_->Increment();
  *results = it->second->results;
  // Replay the cost accounting of the traversal that computed the entry:
  // a hit must not leave the caller's stats block blind.
  if (stats != nullptr) AccumulateRetrievalStats(it->second->stats, stats);
  return true;
}

QueryCache::LookupOutcome QueryCache::LookupOrCompute(
    const std::string& key, uint64_t version,
    std::vector<RetrievedPattern>* results, RetrievalStats* stats) {
  std::unique_lock<std::mutex> lock(mutex_);
  bool waited = false;
  for (;;) {
    FlushIfStaleLocked(version);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      if (hits_metric_ != nullptr) hits_metric_->Increment();
      *results = it->second->results;
      if (stats != nullptr) AccumulateRetrievalStats(it->second->stats, stats);
      return LookupOutcome::kHit;
    }
    if (in_flight_.insert(key).second) {
      // No leader for this key: the caller becomes it.
      ++misses_;
      if (misses_metric_ != nullptr) misses_metric_->Increment();
      return LookupOutcome::kCompute;
    }
    // Somebody is already computing this exact query under this version:
    // wait for them instead of duplicating the traversal (stampede
    // protection), then loop to re-check. The leader may have failed or
    // produced an uncacheable (degraded) result, in which case the
    // re-check finds no entry and this waiter takes over as leader.
    if (!waited) {
      waited = true;
      ++coalesced_;
      if (coalesced_metric_ != nullptr) coalesced_metric_->Increment();
    }
    in_flight_cv_.wait(lock, [&] { return in_flight_.count(key) == 0; });
  }
}

void QueryCache::FinishCompute(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_.erase(key) > 0) in_flight_cv_.notify_all();
}

void QueryCache::Insert(const std::string& key, uint64_t version,
                        std::vector<RetrievedPattern> results,
                        RetrievalStats stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  FlushIfStaleLocked(version);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->results = std::move(results);
    it->second->stats = stats;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(Entry{key, std::move(results), stats});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    if (evictions_metric_ != nullptr) evictions_metric_->Increment();
  }
  if (entries_metric_ != nullptr) {
    entries_metric_->Set(static_cast<double>(lru_.size()));
  }
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  ++invalidations_;
  if (invalidations_metric_ != nullptr) invalidations_metric_->Increment();
  if (entries_metric_ != nullptr) entries_metric_->Set(0.0);
}

QueryCacheStats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.invalidations = invalidations_;
  stats.coalesced = coalesced_;
  stats.entries = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace hmmm
