#include "retrieval/query_cache.h"

#include "common/logging.h"
#include "common/strings.h"

namespace hmmm {

std::string PatternSignature(const TemporalPattern& pattern) {
  std::string signature;
  for (size_t j = 0; j < pattern.steps.size(); ++j) {
    const PatternStep& step = pattern.steps[j];
    if (j > 0) signature += ';';
    signature += StrFormat("g%d:", step.max_gap);
    for (size_t a = 0; a < step.alternatives.size(); ++a) {
      if (a > 0) signature += '|';
      const auto& alternative = step.alternatives[a];
      for (size_t e = 0; e < alternative.size(); ++e) {
        if (e > 0) signature += '&';
        signature += StrFormat("%d", alternative[e]);
      }
    }
  }
  return signature;
}

QueryCache::QueryCache(size_t capacity) : capacity_(capacity) {
  HMMM_CHECK(capacity_ > 0);
}

void QueryCache::FlushIfStaleLocked(uint64_t version) {
  if (version == version_) return;
  lru_.clear();
  index_.clear();
  version_ = version;
}

bool QueryCache::Lookup(const std::string& key, uint64_t version,
                        std::vector<RetrievedPattern>* results) {
  std::lock_guard<std::mutex> lock(mutex_);
  FlushIfStaleLocked(version);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  *results = it->second->second;
  return true;
}

void QueryCache::Insert(const std::string& key, uint64_t version,
                        std::vector<RetrievedPattern> results) {
  std::lock_guard<std::mutex> lock(mutex_);
  FlushIfStaleLocked(version);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(results);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(results));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

QueryCacheStats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.entries = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace hmmm
