#ifndef HMMM_QUERY_TRANSLATOR_H_
#define HMMM_QUERY_TRANSLATOR_H_

#include <string>
#include <vector>

#include "query/matn.h"

namespace hmmm {

/// One step of a temporal pattern: the shot matched at this position must
/// exhibit all events of one of the `alternatives` (each alternative is a
/// conjunctive event set — one MATN arc).
struct PatternStep {
  std::vector<std::vector<EventId>> alternatives;
  /// Temporal gap bound relative to the previous step, measured in
  /// annotated shots (1 = the immediately next annotated shot); -1 =
  /// unbounded. Ignored on the first step.
  int max_gap = -1;

  /// The union of all events mentioned by this step.
  std::vector<EventId> AllEvents() const;
};

/// A translated temporal pattern query: the ordered event requirements
/// R = {e1 <= e2 <= ... <= eC} of Section 5, with per-step alternatives.
struct TemporalPattern {
  std::vector<PatternStep> steps;

  size_t size() const { return steps.size(); }
  bool empty() const { return steps.empty(); }

  /// Builds the simple linear pattern e1 ; e2 ; ... ; eC.
  static TemporalPattern FromEvents(const std::vector<EventId>& events);

  /// Rendering like "free_kick&goal ; corner_kick ; goal".
  std::string ToString(const EventVocabulary& vocabulary) const;
};

/// The query translator of Fig. 1: converts a (linear-chain) MATN into the
/// TemporalPattern consumed by the retrieval engine. Non-chain networks
/// are rejected.
StatusOr<TemporalPattern> TranslateMatn(const MatnGraph& graph);

/// Convenience: parse + translate in one call.
StatusOr<TemporalPattern> CompileQuery(const std::string& text,
                                       const EventVocabulary& vocabulary);

}  // namespace hmmm

#endif  // HMMM_QUERY_TRANSLATOR_H_
