#ifndef HMMM_QUERY_PARSER_H_
#define HMMM_QUERY_PARSER_H_

#include <string>

#include "query/matn.h"

namespace hmmm {

/// Parses the textual temporal-pattern query language into a MATN.
///
/// Grammar (whitespace-insensitive):
///   pattern := step ( (";" | "->") step )*
///   step    := term ( "&" term )*
///   term    := EVENT | "(" EVENT ("|" EVENT)+ ")"
///   EVENT   := [a-z0-9_]+   (must exist in the vocabulary)
///
/// Each step describes one shot of the anticipated pattern; "&" demands
/// simultaneous events on one shot (the paper's "free kick & goal" shot),
/// "(a|b)" accepts either event. The paper's Section-3 example is
///   "free_kick & goal ; corner_kick ; player_change ; goal".
/// A step with conjunctions of alternatives expands into the cross
/// product of parallel MATN arcs (bounded to 64 arcs per step).
StatusOr<MatnGraph> ParseQuery(const std::string& text,
                               const EventVocabulary& vocabulary);

}  // namespace hmmm

#endif  // HMMM_QUERY_PARSER_H_
