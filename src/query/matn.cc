#include "query/matn.h"

#include <algorithm>

#include "common/strings.h"

namespace hmmm {

int MatnGraph::AddState() { return num_states_++; }

Status MatnGraph::AddArc(int from, int to, std::vector<EventId> all_of,
                         int max_gap) {
  if (from < 0 || from >= num_states_ || to < 0 || to >= num_states_) {
    return Status::OutOfRange("MATN arc endpoint out of range");
  }
  if (from >= to) {
    return Status::InvalidArgument("MATN arcs must advance (from < to)");
  }
  if (all_of.empty()) {
    return Status::InvalidArgument("MATN arc needs at least one event");
  }
  if (max_gap != -1 && max_gap < 1) {
    return Status::InvalidArgument("MATN arc max_gap must be -1 or >= 1");
  }
  arcs_.push_back(MatnArc{from, to, std::move(all_of), max_gap});
  return Status::OK();
}

std::vector<const MatnArc*> MatnGraph::ArcsFrom(int state) const {
  std::vector<const MatnArc*> out;
  for (const MatnArc& arc : arcs_) {
    if (arc.from == state) out.push_back(&arc);
  }
  return out;
}

bool MatnGraph::IsLinearChain() const {
  if (num_states_ < 2) return false;
  std::vector<bool> pair_covered(static_cast<size_t>(num_states_) - 1, false);
  for (const MatnArc& arc : arcs_) {
    if (arc.to != arc.from + 1) return false;
    pair_covered[static_cast<size_t>(arc.from)] = true;
  }
  return std::all_of(pair_covered.begin(), pair_covered.end(),
                     [](bool covered) { return covered; });
}

std::string MatnGraph::ToString(const EventVocabulary& vocabulary) const {
  std::string out;
  for (const MatnArc& arc : arcs_) {
    std::vector<std::string> names;
    names.reserve(arc.all_of.size());
    for (EventId e : arc.all_of) names.push_back(vocabulary.Name(e));
    std::string label = StrJoin(names, "&");
    if (arc.max_gap >= 0) label += StrFormat(" [gap<=%d]", arc.max_gap);
    out += StrFormat("S%d --%s--> S%d\n", arc.from, label.c_str(), arc.to);
  }
  return out;
}

}  // namespace hmmm
