#include "query/translator.h"

#include <algorithm>

#include "common/strings.h"
#include "query/parser.h"

namespace hmmm {

std::vector<EventId> PatternStep::AllEvents() const {
  std::vector<EventId> out;
  for (const auto& alternative : alternatives) {
    for (EventId e : alternative) {
      if (std::find(out.begin(), out.end(), e) == out.end()) out.push_back(e);
    }
  }
  return out;
}

TemporalPattern TemporalPattern::FromEvents(const std::vector<EventId>& events) {
  TemporalPattern pattern;
  for (EventId e : events) {
    PatternStep step;
    step.alternatives.push_back({e});
    pattern.steps.push_back(std::move(step));
  }
  return pattern;
}

std::string TemporalPattern::ToString(const EventVocabulary& vocabulary) const {
  std::string out;
  for (size_t j = 0; j < steps.size(); ++j) {
    const PatternStep& step = steps[j];
    if (j > 0) {
      out += step.max_gap >= 0 ? StrFormat(" ;<%d ", step.max_gap) : " ; ";
    }
    std::vector<std::string> alternative_texts;
    for (const auto& alternative : step.alternatives) {
      std::vector<std::string> names;
      for (EventId e : alternative) names.push_back(vocabulary.Name(e));
      alternative_texts.push_back(StrJoin(names, "&"));
    }
    if (alternative_texts.size() == 1) {
      out += alternative_texts[0];
    } else {
      out += "(" + StrJoin(alternative_texts, "|") + ")";
    }
  }
  return out;
}

StatusOr<TemporalPattern> TranslateMatn(const MatnGraph& graph) {
  if (!graph.IsLinearChain()) {
    return Status::InvalidArgument(
        "temporal pattern queries require a linear-chain MATN");
  }
  TemporalPattern pattern;
  for (int state = 0; state + 1 < graph.num_states(); ++state) {
    PatternStep step;
    bool first_arc = true;
    for (const MatnArc* arc : graph.ArcsFrom(state)) {
      step.alternatives.push_back(arc->all_of);
      if (first_arc) {
        step.max_gap = arc->max_gap;
        first_arc = false;
      } else if (step.max_gap != arc->max_gap) {
        return Status::InvalidArgument(
            "parallel MATN arcs disagree on the gap bound");
      }
    }
    pattern.steps.push_back(std::move(step));
  }
  return pattern;
}

StatusOr<TemporalPattern> CompileQuery(const std::string& text,
                                       const EventVocabulary& vocabulary) {
  HMMM_ASSIGN_OR_RETURN(MatnGraph graph, ParseQuery(text, vocabulary));
  return TranslateMatn(graph);
}

}  // namespace hmmm
