#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace hmmm {

namespace {

constexpr size_t kMaxArcsPerStep = 64;

enum class TokenKind { kEvent, kThen, kAnd, kOr, kLParen, kRParen, kLess, kEnd };

struct Token {
  TokenKind kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
      } else if (c == ';') {
        tokens.push_back({TokenKind::kThen, ";"});
        ++i;
      } else if (c == '-' && i + 1 < text_.size() && text_[i + 1] == '>') {
        tokens.push_back({TokenKind::kThen, "->"});
        i += 2;
      } else if (c == '<') {
        tokens.push_back({TokenKind::kLess, "<"});
        ++i;
      } else if (c == '&') {
        tokens.push_back({TokenKind::kAnd, "&"});
        ++i;
      } else if (c == '|') {
        tokens.push_back({TokenKind::kOr, "|"});
        ++i;
      } else if (c == '(') {
        tokens.push_back({TokenKind::kLParen, "("});
        ++i;
      } else if (c == ')') {
        tokens.push_back({TokenKind::kRParen, ")"});
        ++i;
      } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        tokens.push_back({TokenKind::kEvent, text_.substr(i, j - i)});
        i = j;
      } else {
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, i));
      }
    }
    tokens.push_back({TokenKind::kEnd, ""});
    return tokens;
  }

 private:
  const std::string& text_;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const EventVocabulary& vocabulary)
      : tokens_(std::move(tokens)), vocabulary_(vocabulary) {}

  StatusOr<MatnGraph> Parse() {
    MatnGraph graph;
    int previous_state = graph.AddState();
    int pending_gap = -1;  // constraint attached to the upcoming step
    while (true) {
      HMMM_ASSIGN_OR_RETURN(auto step_arcs, ParseStep());
      const int next_state = graph.AddState();
      for (auto& all_of : step_arcs) {
        HMMM_RETURN_IF_ERROR(graph.AddArc(previous_state, next_state,
                                          std::move(all_of), pending_gap));
      }
      previous_state = next_state;
      pending_gap = -1;
      if (Peek().kind == TokenKind::kThen) {
        Consume();
        // Optional temporal gap constraint: ";<N" bounds the next step to
        // within N annotated shots of the previous one.
        if (Peek().kind == TokenKind::kLess) {
          Consume();
          HMMM_ASSIGN_OR_RETURN(pending_gap, ParseNumber());
          if (pending_gap < 1) {
            return Status::InvalidArgument("gap bound must be >= 1");
          }
        }
        continue;
      }
      break;
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument(
          StrFormat("unexpected token '%s'", Peek().text.c_str()));
    }
    return graph;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Consume() { return tokens_[pos_++]; }

  // step := term ("&" term)*; each term is a set of alternative events;
  // the step expands to the cross product of its terms' alternatives.
  StatusOr<std::vector<std::vector<EventId>>> ParseStep() {
    HMMM_ASSIGN_OR_RETURN(auto first, ParseTerm());
    std::vector<std::vector<EventId>> expansions;
    for (EventId e : first) expansions.push_back({e});
    while (Peek().kind == TokenKind::kAnd) {
      Consume();
      HMMM_ASSIGN_OR_RETURN(auto alternatives, ParseTerm());
      std::vector<std::vector<EventId>> next;
      for (const auto& partial : expansions) {
        for (EventId e : alternatives) {
          auto extended = partial;
          extended.push_back(e);
          next.push_back(std::move(extended));
          if (next.size() > kMaxArcsPerStep) {
            return Status::InvalidArgument(
                "query step expands to too many alternatives");
          }
        }
      }
      expansions = std::move(next);
    }
    return expansions;
  }

  // term := EVENT | "(" EVENT ("|" EVENT)+ ")"
  StatusOr<std::vector<EventId>> ParseTerm() {
    if (Peek().kind == TokenKind::kLParen) {
      Consume();
      std::vector<EventId> alternatives;
      HMMM_ASSIGN_OR_RETURN(EventId first, ParseEvent());
      alternatives.push_back(first);
      while (Peek().kind == TokenKind::kOr) {
        Consume();
        HMMM_ASSIGN_OR_RETURN(EventId e, ParseEvent());
        alternatives.push_back(e);
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Status::InvalidArgument("expected ')' in query");
      }
      Consume();
      if (alternatives.size() < 2) {
        return Status::InvalidArgument(
            "alternative group needs at least two events");
      }
      return alternatives;
    }
    HMMM_ASSIGN_OR_RETURN(EventId e, ParseEvent());
    return std::vector<EventId>{e};
  }

  StatusOr<int> ParseNumber() {
    if (Peek().kind != TokenKind::kEvent) {
      return Status::InvalidArgument("expected a number after '<'");
    }
    const std::string text = Consume().text;
    for (char c : text) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return Status::InvalidArgument(
            StrFormat("'%s' is not a number", text.c_str()));
      }
    }
    return std::atoi(text.c_str());
  }

  StatusOr<EventId> ParseEvent() {
    if (Peek().kind != TokenKind::kEvent) {
      return Status::InvalidArgument(
          StrFormat("expected event name, got '%s'", Peek().text.c_str()));
    }
    const std::string name = Consume().text;
    return vocabulary_.Find(name);
  }

  std::vector<Token> tokens_;
  const EventVocabulary& vocabulary_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<MatnGraph> ParseQuery(const std::string& text,
                               const EventVocabulary& vocabulary) {
  if (StripWhitespace(text).empty()) {
    return Status::InvalidArgument("empty query");
  }
  Lexer lexer(text);
  HMMM_ASSIGN_OR_RETURN(auto tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), vocabulary);
  return parser.Parse();
}

}  // namespace hmmm
