#ifndef HMMM_QUERY_MATN_H_
#define HMMM_QUERY_MATN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "media/event_types.h"

namespace hmmm {

/// An arc of a Multimedia Augmented Transition Network. The arc is taken
/// by a shot that exhibits *all* events in `all_of` (the paper's example
/// of a shot annotated both "free kick" and "goal").
struct MatnArc {
  int from = 0;
  int to = 0;
  std::vector<EventId> all_of;
  /// Temporal gap constraint: the shot matched by this arc must lie
  /// within `max_gap` annotated shots after the previous step's shot
  /// (1 = immediately next annotated shot); -1 = unbounded ("at some
  /// point in time later", the paper's default temporal relation).
  int max_gap = -1;
};

/// Query-side Multimedia Augmented Transition Network (Fig. 4; MATNs are
/// from the authors' earlier semantic-model work [5]). For temporal
/// pattern queries the network is a chain of states S0 -> S1 -> ... -> SC
/// where parallel arcs between two states express alternatives.
class MatnGraph {
 public:
  MatnGraph() = default;

  /// Adds a state; returns its index. State 0 is the start state; the
  /// highest-indexed state is the accepting state.
  int AddState();

  /// Adds an arc. States must exist, from < to, all_of non-empty, and
  /// max_gap -1 (unbounded) or >= 1.
  Status AddArc(int from, int to, std::vector<EventId> all_of,
                int max_gap = -1);

  int num_states() const { return num_states_; }
  const std::vector<MatnArc>& arcs() const { return arcs_; }

  /// Arcs leaving `state`.
  std::vector<const MatnArc*> ArcsFrom(int state) const;

  /// True if the network is a chain S0 -> S1 -> ... -> S(n-1) where every
  /// arc advances exactly one state and every consecutive state pair has
  /// at least one arc — the form temporal pattern queries use.
  bool IsLinearChain() const;

  /// Human-readable rendering, e.g. "S0 --free_kick&goal--> S1".
  std::string ToString(const EventVocabulary& vocabulary) const;

 private:
  int num_states_ = 0;
  std::vector<MatnArc> arcs_;
};

}  // namespace hmmm

#endif  // HMMM_QUERY_MATN_H_
