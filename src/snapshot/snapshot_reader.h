#ifndef HMMM_SNAPSHOT_SNAPSHOT_READER_H_
#define HMMM_SNAPSHOT_SNAPSHOT_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/hierarchical_model.h"
#include "observability/metrics_registry.h"
#include "retrieval/query_plan.h"
#include "snapshot/snapshot_format.h"
#include "storage/catalog.h"

namespace hmmm {

struct SnapshotOptions {
  /// CRC-check every section payload at open. Off by default: reading
  /// every byte is exactly the O(file size) work the mmap path exists to
  /// avoid, and the header + section-table CRCs (always verified) catch
  /// torn writes and truncation. Turn on where opens are rare and paranoia
  /// is cheap — e.g. the coordinator validating a fresh generation before
  /// repointing shards at it.
  bool verify_section_crcs = false;
  /// madvise(MADV_WILLNEED): prefault the whole file into the page cache
  /// at open — trades a one-time readahead for no first-query page-fault
  /// stalls. Cold-start oriented.
  bool advise_willneed = false;
  /// madvise(MADV_RANDOM): disable kernel readahead; right when queries
  /// touch scattered matrix rows and the file dwarfs memory.
  bool advise_random = false;
  /// msync(MS_SYNC) the mapping at open — flushes nothing for a read-only
  /// mapping but forces the dirty-page bookkeeping some filesystems defer;
  /// measurable via hmmm_snapshot_advise_ms either way.
  bool msync_on_open = false;
  /// Sink for hmmm_snapshot_* open/advise metrics; may be null.
  MetricsRegistry* metrics = nullptr;
};

/// A read-only mmap'ed file. Unmaps on destruction; movable, not
/// copyable.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const {
    return static_cast<const uint8_t*>(addr_);
  }
  size_t size() const { return size_; }
  bool mapped() const { return addr_ != nullptr; }

 private:
  friend class SnapshotReader;
  void* addr_ = nullptr;
  size_t size_ = 0;
};

/// Opens a frozen snapshot (snapshot_format.h) by mmap'ing it read-only
/// and serves the model/catalog/index straight from the mapped pages:
/// matrix sections become borrowed Matrix views, so Build* allocates only
/// the small metadata (shot records, local-state maps, bitsets) and never
/// copies a matrix. Open cost is O(header + section table), independent
/// of catalog size.
///
/// LIFETIME: everything Build* returns borrows the mapping. The reader
/// must outlive every catalog/model/index built from it — callers keep
/// the unique_ptr alongside the built objects (VideoDatabase::OpenSnapshot
/// stores it as a keepalive member). Mutating a borrowed matrix (e.g.
/// training on a snapshot-opened database) copies it to the heap first
/// (Matrix::EnsureOwned), so the mapping itself is never written.
///
/// Failure contract matches the blob loaders': kNotFound for a missing
/// file, kIOError for transient open/map failures (retried via
/// WithIoRetry before surfacing), kDataLoss for a bad magic / unsupported
/// version / CRC mismatch / truncation / malformed section.
class SnapshotReader {
 public:
  static StatusOr<std::unique_ptr<SnapshotReader>> Open(
      const std::string& path, const SnapshotOptions& options = {});

  const std::string& path() const { return path_; }
  uint64_t generation() const { return generation_; }
  /// model.version() at freeze time. Informational: the rebuilt model
  /// restarts at version 0, like the blob loader's.
  uint64_t frozen_model_version() const { return frozen_model_version_; }
  /// True when the snapshot carries the frozen event-index sections.
  bool has_event_index() const { return has_event_index_; }
  size_t file_size() const { return map_.size(); }
  const std::vector<SnapshotSection>& sections() const { return sections_; }

  /// Rebuilds the catalog: shot/video records from the packed shot table,
  /// features as a borrowed view of the mapped BB1 section.
  StatusOr<VideoCatalog> BuildCatalog() const;

  /// Rebuilds the model: all matrices borrowed from mapped sections, the
  /// state index rebuilt from the locals. Runs cheap shape/agreement
  /// checks only — the writer validated the full structure, and a full
  /// Validate() would allocate O(states x features), defeating O(1) open.
  StatusOr<HierarchicalModel> BuildModel() const;

  /// Rebuilds the event index from the frozen sims (borrowed) + the
  /// cheap O(annotations) bitsets. Requires has_event_index();
  /// `model`/`catalog` must be this reader's own Build* results.
  StatusOr<EventBitmapIndex> BuildEventIndex(
      const HierarchicalModel& model, const VideoCatalog& catalog) const;

  /// CRC-checks every section payload (the eager form of
  /// SnapshotOptions::verify_section_crcs). O(file size).
  Status VerifyAllSections() const;

 private:
  SnapshotReader() = default;

  Status ParseHeaderAndTable();
  const SnapshotSection* FindSection(uint32_t id) const;
  /// Payload bytes of section `id`; kDataLoss if absent. Carries the
  /// "snapshot.read" fault point (fires as kIOError).
  StatusOr<std::string_view> SectionBytes(uint32_t id) const;
  /// Borrowed matrix view of an aligned f64 section; checks the aligned
  /// flag and that the payload is exactly rows x cols doubles.
  StatusOr<Matrix> BorrowMatrix(uint32_t id, size_t rows, size_t cols) const;

  std::string path_;
  MappedFile map_;
  uint64_t generation_ = 0;
  uint64_t frozen_model_version_ = 0;
  bool has_event_index_ = false;
  std::vector<SnapshotSection> sections_;
};

}  // namespace hmmm

#endif  // HMMM_SNAPSHOT_SNAPSHOT_READER_H_
