#ifndef HMMM_SNAPSHOT_SNAPSHOT_FORMAT_H_
#define HMMM_SNAPSHOT_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace hmmm {

// The frozen on-disk snapshot format (DESIGN.md §11): one file holding a
// VideoCatalog + HierarchicalModel + the precomputed event-index sims in
// a layout that can be mmap'ed and served without deserialization.
//
//   [ 64-byte header ]
//   [ section table: section_count x 32-byte entries ]
//   [ section payloads, aligned sections padded to 32-byte offsets ]
//
// All scalars are little-endian fixed width (the same convention as
// BinaryWriter and the wire protocol; the serving fleet is LE-only and
// the loader rejects nothing else — a BE port would byte-swap at open).
// Matrix sections are raw row-major f64 exactly as AlignedAllocator lays
// them out on the heap, and start at file offsets ≡ 0 (mod 32); since
// mmap bases are page-aligned, a mapped matrix base carries the same
// 32-byte alignment guarantee as an owned Matrix buffer, so the Eq.-14
// SIMD kernels run unmodified on mapped pages.
//
// Version-bump rules mirror the wire protocol's (DESIGN.md §6): adding a
// NEW optional section keeps the version (readers ignore unknown section
// ids); changing the header, the section-table entry layout, or the
// encoding of an EXISTING section bumps kSnapshotVersion, and readers
// reject versions they do not know (kDataLoss "unsupported snapshot
// version") rather than guessing.

/// "HMMS" in the same spelling convention as kCatalogMagic ("HMMC") and
/// kModelMagic ("HMMM").
inline constexpr uint32_t kSnapshotMagic = 0x484D4D53;
inline constexpr uint32_t kSnapshotVersion = 1;

inline constexpr size_t kSnapshotHeaderBytes = 64;
inline constexpr size_t kSnapshotSectionEntryBytes = 32;
/// Alignment contract of flagged matrix sections — matches
/// AlignedAllocator's over-alignment of Matrix::Buffer.
inline constexpr size_t kSnapshotAlignment = 32;

/// Fixed 64-byte header at offset 0. `header_crc32c` covers bytes
/// [0, 52) — everything before itself; the reserved tail is zero.
/// `file_size` lets the reader detect a truncated tail (or a file that
/// grew) before touching any section, without reading the whole file.
struct SnapshotHeader {
  uint32_t magic = kSnapshotMagic;        // offset 0
  uint32_t version = kSnapshotVersion;    // offset 4
  uint64_t file_size = 0;                 // offset 8
  uint64_t generation = 0;                // offset 16
  uint64_t section_table_offset = 0;      // offset 24
  uint32_t section_count = 0;             // offset 32
  uint32_t section_table_crc32c = 0;      // offset 36
  uint64_t model_version = 0;             // offset 40; model.version() at freeze
  uint32_t flags = 0;                     // offset 48
  uint32_t header_crc32c = 0;             // offset 52
                                          // offset 56: 8 reserved zero bytes
};

/// Header flag: the snapshot carries the event-index sections
/// (kIndexMeta + kEventSims), so no index rebuild is needed at open.
inline constexpr uint32_t kSnapshotFlagHasEventIndex = 1u << 0;

/// One section-table entry (32 bytes on disk):
/// id(4) | flags(4) | offset(8) | length(8) | crc32c(4) | reserved(4).
struct SnapshotSection {
  uint32_t id = 0;
  uint32_t flags = 0;
  uint64_t offset = 0;  // absolute file offset of the payload
  uint64_t length = 0;  // payload bytes (excluding any alignment padding)
  uint32_t crc32c = 0;  // CRC-32C of the payload bytes
};

/// Section flag: the payload is a raw f64 array whose file offset must
/// be ≡ 0 (mod kSnapshotAlignment); the reader enforces this before
/// handing out borrowed matrix views.
inline constexpr uint32_t kSnapshotSectionAligned = 1u << 0;

/// Section ids. Values are frozen; new sections append new ids.
enum SnapshotSectionId : uint32_t {
  /// BinaryWriter blob: vocabulary, feature width, video names.
  kSectionCatalogMeta = 1,
  /// Packed 32-byte per-shot records (see snapshot_writer.cc): begin(f64)
  /// end(f64) video_id(i32) index_in_video(i32) event_offset(u32)
  /// event_count(u32). Shot order = ShotId order.
  kSectionShotTable = 2,
  /// Concatenated i32 event annotations, indexed by the shot table's
  /// (event_offset, event_count) windows.
  kSectionShotEvents = 3,
  /// Raw shot-feature table BB1: shots x features f64, aligned/borrowable.
  kSectionRawFeatures = 4,
  /// BinaryWriter blob: per-local metadata (video id, states, pi1, A1
  /// blob offset), Eq.-3 normalizer minima/maxima, pi2, matrix shapes.
  kSectionModelMeta = 5,
  /// Concatenated per-local A1 matrices, each local's block starting at
  /// a 32-byte boundary inside the section; aligned/borrowable.
  kSectionA1Blob = 6,
  kSectionB1 = 7,       // states x features f64, aligned/borrowable
  kSectionA2 = 8,       // videos x videos f64, aligned/borrowable
  kSectionB2 = 9,       // videos x events f64, aligned/borrowable
  kSectionP12 = 10,     // events x features f64, aligned/borrowable
  kSectionB1Prime = 11, // events x features f64, aligned/borrowable
  /// BinaryWriter blob: centroid epsilon + event-sims shape.
  kSectionIndexMeta = 12,
  /// Precomputed exact Eq.-14 sims: events x global-states f64,
  /// aligned/borrowable — the expensive part of EventBitmapIndex.
  kSectionEventSims = 13,
};

/// Rounds `offset` up to the next kSnapshotAlignment boundary.
inline constexpr uint64_t SnapshotAlignUp(uint64_t offset) {
  return (offset + kSnapshotAlignment - 1) & ~uint64_t{kSnapshotAlignment - 1};
}

}  // namespace hmmm

#endif  // HMMM_SNAPSHOT_SNAPSHOT_FORMAT_H_
