#include "snapshot/snapshot_writer.h"

#include <cstring>
#include <vector>

#include "common/crc32.h"
#include "common/serialization.h"
#include "common/strings.h"
#include "retrieval/query_plan.h"
#include "snapshot/snapshot_format.h"

namespace hmmm {
namespace {

// Raw little-endian appends for the fixed-layout pieces (header, section
// table, packed shot table). The build targets LE only — see the format
// comment in snapshot_format.h — so a memcpy of the native value IS the
// wire encoding, same as BinaryWriter's scalars.
void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendI32(std::string* out, int32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// A matrix payload: the row-major f64 buffer, byte for byte.
void AppendMatrixBytes(std::string* out, const Matrix& m) {
  out->append(reinterpret_cast<const char*>(m.ptr()),
              m.size() * sizeof(double));
}

struct PendingSection {
  uint32_t id = 0;
  uint32_t flags = 0;
  std::string payload;
};

std::string EncodeCatalogMeta(const VideoCatalog& catalog) {
  BinaryWriter w;
  w.WriteVarint(catalog.vocabulary().size());
  for (const std::string& name : catalog.vocabulary().names()) {
    w.WriteString(name);
  }
  w.WriteInt32(catalog.num_features());
  w.WriteVarint(catalog.num_videos());
  for (const VideoRecord& video : catalog.videos()) {
    w.WriteString(video.name);
  }
  return w.TakeBuffer();
}

// The per-shot fixed record of kSectionShotTable. Per-video shot lists
// are NOT stored: within a video, ShotIds ascend in temporal order, so
// the reader rebuilds every video's list in one pass over this table.
std::string EncodeShotTable(const VideoCatalog& catalog,
                            std::string* shot_events) {
  std::string table;
  table.reserve(catalog.num_shots() * 32);
  uint32_t event_offset = 0;
  for (const ShotRecord& shot : catalog.shots()) {
    AppendF64(&table, shot.begin_time);
    AppendF64(&table, shot.end_time);
    AppendI32(&table, shot.video_id);
    AppendI32(&table, shot.index_in_video);
    AppendU32(&table, event_offset);
    AppendU32(&table, static_cast<uint32_t>(shot.events.size()));
    for (EventId e : shot.events) AppendI32(shot_events, e);
    event_offset += static_cast<uint32_t>(shot.events.size());
  }
  return table;
}

std::string EncodeRawFeatures(const VideoCatalog& catalog) {
  std::string out;
  const size_t row_bytes =
      static_cast<size_t>(catalog.num_features()) * sizeof(double);
  out.reserve(catalog.num_shots() * row_bytes);
  for (size_t s = 0; s < catalog.num_shots(); ++s) {
    out.append(
        reinterpret_cast<const char*>(catalog.RawFeatureRow(
            static_cast<ShotId>(s))),
        row_bytes);
  }
  return out;
}

/// Concatenates every local A1 into one section, each block starting at
/// a kSnapshotAlignment boundary (the section itself is aligned, so
/// in-section alignment carries to the file offset). Returns the blob;
/// fills `offsets` with each local's block offset for the model meta.
std::string EncodeA1Blob(const HierarchicalModel& model,
                         std::vector<uint64_t>* offsets) {
  std::string blob;
  offsets->reserve(model.locals().size());
  for (const LocalShotModel& local : model.locals()) {
    blob.resize(SnapshotAlignUp(blob.size()), '\0');
    offsets->push_back(blob.size());
    AppendMatrixBytes(&blob, local.a1);
  }
  return blob;
}

void WriteShape(BinaryWriter* w, const Matrix& m) {
  w->WriteUint64(m.rows());
  w->WriteUint64(m.cols());
}

std::string EncodeModelMeta(const HierarchicalModel& model,
                            const std::vector<uint64_t>& a1_offsets) {
  BinaryWriter w;
  w.WriteVarint(model.vocabulary().size());
  for (const std::string& name : model.vocabulary().names()) {
    w.WriteString(name);
  }
  w.WriteDoubleVector(model.feature_minima());
  w.WriteDoubleVector(model.feature_maxima());
  w.WriteDoubleVector(model.pi2());
  WriteShape(&w, model.b1());
  WriteShape(&w, model.a2());
  WriteShape(&w, model.b2());
  WriteShape(&w, model.p12());
  WriteShape(&w, model.b1_prime());
  w.WriteVarint(model.locals().size());
  for (size_t i = 0; i < model.locals().size(); ++i) {
    const LocalShotModel& local = model.locals()[i];
    w.WriteInt32(local.video_id);
    w.WriteInt32Vector(local.states);
    w.WriteDoubleVector(local.pi1);
    w.WriteUint64(a1_offsets[i]);
  }
  return w.TakeBuffer();
}

std::string EncodeIndexMeta(double centroid_epsilon, const Matrix& sims) {
  BinaryWriter w;
  w.WriteDouble(centroid_epsilon);
  w.WriteUint64(sims.rows());
  w.WriteUint64(sims.cols());
  return w.TakeBuffer();
}

void AppendSectionEntry(std::string* table, const SnapshotSection& s) {
  AppendU32(table, s.id);
  AppendU32(table, s.flags);
  AppendU64(table, s.offset);
  AppendU64(table, s.length);
  AppendU32(table, s.crc32c);
  AppendU32(table, 0);  // reserved
}

}  // namespace

std::string BuildSnapshotImage(const HierarchicalModel& model,
                               const VideoCatalog& catalog,
                               const SnapshotWriteOptions& options) {
  std::vector<PendingSection> sections;
  {
    std::string shot_events;
    std::string shot_table = EncodeShotTable(catalog, &shot_events);
    sections.push_back({kSectionCatalogMeta, 0, EncodeCatalogMeta(catalog)});
    sections.push_back({kSectionShotTable, 0, std::move(shot_table)});
    sections.push_back({kSectionShotEvents, 0, std::move(shot_events)});
    sections.push_back(
        {kSectionRawFeatures, kSnapshotSectionAligned,
         EncodeRawFeatures(catalog)});
  }
  {
    std::vector<uint64_t> a1_offsets;
    std::string a1_blob = EncodeA1Blob(model, &a1_offsets);
    sections.push_back(
        {kSectionModelMeta, 0, EncodeModelMeta(model, a1_offsets)});
    sections.push_back(
        {kSectionA1Blob, kSnapshotSectionAligned, std::move(a1_blob)});
  }
  const Matrix* aligned[] = {&model.b1(), &model.a2(), &model.b2(),
                             &model.p12(), &model.b1_prime()};
  const uint32_t aligned_ids[] = {kSectionB1, kSectionA2, kSectionB2,
                                  kSectionP12, kSectionB1Prime};
  for (size_t i = 0; i < 5; ++i) {
    std::string payload;
    AppendMatrixBytes(&payload, *aligned[i]);
    sections.push_back(
        {aligned_ids[i], kSnapshotSectionAligned, std::move(payload)});
  }
  uint32_t flags = 0;
  if (options.include_event_index) {
    flags |= kSnapshotFlagHasEventIndex;
    // The same sims every server's index build would produce at startup —
    // frozen once here so every open skips that sweep.
    const EventBitmapIndex index(model, catalog);
    sections.push_back(
        {kSectionIndexMeta, 0,
         EncodeIndexMeta(index.sims_centroid_epsilon(), index.event_sims())});
    std::string sims;
    AppendMatrixBytes(&sims, index.event_sims());
    sections.push_back(
        {kSectionEventSims, kSnapshotSectionAligned, std::move(sims)});
  }

  // Lay out: header | section table | payloads (aligned ones padded).
  // kSnapshotHeaderBytes and the 32-byte entries are both multiples of
  // kSnapshotAlignment, so file offsets only need the explicit AlignUp.
  std::vector<SnapshotSection> entries(sections.size());
  uint64_t cursor =
      kSnapshotHeaderBytes + sections.size() * kSnapshotSectionEntryBytes;
  for (size_t i = 0; i < sections.size(); ++i) {
    if (sections[i].flags & kSnapshotSectionAligned) {
      cursor = SnapshotAlignUp(cursor);
    }
    entries[i].id = sections[i].id;
    entries[i].flags = sections[i].flags;
    entries[i].offset = cursor;
    entries[i].length = sections[i].payload.size();
    entries[i].crc32c =
        Crc32c(sections[i].payload.data(), sections[i].payload.size());
    cursor += sections[i].payload.size();
  }
  const uint64_t file_size = cursor;

  std::string table;
  table.reserve(entries.size() * kSnapshotSectionEntryBytes);
  for (const SnapshotSection& s : entries) AppendSectionEntry(&table, s);

  std::string header;
  header.reserve(kSnapshotHeaderBytes);
  AppendU32(&header, kSnapshotMagic);
  AppendU32(&header, kSnapshotVersion);
  AppendU64(&header, file_size);
  AppendU64(&header, options.generation);
  AppendU64(&header, kSnapshotHeaderBytes);  // section_table_offset
  AppendU32(&header, static_cast<uint32_t>(entries.size()));
  AppendU32(&header, Crc32c(table.data(), table.size()));
  AppendU64(&header, model.version());
  AppendU32(&header, flags);
  AppendU32(&header, Crc32c(header.data(), header.size()));  // over [0, 52)
  AppendU64(&header, 0);  // reserved tail

  std::string image;
  image.reserve(file_size);
  image.append(header);
  image.append(table);
  for (size_t i = 0; i < sections.size(); ++i) {
    image.resize(entries[i].offset, '\0');  // alignment padding
    image.append(sections[i].payload);
  }
  return image;
}

Status WriteSnapshot(const HierarchicalModel& model,
                     const VideoCatalog& catalog, const std::string& path,
                     const SnapshotWriteOptions& options) {
  return WriteFile(path, BuildSnapshotImage(model, catalog, options));
}

StatusOr<std::string> PublishSnapshot(const HierarchicalModel& model,
                                      const VideoCatalog& catalog,
                                      const std::string& dir,
                                      uint64_t generation) {
  const std::string name = StrFormat("snapshot-%llu.hmms",
                                     static_cast<unsigned long long>(generation));
  const std::string path = dir + "/" + name;
  SnapshotWriteOptions options;
  options.generation = generation;
  HMMM_RETURN_IF_ERROR(WriteSnapshot(model, catalog, path, options));
  // Both writes are tmp+rename, so a crash between them leaves the old
  // CURRENT pointing at the old (intact) generation — never a torn file.
  HMMM_RETURN_IF_ERROR(
      WriteFile(dir + "/" + kSnapshotCurrentFile, name + "\n"));
  return path;
}

StatusOr<std::string> ResolveCurrentSnapshot(const std::string& dir) {
  HMMM_ASSIGN_OR_RETURN(std::string current,
                        ReadFileToString(dir + "/" + kSnapshotCurrentFile));
  while (!current.empty() &&
         (current.back() == '\n' || current.back() == '\r' ||
          current.back() == ' ')) {
    current.pop_back();
  }
  if (current.empty() || current.find('/') != std::string::npos) {
    return Status::DataLoss("snapshot CURRENT file at " + dir +
                            " does not name a snapshot");
  }
  return dir + "/" + current;
}

}  // namespace hmmm
