#include "snapshot/snapshot_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "common/serialization.h"
#include "common/strings.h"

namespace hmmm {
namespace {

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

int32_t ReadI32(const uint8_t* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

double ReadF64(const uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

Status SnapshotCorrupt(const std::string& path, const std::string& what) {
  return Status::DataLoss("snapshot file " + path + ": " + what);
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(other.addr_), size_(other.size_) {
  other.addr_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = other.addr_;
    size_ = other.size_;
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

StatusOr<std::unique_ptr<SnapshotReader>> SnapshotReader::Open(
    const std::string& path, const SnapshotOptions& options) {
  const auto open_start = std::chrono::steady_clock::now();
  auto reader = std::unique_ptr<SnapshotReader>(new SnapshotReader());
  reader->path_ = path;

  // The open/fstat/mmap sequence composes several syscalls, so it reuses
  // the storage layer's transient-retry policy as one unit rather than
  // retrying each syscall separately.
  Status status = WithIoRetry([&]() -> Status {
    if (HMMM_FAULT_FIRED("snapshot.open")) {
      return Status::IOError("injected snapshot open fault");
    }
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound("snapshot file not found: " + path);
      }
      return Status::IOError(
          StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const Status s = Status::IOError(
          StrFormat("fstat %s: %s", path.c_str(), std::strerror(errno)));
      ::close(fd);
      return s;
    }
    const auto size = static_cast<size_t>(st.st_size);
    if (size < kSnapshotHeaderBytes) {
      ::close(fd);
      return SnapshotCorrupt(
          path, StrFormat("truncated: %zu bytes, header needs %zu", size,
                          kSnapshotHeaderBytes));
    }
    if (HMMM_FAULT_FIRED("snapshot.map")) {
      ::close(fd);
      return Status::IOError("injected snapshot map fault");
    }
    // MAP_SHARED (read-only) rather than MAP_PRIVATE so msync_on_open is
    // well-defined; nothing ever writes through this mapping.
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping keeps the file alive
    if (addr == MAP_FAILED) {
      return Status::IOError(
          StrFormat("mmap %s: %s", path.c_str(), std::strerror(errno)));
    }
    reader->map_.addr_ = addr;
    reader->map_.size_ = size;
    return Status::OK();
  });

  if (status.ok()) {
    if (options.advise_random || options.advise_willneed ||
        options.msync_on_open) {
      const auto advise_start = std::chrono::steady_clock::now();
      if (options.advise_random) {
        ::madvise(reader->map_.addr_, reader->map_.size_, MADV_RANDOM);
      }
      if (options.advise_willneed) {
        ::madvise(reader->map_.addr_, reader->map_.size_, MADV_WILLNEED);
      }
      if (options.msync_on_open) {
        ::msync(reader->map_.addr_, reader->map_.size_, MS_SYNC);
      }
      if (options.metrics != nullptr) {
        options.metrics
            ->GetHistogram("hmmm_snapshot_advise_ms", DefaultLatencyBucketsMs(),
                           "Time spent in madvise/msync at snapshot open")
            ->Observe(ElapsedMs(advise_start));
      }
    }
    status = reader->ParseHeaderAndTable();
  }
  if (status.ok() && options.verify_section_crcs) {
    status = reader->VerifyAllSections();
  }

  if (options.metrics != nullptr) {
    MetricsRegistry& m = *options.metrics;
    m.GetCounter("hmmm_snapshot_opens_total", "Snapshot open attempts")
        ->Increment();
    m.GetHistogram("hmmm_snapshot_open_ms", DefaultLatencyBucketsMs(),
                   "Snapshot open latency (map + header/table verification)")
        ->Observe(ElapsedMs(open_start));
    if (!status.ok()) {
      m.GetCounter("hmmm_snapshot_open_failures_total",
                   "Snapshot opens that returned an error")
          ->Increment();
    } else {
      m.GetGauge("hmmm_snapshot_generation",
                 "Generation of the most recently opened snapshot")
          ->Set(static_cast<double>(reader->generation_));
      m.GetGauge("hmmm_snapshot_mapped_bytes",
                 "Size of the most recently mapped snapshot file")
          ->Set(static_cast<double>(reader->map_.size()));
    }
  }
  if (!status.ok()) return status;
  return reader;
}

Status SnapshotReader::ParseHeaderAndTable() {
  const uint8_t* base = map_.data();
  const uint64_t file_size = map_.size();

  if (ReadU32(base + 0) != kSnapshotMagic) {
    return SnapshotCorrupt(path_, "bad magic");
  }
  const uint32_t version = ReadU32(base + 4);
  if (version != kSnapshotVersion) {
    return SnapshotCorrupt(
        path_, StrFormat("unsupported snapshot version %u (reader knows %u)",
                         version, kSnapshotVersion));
  }
  const uint32_t header_crc = ReadU32(base + 52);
  if (Crc32c(base, 52) != header_crc) {
    return SnapshotCorrupt(path_, "header checksum mismatch");
  }
  const uint64_t declared_size = ReadU64(base + 8);
  if (declared_size != file_size) {
    return SnapshotCorrupt(
        path_, StrFormat("truncated: header declares %llu bytes, file has %llu",
                         static_cast<unsigned long long>(declared_size),
                         static_cast<unsigned long long>(file_size)));
  }
  generation_ = ReadU64(base + 16);
  const uint64_t table_offset = ReadU64(base + 24);
  const uint32_t section_count = ReadU32(base + 32);
  const uint32_t table_crc = ReadU32(base + 36);
  frozen_model_version_ = ReadU64(base + 40);
  const uint32_t flags = ReadU32(base + 48);
  has_event_index_ = (flags & kSnapshotFlagHasEventIndex) != 0;

  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kSnapshotSectionEntryBytes;
  if (table_offset < kSnapshotHeaderBytes || table_offset > file_size ||
      table_bytes > file_size - table_offset) {
    return SnapshotCorrupt(path_, "section table out of bounds");
  }
  if (Crc32c(base + table_offset, table_bytes) != table_crc) {
    return SnapshotCorrupt(path_, "section table checksum mismatch");
  }

  sections_.resize(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint8_t* e = base + table_offset + i * kSnapshotSectionEntryBytes;
    SnapshotSection& s = sections_[i];
    s.id = ReadU32(e + 0);
    s.flags = ReadU32(e + 4);
    s.offset = ReadU64(e + 8);
    s.length = ReadU64(e + 16);
    s.crc32c = ReadU32(e + 24);
    if (s.offset > file_size || s.length > file_size - s.offset) {
      return SnapshotCorrupt(
          path_, StrFormat("section %u out of bounds", s.id));
    }
    if ((s.flags & kSnapshotSectionAligned) != 0 &&
        s.offset % kSnapshotAlignment != 0) {
      return SnapshotCorrupt(
          path_, StrFormat("section %u misaligned: offset %llu", s.id,
                           static_cast<unsigned long long>(s.offset)));
    }
  }
  return Status::OK();
}

const SnapshotSection* SnapshotReader::FindSection(uint32_t id) const {
  for (const SnapshotSection& s : sections_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

StatusOr<std::string_view> SnapshotReader::SectionBytes(uint32_t id) const {
  if (HMMM_FAULT_FIRED("snapshot.read")) {
    return Status::IOError("injected snapshot read fault");
  }
  const SnapshotSection* s = FindSection(id);
  if (s == nullptr) {
    return SnapshotCorrupt(path_, StrFormat("missing section %u", id));
  }
  return std::string_view(
      reinterpret_cast<const char*>(map_.data() + s->offset), s->length);
}

StatusOr<Matrix> SnapshotReader::BorrowMatrix(uint32_t id, size_t rows,
                                              size_t cols) const {
  const SnapshotSection* s = FindSection(id);
  if (s == nullptr) {
    return SnapshotCorrupt(path_, StrFormat("missing section %u", id));
  }
  if ((s->flags & kSnapshotSectionAligned) == 0) {
    return SnapshotCorrupt(
        path_, StrFormat("section %u is not an aligned matrix section", id));
  }
  if (s->length != rows * cols * sizeof(double)) {
    return SnapshotCorrupt(
        path_,
        StrFormat("section %u: %llu bytes, expected %zu x %zu doubles", id,
                  static_cast<unsigned long long>(s->length), rows, cols));
  }
  return Matrix::FromBorrowed(
      reinterpret_cast<const double*>(map_.data() + s->offset), rows, cols);
}

Status SnapshotReader::VerifyAllSections() const {
  for (const SnapshotSection& s : sections_) {
    if (HMMM_FAULT_FIRED("snapshot.read")) {
      return Status::IOError("injected snapshot read fault");
    }
    if (Crc32c(map_.data() + s.offset, s.length) != s.crc32c) {
      return SnapshotCorrupt(
          path_, StrFormat("section %u checksum mismatch", s.id));
    }
  }
  return Status::OK();
}

StatusOr<VideoCatalog> SnapshotReader::BuildCatalog() const {
  HMMM_ASSIGN_OR_RETURN(std::string_view meta,
                        SectionBytes(kSectionCatalogMeta));
  BinaryReader r(meta);
  HMMM_ASSIGN_OR_RETURN(uint64_t vocab_size, r.ReadVarint());
  EventVocabulary vocabulary;
  for (uint64_t i = 0; i < vocab_size; ++i) {
    HMMM_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    vocabulary.Register(name);
  }
  HMMM_ASSIGN_OR_RETURN(int32_t num_features, r.ReadInt32());
  if (num_features < 0) {
    return SnapshotCorrupt(path_, "negative feature count");
  }
  HMMM_ASSIGN_OR_RETURN(uint64_t num_videos, r.ReadVarint());

  VideoCatalog catalog;
  catalog.vocabulary_ = std::move(vocabulary);
  catalog.num_features_ = num_features;
  catalog.videos_.resize(num_videos);
  for (uint64_t v = 0; v < num_videos; ++v) {
    HMMM_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    catalog.videos_[v].id = static_cast<VideoId>(v);
    catalog.videos_[v].name = std::move(name);
  }
  if (!r.AtEnd()) {
    return SnapshotCorrupt(path_, "trailing bytes in catalog meta");
  }

  HMMM_ASSIGN_OR_RETURN(std::string_view table,
                        SectionBytes(kSectionShotTable));
  HMMM_ASSIGN_OR_RETURN(std::string_view events_raw,
                        SectionBytes(kSectionShotEvents));
  if (table.size() % 32 != 0) {
    return SnapshotCorrupt(path_, "shot table size not a record multiple");
  }
  if (events_raw.size() % sizeof(int32_t) != 0) {
    return SnapshotCorrupt(path_, "shot-events size not an int32 multiple");
  }
  const size_t num_shots = table.size() / 32;
  const size_t num_annotations = events_raw.size() / sizeof(int32_t);
  const auto* events_base =
      reinterpret_cast<const uint8_t*>(events_raw.data());

  // One pass in ShotId order rebuilds both the shot records and every
  // video's temporal shot list (ShotIds ascend within a video).
  catalog.shots_.resize(num_shots);
  for (size_t sid = 0; sid < num_shots; ++sid) {
    const auto* rec = reinterpret_cast<const uint8_t*>(table.data()) + sid * 32;
    ShotRecord& shot = catalog.shots_[sid];
    shot.id = static_cast<ShotId>(sid);
    shot.begin_time = ReadF64(rec + 0);
    shot.end_time = ReadF64(rec + 8);
    shot.video_id = ReadI32(rec + 16);
    shot.index_in_video = ReadI32(rec + 20);
    const uint32_t event_offset = ReadU32(rec + 24);
    const uint32_t event_count = ReadU32(rec + 28);
    if (shot.video_id < 0 ||
        static_cast<uint64_t>(shot.video_id) >= num_videos) {
      return SnapshotCorrupt(
          path_, StrFormat("shot %zu references video %d of %llu", sid,
                           shot.video_id,
                           static_cast<unsigned long long>(num_videos)));
    }
    VideoRecord& video = catalog.videos_[static_cast<size_t>(shot.video_id)];
    if (shot.index_in_video != static_cast<int>(video.shots.size())) {
      return SnapshotCorrupt(
          path_, StrFormat("shot %zu out of order within video %d", sid,
                           shot.video_id));
    }
    if (event_offset > num_annotations ||
        event_count > num_annotations - event_offset) {
      return SnapshotCorrupt(
          path_, StrFormat("shot %zu event window out of bounds", sid));
    }
    shot.events.resize(event_count);
    for (uint32_t e = 0; e < event_count; ++e) {
      const int32_t event =
          ReadI32(events_base + (event_offset + e) * sizeof(int32_t));
      if (event < 0 || static_cast<uint64_t>(event) >= vocab_size) {
        return SnapshotCorrupt(
            path_, StrFormat("shot %zu annotated with unknown event %d", sid,
                             event));
      }
      shot.events[e] = event;
    }
    video.shots.push_back(shot.id);
  }

  HMMM_ASSIGN_OR_RETURN(
      catalog.features_,
      BorrowMatrix(kSectionRawFeatures, num_shots,
                   static_cast<size_t>(num_features)));
  return catalog;
}

StatusOr<HierarchicalModel> SnapshotReader::BuildModel() const {
  HMMM_ASSIGN_OR_RETURN(std::string_view meta, SectionBytes(kSectionModelMeta));
  BinaryReader r(meta);
  HMMM_ASSIGN_OR_RETURN(uint64_t vocab_size, r.ReadVarint());
  HierarchicalModel model;
  for (uint64_t i = 0; i < vocab_size; ++i) {
    HMMM_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    model.vocabulary_.Register(name);
  }
  HMMM_ASSIGN_OR_RETURN(model.feature_minima_, r.ReadDoubleVector());
  HMMM_ASSIGN_OR_RETURN(model.feature_maxima_, r.ReadDoubleVector());
  HMMM_ASSIGN_OR_RETURN(model.pi2_, r.ReadDoubleVector());

  uint64_t shape[10];
  for (auto& dim : shape) {
    HMMM_ASSIGN_OR_RETURN(dim, r.ReadUint64());
  }
  HMMM_ASSIGN_OR_RETURN(model.b1_, BorrowMatrix(kSectionB1, shape[0], shape[1]));
  HMMM_ASSIGN_OR_RETURN(model.a2_, BorrowMatrix(kSectionA2, shape[2], shape[3]));
  HMMM_ASSIGN_OR_RETURN(model.b2_, BorrowMatrix(kSectionB2, shape[4], shape[5]));
  HMMM_ASSIGN_OR_RETURN(model.p12_,
                        BorrowMatrix(kSectionP12, shape[6], shape[7]));
  HMMM_ASSIGN_OR_RETURN(model.b1_prime_,
                        BorrowMatrix(kSectionB1Prime, shape[8], shape[9]));

  const SnapshotSection* a1_section = FindSection(kSectionA1Blob);
  if (a1_section == nullptr ||
      (a1_section->flags & kSnapshotSectionAligned) == 0) {
    return SnapshotCorrupt(path_, "missing or unaligned A1 blob section");
  }
  const auto* a1_base =
      reinterpret_cast<const double*>(map_.data() + a1_section->offset);

  HMMM_ASSIGN_OR_RETURN(uint64_t num_locals, r.ReadVarint());
  model.locals_.resize(num_locals);
  size_t total_states = 0;
  for (uint64_t v = 0; v < num_locals; ++v) {
    LocalShotModel& local = model.locals_[v];
    HMMM_ASSIGN_OR_RETURN(local.video_id, r.ReadInt32());
    if (local.video_id != static_cast<VideoId>(v)) {
      return SnapshotCorrupt(path_, "local model video ids not dense");
    }
    HMMM_ASSIGN_OR_RETURN(local.states, r.ReadInt32Vector());
    HMMM_ASSIGN_OR_RETURN(local.pi1, r.ReadDoubleVector());
    HMMM_ASSIGN_OR_RETURN(uint64_t a1_offset, r.ReadUint64());
    const size_t n = local.states.size();
    if (local.pi1.size() != n) {
      return SnapshotCorrupt(
          path_, StrFormat("local %llu: pi1/state count mismatch",
                           static_cast<unsigned long long>(v)));
    }
    for (ShotId s : local.states) {
      if (s < 0) return SnapshotCorrupt(path_, "negative state ShotId");
    }
    const uint64_t a1_bytes = static_cast<uint64_t>(n) * n * sizeof(double);
    if (a1_offset % kSnapshotAlignment != 0 ||
        a1_offset > a1_section->length ||
        a1_bytes > a1_section->length - a1_offset) {
      return SnapshotCorrupt(
          path_, StrFormat("local %llu: A1 block out of bounds",
                           static_cast<unsigned long long>(v)));
    }
    local.a1 = Matrix::FromBorrowed(
        a1_base + a1_offset / sizeof(double), n, n);
    total_states += n;
  }
  if (!r.AtEnd()) {
    return SnapshotCorrupt(path_, "trailing bytes in model meta");
  }

  // Cheap cross-section agreement checks (the full Validate() is the
  // writer's job — rerunning it would allocate O(states x features)).
  const size_t k = model.b1_.cols();
  if (model.b1_.rows() != total_states ||
      model.a2_.rows() != num_locals || model.a2_.cols() != num_locals ||
      model.b2_.rows() != num_locals || model.b2_.cols() != vocab_size ||
      model.pi2_.size() != num_locals ||
      model.p12_.rows() != vocab_size || model.p12_.cols() != k ||
      model.b1_prime_.rows() != vocab_size || model.b1_prime_.cols() != k ||
      model.feature_minima_.size() != k ||
      model.feature_maxima_.size() != k) {
    return SnapshotCorrupt(path_, "model sections disagree on shapes");
  }
  model.RebuildStateIndex();
  return model;
}

StatusOr<EventBitmapIndex> SnapshotReader::BuildEventIndex(
    const HierarchicalModel& model, const VideoCatalog& catalog) const {
  if (!has_event_index_) {
    return Status::NotFound("snapshot file " + path_ +
                            " carries no event index");
  }
  HMMM_ASSIGN_OR_RETURN(std::string_view meta, SectionBytes(kSectionIndexMeta));
  BinaryReader r(meta);
  HMMM_ASSIGN_OR_RETURN(double epsilon, r.ReadDouble());
  HMMM_ASSIGN_OR_RETURN(uint64_t rows, r.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(uint64_t cols, r.ReadUint64());
  if (!r.AtEnd()) {
    return SnapshotCorrupt(path_, "trailing bytes in index meta");
  }
  if (rows != model.vocabulary().size() ||
      cols != model.num_global_states()) {
    return SnapshotCorrupt(path_, "event-sims shape disagrees with model");
  }
  HMMM_ASSIGN_OR_RETURN(Matrix sims,
                        BorrowMatrix(kSectionEventSims, rows, cols));
  return EventBitmapIndex(model, catalog, std::move(sims), epsilon);
}

}  // namespace hmmm
