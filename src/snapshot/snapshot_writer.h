#ifndef HMMM_SNAPSHOT_SNAPSHOT_WRITER_H_
#define HMMM_SNAPSHOT_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/hierarchical_model.h"
#include "storage/catalog.h"

namespace hmmm {

struct SnapshotWriteOptions {
  /// Stamped into the header; the publish protocol uses it to order
  /// snapshot files within a directory.
  uint64_t generation = 0;
  /// Freeze the EventBitmapIndex sims alongside the model so a
  /// snapshot-opened database needs no index rebuild. Costs one batch
  /// Eq.-14 sweep at write time (the same sweep every server would
  /// otherwise run at startup).
  bool include_event_index = true;
};

/// Freezes (model, catalog) into one in-memory snapshot image in the
/// format of snapshot_format.h. Pure function of its inputs: the same
/// model + catalog always produce byte-identical images, which is what
/// lets the shard smoke test byte-diff snapshot-booted servers against
/// blob-booted ones.
std::string BuildSnapshotImage(const HierarchicalModel& model,
                               const VideoCatalog& catalog,
                               const SnapshotWriteOptions& options = {});

/// BuildSnapshotImage + atomic WriteFile (tmp + rename) to `path`.
Status WriteSnapshot(const HierarchicalModel& model,
                     const VideoCatalog& catalog, const std::string& path,
                     const SnapshotWriteOptions& options = {});

/// The generation-directory publish protocol (DESIGN.md §11): writes
/// `dir/snapshot-<generation>.hmms` atomically, then atomically repoints
/// the one-line `dir/CURRENT` file at it. Readers that resolved the old
/// CURRENT keep serving from their mapping (the old file stays on disk);
/// new opens see the new generation. Returns the published file's path.
StatusOr<std::string> PublishSnapshot(const HierarchicalModel& model,
                                      const VideoCatalog& catalog,
                                      const std::string& dir,
                                      uint64_t generation);

/// Resolves `dir/CURRENT` to the current snapshot's path. kNotFound when
/// no snapshot has been published yet; kDataLoss for a CURRENT file that
/// names nothing.
StatusOr<std::string> ResolveCurrentSnapshot(const std::string& dir);

/// Name of the pointer file PublishSnapshot maintains.
inline constexpr char kSnapshotCurrentFile[] = "CURRENT";

}  // namespace hmmm

#endif  // HMMM_SNAPSHOT_SNAPSHOT_WRITER_H_
