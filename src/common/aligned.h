#ifndef HMMM_COMMON_ALIGNED_H_
#define HMMM_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace hmmm {

/// Minimal std::allocator drop-in that over-aligns every allocation to
/// `Alignment` bytes. Matrix row storage and the Eq.-14 kernel's SoA
/// scratch use 32 bytes so a 256-bit vector load of four doubles never
/// splits a cache line (and can use aligned moves when the row width is
/// a multiple of four columns).
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T), "alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not 2^k");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// 32-byte-aligned vector of doubles: the SIMD-friendly buffer type used
/// by Matrix storage and the kernel SoA layouts.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 32>>;

}  // namespace hmmm

#endif  // HMMM_COMMON_ALIGNED_H_
