#include "common/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "common/cancellation.h"
#include "common/strings.h"

namespace hmmm {
namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, strerror(errno)));
}

/// Resolves `host` into an IPv4 sockaddr. Only numeric addresses and
/// "localhost" are supported — the serving layer binds loopback or
/// explicit interface addresses; name resolution stays out of scope.
Status FillAddress(const std::string& host, uint16_t port,
                   sockaddr_in* address) {
  memset(address, 0, sizeof(*address));
  address->sin_family = AF_INET;
  address->sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &address->sin_addr) != 1) {
    return Status::InvalidArgument("unparseable IPv4 address: " + host);
  }
  return Status::OK();
}

/// Remaining poll budget in milliseconds; -1 for no deadline, 0 when
/// already past it.
int PollBudgetMs(std::chrono::steady_clock::time_point deadline) {
  if (deadline == kNoDeadline) return -1;
  const auto remaining = deadline - std::chrono::steady_clock::now();
  if (remaining <= std::chrono::steady_clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
          .count();
  // Round up so a sub-millisecond remainder still polls once.
  return static_cast<int>(std::min<int64_t>(ms + 1, 1 << 30));
}

/// Polls `fd` for `events` until the deadline. OK when ready; kIOError
/// on timeout or poll failure.
Status PollFor(int fd, short events,
               std::chrono::steady_clock::time_point deadline,
               const char* what) {
  for (;;) {
    pollfd entry{fd, events, 0};
    const int budget = PollBudgetMs(deadline);
    if (budget == 0) {
      return Status::IOError(StrFormat("%s timed out", what));
    }
    const int ready = ::poll(&entry, 1, budget);
    if (ready > 0) return Status::OK();
    if (ready == 0) return Status::IOError(StrFormat("%s timed out", what));
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

StatusOr<Socket> TcpListen(const std::string& host, uint16_t port,
                           int backlog) {
  sockaddr_in address;
  HMMM_RETURN_IF_ERROR(FillAddress(host, port, &address));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) != 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(socket.fd(), reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Errno("bind");
  }
  if (::listen(socket.fd(), backlog) != 0) return Errno("listen");
  return socket;
}

StatusOr<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in address;
  socklen_t length = sizeof(address);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(address.sin_port));
}

StatusOr<Socket> Accept(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  Socket socket(fd);
  const int one = 1;
  if (::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return socket;
}

StatusOr<Socket> TcpConnect(const std::string& host, uint16_t port,
                            std::chrono::milliseconds timeout) {
  sockaddr_in address;
  HMMM_RETURN_IF_ERROR(FillAddress(host, port, &address));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  // Connect in non-blocking mode so the timeout is enforceable, then
  // switch back: callers do their own deadline-driven polling on top of
  // a blocking socket.
  HMMM_RETURN_IF_ERROR(SetNonBlocking(socket.fd(), true));
  if (::connect(socket.fd(), reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    if (errno != EINPROGRESS) return Errno("connect");
    HMMM_RETURN_IF_ERROR(PollFor(socket.fd(), POLLOUT,
                                 DeadlineAfter(timeout), "connect"));
    int error = 0;
    socklen_t length = sizeof(error);
    if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &error, &length) !=
        0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (error != 0) {
      return Status::IOError(StrFormat("connect: %s", strerror(error)));
    }
  }
  HMMM_RETURN_IF_ERROR(SetNonBlocking(socket.fd(), false));
  const int one = 1;
  if (::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return socket;
}

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int updated =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, updated) != 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status WriteAll(int fd, std::string_view data,
                std::chrono::steady_clock::time_point deadline) {
  size_t written = 0;
  while (written < data.size()) {
    // Poll before sending: a blocking socket never returns EAGAIN, so
    // without this the deadline would only bind non-blocking fds.
    if (deadline != kNoDeadline) {
      HMMM_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline, "write"));
    }
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as a
    // Status, not kill the process with SIGPIPE.
    const ssize_t n = ::send(fd, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      HMMM_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline, "write"));
      continue;
    }
    return Errno("send");
  }
  return Status::OK();
}

Status ReadExact(int fd, char* buffer, size_t size,
                 std::chrono::steady_clock::time_point deadline) {
  size_t received = 0;
  while (received < size) {
    // Poll before reading, for the same reason as WriteAll: blocking
    // sockets would otherwise ignore the deadline entirely.
    if (deadline != kNoDeadline) {
      HMMM_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline, "read"));
    }
    const ssize_t n = ::recv(fd, buffer + received, size - received, 0);
    if (n > 0) {
      received += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (received == 0) return Status::NotFound("connection closed");
      return Status::DataLoss(
          StrFormat("connection closed mid-read (%zu of %zu bytes)",
                    received, size));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      HMMM_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline, "read"));
      continue;
    }
    return Errno("recv");
  }
  return Status::OK();
}

}  // namespace hmmm
