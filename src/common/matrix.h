#ifndef HMMM_COMMON_MATRIX_H_
#define HMMM_COMMON_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"

namespace hmmm {

/// Dense row-major matrix of doubles. This is the workhorse behind every
/// HMMM component matrix (A, B, Pi as a 1xN, P, L, AF accumulators, ...).
/// Sized for the paper's regime (hundreds of states, tens of features), so
/// a simple contiguous buffer without blocking is appropriate.
///
/// Storage comes in two modes:
///  - owned (the default): a 32-byte over-aligned heap buffer, exactly as
///    before;
///  - borrowed: a non-owning view over external read-only memory — the
///    zero-copy mode SnapshotReader uses to serve matrices straight out
///    of mmap'ed snapshot pages. A borrowed matrix reads identically to
///    an owned one (same raw bits, same accessors), and the first
///    mutating access materializes a private owned copy (copy-on-write),
///    so training on a snapshot-opened model just works. The borrowed
///    pointer's lifetime is the caller's problem (the snapshot reader
///    keeps the mapping alive for as long as any view needs it).
class Matrix {
 public:
  /// Backing storage: 32-byte aligned so the vectorized Eq.-14 kernel can
  /// read rows with full-width 256-bit loads that never split a cache
  /// line. Still a std::vector (just with an over-aligning allocator), so
  /// all iterator/element access is unchanged.
  using Buffer = AlignedVector<double>;

  Matrix() = default;
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  // Copying preserves the mode: an owned matrix deep-copies its buffer,
  // a borrowed one shallow-copies the view (both cheap and correct — the
  // invariant `borrowed_ != nullptr XOR data_ owns` carries over).
  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Builds from nested initializer data; all rows must be equally long.
  static StatusOr<Matrix> FromRows(
      const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Non-owning view over `rows * cols` doubles in row-major order at
  /// `data`. The memory must outlive every read of the returned matrix
  /// and of any matrix copied from it while still borrowed. `data` may
  /// be null only when rows * cols == 0.
  static Matrix FromBorrowed(const double* data, size_t rows, size_t cols);

  /// True when this matrix reads from external memory it does not own.
  bool borrowed() const { return borrowed_ != nullptr; }

  /// Materializes an owned private copy of a borrowed matrix; no-op when
  /// already owned. Every mutating accessor calls this, so external
  /// callers only need it to detach a view from its backing mapping
  /// explicitly (e.g. before the mapping goes away).
  void EnsureOwned();

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ * cols_ == 0; }

  double& at(size_t r, size_t c) {
    EnsureOwned();
    return data_[r * cols_ + c];
  }
  double at(size_t r, size_t c) const { return ptr()[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return at(r, c); }
  double operator()(size_t r, size_t c) const { return at(r, c); }

  /// Borrowed pointer to the cols() contiguous entries of row r — the
  /// zero-copy alternative to Row() for hot row scans. Invalidated by any
  /// reshaping operation (and, for borrowed matrices, by EnsureOwned).
  const double* RowPtr(size_t r) const { return ptr() + r * cols_; }
  double* MutableRowPtr(size_t r) {
    EnsureOwned();
    return data_.data() + r * cols_;
  }

  /// Contiguous row-major storage, regardless of mode. Null only for an
  /// empty matrix.
  const double* ptr() const {
    return borrowed_ != nullptr ? borrowed_ : data_.data();
  }

  /// Owned mutable storage; materializes a borrowed matrix first.
  Buffer& mutable_data() {
    EnsureOwned();
    return data_;
  }

  /// Copies row r out.
  std::vector<double> Row(size_t r) const;

  /// Overwrites row r; `values` must have cols() entries.
  Status SetRow(size_t r, const std::vector<double>& values);

  /// Appends one row; `values` must have cols() entries. Grows the owned
  /// buffer (a borrowed matrix is materialized first). Amortized O(cols)
  /// — this is how the catalog's feature table grows shot by shot.
  Status AppendRow(const std::vector<double>& values);

  /// Fills the whole matrix with `value`.
  void Fill(double value);

  /// Sum of entries in row r.
  double RowSum(size_t r) const;

  /// Divides each row by its sum, making the matrix row-stochastic.
  /// Rows that sum to <= `zero_tolerance` are left untouched (the caller
  /// keeps the prior distribution for never-updated states).
  void NormalizeRows(double zero_tolerance = 0.0);

  /// Index of the maximum entry in row r (first one on ties); -1 if empty.
  int RowArgMax(size_t r) const;

  /// Elementwise in-place scale.
  void Scale(double factor);

  /// Matrix product; error on dimension mismatch.
  StatusOr<Matrix> Multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// True if every row sums to 1 within `tolerance` and all entries are
  /// non-negative. Empty rows (all zero) are accepted when
  /// `accept_zero_rows` is true.
  bool IsRowStochastic(double tolerance = 1e-9,
                       bool accept_zero_rows = false) const;

  /// Max absolute elementwise difference; infinity on shape mismatch.
  double MaxAbsDiff(const Matrix& other) const;

  /// Elementwise equality over the same shape; mode (owned vs borrowed)
  /// is storage, not value, so it never participates.
  bool operator==(const Matrix& other) const;

  /// Debug rendering with fixed precision.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Buffer data_;                    // owned storage (empty when borrowed)
  const double* borrowed_ = nullptr;  // non-owning view (null when owned)
};

}  // namespace hmmm

#endif  // HMMM_COMMON_MATRIX_H_
