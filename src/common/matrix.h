#ifndef HMMM_COMMON_MATRIX_H_
#define HMMM_COMMON_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"

namespace hmmm {

/// Dense row-major matrix of doubles. This is the workhorse behind every
/// HMMM component matrix (A, B, Pi as a 1xN, P, L, AF accumulators, ...).
/// Sized for the paper's regime (hundreds of states, tens of features), so
/// a simple contiguous buffer without blocking is appropriate.
class Matrix {
 public:
  /// Backing storage: 32-byte aligned so the vectorized Eq.-14 kernel can
  /// read rows with full-width 256-bit loads that never split a cache
  /// line. Still a std::vector (just with an over-aligning allocator), so
  /// all iterator/element access is unchanged.
  using Buffer = AlignedVector<double>;

  Matrix() = default;
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Builds from nested initializer data; all rows must be equally long.
  static StatusOr<Matrix> FromRows(
      const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return at(r, c); }
  double operator()(size_t r, size_t c) const { return at(r, c); }

  /// Borrowed pointer to the cols() contiguous entries of row r — the
  /// zero-copy alternative to Row() for hot row scans. Invalidated by any
  /// reshaping operation.
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }
  double* MutableRowPtr(size_t r) { return data_.data() + r * cols_; }

  const Buffer& data() const { return data_; }
  Buffer& mutable_data() { return data_; }

  /// Copies row r out.
  std::vector<double> Row(size_t r) const;

  /// Overwrites row r; `values` must have cols() entries.
  Status SetRow(size_t r, const std::vector<double>& values);

  /// Fills the whole matrix with `value`.
  void Fill(double value);

  /// Sum of entries in row r.
  double RowSum(size_t r) const;

  /// Divides each row by its sum, making the matrix row-stochastic.
  /// Rows that sum to <= `zero_tolerance` are left untouched (the caller
  /// keeps the prior distribution for never-updated states).
  void NormalizeRows(double zero_tolerance = 0.0);

  /// Index of the maximum entry in row r (first one on ties); -1 if empty.
  int RowArgMax(size_t r) const;

  /// Elementwise in-place scale.
  void Scale(double factor);

  /// Matrix product; error on dimension mismatch.
  StatusOr<Matrix> Multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// True if every row sums to 1 within `tolerance` and all entries are
  /// non-negative. Empty rows (all zero) are accepted when
  /// `accept_zero_rows` is true.
  bool IsRowStochastic(double tolerance = 1e-9,
                       bool accept_zero_rows = false) const;

  /// Max absolute elementwise difference; infinity on shape mismatch.
  double MaxAbsDiff(const Matrix& other) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  /// Debug rendering with fixed precision.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Buffer data_;
};

}  // namespace hmmm

#endif  // HMMM_COMMON_MATRIX_H_
