#ifndef HMMM_COMMON_STRINGS_H_
#define HMMM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace hmmm {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `text` at every occurrence of `sep`; empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `pieces` with `sep` between them.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Escapes `text` for embedding inside a double-quoted JSON string:
/// backslash, double quote, and control characters (as \uXXXX or the
/// short forms \n \r \t).
std::string JsonEscape(std::string_view text);

}  // namespace hmmm

#endif  // HMMM_COMMON_STRINGS_H_
