#ifndef HMMM_COMMON_THREAD_POOL_H_
#define HMMM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hmmm {

/// Point-in-time usage snapshot of a ThreadPool, exported into a
/// MetricsRegistry by the serving layers (the pool itself stays below the
/// observability library in the dependency order, so it only keeps cheap
/// internal atomics).
struct ThreadPoolStats {
  uint64_t tasks_executed = 0;   // tasks completed since construction
  uint64_t task_exceptions = 0;  // fire-and-forget tasks that threw
  double busy_ms = 0.0;          // summed wall time workers spent in tasks
  size_t queue_depth = 0;        // tasks currently waiting
  int workers = 0;
};

/// A fixed-size pool of worker threads over a shared FIFO task queue.
/// Workers start in the constructor and are joined in the destructor
/// (after draining any queued tasks).
///
/// Tasks may throw. An exception never kills a worker or the pool:
///  - Submit (fire-and-forget) catches the exception, counts it in
///    stats().task_exceptions and logs it — there is no submitter-side
///    handle to deliver it to.
///  - SubmitWithFuture delivers the exception to the submitter through
///    the returned future (std::future::get rethrows it).
///  - ParallelFor captures the first body exception and rethrows it on
///    the calling thread after every worker has stopped.
class ThreadPool {
 public:
  /// `num_threads` <= 0 resolves to the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one fire-and-forget task. A throwing task is swallowed
  /// (counted + logged), keeping the worker alive.
  void Submit(std::function<void()> task);

  /// Enqueues one task whose completion — and any exception it throws —
  /// is observable through the returned future.
  std::future<void> SubmitWithFuture(std::function<void()> task);

  /// Runs `body(worker, begin, end)` over [0, n) split into chunks of at
  /// most `grain` indices with dynamic load balancing: each pool worker
  /// repeatedly claims the next unprocessed chunk. `worker` is a dense id
  /// in [0, size()), stable for the duration of the call, so the body can
  /// keep worker-local accumulators without locking. Blocks the calling
  /// thread until every worker is done; if any body invocation threw, the
  /// first exception is rethrown here (remaining chunks may or may not
  /// have run — callers treat the whole ParallelFor as failed). Must not
  /// be invoked from inside a pool task (the nested wait could deadlock).
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(int worker, size_t begin,
                                            size_t end)>& body);

  /// <= 0 -> hardware concurrency (at least 1); otherwise `requested`.
  static int ResolveThreadCount(int requested);

  /// Usage counters for metrics export. Safe to call concurrently with
  /// task execution; the snapshot is approximate while tasks run.
  ThreadPoolStats stats() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> task_exceptions_{0};
  std::atomic<uint64_t> busy_ns_{0};
};

/// Pool factory honoring the `num_threads` knob of the options structs:
/// returns nullptr when the resolved count is 1 (callers run serially and
/// skip the pool entirely), else a pool of the resolved size.
std::unique_ptr<ThreadPool> MakeThreadPool(int num_threads);

}  // namespace hmmm

#endif  // HMMM_COMMON_THREAD_POOL_H_
