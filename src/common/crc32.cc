#include "common/crc32.h"

namespace hmmm {

namespace {

// Table for CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78),
// generated lazily on first use.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  static const Crc32cTable& table = *new Crc32cTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace hmmm
