#ifndef HMMM_COMMON_SERIALIZATION_H_
#define HMMM_COMMON_SERIALIZATION_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace hmmm {

/// Transient-IO retry budget shared by every storage entry point:
/// kIOError attempts are repeated with linear backoff; every other code
/// returns immediately — kNotFound is an answer, and kDataLoss
/// (corruption) never heals by rereading. ReadFileToString/WriteFile
/// route through this, and loaders that compose extra syscalls on top
/// (the snapshot reader's open/fstat/mmap sequence, LoadCatalog /
/// HierarchicalModel::LoadFromFile) reuse it so the retry semantics stay
/// uniform across the storage surface.
inline constexpr int kTransientIoAttempts = 3;
inline constexpr std::chrono::milliseconds kIoRetryBackoffStep{1};

/// Runs `op` (returning Status or StatusOr<T>) under the transient-IO
/// retry policy above and returns its last result.
template <typename Op>
auto WithIoRetry(const Op& op) -> decltype(op()) {
  for (int attempt = 0;; ++attempt) {
    auto result = op();
    const Status& status = [&]() -> const Status& {
      if constexpr (std::is_same_v<decltype(op()), Status>) {
        return result;
      } else {
        return result.status();
      }
    }();
    if (status.code() != StatusCode::kIOError ||
        attempt + 1 >= kTransientIoAttempts) {
      return result;
    }
    std::this_thread::sleep_for(kIoRetryBackoffStep * (attempt + 1));
  }
}

/// Append-only binary encoder. Fixed-width little-endian scalars, varint
/// lengths for strings/vectors. Pairs with BinaryReader.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteUint8(uint8_t v);
  void WriteUint32(uint32_t v);
  void WriteUint64(uint64_t v);
  void WriteInt32(int32_t v);
  void WriteInt64(int64_t v);
  void WriteDouble(double v);
  void WriteVarint(uint64_t v);
  void WriteString(std::string_view s);
  void WriteDoubleVector(const std::vector<double>& v);
  void WriteInt32Vector(const std::vector<int32_t>& v);
  void WriteMatrix(const Matrix& m);

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Sequential binary decoder over an in-memory buffer. All reads are
/// bounds-checked and return Status on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  StatusOr<uint8_t> ReadUint8();
  StatusOr<uint32_t> ReadUint32();
  StatusOr<uint64_t> ReadUint64();
  StatusOr<int32_t> ReadInt32();
  StatusOr<int64_t> ReadInt64();
  StatusOr<double> ReadDouble();
  StatusOr<uint64_t> ReadVarint();
  StatusOr<std::string> ReadString();
  StatusOr<std::vector<double>> ReadDoubleVector();
  StatusOr<std::vector<int32_t>> ReadInt32Vector();
  StatusOr<Matrix> ReadMatrix();

  /// Advances past `n` bytes without decoding them.
  Status Skip(size_t n);

  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

/// Writes `contents` to `path` atomically-ish (tmp file + rename).
/// Transient kIOError failures are retried a bounded number of times with
/// backoff before the error surfaces.
Status WriteFile(const std::string& path, std::string_view contents);

/// Reads a whole file into a string. Returns kNotFound for a missing
/// file; transient kIOError failures are retried a bounded number of
/// times with backoff before the error surfaces.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Wraps a payload in a checksummed envelope:
/// magic(4) | version(4) | payload_size(8) | crc32c(4) | payload.
std::string WrapChecksummed(uint32_t magic, uint32_t version,
                            std::string_view payload);

/// Size of the fixed envelope prefix WrapChecksummed writes before the
/// payload. A file shorter than this is a short read / truncation — a
/// kDataLoss condition — never a version or format question.
inline constexpr size_t kChecksummedEnvelopeBytes = 20;

/// Verifies and strips the envelope written by WrapChecksummed. Checks the
/// magic, returns the version through `version_out` if non-null.
StatusOr<std::string> UnwrapChecksummed(uint32_t magic, std::string_view data,
                                        uint32_t* version_out = nullptr);

}  // namespace hmmm

#endif  // HMMM_COMMON_SERIALIZATION_H_
