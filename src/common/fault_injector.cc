#include "common/fault_injector.h"

namespace hmmm {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();  // never destroyed
  return *instance;
}

void FaultInjector::Arm(const std::string& point, FaultPointConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  PointState& state = points_[point];
  state.config = config;
  state.armed = true;
  state.hit_count = 0;
  state.fire_count = 0;
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_.seed(seed);
}

bool FaultInjector::ShouldFire(const char* point, int64_t arg) {
  std::lock_guard<std::mutex> lock(mutex_);
  PointState& state = points_[point];
  const uint64_t hit_index = state.hit_count++;
  if (!state.armed) return false;
  const FaultPointConfig& config = state.config;
  if (config.max_fires >= 0 &&
      state.fire_count >= static_cast<uint64_t>(config.max_fires)) {
    return false;
  }
  bool fire = false;
  if (config.after_hits >= 0 &&
      hit_index >= static_cast<uint64_t>(config.after_hits)) {
    fire = true;
  }
  if (!fire && config.arg_threshold >= 0 && arg >= 0 &&
      arg >= config.arg_threshold) {
    fire = true;
  }
  if (!fire && config.probability > 0.0) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    fire = uniform(rng_) < config.probability;
  }
  if (fire) ++state.fire_count;
  return fire;
}

bool FaultInjector::ArmedWithPrefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // points_ is sorted: the first key >= prefix is the only candidate
  // that could start with it.
  for (auto it = points_.lower_bound(prefix); it != points_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (it->second.armed) return true;
  }
  return false;
}

uint64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hit_count;
}

uint64_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fire_count;
}

std::vector<FaultPointStats> FaultInjector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultPointStats> snapshot;
  snapshot.reserve(points_.size());
  for (const auto& [point, state] : points_) {
    snapshot.push_back(
        {point, state.hit_count, state.fire_count, state.armed});
  }
  return snapshot;
}

}  // namespace hmmm
