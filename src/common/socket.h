#ifndef HMMM_COMMON_SOCKET_H_
#define HMMM_COMMON_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace hmmm {

/// RAII wrapper around a POSIX file descriptor. Move-only; closing twice
/// is safe. Used for TCP sockets and the server's self-wake pipe.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// Relinquishes ownership without closing.
  int Release();

 private:
  int fd_ = -1;
};

/// Binds and listens on `host:port` (IPv4 dotted quad or "localhost").
/// `port` 0 picks an ephemeral port — read it back with LocalPort. The
/// returned socket has SO_REUSEADDR set and is in blocking mode.
StatusOr<Socket> TcpListen(const std::string& host, uint16_t port,
                           int backlog = 64);

/// The locally bound port of a listening (or connected) socket.
StatusOr<uint16_t> LocalPort(const Socket& socket);

/// Accepts one pending connection from a listening socket (the caller
/// polled it readable, so this does not block). The accepted socket has
/// TCP_NODELAY set and inherits blocking mode.
StatusOr<Socket> Accept(const Socket& listener);

/// Connects to `host:port` with a bounded connect timeout. The returned
/// socket is in blocking mode with TCP_NODELAY set (the wire protocol
/// writes one small frame per request; Nagle would serialize the
/// request/response ping-pong onto delayed-ACK timers).
StatusOr<Socket> TcpConnect(const std::string& host, uint16_t port,
                            std::chrono::milliseconds timeout);

/// Switches O_NONBLOCK on or off.
Status SetNonBlocking(int fd, bool nonblocking);

/// Writes all of `data`, polling for writability until `deadline` (pass
/// kNoDeadline for unbounded). Handles EINTR/EAGAIN on both blocking and
/// non-blocking sockets. kIOError on timeout, connection reset or EPIPE.
Status WriteAll(int fd, std::string_view data,
                std::chrono::steady_clock::time_point deadline);

/// Reads exactly `size` bytes into `buffer`, polling for readability
/// until `deadline`. A clean peer close before the first byte returns
/// kNotFound ("connection closed"); EOF mid-read returns kDataLoss (a
/// torn frame); a timeout or socket error returns kIOError.
Status ReadExact(int fd, char* buffer, size_t size,
                 std::chrono::steady_clock::time_point deadline);

}  // namespace hmmm

#endif  // HMMM_COMMON_SOCKET_H_
