#include "common/serialization.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <type_traits>

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "common/strings.h"

namespace hmmm {

namespace {

template <typename T>
void AppendRaw(std::string& buffer, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  buffer.append(bytes, sizeof(T));
}

}  // namespace

void BinaryWriter::WriteUint8(uint8_t v) { AppendRaw(buffer_, v); }
void BinaryWriter::WriteUint32(uint32_t v) { AppendRaw(buffer_, v); }
void BinaryWriter::WriteUint64(uint64_t v) { AppendRaw(buffer_, v); }
void BinaryWriter::WriteInt32(int32_t v) { AppendRaw(buffer_, v); }
void BinaryWriter::WriteInt64(int64_t v) { AppendRaw(buffer_, v); }
void BinaryWriter::WriteDouble(double v) { AppendRaw(buffer_, v); }

void BinaryWriter::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<char>(v));
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteVarint(s.size());
  buffer_.append(s.data(), s.size());
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteVarint(v.size());
  for (double x : v) WriteDouble(x);
}

void BinaryWriter::WriteInt32Vector(const std::vector<int32_t>& v) {
  WriteVarint(v.size());
  for (int32_t x : v) WriteInt32(x);
}

void BinaryWriter::WriteMatrix(const Matrix& m) {
  WriteVarint(m.rows());
  WriteVarint(m.cols());
  const double* values = m.ptr();
  for (size_t i = 0; i < m.size(); ++i) WriteDouble(values[i]);
}

Status BinaryReader::Need(size_t n) const {
  if (pos_ + n > data_.size()) {
    return Status::DataLoss(
        StrFormat("truncated input: need %zu bytes at offset %zu of %zu", n,
                  pos_, data_.size()));
  }
  return Status::OK();
}

namespace {

template <typename T>
StatusOr<T> ReadRaw(std::string_view data, size_t& pos) {
  T v;
  std::memcpy(&v, data.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

Status BinaryReader::Skip(size_t n) {
  HMMM_RETURN_IF_ERROR(Need(n));
  pos_ += n;
  return Status::OK();
}

StatusOr<uint8_t> BinaryReader::ReadUint8() {
  HMMM_RETURN_IF_ERROR(Need(sizeof(uint8_t)));
  return ReadRaw<uint8_t>(data_, pos_);
}
StatusOr<uint32_t> BinaryReader::ReadUint32() {
  HMMM_RETURN_IF_ERROR(Need(sizeof(uint32_t)));
  return ReadRaw<uint32_t>(data_, pos_);
}
StatusOr<uint64_t> BinaryReader::ReadUint64() {
  HMMM_RETURN_IF_ERROR(Need(sizeof(uint64_t)));
  return ReadRaw<uint64_t>(data_, pos_);
}
StatusOr<int32_t> BinaryReader::ReadInt32() {
  HMMM_RETURN_IF_ERROR(Need(sizeof(int32_t)));
  return ReadRaw<int32_t>(data_, pos_);
}
StatusOr<int64_t> BinaryReader::ReadInt64() {
  HMMM_RETURN_IF_ERROR(Need(sizeof(int64_t)));
  return ReadRaw<int64_t>(data_, pos_);
}
StatusOr<double> BinaryReader::ReadDouble() {
  HMMM_RETURN_IF_ERROR(Need(sizeof(double)));
  return ReadRaw<double>(data_, pos_);
}

StatusOr<uint64_t> BinaryReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    HMMM_RETURN_IF_ERROR(Need(1));
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 64 || (shift == 63 && (byte & 0x7E))) {
      return Status::DataLoss("varint overflow");
    }
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

StatusOr<std::string> BinaryReader::ReadString() {
  HMMM_ASSIGN_OR_RETURN(uint64_t size, ReadVarint());
  HMMM_RETURN_IF_ERROR(Need(size));
  std::string out(data_.substr(pos_, size));
  pos_ += size;
  return out;
}

StatusOr<std::vector<double>> BinaryReader::ReadDoubleVector() {
  HMMM_ASSIGN_OR_RETURN(uint64_t size, ReadVarint());
  // Guard before allocating: a crafted size must not overflow the byte
  // arithmetic or trigger a huge allocation.
  if (size > remaining() / sizeof(double)) {
    return Status::DataLoss("vector length exceeds remaining input");
  }
  std::vector<double> out(size);
  for (uint64_t i = 0; i < size; ++i) {
    HMMM_ASSIGN_OR_RETURN(out[i], ReadDouble());
  }
  return out;
}

StatusOr<std::vector<int32_t>> BinaryReader::ReadInt32Vector() {
  HMMM_ASSIGN_OR_RETURN(uint64_t size, ReadVarint());
  if (size > remaining() / sizeof(int32_t)) {
    return Status::DataLoss("vector length exceeds remaining input");
  }
  std::vector<int32_t> out(size);
  for (uint64_t i = 0; i < size; ++i) {
    HMMM_ASSIGN_OR_RETURN(out[i], ReadInt32());
  }
  return out;
}

StatusOr<Matrix> BinaryReader::ReadMatrix() {
  HMMM_ASSIGN_OR_RETURN(uint64_t rows, ReadVarint());
  HMMM_ASSIGN_OR_RETURN(uint64_t cols, ReadVarint());
  // Bound each dimension before multiplying so the product cannot wrap,
  // then require the payload to actually be present before allocating.
  constexpr uint64_t kMaxDim = 1ull << 24;
  if (rows > kMaxDim || cols > kMaxDim ||
      rows * cols > remaining() / sizeof(double)) {
    return Status::DataLoss("matrix dimensions exceed remaining input");
  }
  Matrix m(rows, cols);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      HMMM_ASSIGN_OR_RETURN(m.at(r, c), ReadDouble());
    }
  }
  return m;
}

namespace {

Status WriteFileOnce(const std::string& path, std::string_view contents) {
  if (HMMM_FAULT_FIRED("storage.write")) {
    return Status::IOError(
        StrFormat("injected fault: storage.write on %s", path.c_str()));
  }
  const std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot open %s for writing",
                                     tmp_path.c_str()));
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool write_ok = written == contents.size();
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !close_ok) {
    std::remove(tmp_path.c_str());
    return Status::IOError(StrFormat("short write to %s", tmp_path.c_str()));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError(StrFormat("rename to %s failed", path.c_str()));
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileToStringOnce(const std::string& path) {
  if (HMMM_FAULT_FIRED("storage.read")) {
    return Status::IOError(
        StrFormat("injected fault: storage.read on %s", path.c_str()));
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // A missing file is an answer, not an IO failure: callers like the
    // catalog journal treat it as "start empty", and the retry loop must
    // not burn its budget on it.
    if (errno == ENOENT) {
      return Status::NotFound(StrFormat("no such file: %s", path.c_str()));
    }
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  std::string out;
  char buf[1 << 16];
  while (true) {
    const size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError(StrFormat("read error on %s", path.c_str()));
  }
  return out;
}

}  // namespace

Status WriteFile(const std::string& path, std::string_view contents) {
  return WithIoRetry([&] { return WriteFileOnce(path, contents); });
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  return WithIoRetry([&] { return ReadFileToStringOnce(path); });
}

std::string WrapChecksummed(uint32_t magic, uint32_t version,
                            std::string_view payload) {
  BinaryWriter w;
  w.WriteUint32(magic);
  w.WriteUint32(version);
  w.WriteUint64(payload.size());
  w.WriteUint32(Crc32c(payload.data(), payload.size()));
  std::string out = std::move(w).TakeBuffer();
  out.append(payload.data(), payload.size());
  return out;
}

StatusOr<std::string> UnwrapChecksummed(uint32_t magic, std::string_view data,
                                        uint32_t* version_out) {
  BinaryReader r(data);
  HMMM_ASSIGN_OR_RETURN(uint32_t file_magic, r.ReadUint32());
  if (file_magic != magic) {
    return Status::DataLoss(StrFormat("bad magic 0x%08x (want 0x%08x)",
                                      file_magic, magic));
  }
  HMMM_ASSIGN_OR_RETURN(uint32_t version, r.ReadUint32());
  HMMM_ASSIGN_OR_RETURN(uint64_t payload_size, r.ReadUint64());
  HMMM_ASSIGN_OR_RETURN(uint32_t expected_crc, r.ReadUint32());
  if (r.remaining() != payload_size) {
    return Status::DataLoss(
        StrFormat("payload size mismatch: header says %llu, have %zu",
                  static_cast<unsigned long long>(payload_size),
                  r.remaining()));
  }
  std::string payload(data.substr(r.position(), payload_size));
  const uint32_t actual_crc = Crc32c(payload.data(), payload.size());
  if (actual_crc != expected_crc) {
    return Status::DataLoss(StrFormat("checksum mismatch: 0x%08x vs 0x%08x",
                                      actual_crc, expected_crc));
  }
  if (version_out != nullptr) *version_out = version;
  return payload;
}

}  // namespace hmmm
