#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/logging.h"

namespace hmmm {

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

ThreadPool::ThreadPool(int num_threads) {
  const int resolved = ResolveThreadCount(num_threads);
  workers_.reserve(static_cast<size_t>(resolved));
  for (int i = 0; i < resolved; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  HMMM_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HMMM_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    busy_ns_.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats stats;
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.busy_ms =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) / 1e6;
  stats.workers = size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.queue_depth = queue_.size();
  }
  return stats;
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain,
    const std::function<void(int worker, size_t begin, size_t end)>& body) {
  if (n == 0) return;
  const size_t chunk = std::max<size_t>(1, grain);

  // The caller blocks until `active` drains, so stack state outlives every
  // task referencing it.
  struct {
    std::atomic<size_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    size_t active = 0;
  } state;

  const size_t num_chunks = (n + chunk - 1) / chunk;
  const int fanout = static_cast<int>(
      std::min(static_cast<size_t>(size()), num_chunks));
  state.active = static_cast<size_t>(fanout);
  for (int worker = 0; worker < fanout; ++worker) {
    Submit([&state, &body, worker, n, chunk] {
      for (;;) {
        const size_t begin =
            state.next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) break;
        body(worker, begin, std::min(n, begin + chunk));
      }
      std::lock_guard<std::mutex> lock(state.mutex);
      if (--state.active == 0) state.done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.active == 0; });
}

std::unique_ptr<ThreadPool> MakeThreadPool(int num_threads) {
  const int resolved = ThreadPool::ResolveThreadCount(num_threads);
  if (resolved <= 1) return nullptr;
  return std::make_unique<ThreadPool>(resolved);
}

}  // namespace hmmm
