#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>

#include "common/fault_injector.h"
#include "common/logging.h"

namespace hmmm {

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

ThreadPool::ThreadPool(int num_threads) {
  const int resolved = ResolveThreadCount(num_threads);
  workers_.reserve(static_cast<size_t>(resolved));
  for (int i = 0; i < resolved; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  HMMM_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HMMM_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

std::future<void> ThreadPool::SubmitWithFuture(std::function<void()> task) {
  HMMM_CHECK(task != nullptr);
  // packaged_task routes anything the callable throws into the future;
  // the worker-loop catch never sees it, so it is not counted as a
  // dropped exception.
  auto packaged = std::make_shared<std::packaged_task<void()>>(
      [task = std::move(task)] {
        if (HMMM_FAULT_FIRED("threadpool.task")) {
          throw std::runtime_error("injected fault: threadpool.task");
        }
        task();
      });
  std::future<void> future = packaged->get_future();
  Submit([packaged] { (*packaged)(); });
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    // A fire-and-forget task has no one to deliver an exception to; the
    // worker must survive it regardless (a dead worker would silently
    // shrink the pool for the rest of the process).
    try {
      task();
    } catch (const std::exception& e) {
      task_exceptions_.fetch_add(1, std::memory_order_relaxed);
      HMMM_LOG(Error) << "thread-pool task threw: " << e.what();
    } catch (...) {
      task_exceptions_.fetch_add(1, std::memory_order_relaxed);
      HMMM_LOG(Error) << "thread-pool task threw a non-std exception";
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    busy_ns_.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats stats;
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.task_exceptions = task_exceptions_.load(std::memory_order_relaxed);
  stats.busy_ms =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) / 1e6;
  stats.workers = size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.queue_depth = queue_.size();
  }
  return stats;
}

void ThreadPool::ParallelFor(
    size_t n, size_t grain,
    const std::function<void(int worker, size_t begin, size_t end)>& body) {
  if (n == 0) return;
  const size_t chunk = std::max<size_t>(1, grain);

  // The caller blocks until `active` drains, so stack state outlives every
  // task referencing it.
  struct {
    std::atomic<size_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    size_t active = 0;
    std::exception_ptr first_exception;
  } state;

  const size_t num_chunks = (n + chunk - 1) / chunk;
  const int fanout = static_cast<int>(
      std::min(static_cast<size_t>(size()), num_chunks));
  state.active = static_cast<size_t>(fanout);
  for (int worker = 0; worker < fanout; ++worker) {
    Submit([&state, &body, worker, n, chunk] {
      // A throwing body stops this worker's claim loop; the exception is
      // parked for the caller and `active` still drains, so the caller
      // never deadlocks. Other workers keep claiming the remaining
      // chunks — the caller treats the whole ParallelFor as failed once
      // the rethrow happens, so the extra work is at worst wasted.
      try {
        for (;;) {
          const size_t begin =
              state.next.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= n) break;
          if (HMMM_FAULT_FIRED("threadpool.task")) {
            throw std::runtime_error("injected fault: threadpool.task");
          }
          body(worker, begin, std::min(n, begin + chunk));
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (state.first_exception == nullptr) {
          state.first_exception = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(state.mutex);
      if (--state.active == 0) state.done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.active == 0; });
  if (state.first_exception != nullptr) {
    std::rethrow_exception(state.first_exception);
  }
}

std::unique_ptr<ThreadPool> MakeThreadPool(int num_threads) {
  const int resolved = ThreadPool::ResolveThreadCount(num_threads);
  if (resolved <= 1) return nullptr;
  return std::make_unique<ThreadPool>(resolved);
}

}  // namespace hmmm
