#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace hmmm {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  HMMM_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  HMMM_CHECK(lo <= hi);
  return lo + static_cast<int>(NextUint64(
                  static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

int Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return -1;
  double target = NextDouble() * total;
  double running = 0.0;
  int last_positive = -1;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    running += weights[i];
    last_positive = static_cast<int>(i);
    if (target < running) return last_positive;
  }
  return last_positive;  // Floating-point slack: fall back to the last one.
}

double Rng::NextExponential(double rate) {
  HMMM_CHECK(rate > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace hmmm
