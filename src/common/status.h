#ifndef HMMM_COMMON_STATUS_H_
#define HMMM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace hmmm {

/// Error categories used across the library. Mirrors the usual database
/// library convention (RocksDB/Abseil style): code + human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kDataLoss = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kIOError = 9,
  kResourceExhausted = 10,
};

/// Returns a stable lowercase name for `code` ("ok", "invalid_argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error indicator. The library does not use exceptions;
/// every fallible operation returns a Status (or StatusOr<T>).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Either a value of type T or an error Status. Accessing the value of a
/// non-OK StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from error status, so call sites can
  /// `return value;` or `return Status::NotFound(...);` directly.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK without value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hmmm

/// Propagates a non-OK Status from an expression. Usage:
///   HMMM_RETURN_IF_ERROR(DoThing());
#define HMMM_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::hmmm::Status _hmmm_status = (expr);         \
    if (!_hmmm_status.ok()) return _hmmm_status;  \
  } while (0)

/// Evaluates a StatusOr expression, assigning the value or propagating the
/// error. Usage: HMMM_ASSIGN_OR_RETURN(auto x, MakeX());
#define HMMM_ASSIGN_OR_RETURN(lhs, expr)                        \
  HMMM_ASSIGN_OR_RETURN_IMPL_(                                  \
      HMMM_STATUS_CONCAT_(_hmmm_statusor, __LINE__), lhs, expr)

#define HMMM_STATUS_CONCAT_INNER_(a, b) a##b
#define HMMM_STATUS_CONCAT_(a, b) HMMM_STATUS_CONCAT_INNER_(a, b)
#define HMMM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // HMMM_COMMON_STATUS_H_
