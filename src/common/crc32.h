#ifndef HMMM_COMMON_CRC32_H_
#define HMMM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hmmm {

/// CRC-32C (Castagnoli) over `data`. Used to detect corruption in the
/// binary model/catalog files; `seed` allows incremental computation by
/// passing the previous result.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace hmmm

#endif  // HMMM_COMMON_CRC32_H_
