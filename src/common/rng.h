#ifndef HMMM_COMMON_RNG_H_
#define HMMM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hmmm {

/// Deterministic pseudo-random number generator (xoshiro256++). Every
/// generator in the library takes an explicit seed so that all experiments
/// are reproducible bit-for-bit across runs and platforms.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give uncorrelated
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool NextBernoulli(double p);

  /// Samples an index according to the (not necessarily normalized)
  /// non-negative weights. Returns -1 if all weights are zero or the
  /// vector is empty.
  int NextWeighted(const std::vector<double>& weights);

  /// Exponential deviate with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// Fisher-Yates shuffle of [first, last) index order on a vector.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each video /
  /// shot its own deterministic stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hmmm

#endif  // HMMM_COMMON_RNG_H_
