#include "common/cpuid.h"

namespace hmmm {

bool CpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  // GCC and Clang both implement the runtime probe; it reads CPUID once
  // and caches the result in the runtime.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace hmmm
