#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hmmm {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace hmmm
