#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace hmmm {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_min_level; }
void SetLogLevel(LogLevel level) { g_min_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for a compact prefix.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level || level_ == LogLevel::kFatal) {
    std::string text = stream_.str();
    std::fprintf(stderr, "%s\n", text.c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace hmmm
