#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace hmmm {

namespace {
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

// The sink is guarded by a mutex rather than stored in an atomic: swaps
// are rare (test setup) and emission is already a slow path. Emission
// runs under the lock so a concurrent SetLogSink cannot destroy the
// std::function mid-call.
std::mutex& SinkMutex() {
  static std::mutex& mutex = *new std::mutex;
  return mutex;
}

LogSink& SinkSlot() {
  static LogSink& sink = *new LogSink;
  return sink;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}
void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for a compact prefix.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level.load(std::memory_order_relaxed) ||
      level_ == LogLevel::kFatal) {
    const std::string text = stream_.str();
    bool sank = false;
    {
      std::lock_guard<std::mutex> lock(SinkMutex());
      if (SinkSlot()) {
        SinkSlot()(level_, text);
        sank = true;
      }
    }
    if (!sank || level_ == LogLevel::kFatal) {
      std::fprintf(stderr, "%s\n", text.c_str());
    }
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace hmmm
