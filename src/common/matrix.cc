#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/strings.h"

namespace hmmm {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

StatusOr<Matrix> Matrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  const size_t cols = rows[0].size();
  for (const auto& row : rows) {
    if (row.size() != cols) {
      return Status::InvalidArgument("ragged rows in Matrix::FromRows");
    }
  }
  Matrix m(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < cols; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromBorrowed(const double* data, size_t rows, size_t cols) {
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  if (rows * cols > 0) m.borrowed_ = data;
  return m;
}

void Matrix::EnsureOwned() {
  if (borrowed_ == nullptr) return;
  data_.assign(borrowed_, borrowed_ + rows_ * cols_);
  borrowed_ = nullptr;
}

std::vector<double> Matrix::Row(size_t r) const {
  const double* row = ptr() + r * cols_;
  return std::vector<double>(row, row + cols_);
}

Status Matrix::SetRow(size_t r, const std::vector<double>& values) {
  if (r >= rows_) return Status::OutOfRange("row index out of range");
  if (values.size() != cols_) {
    return Status::InvalidArgument("row width mismatch in SetRow");
  }
  EnsureOwned();
  std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
  return Status::OK();
}

Status Matrix::AppendRow(const std::vector<double>& values) {
  if (values.size() != cols_) {
    return Status::InvalidArgument("row width mismatch in AppendRow");
  }
  EnsureOwned();
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
  return Status::OK();
}

void Matrix::Fill(double value) {
  // A borrowed matrix about to be wiped wholesale never needs its old
  // bytes copied; just allocate the owned buffer directly.
  if (borrowed_ != nullptr) {
    data_.assign(rows_ * cols_, value);
    borrowed_ = nullptr;
    return;
  }
  std::fill(data_.begin(), data_.end(), value);
}

double Matrix::RowSum(size_t r) const {
  double sum = 0.0;
  for (size_t c = 0; c < cols_; ++c) sum += at(r, c);
  return sum;
}

void Matrix::NormalizeRows(double zero_tolerance) {
  EnsureOwned();
  for (size_t r = 0; r < rows_; ++r) {
    const double sum = RowSum(r);
    if (sum <= zero_tolerance) continue;
    for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] /= sum;
  }
}

int Matrix::RowArgMax(size_t r) const {
  if (cols_ == 0) return -1;
  int best = 0;
  for (size_t c = 1; c < cols_; ++c) {
    if (at(r, c) > at(r, static_cast<size_t>(best))) best = static_cast<int>(c);
  }
  return best;
}

void Matrix::Scale(double factor) {
  EnsureOwned();
  for (double& v : data_) v *= factor;
}

StatusOr<Matrix> Matrix::Multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("matrix shape mismatch in Multiply");
  }
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double v = at(r, k);
      if (v == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += v * other.at(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

bool Matrix::IsRowStochastic(double tolerance, bool accept_zero_rows) const {
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) {
      const double v = at(r, c);
      if (v < -tolerance) return false;
      sum += v;
    }
    if (accept_zero_rows && std::abs(sum) <= tolerance) continue;
    if (std::abs(sum - 1.0) > tolerance) return false;
  }
  return true;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return std::numeric_limits<double>::infinity();
  }
  double max_diff = 0.0;
  const double* a = ptr();
  const double* b = other.ptr();
  for (size_t i = 0; i < rows_ * cols_; ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

bool Matrix::operator==(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  const double* a = ptr();
  const double* b = other.ptr();
  return std::equal(a, a + rows_ * cols_, b);
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << at(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace hmmm
