#ifndef HMMM_COMMON_CPUID_H_
#define HMMM_COMMON_CPUID_H_

namespace hmmm {

/// True when the CPU this process runs on supports both AVX2 and FMA —
/// the feature set the vectorized Eq.-14 kernel is compiled for. Always
/// false on non-x86 targets. The probe itself is cheap but cached by the
/// kernel-selection layer anyway (see retrieval/eq14_kernel.h).
bool CpuSupportsAvx2Fma();

}  // namespace hmmm

#endif  // HMMM_COMMON_CPUID_H_
