#ifndef HMMM_COMMON_CANCELLATION_H_
#define HMMM_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>

namespace hmmm {

/// Cooperative cancellation signal shared between a query's caller and
/// the workers executing it. The caller keeps the token alive for the
/// duration of the operation and calls Cancel() to request a stop; the
/// workers poll cancelled() at bounded intervals and wind down to an
/// anytime result (see TraversalOptions). Cancelling is sticky — there is
/// no reset; use a fresh token per operation.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Safe to call from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once Cancel() has been called. A single acquire load, cheap
  /// enough to poll from inner loops.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Sentinel for "no deadline": the options structs default their deadline
/// to this and the polling helpers skip the clock read entirely.
inline constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

/// Absolute deadline `budget` from now, for callers thinking in latency
/// budgets rather than time points.
inline std::chrono::steady_clock::time_point DeadlineAfter(
    std::chrono::steady_clock::duration budget) {
  return std::chrono::steady_clock::now() + budget;
}

/// True when `deadline` is set and has passed.
inline bool DeadlineExpired(std::chrono::steady_clock::time_point deadline) {
  return deadline != kNoDeadline &&
         std::chrono::steady_clock::now() >= deadline;
}

}  // namespace hmmm

#endif  // HMMM_COMMON_CANCELLATION_H_
