#ifndef HMMM_COMMON_LOGGING_H_
#define HMMM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hmmm {

/// Severity levels, lowest to highest. kFatal aborts the process after
/// emitting the message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Returns the process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum emitted level. Not thread-safe with
/// concurrent logging; intended for test/benchmark setup.
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Used via the HMMM_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace hmmm

#define HMMM_LOG(level)                                                \
  ::hmmm::internal_logging::LogMessage(::hmmm::LogLevel::k##level,     \
                                       __FILE__, __LINE__)             \
      .stream()

/// Invariant check that is active in all build modes (unlike assert).
#define HMMM_CHECK(cond)                                       \
  while (!(cond)) HMMM_LOG(Fatal) << "check failed: " #cond " "

#endif  // HMMM_COMMON_LOGGING_H_
