#ifndef HMMM_COMMON_LOGGING_H_
#define HMMM_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace hmmm {

/// Severity levels, lowest to highest. kFatal aborts the process after
/// emitting the message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Returns the process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum emitted level. Safe to call while other
/// threads log (the level is a relaxed atomic); messages racing with the
/// change may be filtered under either level.
void SetLogLevel(LogLevel level);

/// Receives one formatted log line (no trailing newline). Sinks may be
/// invoked concurrently from multiple threads, but never while the global
/// sink lock is held by another emission — calls are serialized.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the process-wide sink; a null sink restores the default
/// (stderr). Lets tests capture emitted lines instead of scraping stderr.
/// kFatal messages are additionally always written to stderr so the
/// abort's cause is visible even with a capturing sink installed.
void SetLogSink(LogSink sink);

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Used via the HMMM_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace hmmm

#define HMMM_LOG(level)                                                \
  ::hmmm::internal_logging::LogMessage(::hmmm::LogLevel::k##level,     \
                                       __FILE__, __LINE__)             \
      .stream()

/// Invariant check that is active in all build modes (unlike assert).
#define HMMM_CHECK(cond)                                       \
  while (!(cond)) HMMM_LOG(Fatal) << "check failed: " #cond " "

#endif  // HMMM_COMMON_LOGGING_H_
