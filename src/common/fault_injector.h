#ifndef HMMM_COMMON_FAULT_INJECTOR_H_
#define HMMM_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

namespace hmmm {

/// How one named fault point decides whether a given hit fires. Triggers
/// compose with OR; an all-default config never fires (the point is still
/// hit-counted). All counters are per-point and reset by Reset().
struct FaultPointConfig {
  /// Bernoulli chance per hit, drawn from the injector's seeded RNG.
  double probability = 0.0;
  /// Fire every hit once the point's 0-based hit index reaches this
  /// value (-1 = disabled). `after_hits = 0` fires from the first hit.
  int64_t after_hits = -1;
  /// Fire when the call site's argument is >= this value (-1 = disabled).
  /// Sites pass a semantically meaningful index — e.g. the traversal
  /// passes the Step-7 claim index, so a threshold of N simulates a
  /// deadline firing exactly at video N, deterministically at any thread
  /// count.
  int64_t arg_threshold = -1;
  /// Stop firing after this many fires (-1 = unlimited). `max_fires = 1`
  /// models a transient error that a bounded retry should absorb.
  int64_t max_fires = -1;
};

/// Per-point observability snapshot.
struct FaultPointStats {
  std::string point;
  uint64_t hits = 0;
  uint64_t fires = 0;
  bool armed = false;
};

/// Process-wide registry of named fault points for chaos testing. Call
/// sites ask `ShouldFire("storage.read")` at the spot where a failure
/// should be injectable and translate `true` into their natural failure
/// mode (an IOError Status, a thrown task exception, an expired-deadline
/// signal). Sites must use the HMMM_FAULT_FIRED* macros below, which
/// compile to constant `false` unless the build enables
/// HMMM_FAULT_INJECTION, so production binaries carry no probes at all.
///
/// Thread-safe behind one mutex; fault points sit on failure-injection
/// paths that are exercised only in chaos builds, so contention is not a
/// concern. The RNG is seeded explicitly (Seed) so single-threaded chaos
/// schedules replay deterministically.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or re-arms) one point. Resets the point's hit/fire counters so
  /// `after_hits` / `max_fires` count from this call.
  void Arm(const std::string& point, FaultPointConfig config);

  /// Disarms one point, keeping its hit counters.
  void Disarm(const std::string& point);

  /// Disarms every point and clears all counters.
  void Reset();

  /// Reseeds the probability RNG.
  void Seed(uint64_t seed);

  /// Records a hit on `point` and returns true when the armed config says
  /// this hit fires. `arg` is an optional call-site index compared
  /// against `arg_threshold` (pass -1 for "no argument").
  bool ShouldFire(const char* point, int64_t arg = -1);

  /// True when any point whose name starts with `prefix` is armed. Lets
  /// subsystems switch into their injectable code path only when a chaos
  /// schedule actually targets them.
  bool ArmedWithPrefix(const std::string& prefix) const;

  uint64_t hits(const std::string& point) const;
  uint64_t fires(const std::string& point) const;

  /// All points ever hit or armed, sorted by name.
  std::vector<FaultPointStats> Snapshot() const;

 private:
  FaultInjector() = default;

  struct PointState {
    FaultPointConfig config;
    bool armed = false;
    uint64_t hit_count = 0;
    uint64_t fire_count = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, PointState> points_;
  std::mt19937_64 rng_{0x48'4D'4D'4Dull};  // "HMMM"
};

}  // namespace hmmm

/// Call-site probes. With HMMM_FAULT_INJECTION off (the default) these
/// are the constant `false`, so the surrounding `if` folds away and the
/// injector is never consulted on any hot path.
#ifdef HMMM_FAULT_INJECTION
#define HMMM_FAULT_FIRED(point) \
  (::hmmm::FaultInjector::Instance().ShouldFire(point))
#define HMMM_FAULT_FIRED_ARG(point, arg) \
  (::hmmm::FaultInjector::Instance().ShouldFire(point, (arg)))
#define HMMM_FAULT_ARMED_PREFIX(prefix) \
  (::hmmm::FaultInjector::Instance().ArmedWithPrefix(prefix))
#else
// The disabled stubs still evaluate-and-discard their operands so call
// sites compile identically (no unused-variable warnings) with the
// feature off.
#define HMMM_FAULT_FIRED(point) ((void)(point), false)
#define HMMM_FAULT_FIRED_ARG(point, arg) ((void)(point), (void)(arg), false)
#define HMMM_FAULT_ARMED_PREFIX(prefix) ((void)(prefix), false)
#endif

#endif  // HMMM_COMMON_FAULT_INJECTOR_H_
