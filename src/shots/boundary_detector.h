#ifndef HMMM_SHOTS_BOUNDARY_DETECTOR_H_
#define HMMM_SHOTS_BOUNDARY_DETECTOR_H_

#include <vector>

#include "media/frame.h"
#include "shots/histogram.h"

namespace hmmm {

/// Options for histogram-based cut detection.
struct BoundaryDetectorOptions {
  /// A frame-to-frame histogram L1 distance above
  /// `cut_factor * (mean + stddev)` of the sequence's distances declares a
  /// hard cut (adaptive thresholding).
  double cut_factor = 2.0;
  /// Absolute floor on the distance for a cut, to avoid spurious cuts in
  /// near-static material.
  double min_cut_distance = 0.4;
  /// Minimum frames between two boundaries; closer candidates are merged.
  int min_shot_length = 5;

  /// Twin-comparison gradual-transition detection: frame distances above
  /// `gradual_low_factor * cut_threshold` (but below the cut threshold)
  /// accumulate; when the accumulated distance exceeds
  /// `gradual_accumulate_factor * cut_threshold` within
  /// `max_gradual_span` frames, a gradual boundary (dissolve/fade) is
  /// declared at the midpoint of the accumulation window.
  bool detect_gradual = true;
  double gradual_low_factor = 0.3;
  double gradual_accumulate_factor = 1.2;
  int max_gradual_span = 16;
};

/// Classic twin-comparison shot-boundary detector over colour histogram
/// differences. Returns, for a frame sequence, the indices i such that a
/// cut occurs between frame i-1 and frame i.
class BoundaryDetector {
 public:
  explicit BoundaryDetector(BoundaryDetectorOptions options = {});

  /// Detects boundaries in `frames`.
  std::vector<int> Detect(const std::vector<Frame>& frames) const;

  /// Detection quality versus ground truth (a boundary counts as found if
  /// a detection lies within `tolerance` frames of it).
  struct Evaluation {
    int true_positives = 0;
    int false_positives = 0;
    int false_negatives = 0;
    double precision = 0.0;
    double recall = 0.0;
    double f1 = 0.0;
  };
  static Evaluation Evaluate(const std::vector<int>& detected,
                             const std::vector<int>& truth, int tolerance = 1);

 private:
  BoundaryDetectorOptions options_;
};

}  // namespace hmmm

#endif  // HMMM_SHOTS_BOUNDARY_DETECTOR_H_
