#ifndef HMMM_SHOTS_KEYFRAME_H_
#define HMMM_SHOTS_KEYFRAME_H_

#include <vector>

#include "common/status.h"
#include "media/video.h"

namespace hmmm {

/// Selects the representative key frame of the shot spanning
/// [begin_frame, end_frame): the frame whose colour histogram is closest
/// (L1) to the shot's mean histogram — the thumbnail the paper's result
/// panels display for each retrieved shot. Returns the absolute frame
/// index.
StatusOr<int> SelectKeyFrame(const std::vector<Frame>& frames,
                             int begin_frame, int end_frame);

/// Key frame of every ground-truth shot of a synthetic video.
StatusOr<std::vector<int>> SelectKeyFrames(const SyntheticVideo& video);

}  // namespace hmmm

#endif  // HMMM_SHOTS_KEYFRAME_H_
