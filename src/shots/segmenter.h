#ifndef HMMM_SHOTS_SEGMENTER_H_
#define HMMM_SHOTS_SEGMENTER_H_

#include <vector>

#include "media/video.h"
#include "shots/boundary_detector.h"

namespace hmmm {

/// A detected shot: a contiguous frame span of one camera operation.
struct DetectedShot {
  int begin_frame = 0;  // inclusive
  int end_frame = 0;    // exclusive

  int length() const { return end_frame - begin_frame; }
};

/// Turns boundary detections into a partition of a frame sequence into
/// shots (Fig. 1's "video shot detection and segmentation" stage).
class ShotSegmenter {
 public:
  explicit ShotSegmenter(BoundaryDetectorOptions options = {});

  /// Segments a raw frame sequence.
  std::vector<DetectedShot> Segment(const std::vector<Frame>& frames) const;

  /// Segments a synthetic video (convenience overload).
  std::vector<DetectedShot> Segment(const SyntheticVideo& video) const;

 private:
  BoundaryDetector detector_;
};

}  // namespace hmmm

#endif  // HMMM_SHOTS_SEGMENTER_H_
