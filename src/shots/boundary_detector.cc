#include "shots/boundary_detector.h"

#include <algorithm>
#include <cmath>

#include "dsp/stats.h"

namespace hmmm {

BoundaryDetector::BoundaryDetector(BoundaryDetectorOptions options)
    : options_(options) {}

std::vector<int> BoundaryDetector::Detect(
    const std::vector<Frame>& frames) const {
  std::vector<int> boundaries;
  if (frames.size() < 2) return boundaries;

  // Frame-to-frame histogram distances.
  std::vector<double> distances(frames.size() - 1);
  ColorHistogram previous = ColorHistogram::FromFrame(frames[0]);
  for (size_t i = 1; i < frames.size(); ++i) {
    const ColorHistogram current = ColorHistogram::FromFrame(frames[i]);
    distances[i - 1] = previous.L1Distance(current);
    previous = current;
  }

  // Adaptive threshold from the distance statistics.
  const double mean = dsp::Mean(distances);
  const double stddev = dsp::StdDev(distances);
  const double threshold = std::max(options_.min_cut_distance,
                                    options_.cut_factor * (mean + stddev));

  // Twin comparison: a high threshold declares hard cuts directly; a low
  // threshold opens an accumulation window that declares a gradual
  // transition once enough change piled up.
  const double low_threshold = options_.gradual_low_factor * threshold;
  const double accumulate_target =
      options_.gradual_accumulate_factor * threshold;

  int last_boundary = -options_.min_shot_length;
  int window_start = -1;
  double accumulated = 0.0;
  // After any boundary, stay quiet until the signal drops below the low
  // threshold — a long dissolve must produce one boundary, not one per
  // accumulation window.
  bool wait_for_quiet = false;
  auto emit = [&](int frame_index) {
    if (frame_index - last_boundary < options_.min_shot_length) return;
    boundaries.push_back(frame_index);
    last_boundary = frame_index;
  };
  for (size_t i = 0; i < distances.size(); ++i) {
    const int frame_index = static_cast<int>(i) + 1;
    if (distances[i] <= low_threshold) wait_for_quiet = false;
    if (wait_for_quiet) continue;
    if (distances[i] > threshold) {
      emit(frame_index);
      window_start = -1;
      accumulated = 0.0;
      wait_for_quiet = true;
      continue;
    }
    if (!options_.detect_gradual) continue;
    if (distances[i] > low_threshold) {
      if (window_start < 0) {
        window_start = frame_index;
        accumulated = 0.0;
      }
      accumulated += distances[i];
      if (frame_index - window_start > options_.max_gradual_span) {
        // Slow pan, not a transition: drop the window.
        window_start = -1;
        accumulated = 0.0;
        wait_for_quiet = true;
      } else if (accumulated > accumulate_target) {
        emit((window_start + frame_index) / 2);
        window_start = -1;
        accumulated = 0.0;
        wait_for_quiet = true;
      }
    } else {
      window_start = -1;
      accumulated = 0.0;
    }
  }
  return boundaries;
}

BoundaryDetector::Evaluation BoundaryDetector::Evaluate(
    const std::vector<int>& detected, const std::vector<int>& truth,
    int tolerance) {
  Evaluation eval;
  std::vector<bool> truth_matched(truth.size(), false);
  for (int d : detected) {
    bool matched = false;
    for (size_t t = 0; t < truth.size(); ++t) {
      if (!truth_matched[t] && std::abs(truth[t] - d) <= tolerance) {
        truth_matched[t] = true;
        matched = true;
        break;
      }
    }
    if (matched) {
      ++eval.true_positives;
    } else {
      ++eval.false_positives;
    }
  }
  for (bool m : truth_matched) {
    if (!m) ++eval.false_negatives;
  }
  const int detected_total = eval.true_positives + eval.false_positives;
  const int truth_total = eval.true_positives + eval.false_negatives;
  eval.precision = detected_total > 0
                       ? static_cast<double>(eval.true_positives) / detected_total
                       : 0.0;
  eval.recall = truth_total > 0
                    ? static_cast<double>(eval.true_positives) / truth_total
                    : 0.0;
  eval.f1 = (eval.precision + eval.recall) > 0.0
                ? 2.0 * eval.precision * eval.recall /
                      (eval.precision + eval.recall)
                : 0.0;
  return eval;
}

}  // namespace hmmm
