#ifndef HMMM_SHOTS_HISTOGRAM_H_
#define HMMM_SHOTS_HISTOGRAM_H_

#include <array>
#include <cstddef>

#include "media/frame.h"

namespace hmmm {

/// Normalized per-channel colour histogram (8 bins per RGB channel, 24
/// values summing to 3). The twin-comparison boundary detector and the
/// histo_change feature both work on distances between these.
class ColorHistogram {
 public:
  static constexpr int kBinsPerChannel = 8;
  static constexpr int kTotalBins = 3 * kBinsPerChannel;

  ColorHistogram();

  /// Builds the histogram of a frame; empty frames give an all-zero
  /// histogram.
  static ColorHistogram FromFrame(const Frame& frame);

  double bin(int i) const { return bins_[static_cast<size_t>(i)]; }
  const std::array<double, kTotalBins>& bins() const { return bins_; }

  /// L1 distance between two histograms, in [0, 6].
  double L1Distance(const ColorHistogram& other) const;

  /// Histogram intersection similarity, in [0, 3] (3 = identical).
  double Intersection(const ColorHistogram& other) const;

 private:
  std::array<double, kTotalBins> bins_;
};

}  // namespace hmmm

#endif  // HMMM_SHOTS_HISTOGRAM_H_
