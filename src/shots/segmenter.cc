#include "shots/segmenter.h"

namespace hmmm {

ShotSegmenter::ShotSegmenter(BoundaryDetectorOptions options)
    : detector_(options) {}

std::vector<DetectedShot> ShotSegmenter::Segment(
    const std::vector<Frame>& frames) const {
  std::vector<DetectedShot> shots;
  if (frames.empty()) return shots;
  const std::vector<int> boundaries = detector_.Detect(frames);
  int begin = 0;
  for (int b : boundaries) {
    shots.push_back(DetectedShot{begin, b});
    begin = b;
  }
  shots.push_back(DetectedShot{begin, static_cast<int>(frames.size())});
  return shots;
}

std::vector<DetectedShot> ShotSegmenter::Segment(
    const SyntheticVideo& video) const {
  return Segment(video.frames);
}

}  // namespace hmmm
