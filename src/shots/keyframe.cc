#include "shots/keyframe.h"

#include <array>
#include <cmath>

#include "shots/histogram.h"

namespace hmmm {

StatusOr<int> SelectKeyFrame(const std::vector<Frame>& frames,
                             int begin_frame, int end_frame) {
  if (begin_frame < 0 || end_frame > static_cast<int>(frames.size()) ||
      begin_frame >= end_frame) {
    return Status::InvalidArgument("bad frame span for key frame selection");
  }
  // Mean histogram of the shot.
  std::vector<ColorHistogram> histograms;
  histograms.reserve(static_cast<size_t>(end_frame - begin_frame));
  std::array<double, ColorHistogram::kTotalBins> mean{};
  for (int f = begin_frame; f < end_frame; ++f) {
    histograms.push_back(
        ColorHistogram::FromFrame(frames[static_cast<size_t>(f)]));
    for (int b = 0; b < ColorHistogram::kTotalBins; ++b) {
      mean[static_cast<size_t>(b)] += histograms.back().bin(b);
    }
  }
  const double count = static_cast<double>(histograms.size());
  for (double& m : mean) m /= count;

  int best_frame = begin_frame;
  double best_distance = 1e300;
  for (size_t i = 0; i < histograms.size(); ++i) {
    double distance = 0.0;
    for (int b = 0; b < ColorHistogram::kTotalBins; ++b) {
      distance += std::abs(histograms[i].bin(b) - mean[static_cast<size_t>(b)]);
    }
    if (distance < best_distance) {
      best_distance = distance;
      best_frame = begin_frame + static_cast<int>(i);
    }
  }
  return best_frame;
}

StatusOr<std::vector<int>> SelectKeyFrames(const SyntheticVideo& video) {
  std::vector<int> key_frames;
  key_frames.reserve(video.shots.size());
  for (const ShotTruth& shot : video.shots) {
    HMMM_ASSIGN_OR_RETURN(
        int key, SelectKeyFrame(video.frames, shot.begin_frame, shot.end_frame));
    key_frames.push_back(key);
  }
  return key_frames;
}

}  // namespace hmmm
