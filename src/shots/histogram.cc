#include "shots/histogram.h"

#include <algorithm>
#include <cmath>

namespace hmmm {

ColorHistogram::ColorHistogram() { bins_.fill(0.0); }

ColorHistogram ColorHistogram::FromFrame(const Frame& frame) {
  ColorHistogram h;
  if (frame.empty()) return h;
  constexpr int kShift = 8 - 3;  // 256 values -> 8 bins
  for (const Rgb& p : frame.pixels()) {
    h.bins_[static_cast<size_t>(p.r >> kShift)] += 1.0;
    h.bins_[static_cast<size_t>(kBinsPerChannel + (p.g >> kShift))] += 1.0;
    h.bins_[static_cast<size_t>(2 * kBinsPerChannel + (p.b >> kShift))] += 1.0;
  }
  const double total = static_cast<double>(frame.pixel_count());
  for (double& b : h.bins_) b /= total;
  return h;
}

double ColorHistogram::L1Distance(const ColorHistogram& other) const {
  double sum = 0.0;
  for (int i = 0; i < kTotalBins; ++i) {
    sum += std::abs(bins_[static_cast<size_t>(i)] -
                    other.bins_[static_cast<size_t>(i)]);
  }
  return sum;
}

double ColorHistogram::Intersection(const ColorHistogram& other) const {
  double sum = 0.0;
  for (int i = 0; i < kTotalBins; ++i) {
    sum += std::min(bins_[static_cast<size_t>(i)],
                    other.bins_[static_cast<size_t>(i)]);
  }
  return sum;
}

}  // namespace hmmm
