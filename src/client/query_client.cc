#include "client/query_client.h"

#include <errno.h>
#include <poll.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "common/cancellation.h"
#include "common/strings.h"

namespace hmmm {

namespace {

/// The socket layer reports a clean EOF as kNotFound ("connection
/// closed"), which is meaningful for a server reading an idle
/// connection — but from a client mid-round-trip it is a transport
/// failure, and it must not collide with a typed kNotFound error the
/// server might legitimately answer (e.g. an unknown event name). The
/// shard coordinator relies on this separation to tell "request is at
/// fault" from "peer is unavailable".
Status AsTransportError(Status status) {
  if (status.code() == StatusCode::kNotFound) {
    return Status::IOError(status.message());
  }
  return status;
}

}  // namespace

std::chrono::milliseconds NextDecorrelatedBackoff(
    std::chrono::milliseconds base, std::chrono::milliseconds cap,
    std::chrono::milliseconds prev, Rng& rng) {
  const int64_t lo = std::max<int64_t>(0, base.count());
  const int64_t hi = std::max<int64_t>(lo, 3 * prev.count());
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  const auto picked =
      std::chrono::milliseconds(lo + static_cast<int64_t>(rng.NextUint64(span)));
  return std::min(cap, picked);
}

uint64_t DeriveRetryJitterSeed(uint64_t configured) {
  if (configured != 0) return configured;
  // Golden-ratio stride: consecutive clients land on well-separated
  // SplitMix64 seeds (Rng decorrelates nearby seeds anyway; this keeps
  // them distinct even under concurrent construction).
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed);
}

bool QueryClient::IdleConnectionHealthy() const {
  if (!socket_.valid()) return true;
  pollfd entry{socket_.fd(), POLLIN, 0};
  const int ready = ::poll(&entry, 1, 0);
  if (ready == 0) return true;           // silent, as an idle peer should be
  if (ready < 0) return errno == EINTR;  // poll itself failed: assume dead
  // Readable (or POLLERR/POLLHUP) with nothing in flight: the server
  // hung up or desynced.
  return false;
}

Status QueryClient::Connect() {
  if (socket_.valid()) return Status::OK();
  HMMM_ASSIGN_OR_RETURN(
      socket_, TcpConnect(options_.host, options_.port,
                          options_.connect_timeout));
  return Status::OK();
}

StatusOr<std::string> QueryClient::Attempt(const std::string& frame,
                                           MessageType expected_response,
                                           bool idempotent, bool* retriable,
                                           uint16_t* response_version) {
  *retriable = false;
  if (!socket_.valid()) {
    const Status connected = Connect();
    if (!connected.ok()) {
      // Nothing was sent, so a connect failure is always safe to retry.
      *retriable = true;
      return connected;
    }
  }
  const auto deadline = DeadlineAfter(options_.io_timeout);
  const Status written = WriteAll(socket_.fd(), frame, deadline);
  if (!written.ok()) {
    Disconnect();
    *retriable = idempotent;
    return written;
  }
  char header_bytes[kFrameHeaderBytes];
  Status read =
      ReadExact(socket_.fd(), header_bytes, kFrameHeaderBytes, deadline);
  if (!read.ok()) {
    Disconnect();
    *retriable = idempotent;
    return AsTransportError(std::move(read));
  }
  FrameHeader header;
  WireError wire_error = DecodeFrameHeader(
      std::string_view(header_bytes, kFrameHeaderBytes),
      options_.max_frame_bytes, &header);
  if (wire_error != WireError::kNone) {
    // A response we cannot frame means the stream is desynced: drop the
    // connection, surface the reason, never retry blindly.
    Disconnect();
    return StatusFromWireError(wire_error, "response frame rejected");
  }
  std::string payload(header.payload_bytes, '\0');
  if (header.payload_bytes > 0) {
    read = ReadExact(socket_.fd(), payload.data(), payload.size(), deadline);
    if (!read.ok()) {
      Disconnect();
      *retriable = idempotent;
      return AsTransportError(std::move(read));
    }
  }
  wire_error = VerifyFramePayload(header, payload);
  if (wire_error != WireError::kNone) {
    Disconnect();
    return StatusFromWireError(wire_error, "response payload corrupt");
  }
  if (header.type == MessageType::kErrorResponse) {
    StatusOr<ErrorResponse> error = DecodeErrorResponse(payload);
    if (!error.ok()) {
      Disconnect();
      return error.status();
    }
    if (error->code == WireError::kUnsupportedVersion &&
        peer_version_ > kWireMinProtocolVersion) {
      // The peer speaks an older protocol. Downgrade to the floor
      // version and retry: the request was refused before executing, so
      // even non-idempotent requests may go again. The server closes
      // the connection after this answer, so reconnect too.
      peer_version_ = kWireMinProtocolVersion;
      Disconnect();
      *retriable = true;
      return StatusFromWireError(error->code, error->message);
    }
    // The server declares retriability: a retriable typed error means
    // the request was refused before executing, so even non-idempotent
    // requests may go again.
    *retriable = error->retriable;
    return StatusFromWireError(error->code, error->message);
  }
  if (header.type != expected_response) {
    Disconnect();
    return Status::Internal(
        StrFormat("unexpected response type %u (wanted %u)",
                  static_cast<unsigned>(header.type),
                  static_cast<unsigned>(expected_response)));
  }
  if (response_version != nullptr) *response_version = header.version;
  return payload;
}

StatusOr<std::string> QueryClient::RoundTrip(MessageType request_type,
                                             const void* request,
                                             PayloadEncoder encode,
                                             MessageType expected_response,
                                             bool idempotent,
                                             uint16_t* response_version) {
  std::chrono::milliseconds backoff = options_.retry_backoff;
  for (int attempt = 0;; ++attempt) {
    // Re-encoded per attempt: a kUnsupportedVersion answer downgrades
    // peer_version_, and the retry must carry the older payload schema
    // under the older frame stamp.
    const uint16_t version = peer_version_;
    const std::string payload =
        encode != nullptr ? encode(request, version) : std::string();
    const std::string frame = EncodeFrame(request_type, payload, version);
    bool retriable = false;
    StatusOr<std::string> result = Attempt(frame, expected_response,
                                           idempotent, &retriable,
                                           response_version);
    if (result.ok() || !retriable || attempt >= options_.max_retries) {
      return result;
    }
    ++retries_performed_;
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    backoff = NextDecorrelatedBackoff(options_.retry_backoff,
                                      options_.retry_backoff_cap, backoff,
                                      rng_);
  }
}

StatusOr<TemporalQueryResponse> QueryClient::TemporalQuery(
    const TemporalQueryRequest& request) {
  uint16_t response_version = kWireMinProtocolVersion;
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(
          MessageType::kTemporalQueryRequest, &request,
          +[](const void* req, uint16_t version) {
            return EncodeTemporalQueryRequest(
                *static_cast<const TemporalQueryRequest*>(req), version);
          },
          MessageType::kTemporalQueryResponse, /*idempotent=*/true,
          &response_version));
  return DecodeTemporalQueryResponse(payload, response_version);
}

StatusOr<QbeResponse> QueryClient::QueryByExample(const QbeRequest& request) {
  uint16_t response_version = kWireMinProtocolVersion;
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(
          MessageType::kQbeRequest, &request,
          +[](const void* req, uint16_t version) {
            return EncodeQbeRequest(*static_cast<const QbeRequest*>(req),
                                    version);
          },
          MessageType::kQbeResponse, /*idempotent=*/true, &response_version));
  return DecodeQbeResponse(payload, response_version);
}

StatusOr<MarkPositiveResponse> QueryClient::MarkPositive(
    const MarkPositiveRequest& request) {
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(
          MessageType::kMarkPositiveRequest, &request,
          +[](const void* req, uint16_t) {
            return EncodeMarkPositiveRequest(
                *static_cast<const MarkPositiveRequest*>(req));
          },
          MessageType::kMarkPositiveResponse, /*idempotent=*/false));
  return DecodeMarkPositiveResponse(payload);
}

StatusOr<TrainResponse> QueryClient::Train() {
  uint16_t response_version = kWireMinProtocolVersion;
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(MessageType::kTrainRequest, nullptr, nullptr,
                MessageType::kTrainResponse, /*idempotent=*/false,
                &response_version));
  return DecodeTrainResponse(payload, response_version);
}

StatusOr<MetricsResponse> QueryClient::Metrics() {
  uint16_t response_version = kWireMinProtocolVersion;
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(MessageType::kMetricsRequest, nullptr, nullptr,
                MessageType::kMetricsResponse, /*idempotent=*/true,
                &response_version));
  return DecodeMetricsResponse(payload, response_version);
}

StatusOr<HealthResponse> QueryClient::Health() {
  uint16_t response_version = kWireMinProtocolVersion;
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(MessageType::kHealthRequest, nullptr, nullptr,
                MessageType::kHealthResponse, /*idempotent=*/true,
                &response_version));
  return DecodeHealthResponse(payload);
}

StatusOr<DumpSlowQueriesResponse> QueryClient::DumpSlowQueries() {
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(MessageType::kDumpSlowQueriesRequest, nullptr, nullptr,
                MessageType::kDumpSlowQueriesResponse, /*idempotent=*/true));
  return DecodeDumpSlowQueriesResponse(payload);
}

StatusOr<ReloadShardMapResponse> QueryClient::ReloadShardMap(
    const ReloadShardMapRequest& request) {
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(
          MessageType::kReloadShardMapRequest, &request,
          +[](const void* req, uint16_t) {
            return EncodeReloadShardMapRequest(
                *static_cast<const ReloadShardMapRequest*>(req));
          },
          MessageType::kReloadShardMapResponse, /*idempotent=*/false));
  return DecodeReloadShardMapResponse(payload);
}

}  // namespace hmmm
