#include "client/query_client.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/cancellation.h"
#include "common/strings.h"

namespace hmmm {

namespace {

/// The socket layer reports a clean EOF as kNotFound ("connection
/// closed"), which is meaningful for a server reading an idle
/// connection — but from a client mid-round-trip it is a transport
/// failure, and it must not collide with a typed kNotFound error the
/// server might legitimately answer (e.g. an unknown event name). The
/// shard coordinator relies on this separation to tell "request is at
/// fault" from "peer is unavailable".
Status AsTransportError(Status status) {
  if (status.code() == StatusCode::kNotFound) {
    return Status::IOError(status.message());
  }
  return status;
}

}  // namespace

Status QueryClient::Connect() {
  if (socket_.valid()) return Status::OK();
  HMMM_ASSIGN_OR_RETURN(
      socket_, TcpConnect(options_.host, options_.port,
                          options_.connect_timeout));
  return Status::OK();
}

StatusOr<std::string> QueryClient::Attempt(const std::string& frame,
                                           MessageType expected_response,
                                           bool idempotent, bool* retriable) {
  *retriable = false;
  if (!socket_.valid()) {
    const Status connected = Connect();
    if (!connected.ok()) {
      // Nothing was sent, so a connect failure is always safe to retry.
      *retriable = true;
      return connected;
    }
  }
  const auto deadline = DeadlineAfter(options_.io_timeout);
  const Status written = WriteAll(socket_.fd(), frame, deadline);
  if (!written.ok()) {
    Disconnect();
    *retriable = idempotent;
    return written;
  }
  char header_bytes[kFrameHeaderBytes];
  Status read =
      ReadExact(socket_.fd(), header_bytes, kFrameHeaderBytes, deadline);
  if (!read.ok()) {
    Disconnect();
    *retriable = idempotent;
    return AsTransportError(std::move(read));
  }
  FrameHeader header;
  WireError wire_error = DecodeFrameHeader(
      std::string_view(header_bytes, kFrameHeaderBytes),
      options_.max_frame_bytes, &header);
  if (wire_error != WireError::kNone) {
    // A response we cannot frame means the stream is desynced: drop the
    // connection, surface the reason, never retry blindly.
    Disconnect();
    return StatusFromWireError(wire_error, "response frame rejected");
  }
  std::string payload(header.payload_bytes, '\0');
  if (header.payload_bytes > 0) {
    read = ReadExact(socket_.fd(), payload.data(), payload.size(), deadline);
    if (!read.ok()) {
      Disconnect();
      *retriable = idempotent;
      return AsTransportError(std::move(read));
    }
  }
  wire_error = VerifyFramePayload(header, payload);
  if (wire_error != WireError::kNone) {
    Disconnect();
    return StatusFromWireError(wire_error, "response payload corrupt");
  }
  if (header.type == MessageType::kErrorResponse) {
    StatusOr<ErrorResponse> error = DecodeErrorResponse(payload);
    if (!error.ok()) {
      Disconnect();
      return error.status();
    }
    // The server declares retriability: a retriable typed error means
    // the request was refused before executing, so even non-idempotent
    // requests may go again.
    *retriable = error->retriable;
    return StatusFromWireError(error->code, error->message);
  }
  if (header.type != expected_response) {
    Disconnect();
    return Status::Internal(
        StrFormat("unexpected response type %u (wanted %u)",
                  static_cast<unsigned>(header.type),
                  static_cast<unsigned>(expected_response)));
  }
  return payload;
}

StatusOr<std::string> QueryClient::RoundTrip(MessageType request_type,
                                             const std::string& payload,
                                             MessageType expected_response,
                                             bool idempotent) {
  const std::string frame = EncodeFrame(request_type, payload);
  std::chrono::milliseconds backoff = options_.retry_backoff;
  for (int attempt = 0;; ++attempt) {
    bool retriable = false;
    StatusOr<std::string> result =
        Attempt(frame, expected_response, idempotent, &retriable);
    if (result.ok() || !retriable || attempt >= options_.max_retries) {
      return result;
    }
    ++retries_performed_;
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, options_.retry_backoff_cap);
  }
}

StatusOr<TemporalQueryResponse> QueryClient::TemporalQuery(
    const TemporalQueryRequest& request) {
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(MessageType::kTemporalQueryRequest,
                EncodeTemporalQueryRequest(request),
                MessageType::kTemporalQueryResponse, /*idempotent=*/true));
  return DecodeTemporalQueryResponse(payload);
}

StatusOr<QbeResponse> QueryClient::QueryByExample(const QbeRequest& request) {
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(MessageType::kQbeRequest, EncodeQbeRequest(request),
                MessageType::kQbeResponse, /*idempotent=*/true));
  return DecodeQbeResponse(payload);
}

StatusOr<MarkPositiveResponse> QueryClient::MarkPositive(
    const MarkPositiveRequest& request) {
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(MessageType::kMarkPositiveRequest,
                EncodeMarkPositiveRequest(request),
                MessageType::kMarkPositiveResponse, /*idempotent=*/false));
  return DecodeMarkPositiveResponse(payload);
}

StatusOr<TrainResponse> QueryClient::Train() {
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(MessageType::kTrainRequest, std::string(),
                MessageType::kTrainResponse, /*idempotent=*/false));
  return DecodeTrainResponse(payload);
}

StatusOr<MetricsResponse> QueryClient::Metrics() {
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(MessageType::kMetricsRequest, std::string(),
                MessageType::kMetricsResponse, /*idempotent=*/true));
  return DecodeMetricsResponse(payload);
}

StatusOr<HealthResponse> QueryClient::Health() {
  HMMM_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(MessageType::kHealthRequest, std::string(),
                MessageType::kHealthResponse, /*idempotent=*/true));
  return DecodeHealthResponse(payload);
}

}  // namespace hmmm
